"""Shared fixtures for the paper-reproduction benchmark harness.

Every harness module regenerates one table or figure from the paper's
evaluation section, printing measured-vs-paper rows and asserting that
the *shape* of the result holds.

The expensive (design x benchmark) grids are computed once per session
and shared.  Trace length is controlled by ``REPRO_BENCH_REFS``
(default 20000 L2 references per benchmark) — larger values tighten the
statistics at proportional cost.
"""

import os

import pytest

from repro.analysis.experiments import (
    MAIN_DESIGNS,
    TLC_FAMILY,
    run_design_grid,
)


def bench_refs() -> int:
    return int(os.environ.get("REPRO_BENCH_REFS", "20000"))


@pytest.fixture(scope="session")
def main_grid():
    """SNUCA2 / DNUCA / TLC across all twelve benchmarks."""
    return run_design_grid(designs=MAIN_DESIGNS, n_refs=bench_refs())


@pytest.fixture(scope="session")
def family_grid():
    """SNUCA2 (normalization) plus the TLC family across all benchmarks."""
    return run_design_grid(designs=("SNUCA2",) + TLC_FAMILY,
                           n_refs=bench_refs())

"""Shared fixtures for the paper-reproduction benchmark harness.

Every harness module regenerates one table or figure from the paper's
evaluation section, printing measured-vs-paper rows and asserting that
the *shape* of the result holds.

The expensive (design x benchmark) grids run through the parallel
runner (:mod:`repro.analysis.runner`) behind a session-scoped
content-addressed result cache, so cells shared between grids — the
main grid and the TLC-family grid overlap on SNUCA2 and TLC across all
twelve benchmarks — are simulated exactly once per session.  Knobs (all
environment variables):

* ``REPRO_BENCH_REFS`` — trace length per benchmark (default 20000 L2
  references); larger values tighten the statistics at proportional
  cost.
* ``REPRO_BENCH_WORKERS`` — worker processes for grid cells (default:
  CPU count capped at 8; set to 1 to force the serial path).
* ``REPRO_BENCH_CACHE_DIR`` — persistent cache directory.  Unset, the
  cache lives in a per-session temporary directory (cells are still
  shared *within* the session); set, warm cells survive across pytest
  sessions and are invalidated automatically whenever any source file
  under ``src/repro`` changes.
* ``REPRO_BENCH_RETRIES`` / ``REPRO_BENCH_CELL_TIMEOUT`` — route the
  grids through the fault-tolerant executor
  (:mod:`repro.analysis.resilience`): retry each failed / crashed /
  timed-out cell up to N times, bounding each attempt's wall time.
* ``REPRO_BENCH_CHECKPOINT`` — journal completed cells to this JSONL
  path so an interrupted benchmark session resumes instead of
  re-simulating (see docs/TESTING.md).
* ``REPRO_FAULT_PLAN`` — deterministic fault injection (inline JSON or
  a file path), honored by the runner itself; combine with retries to
  smoke-test recovery against the real grids.
"""

import os
from typing import Optional, Tuple

import pytest

from repro.analysis.experiments import (
    MAIN_DESIGNS,
    TLC_FAMILY,
    run_design_grid,
)
from repro.analysis.resilience import CheckpointJournal, RetryPolicy
from repro.analysis.runner import ResultCache


def bench_refs() -> int:
    return int(os.environ.get("REPRO_BENCH_REFS", "20000"))


def bench_workers() -> int:
    value = os.environ.get("REPRO_BENCH_WORKERS")
    if value is not None:
        return int(value)
    return min(8, os.cpu_count() or 1)


def bench_resilience() -> Tuple[Optional[RetryPolicy],
                                Optional[CheckpointJournal]]:
    """``(policy, checkpoint)`` from the environment; ``(None, None)``
    keeps the grids on the fast pool-based executor."""
    retries = int(os.environ.get("REPRO_BENCH_RETRIES", "0"))
    timeout = float(os.environ.get("REPRO_BENCH_CELL_TIMEOUT", "0") or 0)
    checkpoint_path = os.environ.get("REPRO_BENCH_CHECKPOINT")
    policy = None
    if retries or timeout:
        policy = RetryPolicy(max_retries=retries,
                             cell_timeout_s=timeout or None,
                             backoff_base_s=0.5)
    checkpoint = CheckpointJournal(checkpoint_path) if checkpoint_path else None
    return policy, checkpoint


@pytest.fixture(scope="session")
def grid_cache(tmp_path_factory) -> ResultCache:
    """Session-wide result cache; persistent iff REPRO_BENCH_CACHE_DIR set."""
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if not cache_dir:
        cache_dir = str(tmp_path_factory.mktemp("grid-cache"))
    return ResultCache(cache_dir)


@pytest.fixture(scope="session")
def main_grid(grid_cache):
    """SNUCA2 / DNUCA / TLC across all twelve benchmarks."""
    policy, checkpoint = bench_resilience()
    return run_design_grid(designs=MAIN_DESIGNS, n_refs=bench_refs(),
                           workers=bench_workers(), cache=grid_cache,
                           policy=policy, checkpoint=checkpoint)


@pytest.fixture(scope="session")
def family_grid(grid_cache):
    """SNUCA2 (normalization) plus the TLC family across all benchmarks."""
    policy, checkpoint = bench_resilience()
    return run_design_grid(designs=("SNUCA2",) + TLC_FAMILY,
                           n_refs=bench_refs(),
                           workers=bench_workers(), cache=grid_cache,
                           policy=policy, checkpoint=checkpoint)

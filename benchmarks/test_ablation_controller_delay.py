"""Ablation: sensitivity of TLC to the controller's internal wire delay.

Section 4 notes the TLC controller adds "up to three additional delay
cycles" of conventional wiring, and that the smaller TLCopt controllers
win some of it back.  This sweep re-runs the base TLC with the
round-trip controller delay forced to 0 / uniform values, quantifying
how much of TLC's latency budget the controller's physical size costs.
"""

from repro.analysis.tables import format_table
from repro.sim.system import run_system
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import generate_trace

N_REFS = 10_000
#: uniform extra round-trip cycles applied to every pair.
SWEEP = (0, 2, 4, 6)


def test_ablation_controller_delay(benchmark):
    def run():
        trace = generate_trace(get_profile("gcc").spec, N_REFS, seed=7)
        results = {}
        for extra in SWEEP:
            results[extra] = run_system(
                "TLC", "gcc", trace=trace,
                controller_rt_delays=(extra,) * 16)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    baseline = results[0]
    rows = []
    for extra in SWEEP:
        r = results[extra]
        rows.append([
            f"+{extra}",
            round(r.mean_lookup_latency, 1),
            round(r.cycles / baseline.cycles, 3),
        ])
    print()
    print(format_table(
        ["ctrl RT delay", "mean lookup", "norm. time vs +0"],
        rows, title="Ablation: TLC controller wire delay (gcc)"))

    lookups = [results[extra].mean_lookup_latency for extra in SWEEP]
    times = [results[extra].cycles for extra in SWEEP]

    # Lookup latency moves one-for-one with the added round trip.
    for i, extra in enumerate(SWEEP):
        assert abs(lookups[i] - (lookups[0] + extra)) < 1.0

    # Execution time degrades monotonically but sub-linearly (the OoO
    # window hides part of each added cycle).
    assert times == sorted(times)
    worst = times[-1] / times[0]
    assert 1.0 < worst < 1.0 + 6 / lookups[0]

"""Ablation: DNUCA's policy design space (Kim et al.'s knobs).

Three policies the DNUCA baseline fixes, swept here to show the paper's
configuration is the sensible corner:

* **insertion position** — insert-at-tail (default) vs insert-at-head.
  Head insertion puts every miss's block in the prime real estate,
  evicting promoted blocks; on streaming-heavy workloads it wrecks the
  close banks' contents.
* **search mode** — multicast (default) vs incremental search of
  partial-tag candidates: fewer bank accesses, longer searched-miss
  latency.
* **promotion distance** — 1 (generational, default) vs jumping several
  banks per hit: hot blocks arrive at the head faster but displace
  further.
"""

from repro.analysis.tables import format_table
from repro.sim.system import run_system
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import generate_trace

N_REFS = 10_000


def test_ablation_dnuca_policies(benchmark):
    def run():
        results = {}
        for bench in ("apache", "mcf"):
            trace = generate_trace(get_profile(bench).spec, N_REFS, seed=7)
            results[(bench, "baseline")] = run_system("DNUCA", bench, trace=trace)
            results[(bench, "head-insert")] = run_system(
                "DNUCA", bench, trace=trace, insertion_position="head")
            results[(bench, "incremental")] = run_system(
                "DNUCA", bench, trace=trace, search_mode="incremental")
            results[(bench, "jump-4")] = run_system(
                "DNUCA", bench, trace=trace, promotion_distance=4)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (bench, variant), r in results.items():
        close = r.stats.get("close_hits", 0) / max(1, r.l2_requests)
        rows.append([bench, variant, round(r.ipc, 3),
                     round(r.banks_accessed_per_request, 2),
                     f"{close:.0%}", round(r.mean_lookup_latency, 1)])
    print()
    print(format_table(
        ["bench", "variant", "IPC", "banks/req", "close%", "lookup"],
        rows, title="Ablation: DNUCA policy variants"))

    # Incremental search touches no more banks than multicast.
    for bench in ("apache", "mcf"):
        assert (results[(bench, "incremental")].banks_accessed_per_request
                <= results[(bench, "baseline")].banks_accessed_per_request
                + 1e-9)

    # On the miss-heavy commercial workload, head insertion pollutes the
    # closest banks: close-hit rate drops versus insert-at-tail.
    def close_rate(key):
        r = results[key]
        return r.stats.get("close_hits", 0) / max(1, r.l2_requests)
    assert (close_rate(("apache", "head-insert"))
            <= close_rate(("apache", "baseline")) + 0.02)

    # No variant changes functional behaviour: same miss counts.
    for bench in ("apache", "mcf"):
        baseline_misses = results[(bench, "baseline")].l2_misses
        for variant in ("incremental", "jump-4"):
            assert results[(bench, variant)].l2_misses == baseline_misses

"""Ablation: DNUCA with and without its central partial-tag array.

Section 2 credits partial tags with two benefits: directly cutting the
number of banks searched (and enabling fast misses), and indirectly
reducing interconnect contention.  Removing them forces every
closest-two miss to search all fourteen remaining banks.

The effect is largest for workloads that miss the closest banks often —
mcf (deep hits) and swim (misses) — and nearly invisible for gcc, whose
hits are almost all close.
"""

from repro.analysis.tables import format_table
from repro.sim.system import run_system
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import generate_trace

BENCHMARKS = ("gcc", "mcf", "swim")
N_REFS = 10_000


def test_ablation_partial_tags(benchmark):
    def run():
        results = {}
        for bench in BENCHMARKS:
            trace = generate_trace(get_profile(bench).spec, N_REFS, seed=7)
            results[(bench, True)] = run_system("DNUCA", bench, trace=trace)
            results[(bench, False)] = run_system("DNUCA", bench, trace=trace,
                                                 use_partial_tags=False)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for bench in BENCHMARKS:
        with_pt = results[(bench, True)]
        without = results[(bench, False)]
        rows.append([
            bench,
            round(with_pt.banks_accessed_per_request, 2),
            round(without.banks_accessed_per_request, 2),
            round(with_pt.network_power_w * 1000),
            round(without.network_power_w * 1000),
            round(without.cycles / with_pt.cycles, 3),
        ])
    print()
    print(format_table(
        ["bench", "banks/req (PT)", "banks/req (no PT)",
         "power mW (PT)", "power mW (no PT)", "slowdown"],
        rows, title="Ablation: DNUCA partial tags"))

    for bench in BENCHMARKS:
        with_pt = results[(bench, True)]
        without = results[(bench, False)]
        # Without partial tags, far more banks get probed...
        assert (without.banks_accessed_per_request
                > with_pt.banks_accessed_per_request + 0.5), bench
        # ...which burns more network power...
        assert without.network_power_w > with_pt.network_power_w, bench
        # ...and never helps performance.
        assert without.cycles >= with_pt.cycles * 0.99, bench

    # Where misses/deep hits dominate, the search storm visibly hurts.
    assert (results[("swim", False)].cycles
            > results[("swim", True)].cycles * 1.02)
    # Full search without partial tags approaches all 16 banks.
    assert results[("swim", False)].banks_accessed_per_request > 8

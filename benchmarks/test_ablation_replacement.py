"""Ablation: TLC's replacement policy under stream pollution.

Section 6.1 singles out equake: DNUCA's insert-at-tail behaviour keeps
streaming data from displacing the frequently reused set, while TLC's
LRU cannot — so TLC misses more (6.8 vs 5.2 misses/kinstr).

Two experiments:

1. **equake as calibrated** — reproduce the paper's gap: TLC+LRU misses
   more than DNUCA on the identical trace.
2. **policy isolation** — a pollution workload long enough for every
   set to absorb several stream insertions, comparing LRU against LIP
   (LRU-insertion — the set-associative equivalent of DNUCA's
   insert-at-tail).  The protection mechanism, isolated from DNUCA's
   extra associativity, must recover most of the pollution loss.
"""

from repro.analysis.tables import format_table
from repro.sim.system import run_system
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import TraceSpec, generate_trace

#: Pollution workload: a reused set at ~0.9 blocks/set plus a dominant
#: stream, run long enough for ~4 stream insertions per cache set.
POLLUTION_SPEC = TraceSpec(
    mean_gap=30.0, hot_blocks=60_000, hot_skew=2.0,
    stream_fraction=0.55, stream_interleave=4,
    write_fraction=0.25, dependent_fraction=0.1,
)
POLLUTION_REFS = 450_000
EQUAKE_REFS = 12_000


def test_ablation_replacement(benchmark):
    def run():
        results = {}
        eq_trace = generate_trace(get_profile("equake").spec, EQUAKE_REFS, seed=7)
        results["equake_tlc"] = run_system("TLC", "equake", trace=eq_trace)
        results["equake_dnuca"] = run_system("DNUCA", "equake", trace=eq_trace)
        pol_trace = generate_trace(POLLUTION_SPEC, POLLUTION_REFS, seed=7)
        for policy in ("lru", "lip"):
            results[policy] = run_system("TLC", "pollution", trace=pol_trace,
                                         warmup_fraction=0.4,
                                         prewarm_spec=POLLUTION_SPEC,
                                         replacement=policy)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["experiment", "config", "miss ratio"],
        [
            ["equake (paper gap)", "TLC + LRU",
             round(results["equake_tlc"].miss_ratio, 4)],
            ["equake (paper gap)", "DNUCA",
             round(results["equake_dnuca"].miss_ratio, 4)],
            ["pollution (policy only)", "TLC + LRU",
             round(results["lru"].miss_ratio, 4)],
            ["pollution (policy only)", "TLC + LIP",
             round(results["lip"].miss_ratio, 4)],
        ],
        title="Ablation: replacement policy under stream pollution"))

    # 1. The paper's equake anomaly: LRU TLC misses more than DNUCA.
    assert results["equake_tlc"].miss_ratio > results["equake_dnuca"].miss_ratio

    # 2. Isolated policy effect: insertion protection beats LRU, and the
    #    recovered misses are a visible fraction of the pollution loss.
    lru, lip = results["lru"].miss_ratio, results["lip"].miss_ratio
    floor = POLLUTION_SPEC.stream_fraction  # compulsory stream misses
    assert lip < lru
    assert (lru - lip) > 0.25 * (lru - floor), (lru, lip, floor)

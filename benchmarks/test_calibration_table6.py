"""Calibration audit: every profile graded against its Table 6 row.

This is the closed loop behind the workload substitution: each of the
twelve synthetic profiles must land within tolerance of the published
workload characteristics (miss rate within a factor of ~2.5, DNUCA
close-hit rate within 30 points) — evidence that the Figures 5-8
comparisons run on workloads that behave like the paper's.
"""

from repro.analysis.tables import format_table
from repro.workloads.calibration import grade_all


def test_calibration_against_table6(benchmark):
    grades = benchmark.pedantic(lambda: grade_all(n_refs=10_000),
                                rounds=1, iterations=1)

    rows = []
    for name, grade in grades.items():
        rows.append([
            name,
            round(grade.measured_tlc_mpki, 3), grade.paper_tlc_mpki,
            f"{grade.mpki_log_error:.2f} dec",
            f"{grade.measured_close_hit:.0%}", f"{grade.paper_close_hit:.0%}",
            "ok" if grade.within() else "OFF",
        ])
    print()
    print(format_table(
        ["bench", "mpki", "(paper)", "mpki err", "close%", "(paper)",
         "grade"],
        rows, title="Workload calibration audit vs Table 6"))

    misgraded = [name for name, grade in grades.items() if not grade.within()]
    assert not misgraded, misgraded

    # Aggregate quality: mean miss-rate error well under a factor of two.
    mean_error = sum(g.mpki_log_error for g in grades.values()) / len(grades)
    assert mean_error < 0.2, mean_error

"""Section 5's physical evaluation: 10 GHz pulses through every line.

The paper accepted a line when the received pulse kept >= 75 % of Vdd
in amplitude and >= 40 % of the cycle time in width.  This harness runs
the extraction + wave-propagation pipeline for all three Table 1
classes and checks both criteria, plus the one-cycle link latency the
cache timing models assume.
"""

from repro.analysis.tables import format_table
from repro.tline import TABLE1_LINES, evaluate_link
from repro.tline.signaling import MIN_AMPLITUDE_FRACTION, MIN_WIDTH_FRACTION


def test_eye_signal_integrity(benchmark):
    reports = benchmark.pedantic(
        lambda: [evaluate_link(g.length) for g in TABLE1_LINES],
        rounds=3, iterations=1)

    rows = []
    for report in reports:
        rows.append([
            report.geometry.name,
            f"{report.line.z0:.1f}",
            f"{report.pulse.delay_s * 1e12:.0f} ps",
            f"{report.amplitude_fraction:.0%}",
            f">={MIN_AMPLITUDE_FRACTION:.0%}",
            f"{report.width_fraction:.0%}",
            f">={MIN_WIDTH_FRACTION:.0%}",
            report.latency_cycles,
            "PASS" if report.usable else "FAIL",
        ])
    print()
    print(format_table(
        ["line", "Z0", "delay", "amplitude", "(req)", "width", "(req)",
         "cycles", "verdict"],
        rows, title="Signal integrity at 10 GHz (Section 5 criteria)"))

    for report in reports:
        assert report.usable, f"{report.geometry.name} failed the criteria"
        assert report.latency_cycles == 1
    # Attenuation must worsen monotonically with length (physical sanity).
    amplitudes = [r.amplitude_fraction for r in reports]
    assert amplitudes == sorted(amplitudes, reverse=True)

"""Figure 3: cross-sectional comparison, transmission line vs RC wire.

The figure's point: transmission lines are an order of magnitude larger
than conventional global wires in every dimension — and in exchange
signal near the speed of light instead of at repeated-RC speed.
"""

from repro.analysis.tables import format_table
from repro.tech import TECH_45NM
from repro.tline import CONVENTIONAL_GLOBAL_WIRE, TABLE1_LINES, extract


def test_fig3_cross_sections(benchmark):
    tl_geometry = TABLE1_LINES[0]
    tl = benchmark.pedantic(lambda: extract(tl_geometry), rounds=3, iterations=1)
    conv = CONVENTIONAL_GLOBAL_WIRE

    length = 1.0e-2  # compare over a 1 cm global run
    tl_delay = TECH_45NM.tl_flight_cycles(length)
    conv_delay = TECH_45NM.conventional_delay_cycles(length)

    rows = [
        ["width (um)", f"{tl_geometry.width * 1e6:.2f}", f"{conv.width * 1e6:.2f}"],
        ["spacing (um)", f"{tl_geometry.spacing * 1e6:.2f}", f"{conv.spacing * 1e6:.2f}"],
        ["thickness (um)", f"{tl_geometry.thickness * 1e6:.2f}", f"{conv.thickness * 1e6:.2f}"],
        ["dielectric height (um)", f"{tl_geometry.height * 1e6:.2f}", f"{conv.height * 1e6:.2f}"],
        ["cross-section (um^2)", f"{tl_geometry.cross_section_area * 1e12:.2f}",
         f"{conv.cross_section_area * 1e12:.3f}"],
        ["delay over 1 cm (cycles)", f"{tl_delay:.2f}", f"{conv_delay:.1f}"],
        ["repeaters needed", "none", "every ~0.1 mm"],
    ]
    print()
    print(format_table(["", "transmission line", "conventional global"],
                       rows, title="Figure 3: cross-sectional comparison"))

    # Shape: the TL is much larger physically and much faster electrically.
    assert tl_geometry.cross_section_area > 25 * conv.cross_section_area
    assert conv_delay / tl_delay > 10
    assert tl_delay < 1.0  # under one cycle for 1 cm

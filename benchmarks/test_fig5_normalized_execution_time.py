"""Figure 5: normalized execution time (SNUCA2 = 1.0).

Expected shape, per the paper:

* Both TLC and DNUCA significantly improve the high-L2-traffic SPECint
  and commercial workloads over SNUCA2.
* Neither design helps the miss-dominated SPECfp streamers (swim,
  applu, lucas) — everything is memory time there.
* TLC clearly wins mcf (large footprint spread across the whole cache);
  DNUCA wins equake (frequency-like replacement protects the reused
  set against the streams).
"""

from repro.analysis.tables import format_table


def test_fig5_normalized_execution_time(main_grid, benchmark):
    def rows():
        out = []
        for bench in main_grid.benchmarks:
            out.append([
                bench,
                1.0,
                round(main_grid.normalized_execution_time("DNUCA", bench), 3),
                round(main_grid.normalized_execution_time("TLC", bench), 3),
            ])
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print()
    print(format_table(["benchmark", "SNUCA2", "DNUCA", "TLC"], table,
                       title="Figure 5: Normalized Execution Time"))

    norm = {(d, b): main_grid.normalized_execution_time(d, b)
            for d in ("DNUCA", "TLC") for b in main_grid.benchmarks}

    # Memory-bound streamers: nobody moves the needle much.
    for bench in ("swim", "applu", "lucas"):
        for design in ("DNUCA", "TLC"):
            assert 0.90 <= norm[(design, bench)] <= 1.10, (design, bench)

    # High-traffic workloads improve clearly under both designs.
    for bench in ("gcc",):
        assert norm[("TLC", bench)] < 0.90
        assert norm[("DNUCA", bench)] < 0.95

    # TLC's headline win: mcf.
    assert norm[("TLC", "mcf")] < norm[("DNUCA", "mcf")] - 0.05

    # DNUCA's headline win: equake (replacement-policy anomaly).
    assert norm[("DNUCA", "equake")] < norm[("TLC", "equake")]

    # Nothing should ever be dramatically *worse* than the static baseline.
    assert all(value < 1.15 for value in norm.values())

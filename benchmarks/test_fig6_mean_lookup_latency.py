"""Figure 6: mean cache lookup latency, DNUCA vs TLC.

The paper's key observation: TLC's mean lookup latency sits in a narrow
band around 13 cycles for *every* benchmark, while DNUCA's mean varies
tremendously with each workload's locality — low when close hits
dominate (gcc, perl), high when hits live deep in the bank sets
(mcf, equake).
"""

import statistics

from repro.analysis.tables import format_table


def test_fig6_mean_lookup_latency(main_grid, benchmark):
    def rows():
        return [
            [bench,
             round(main_grid.result("DNUCA", bench).mean_lookup_latency, 1),
             round(main_grid.result("TLC", bench).mean_lookup_latency, 1)]
            for bench in main_grid.benchmarks
        ]

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print()
    print(format_table(["benchmark", "DNUCA", "TLC"], table,
                       title="Figure 6: Mean Cache Lookup Latency (cycles)"))

    tlc = [main_grid.result("TLC", b).mean_lookup_latency
           for b in main_grid.benchmarks]
    dnuca = [main_grid.result("DNUCA", b).mean_lookup_latency
             for b in main_grid.benchmarks]

    # TLC: consistent ~13-cycle band across all twelve benchmarks.
    assert all(11.0 <= value <= 16.0 for value in tlc), tlc
    assert max(tlc) - min(tlc) < 4.0

    # DNUCA: workload-dependent spread, wider than TLC's.
    assert max(dnuca) - min(dnuca) > 2 * (max(tlc) - min(tlc))
    assert statistics.pstdev(dnuca) > 2 * statistics.pstdev(tlc)

    # Locality ordering: gcc/perl (high close-hit) beat mcf under DNUCA.
    by_bench = dict(zip(main_grid.benchmarks, dnuca))
    assert by_bench["perl"] < by_bench["mcf"]
    assert by_bench["gcc"] < by_bench["mcf"]

"""Figure 7: average transmission-line link utilization, TLC family.

The figure's argument: the base TLC's 2048 lines are grossly
over-provisioned (utilization under ~2 %), so the optimized designs can
shed half to five-sixths of the wires and still stay at comfortably low
utilization (the paper's ceiling is ~13 % for TLCopt 350).
"""

from repro.analysis.experiments import TLC_FAMILY
from repro.analysis.tables import format_table


def test_fig7_link_utilization(family_grid, benchmark):
    def rows():
        out = []
        for bench in family_grid.benchmarks:
            out.append([bench] + [
                f"{family_grid.result(design, bench).link_utilization:.1%}"
                for design in TLC_FAMILY
            ])
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print()
    print(format_table(["benchmark"] + list(TLC_FAMILY), table,
                       title="Figure 7: TLC Average Link Utilization"))

    util = {(d, b): family_grid.result(d, b).link_utilization
            for d in TLC_FAMILY for b in family_grid.benchmarks}

    # Absolute utilizations scale with the achieved L2 request rate; our
    # processor model sustains higher IPCs than the authors' Simics
    # target, so the band sits ~2x above the paper's (<2 % -> <6 % for
    # the base design).  The family *ordering* and the over-provisioning
    # argument are the reproduced shape.
    for bench in family_grid.benchmarks:
        # Base TLC: massively over-provisioned.
        assert util[("TLC", bench)] < 0.06, bench
        # Fewer wires -> more utilization, in family order (small jitter
        # between adjacent designs tolerated, the trend must hold).
        assert util[("TLCopt350", bench)] > util[("TLC", bench)], bench
        assert util[("TLCopt500", bench)] >= util[("TLCopt1000", bench)] * 0.8
        # Even the leanest design stays far from saturation.
        assert util[("TLCopt350", bench)] < 0.45, bench

    # The most utilized cell belongs to the narrowest design.
    peak_design = max(util, key=util.get)[0]
    assert peak_design == "TLCopt350"

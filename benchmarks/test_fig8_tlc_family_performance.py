"""Figure 8: normalized execution time of the TLC family (SNUCA2 = 1.0).

The paper's conclusion for the optimized designs: despite using 2x-6x
fewer transmission lines, the TLCopt designs perform within a few
percent of the base TLC on every benchmark — some even slightly better,
thanks to their lower 12-13-cycle uncontended latency.
"""

from repro.analysis.experiments import TLC_FAMILY
from repro.analysis.tables import format_table


def test_fig8_tlc_family_performance(family_grid, benchmark):
    def rows():
        out = []
        for bench in family_grid.benchmarks:
            out.append([bench] + [
                round(family_grid.normalized_execution_time(design, bench), 3)
                for design in TLC_FAMILY
            ])
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print()
    print(format_table(["benchmark"] + list(TLC_FAMILY), table,
                       title="Figure 8: TLC Family Normalized Execution Time"))

    # The paper's argument is conditional: *because* link utilization
    # stays low (Fig. 7), the optimized designs lose almost nothing.  We
    # assert exactly that implication — wherever a design's links stay in
    # the paper's utilization regime, its performance stays within a few
    # percent of the base TLC.  (Our processor sustains higher request
    # rates than the authors' target, so gcc pushes TLCopt350 beyond the
    # regime the paper measured; there the premise fails and only a loose
    # sanity bound applies.)
    gaps = []
    for bench in family_grid.benchmarks:
        base = family_grid.normalized_execution_time("TLC", bench)
        for design in TLC_FAMILY[1:]:
            opt = family_grid.normalized_execution_time(design, bench)
            utilization = family_grid.result(design, bench).link_utilization
            gap = abs(opt - base)
            gaps.append(gap)
            if utilization < 0.15:  # the paper's measured regime
                assert gap < 0.12, (design, bench, base, opt, utilization)
            else:
                assert gap < 0.40, (design, bench, base, opt, utilization)
            # Never meaningfully worse than the SNUCA2 baseline.
            assert opt < 1.10, (design, bench)

    # "Comparable for most benchmarks": the typical gap is small.
    gaps.sort()
    assert gaps[len(gaps) // 2] < 0.05, gaps

    # Multiple-partial-match rate stays rare (paper: ~1 % of lookups).
    for design in TLC_FAMILY[1:]:
        for bench in family_grid.benchmarks:
            result = family_grid.result(design, bench)
            multi = result.stats.get("multi_partial_matches", 0)
            assert multi / max(1, result.l2_requests) < 0.08, (design, bench)

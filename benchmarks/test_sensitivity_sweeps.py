"""Sensitivity sweeps around the paper's design point (beyond the paper).

Three robustness checks a reviewer would ask for:

* **memory latency** — TLC's win over SNUCA2 must not be an artifact of
  the 300-cycle DRAM assumption;
* **clock frequency** — the "every bank within 16 cycles" budget as the
  cycle shrinks: the bank access inflates, the line stays ~1 cycle
  until the cycle time dives below the time of flight;
* **workload dependence** — the knob separating mcf from swim: the
  designs' latency gap must grow with pointer chasing.
"""

from repro.analysis.sweeps import (
    dependence_sweep,
    frequency_sweep,
    memory_latency_sweep,
)
from repro.analysis.tables import format_table


def test_sensitivity_sweeps(benchmark):
    def run():
        return {
            "memory": memory_latency_sweep(latencies=(100, 300, 900),
                                           n_refs=8_000),
            "frequency": frequency_sweep(frequencies_ghz=(2.5, 5, 10, 20, 40)),
            "dependence": dependence_sweep(fractions=(0.0, 0.3, 0.6, 0.9),
                                           n_refs=8_000),
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    rows = [[lat, round(row["TLC"] / row["SNUCA2"], 3)]
            for lat, row in sweeps["memory"]]
    print(format_table(["DRAM latency", "TLC/SNUCA2 time"], rows,
                       title="Memory-latency sensitivity (gcc)"))

    print()
    rows = [[f"{ghz:g} GHz", bank, line, "yes" if ok else "no"]
            for ghz, bank, line, ok in sweeps["frequency"]]
    print(format_table(["clock", "bank cycles", "line cycles", "usable"],
                       rows, title="Frequency sensitivity (512 KB bank, 1.3 cm line)"))

    print()
    rows = [[f"{frac:.0%}", round(row["SNUCA2"] / row["TLC"], 3)]
            for frac, row in sweeps["dependence"]]
    print(format_table(["dependent refs", "TLC speedup vs SNUCA2"], rows,
                       title="Dependence sensitivity"))

    # TLC beats SNUCA2 at every memory latency, most at the fastest.
    ratios = [row["TLC"] / row["SNUCA2"] for _, row in sweeps["memory"]]
    assert all(r < 1.0 for r in ratios)
    assert ratios[0] <= ratios[-1] + 0.02

    # The line holds one cycle through 20 GHz; the bank balloons.
    by_ghz = {row[0]: row for row in sweeps["frequency"]}
    assert by_ghz[10][1] == 8 and by_ghz[10][2] == 1
    assert by_ghz[20][1] > 8
    assert by_ghz[40][2] >= 2

    # Dependence monotonically widens TLC's advantage.
    speedups = [row["SNUCA2"] / row["TLC"] for _, row in sweeps["dependence"]]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 1.15

"""Table 1: transmission-line dimensions and their extracted parameters.

Regenerates the paper's Table 1 (length / width / spacing / height /
thickness) and extends it with the quantities the dimensions exist to
deliver: characteristic impedance, flight time, and loss.
"""

from repro.analysis.tables import format_table
from repro.tline import TABLE1_LINES, extract


def test_table1_dimensions(benchmark):
    lines = benchmark.pedantic(
        lambda: [extract(g) for g in TABLE1_LINES], rounds=3, iterations=1)

    rows = []
    for geometry, line in zip(TABLE1_LINES, lines):
        rows.append([
            f"{geometry.length * 100:.1f} cm",
            f"{geometry.width * 1e6:.1f}",
            f"{geometry.spacing * 1e6:.1f}",
            f"{geometry.height * 1e6:.2f}",
            f"{geometry.thickness * 1e6:.1f}",
            f"{line.z0:.1f}",
            f"{line.flight_time * 1e12:.0f} ps",
        ])
    print()
    print(format_table(
        ["Length", "W (um)", "S (um)", "H (um)", "T (um)", "Z0 (ohm)", "flight"],
        rows, title="Table 1: Transmission Line Dimensions (+ extraction)"))

    # Shape assertions: the published dimensional progression.
    widths = [g.width for g in TABLE1_LINES]
    assert widths == sorted(widths)
    assert [round(g.width * 1e6, 1) for g in TABLE1_LINES] == [2.0, 2.5, 3.0]
    assert [round(g.spacing * 1e6, 1) for g in TABLE1_LINES] == [2.0, 2.5, 3.0]
    assert all(abs(g.height - 1.75e-6) < 1e-9 for g in TABLE1_LINES)
    assert all(abs(g.thickness - 3.0e-6) < 1e-9 for g in TABLE1_LINES)
    # Every class flies its full run within one 10 GHz cycle.
    assert all(line.flight_time < 100e-12 for line in lines)

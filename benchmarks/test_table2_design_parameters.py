"""Table 2: design parameters of the whole cache family.

The structural columns come straight from the registry; the uncontended
latency column is *derived* by the timing models (controller wire delays
plus link flight plus bank access) and must land on the published
ranges, which pins the timing model to the paper.
"""

from repro.analysis.tables import PAPER_TABLE2, format_table
from repro.core.config import DESIGNS, build_design


def test_table2_design_parameters(benchmark):
    designs = benchmark.pedantic(
        lambda: {name: build_design(name) for name in DESIGNS},
        rounds=1, iterations=1)

    rows = []
    for name, config in DESIGNS.items():
        paper = PAPER_TABLE2[name]
        measured = config.uncontended_latency_range
        rows.append([
            name, config.banks, config.banks_per_block,
            f"{config.bank_bytes // 1024} KB",
            config.lines_per_pair or "-",
            config.total_lines or "-",
            f"{measured[0]}-{measured[1]}",
            f"{paper['uncontended'][0]}-{paper['uncontended'][1]}",
            config.bank_access_cycles,
        ])
    print()
    print(format_table(
        ["Design", "Banks", "Banks/Blk", "Bank", "Lines/Pair", "Lines",
         "Latency", "(paper)", "Bank cyc"],
        rows, title="Table 2: Design Parameters"))

    for name, paper in PAPER_TABLE2.items():
        config = DESIGNS[name]
        assert config.banks == paper["banks"]
        assert config.bank_bytes == paper["bank_kb"] * 1024
        assert config.bank_access_cycles == paper["bank_access"]
        if "total_lines" in paper:
            assert config.total_lines == paper["total_lines"]
        measured = config.uncontended_latency_range
        published = paper["uncontended"]
        # TLC-family ranges are exact; the mesh designs may differ by one
        # cycle at one end (our mesh is symmetric, the authors' was not).
        assert abs(measured[0] - published[0]) <= 1
        assert abs(measured[1] - published[1]) <= 1

    # The instantiated designs agree with their configs.
    for name, design in designs.items():
        assert design.name == name

"""Table 6: benchmark characteristics, measured vs paper.

Regenerates every column the synthetic workloads were calibrated
against: L2 misses per kilo-instruction under both designs, DNUCA's
close-hit percentage and promotes-per-insert ratio, and the
predictable-lookup percentages for TLC and DNUCA.

Absolute values are calibration targets, not ground truth — the
assertions check *orderings* (which benchmarks stream, which have
locality) and the headline predictability gap.
"""

from repro.analysis.tables import PAPER_TABLE6, format_table


def test_table6_benchmark_characteristics(main_grid, benchmark):
    def rows():
        out = []
        for bench in main_grid.benchmarks:
            tlc = main_grid.result("TLC", bench)
            dnuca = main_grid.result("DNUCA", bench)
            paper = PAPER_TABLE6[bench]
            promotes = dnuca.stats.get("promotions", 0)
            inserts = max(1, dnuca.stats.get("insertions", 0))
            close = dnuca.stats.get("close_hits", 0) / max(1, dnuca.l2_requests)
            out.append([
                bench,
                round(tlc.misses_per_kinstr, 3), paper["tlc_mpki"],
                round(dnuca.misses_per_kinstr, 3), paper["dnuca_mpki"],
                f"{close:.0%}", f"{paper['close_hit']:.0%}",
                round(promotes / inserts, 2), paper["promotes_per_insert"],
                f"{tlc.predictable_lookup_fraction:.0%}",
                f"{dnuca.predictable_lookup_fraction:.0%}",
            ])
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print()
    print(format_table(
        ["bench", "TLC mpki", "(paper)", "DN mpki", "(paper)",
         "close%", "(paper)", "prom/ins", "(paper)", "TLC pred", "DN pred"],
        table, title="Table 6: Benchmark Characteristics (measured vs paper)"))

    def mpki(design, bench):
        return main_grid.result(design, bench).misses_per_kinstr

    # Streaming fp benchmarks miss one-to-two orders of magnitude more
    # than SPECint, as in the paper.
    for streamer in ("swim", "applu", "lucas"):
        for resident in ("bzip", "gcc", "mcf", "perl"):
            assert mpki("TLC", streamer) > 50 * mpki("TLC", resident)

    # equake: TLC's LRU misses more than DNUCA's frequency-like policy.
    assert mpki("TLC", "equake") > mpki("DNUCA", "equake")

    # Locality ordering of DNUCA close hits: gcc/perl high, mcf middling,
    # streamers low.
    close = {b: main_grid.result("DNUCA", b).stats.get("close_hits", 0)
             / max(1, main_grid.result("DNUCA", b).l2_requests)
             for b in main_grid.benchmarks}
    assert close["gcc"] > 0.8 and close["perl"] > 0.8
    assert close["swim"] < 0.35 and close["equake"] < 0.35
    assert close["swim"] < close["mcf"] < close["gcc"]

    # Promotion economics: mcf promotes thousands of times per insert,
    # the streamers well under once.
    def promotes_per_insert(bench):
        r = main_grid.result("DNUCA", bench)
        return r.stats.get("promotions", 0) / max(1, r.stats.get("insertions", 0))
    assert promotes_per_insert("mcf") > 100
    for streamer in ("swim", "applu"):
        assert promotes_per_insert(streamer) < 1.0

    # The predictability gap (columns 7-8): TLC beats DNUCA everywhere.
    for bench in main_grid.benchmarks:
        tlc = main_grid.result("TLC", bench)
        dnuca = main_grid.result("DNUCA", bench)
        assert (tlc.predictable_lookup_fraction
                > dnuca.predictable_lookup_fraction), bench
        assert tlc.predictable_lookup_fraction > 0.75, bench

"""Table 7: consumed substrate area.

The area models are calibrated at the component level (SRAM cell size,
wire pitches, TL pitch); this harness checks they compose into the
paper's breakdown: DNUCA 92/17/1.1 -> 110 mm^2, TLC 77/3.1/10 ->
91 mm^2, an ~18 % saving.
"""

import pytest

from repro.analysis.tables import PAPER_TABLE7, format_table
from repro.area import dnuca_area, tlc_area
from repro.core.config import TLC_BASE


def test_table7_substrate_area(benchmark):
    reports = benchmark.pedantic(
        lambda: {"DNUCA": dnuca_area(),
                 "TLC": tlc_area(TLC_BASE.total_lines)},
        rounds=3, iterations=1)

    rows = []
    for name, report in reports.items():
        mm2 = report.as_mm2()
        paper = PAPER_TABLE7[name]
        rows.append([
            name,
            round(mm2["storage_mm2"], 1), paper["storage"],
            round(mm2["channel_mm2"], 1), paper["channel"],
            round(mm2["controller_mm2"], 1), paper["controller"],
            round(mm2["total_mm2"], 1), paper["total"],
        ])
    print()
    print(format_table(
        ["design", "storage", "(paper)", "channel", "(paper)",
         "controller", "(paper)", "total", "(paper)"],
        rows, title="Table 7: Consumed Substrate Area (mm^2)"))

    dnuca = reports["DNUCA"].as_mm2()
    tlc = reports["TLC"].as_mm2()

    for name, report in (("DNUCA", dnuca), ("TLC", tlc)):
        paper = PAPER_TABLE7[name]
        assert report["storage_mm2"] == pytest.approx(paper["storage"], rel=0.15)
        assert report["total_mm2"] == pytest.approx(paper["total"], rel=0.15)

    # Component shape: TLC trades tiny channels for a big controller.
    assert tlc["channel_mm2"] < dnuca["channel_mm2"] / 3
    assert tlc["controller_mm2"] > 5 * dnuca["controller_mm2"]
    assert tlc["storage_mm2"] < dnuca["storage_mm2"]

    # Headline: ~18 % substrate-area saving.
    saving = 1 - tlc["total_mm2"] / dnuca["total_mm2"]
    assert 0.12 < saving < 0.25

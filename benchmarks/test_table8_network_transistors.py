"""Table 8: cache communication-network transistor inventories.

DNUCA's mesh needs switches, repeaters, and pipeline latches; TLC only
drivers, receivers, and impedance-trim logic.  The paper's totals:
1.2e7 transistors / 440 Mlambda vs 1.9e5 / 20 Mlambda — a >50x count
reduction and >10x total-gate-width (leakage) reduction.
"""

import pytest

from repro.analysis.tables import PAPER_TABLE8, format_table
from repro.area import dnuca_network_transistors, tlc_network_transistors
from repro.core.config import TLC_BASE


def test_table8_network_transistors(benchmark):
    reports = benchmark.pedantic(
        lambda: {"DNUCA": dnuca_network_transistors(),
                 "TLC": tlc_network_transistors(TLC_BASE.total_lines)},
        rounds=3, iterations=1)

    rows = []
    for name, report in reports.items():
        paper = PAPER_TABLE8[name]
        rows.append([
            name,
            f"{report.transistors:.2e}", f"{paper['transistors']:.1e}",
            f"{report.gate_width_mega_lambda:.0f} M",
            f"{paper['gate_width_mega_lambda']:.0f} M",
        ])
    print()
    print(format_table(
        ["design", "transistors", "(paper)", "gate width", "(paper)"],
        rows, title="Table 8: Communication Network Characteristics"))

    dnuca, tlc = reports["DNUCA"], reports["TLC"]
    assert dnuca.transistors == pytest.approx(1.2e7, rel=0.3)
    assert tlc.transistors == pytest.approx(1.9e5, rel=0.2)
    assert dnuca.gate_width_mega_lambda == pytest.approx(440, rel=0.3)
    assert tlc.gate_width_mega_lambda == pytest.approx(20, rel=0.2)

    # Headline ratios.
    assert dnuca.transistors / tlc.transistors > 50
    assert dnuca.gate_width_lambda / tlc.gate_width_lambda > 10

    # DNUCA's inventory is dominated by the switches; TLC's width by the
    # low-impedance drivers.
    assert dnuca.breakdown["switches"] > dnuca.breakdown["repeaters"]
    assert tlc.breakdown["drivers"] > tlc.breakdown["receivers"]

"""Table 9: banks accessed per request and network dynamic power.

Two effects compose into the paper's ~61 % average dynamic-power saving:

* TLC touches exactly one bank per request, DNUCA 2.0-2.6 (the closest
  two probes plus directed searches);
* per bit moved, long transmission lines beat repeated wires plus
  switch traversals.

Absolute milliwatts depend on the absolute request rate (our processor
model runs at different IPCs than the authors' Simics target), so the
assertions are on banks-per-request and on the TLC/DNUCA power *ratio*.
"""

from repro.analysis.tables import PAPER_TABLE9, format_table


def test_table9_dynamic_power(main_grid, benchmark):
    def rows():
        out = []
        for bench in main_grid.benchmarks:
            dnuca = main_grid.result("DNUCA", bench)
            tlc = main_grid.result("TLC", bench)
            paper = PAPER_TABLE9[bench]
            out.append([
                bench,
                round(dnuca.banks_accessed_per_request, 2),
                paper["dnuca_banks"],
                round(tlc.banks_accessed_per_request, 2), 1,
                round(dnuca.network_power_w * 1000), paper["dnuca_mw"],
                round(tlc.network_power_w * 1000), paper["tlc_mw"],
                f"{1 - tlc.network_power_w / dnuca.network_power_w:.0%}",
                f"{1 - paper['tlc_mw'] / paper['dnuca_mw']:.0%}",
            ])
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print()
    print(format_table(
        ["bench", "DN banks", "(paper)", "TLC banks", "(paper)",
         "DN mW", "(paper)", "TLC mW", "(paper)", "saving", "(paper)"],
        table, title="Table 9: Dynamic Components (measured vs paper)"))

    savings = []
    for bench in main_grid.benchmarks:
        dnuca = main_grid.result("DNUCA", bench)
        tlc = main_grid.result("TLC", bench)

        # Banks touched per request: TLC exactly 1, DNUCA 2 to ~3.
        assert tlc.banks_accessed_per_request == 1.0, bench
        assert 2.0 <= dnuca.banks_accessed_per_request <= 3.2, bench

        # TLC's network must draw less power on every benchmark.
        assert tlc.network_power_w < dnuca.network_power_w, bench
        savings.append(1 - tlc.network_power_w / dnuca.network_power_w)

    # Headline: a large average saving (paper reports 61 %).
    average_saving = sum(savings) / len(savings)
    assert average_saving > 0.35, average_saving

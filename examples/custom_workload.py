#!/usr/bin/env python
"""Bring your own workload: author a trace spec, save/replay the trace.

Shows the workload-authoring surface a downstream user needs:

1. describe a workload as a :class:`TraceSpec` mixture,
2. render it to a deterministic reference trace,
3. persist the trace to disk and reload it,
4. replay the identical trace against several cache designs,
5. inspect per-design statistics beyond the headline numbers.

Usage::

    python examples/custom_workload.py
"""

import os
import tempfile

from repro import run_system
from repro.workloads import TraceSpec, generate_trace, load_trace, save_trace


def main() -> None:
    # An in-memory database-ish workload: a skewed hot index that fits in
    # the cache, a scan component (streaming), and a random row tail.
    spec = TraceSpec(
        mean_gap=45.0,            # ~22 L2 requests per kilo-instruction
        hot_blocks=60_000,        # ~3.7 MB hot index
        hot_skew=2.5,
        stream_fraction=0.10,     # table scans
        stream_blocks=1 << 22,    # 256 MB scanned footprint
        cold_fraction=0.08,       # random row touches
        write_fraction=0.25,
        dependent_fraction=0.30,  # index walks
    )
    trace = generate_trace(spec, n_refs=12_000, seed=42)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "mydb.trace")
        count = save_trace(path, trace)
        replayed = load_trace(path)
        assert replayed == trace
        print(f"Generated, saved, and reloaded {count} references "
              f"({os.path.getsize(path)} bytes on disk).")

    print("\nReplaying the identical trace against three designs:\n")
    header = (f"{'design':11s} {'IPC':>5s} {'miss%':>6s} {'lookup':>7s} "
              f"{'pred%':>6s} {'util%':>6s} {'power':>8s}")
    print(header)
    print("-" * len(header))
    for design in ("SNUCA2", "DNUCA", "TLC", "TLCopt500"):
        r = run_system(design, "custom-db", trace=trace)
        print(f"{design:11s} {r.ipc:5.2f} {r.miss_ratio:6.1%} "
              f"{r.mean_lookup_latency:7.1f} "
              f"{r.predictable_lookup_fraction:6.0%} "
              f"{r.link_utilization:6.1%} "
              f"{r.network_power_w * 1000:6.0f} mW")

    print("\nDetailed counters are available on every result, e.g. TLC:")
    r = run_system("TLC", "custom-db", trace=trace)
    for name in sorted(r.stats):
        print(f"  {name:22s} {r.stats[name]}")
    print("\nNote: a raw trace replay starts from a cold cache — use the")
    print("named benchmark profiles (repro.workloads.PROFILES) to get the")
    print("calibrated pre-warmed runs the paper-style experiments use.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Design-space walk: the whole TLC family against the NUCA baselines.

Reproduces a miniature of the paper's evaluation on three contrasting
workloads — gcc (cache-resident, extreme L2 traffic), equake (the
LRU-vs-frequency replacement anomaly), and swim (pure streaming) — and
prints the area/power/wire cost of each design next to its performance,
the trade-off space of Table 2 + Table 7 + Figure 8.

Usage::

    python examples/design_space.py [n_refs]
"""

import sys

from repro import DESIGNS, run_system
from repro.analysis.tables import format_table
from repro.area import (
    dnuca_area,
    dnuca_network_transistors,
    snuca_area,
    tlc_area,
    tlc_network_transistors,
)

BENCHMARKS = ("gcc", "equake", "swim")
DESIGN_ORDER = ("SNUCA2", "DNUCA", "TLC", "TLCopt1000", "TLCopt500", "TLCopt350")


def physical_cost(name: str):
    """(area mm^2, network transistors, total transmission lines)."""
    config = DESIGNS[name]
    if config.kind == "snuca":
        return snuca_area().total_m2 * 1e6, None, 0
    if config.kind == "dnuca":
        return (dnuca_area().total_m2 * 1e6,
                dnuca_network_transistors().transistors, 0)
    lines = config.total_lines
    return (tlc_area(lines, config.banks, config.bank_bytes).total_m2 * 1e6,
            tlc_network_transistors(lines).transistors, lines)


def main() -> None:
    n_refs = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000

    print(f"Running {len(DESIGN_ORDER)} designs x {len(BENCHMARKS)} "
          f"benchmarks at {n_refs} L2 references each...\n")

    results = {}
    for benchmark in BENCHMARKS:
        for design in DESIGN_ORDER:
            results[(design, benchmark)] = run_system(design, benchmark,
                                                      n_refs=n_refs)

    rows = []
    for design in DESIGN_ORDER:
        area_mm2, transistors, lines = physical_cost(design)
        row = [design, f"{area_mm2:.0f}",
               f"{transistors:.1e}" if transistors else "-",
               lines if lines else "-"]
        for benchmark in BENCHMARKS:
            base = results[("SNUCA2", benchmark)].cycles
            row.append(f"{results[(design, benchmark)].cycles / base:.2f}")
        rows.append(row)

    headers = ["design", "area mm^2", "net xtors", "TL lines"] + [
        f"{b} (norm)" for b in BENCHMARKS]
    print(format_table(headers, rows,
                       title="Cost vs performance across the design family"))

    print("\nReading the table:")
    print(" * TLC matches DNUCA's performance with ~18% less substrate and")
    print("   ~60x fewer network transistors, at the cost of 2048 wide")
    print("   upper-metal transmission lines.")
    print(" * The optimized TLC designs shed 50-83% of those lines for at")
    print("   most a few percent of execution time (Figure 8's claim).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Full-system mode: simulate the whole Table 3 hierarchy, L1 included.

The paper-reproduction experiments replay L2-level traces (the L1
filter is folded into the workload calibration).  This example instead
drives CPU-level references through a simulated 64 KB 2-way L1 in front
of each L2 design — showing the L1's filtering, its writeback traffic
arriving at the L2 as stores, and how the L2 design choice still shows
through the L1.

Usage::

    python examples/full_system.py
"""

from repro.sim.full_system import FullSystem
from repro.workloads.cpu_level import CpuLevelSpec, generate_cpu_trace
from repro.workloads.synthetic import TraceSpec


def main() -> None:
    # A pointer-heavy workload: the L2-relevant footprint is large and
    # dependent (mcf-flavoured), wrapped in CPU-level near-set reuse.
    spec = CpuLevelSpec(
        l2_spec=TraceSpec(mean_gap=9.0, hot_blocks=150_000, hot_skew=1.3,
                          scatter=False, dependent_fraction=0.8,
                          write_fraction=0.25),
        near_fraction=0.60,   # stack/locals the L1 absorbs
        near_bytes=16 * 1024,
        spatial_run=1,
        mean_gap=3.0,
    )
    trace = generate_cpu_trace(spec, n_refs=60_000, seed=11)
    print(f"CPU-level trace: {len(trace)} references, "
          f"{sum(r.gap for r in trace)} instructions\n")

    header = (f"{'design':8s} {'IPC':>6s} {'L1 miss':>8s} {'L1 wb':>6s} "
              f"{'L2 reqs':>8s} {'L2 miss':>8s}")
    print(header)
    print("-" * len(header))
    results = {}
    for design in ("SNUCA2", "DNUCA", "TLC"):
        system = FullSystem(design)
        system.prewarm(spec.l2_spec)  # stand-in for the fast-forward phase
        result = system.run(trace)
        results[design] = result
        print(f"{design:8s} {result.ipc:6.2f} {result.l1_miss_rate:8.1%} "
              f"{result.l1_writebacks:6d} {result.l2_requests:8d} "
              f"{result.l2_misses:8d}")

    tlc, snuca = results["TLC"], results["SNUCA2"]
    print(f"\nThe L1 filters {tlc.l1_hits / tlc.cpu_references:.0%} of "
          f"references identically for every design, yet TLC runs "
          f"{snuca.cycles / tlc.cycles:.2f}x faster than SNUCA2 — the "
          f"dependence-bound miss stream exposes every cycle of L2 "
          f"lookup latency that survives the L1.")


if __name__ == "__main__":
    main()

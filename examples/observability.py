#!/usr/bin/env python
"""Observability tour: metrics snapshots, event traces, manifest diffs.

Runs the same cell twice with a ``RunObserver`` attached — once per
seed — then walks the three pieces of ``repro.obs`` (see
docs/OBSERVABILITY.md):

1. the **metrics registry** every design carries (``design.metrics``),
2. an **event tracer** ring-buffering the last L2 accesses,
3. two **run manifests** diffed field by field.

Usage::

    python examples/observability.py
"""

import os
import tempfile

from repro import run_system
from repro.obs import (
    EventTracer,
    RunObserver,
    diff_manifests,
    load_manifest,
    read_jsonl,
    save_manifest,
)


def observed_run(seed: int) -> RunObserver:
    obs = RunObserver(tracer=EventTracer(capacity=2_000,
                                         types={"l2.access"}))
    run_system("TLC", "mcf", n_refs=10_000, seed=seed, observer=obs)
    return obs


def main() -> None:
    print("=== 1. Metrics registry: every measurement has a dotted name ===")
    obs = observed_run(seed=7)
    snapshot = obs.manifest.metrics
    for name in ("l2.hits", "l2.misses", "l2.bank00.occupancy",
                 "link.pair00.req.bits_sent"):
        print(f"  {name:28s} = {snapshot.get(name)}")
    latency = snapshot["l2.lookup_latency"]
    print(f"  l2.lookup_latency            = count={latency['count']} "
          f"mean={latency['mean']:.1f} min={latency['min']} "
          f"max={latency['max']}")
    print(f"  ({len(snapshot)} metrics total, sorted, JSON-ready)")

    print("\n=== 2. Event trace: the newest l2.access events, as JSONL ===")
    summary = obs.tracer.summary()
    print(f"  captured {summary['events']} of "
          f"{summary['events'] + summary['dropped']} matching events "
          f"(ring capacity {summary['capacity']}); "
          f"{summary['filtered']} other event(s) filtered out")
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "t.jsonl")
        obs.tracer.write_jsonl(trace_path)
        tail = read_jsonl(trace_path)[-2:]
        for event in tail:
            print(f"  {event.as_dict()}")

        print("\n=== 3. Manifests: what changed between two seeds? ===")
        manifest_path = os.path.join(tmp, "seed7.json")
        save_manifest(manifest_path, obs.manifest)
        reloaded = load_manifest(manifest_path)
        assert reloaded == obs.manifest  # lossless round trip

        other = observed_run(seed=8)
        rows = diff_manifests(reloaded, other.manifest)
    print(f"  {len(rows)} field(s) differ; the interesting ones:")
    for name, a, b in rows:
        if name in ("seed", "config.seed", "metrics.l2.hits",
                    "metrics.l2.misses", "result.cycles"):
            print(f"  {name:20s} {a!r} -> {b!r}")
    print("  (same code_version, same config except the seed — so every "
          "metric delta\n   above is workload noise, not a code or "
          "configuration change)")


if __name__ == "__main__":
    main()

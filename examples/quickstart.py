#!/usr/bin/env python
"""Quickstart: build a Transmission Line Cache and measure it.

Runs the paper's base TLC design on the mcf-like workload (the benchmark
where TLC shines — a large pointer-chasing footprint that fills the
16 MB cache), prints the headline metrics, and checks the physical
transmission lines the design depends on.

Usage::

    python examples/quickstart.py
"""

from repro import run_system
from repro.tline import TABLE1_LINES, evaluate_link


def main() -> None:
    print("=== Physical layer: are the Table 1 transmission lines usable? ===")
    for geometry in TABLE1_LINES:
        report = evaluate_link(geometry.length)
        print(f"  {geometry.name}: Z0={report.line.z0:5.1f} ohm  "
              f"flight={report.line.flight_time * 1e12:5.1f} ps  "
              f"amplitude={report.amplitude_fraction:.0%} of Vdd  "
              f"pulse width={report.width_fraction:.0%} of a cycle  "
              f"-> {'USABLE' if report.usable else 'REJECTED'} "
              f"({report.latency_cycles} cycle link)")

    print("\n=== System layer: TLC vs the NUCA baselines on mcf ===")
    results = {}
    for design in ("SNUCA2", "DNUCA", "TLC"):
        results[design] = run_system(design, "mcf", n_refs=20_000)

    baseline = results["SNUCA2"].cycles
    for design, r in results.items():
        print(f"  {design:7s}: normalized time={r.cycles / baseline:5.2f}  "
              f"mean lookup={r.mean_lookup_latency:5.1f} cycles  "
              f"predictable lookups={r.predictable_lookup_fraction:4.0%}  "
              f"banks/request={r.banks_accessed_per_request:.2f}  "
              f"network power={r.network_power_w * 1000:5.0f} mW")

    tlc = results["TLC"]
    print(f"\nTLC reached {tlc.l2_requests} L2 requests at IPC "
          f"{tlc.ipc:.2f}; every lookup completed within its statically "
          f"predicted 10-16 cycle window "
          f"{tlc.predictable_lookup_fraction:.0%} of the time.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Simulation-as-a-service tour: submit a grid job, poll it, fetch
artifacts (see docs/SERVICE.md).

Talks to a running ``repro serve`` endpoint — or, with no endpoint
given, boots an in-process server on a free port first, so the example
is self-contained::

    python examples/service_client.py                     # self-hosted
    python examples/service_client.py http://127.0.0.1:8765   # external
    python examples/service_client.py --result-out result.json

The script submits one small SNUCA2-vs-TLC grid, waits for it, prints
the normalized-execution-time table the result document carries, and
re-fetches the ``grid.normalized`` derived artifact by content key.
The final ``cells simulated: N`` line is the dedupe contract the CI
smoke job asserts on: run the script twice against one ``--cache-dir``
(or one external server) and the second run prints ``cells
simulated: 0``.
"""

import argparse
import json
import sys
import threading

#: Small on purpose: two designs x two benchmarks at a few thousand
#: references finishes in seconds yet exercises the full pipeline.
JOB_SPEC = {
    "designs": ["SNUCA2", "TLC"],
    "benchmarks": ["gcc", "mcf"],
    "n_refs": 4_000,
}


def self_hosted_server(cache_dir):
    """An in-process service for endpoint-less runs; returns
    (base_url, shutdown callable)."""
    from repro.service import JobStore, make_server

    derived_dir = None
    if cache_dir:
        import os

        derived_dir = os.path.join(cache_dir, "derived")
    store = JobStore(cache=cache_dir, derived=derived_dir, workers=2)
    server = make_server(store)
    threading.Thread(target=server.serve_forever, daemon=True).start()

    def shutdown():
        server.shutdown()
        server.server_close()
        store.close()

    return f"http://127.0.0.1:{server.server_address[1]}", shutdown


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("endpoint", nargs="?",
                        help="a running repro serve URL; omitted = boot "
                             "an in-process server")
    parser.add_argument("--cache-dir",
                        help="result-cache directory for the self-hosted "
                             "server (two runs sharing it dedupe)")
    parser.add_argument("--result-out", metavar="FILE",
                        help="write the frozen result bytes to FILE")
    args = parser.parse_args(argv)

    from repro.service import ServiceClient

    shutdown = None
    endpoint = args.endpoint
    if endpoint is None:
        endpoint, shutdown = self_hosted_server(args.cache_dir)
        print(f"self-hosted service on {endpoint}")

    try:
        # retries=5: ride out 429 over_capacity / 503 draining answers
        # from a loaded server with capped exponential backoff that
        # honors the Retry-After header (docs/SERVICE.md).
        client = ServiceClient(endpoint, retries=5)
        health = client.healthz()
        print(f"healthz: ok={health['ok']} workers={health['workers']}")

        print(f"\nsubmitting: {json.dumps(JOB_SPEC)}")
        submitted = client.submit(JOB_SPEC)
        print(f"job {submitted['id']} "
              f"(deduplicated={submitted['deduplicated']})")

        status = client.wait(submitted["id"], timeout_s=300)
        cells = status["cells"]
        print(f"state: {status['state']} — {cells['done']}/{cells['total']} "
              f"cells done in {status['wall_time_s']}s")

        result_bytes = client.result_bytes(submitted["id"])
        result = json.loads(result_bytes)
        print("\n" + result["normalized_time"]["rendered"])

        key = result["artifacts"]["grid.normalized"]
        artifact = client.artifact(key)
        print(f"artifact {key[:16]}… served from the "
              f"{artifact['lane']} lane")

        warm = [name for name, entry in result["sections"].items()
                if entry["warm"]]
        print(f"report sections this grid can answer: "
              f"{sorted(result['sections'])} (warm: {warm or 'none'})")

        if args.result_out:
            with open(args.result_out, "wb") as handle:
                handle.write(result_bytes)
            print(f"result bytes written to {args.result_out}")

        # The line the CI smoke job greps: cells simulated *by this
        # submission*.  A deduplicated submission enqueued no work (the
        # status above shows the original job's counters); a fresh job
        # over a warm result cache answers every cell from disk.
        # Either dedupe layer therefore prints 0.
        simulated = 0 if submitted["deduplicated"] else cells["simulated"]
        print(f"\ncells simulated: {simulated}")
        return 0
    finally:
        if shutdown is not None:
            shutdown()


if __name__ == "__main__":
    sys.exit(main())

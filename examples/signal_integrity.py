#!/usr/bin/env python
"""Signal-integrity exploration of on-chip transmission lines.

Walks the physical-evaluation flow of Section 5: extract RLC for a wire
geometry, propagate a 10 GHz pulse, and grade the received signal
against the paper's criteria (>= 75 % of Vdd, >= 40 % of the cycle
time).  Then sweeps line length to find how far each Table 1 geometry
class can actually signal, and where the dynamic-power crossover
against conventional repeated wires lands.

Usage::

    python examples/signal_integrity.py
"""

import dataclasses

from repro.tech import TECH_45NM
from repro.tline import (
    TABLE1_LINES,
    crossover_length,
    evaluate_link,
    extract,
    transmission_line_energy_per_bit,
)
from repro.tline.power import conventional_energy_per_bit


def sweep_reach(geometry) -> float:
    """Longest run (cm) at which this cross-section still passes."""
    reach = 0.0
    length = 0.004
    while length <= 0.020:
        probe = dataclasses.replace(geometry, length=length)
        if evaluate_link(length, geometry=probe).usable:
            reach = length
        length += 0.001
    return reach * 100


def main() -> None:
    print("=== Table 1 geometry classes at 10 GHz ===")
    for geometry in TABLE1_LINES:
        line = extract(geometry)
        report = evaluate_link(geometry.length)
        print(f"\n{geometry.name}  (W={geometry.width * 1e6:.1f} um, "
              f"S={geometry.spacing * 1e6:.1f} um, T={geometry.thickness * 1e6:.1f} um)")
        print(f"  C = {line.c_per_m * 1e12:6.1f} pF/m   "
              f"L = {line.l_per_m * 1e9:6.1f} nH/m   Z0 = {line.z0:5.1f} ohm")
        print(f"  R(dc) = {line.r_dc_per_m / 100:5.1f} ohm/cm   "
              f"R(5 GHz) = {float(line.r_per_m(5e9)) / 100:5.1f} ohm/cm "
              f"(skin effect)")
        print(f"  flight = {line.flight_time * 1e12:5.1f} ps over "
              f"{geometry.length * 100:.1f} cm "
              f"({line.velocity / 2.998e8:.2f} c)")
        print(f"  received: {report.amplitude_fraction:.0%} of Vdd, "
              f"width {report.width_fraction:.0%} of a cycle -> "
              f"{'PASS' if report.usable else 'FAIL'}")
        print(f"  maximum usable run for this cross-section: "
              f"{sweep_reach(geometry):.1f} cm")

    print("\n=== Dynamic power: transmission line vs repeated RC wire ===")
    line = extract(TABLE1_LINES[-1])
    cross_cm = crossover_length(line.z0) * 100
    print(f"  matched-source TL energy: "
          f"{transmission_line_energy_per_bit(line.z0) * 1e12:.2f} pJ/bit "
          f"(independent of length)")
    for cm in (0.25, 0.5, 1.0, 1.3, 2.0):
        conv = conventional_energy_per_bit(cm / 100) * 1e12
        print(f"  repeated wire at {cm:4.2f} cm: {conv:6.2f} pJ/bit")
    print(f"  -> crossover at {cross_cm:.2f} cm: beyond this, the "
          f"transmission line is cheaper per bit (paper Section 6.1).")

    print(f"\nAll signalling uses Vdd = {TECH_45NM.vdd} V at "
          f"{TECH_45NM.frequency_hz / 1e9:.0f} GHz with source-terminated "
          f"voltage-mode drivers and full-wave receiver reflection.")


if __name__ == "__main__":
    main()

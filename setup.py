"""Setuptools entry point.

Metadata lives in setup.cfg.  The project deliberately avoids a
pyproject.toml: its presence makes pip use PEP 517 build isolation,
which tries to download setuptools/wheel and therefore breaks
``pip install -e .`` in fully offline environments.  The legacy
setup.cfg path installs everywhere.
"""

from setuptools import setup

setup()

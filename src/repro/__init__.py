"""repro: a reproduction of "TLC: Transmission Line Caches"
(Beckmann & Wood, MICRO-36, 2003).

The package implements the paper's Transmission Line Cache family and
everything it is evaluated against and on top of:

* :mod:`repro.core` — the TLC designs (base + three optimized variants).
* :mod:`repro.nuca` — the SNUCA2 and DNUCA baselines (Kim et al.).
* :mod:`repro.tline` — on-chip transmission-line physics (extraction,
  pulse propagation, signalling criteria, power).
* :mod:`repro.cache`, :mod:`repro.interconnect` — cache and network
  substrates shared by all designs.
* :mod:`repro.area` — area / access-time / transistor models.
* :mod:`repro.sim` — the event/resource timing kernel, processor and
  memory models, and the ``run_system`` experiment entry point.
* :mod:`repro.workloads` — the twelve calibrated synthetic benchmarks.
* :mod:`repro.analysis` — the table/figure regeneration harness.

Quick start::

    from repro import run_system
    result = run_system("TLC", "mcf", n_refs=20_000)
    print(result.mean_lookup_latency, result.ipc)
"""

from repro.tech import Technology, TECH_45NM
from repro.core.config import (
    DESIGNS,
    build_design,
    design_names,
    get_design,
)
from repro.sim.system import System, SystemResult, run_system
from repro.workloads.profiles import PROFILES, benchmark_names, get_profile

__version__ = "1.0.0"

__all__ = [
    "Technology",
    "TECH_45NM",
    "DESIGNS",
    "build_design",
    "design_names",
    "get_design",
    "System",
    "SystemResult",
    "run_system",
    "PROFILES",
    "benchmark_names",
    "get_profile",
    "__version__",
]

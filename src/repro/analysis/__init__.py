"""Experiment harness: grids, paper tables, figures, reports, sweeps."""

from repro.analysis.experiments import (
    ExperimentGrid,
    MAIN_DESIGNS,
    TLC_FAMILY,
    run_benchmark_suite,
    run_design_grid,
)
from repro.analysis.tables import (
    PAPER_TABLE2,
    PAPER_TABLE6,
    PAPER_TABLE7,
    PAPER_TABLE8,
    PAPER_TABLE9,
    PAPER_FIG5_SHAPE,
    format_table,
)
from repro.analysis.figures import (
    grouped_bar_chart,
    horizontal_bar,
    latency_histogram_sparkline,
)
from repro.analysis.report import build_report
from repro.analysis.runner import (
    CellSpec,
    ResultCache,
    cache_key,
    code_version_stamp,
    execute_cells,
    run_cell,
    run_grid,
)
from repro.analysis.sweeps import (
    dependence_sweep,
    frequency_sweep,
    memory_latency_sweep,
)

__all__ = [
    "ExperimentGrid",
    "MAIN_DESIGNS",
    "TLC_FAMILY",
    "run_benchmark_suite",
    "run_design_grid",
    "PAPER_TABLE2",
    "PAPER_TABLE6",
    "PAPER_TABLE7",
    "PAPER_TABLE8",
    "PAPER_TABLE9",
    "PAPER_FIG5_SHAPE",
    "format_table",
    "grouped_bar_chart",
    "horizontal_bar",
    "latency_histogram_sparkline",
    "build_report",
    "CellSpec",
    "ResultCache",
    "cache_key",
    "code_version_stamp",
    "execute_cells",
    "run_cell",
    "run_grid",
    "dependence_sweep",
    "frequency_sweep",
    "memory_latency_sweep",
]

"""Optimization-only cache lane for derived analysis artifacts.

:mod:`repro.analysis.runner` caches *raw* grid cells (the authoritative
lane: simulation results, content-addressed by every simulation input).
This module adds the second lane ROADMAP item 4 calls for: **derived**
artifacts — table row data, figure datasets, rendered report sections,
sweep outputs — fingerprinted by

* the **result-cache keys of every contributing cell** (which already
  embed the code-version stamp and every simulation input),
* the explicit :data:`ANALYSIS_VERSION` constant (bumped by hand when
  analysis/rendering logic changes in a way the code stamp alone should
  not be trusted to describe),
* the package :func:`~repro.obs.manifest.code_version_stamp` (so purely
  analytic artifacts with *no* contributing cells — Table 7's area
  model, the signal-integrity table — still invalidate on any edit),
* the artifact ``kind`` and its renderer ``params``.

Lane semantics follow the derived-cache plan this design is modeled on:
the lane is **never authoritative**.  Losing it costs recomputation,
never correctness; a corrupt entry is quarantined (same discipline as
:class:`~repro.analysis.runner.ResultCache`) and the artifact is
recomputed from its inputs.  Artifacts are JSON documents under
``<root>/<key[:2]>/<key>.json`` with a per-entry integrity digest.

:class:`DerivedLane` is the high-level interface the report builder,
the grid CLI, and the sweeps use: ``lane.get_or_compute(kind, keys,
params, compute)`` answers warm artifacts without calling ``compute``
and records ``analysis.derived.*`` counters that can be mounted on a
:class:`~repro.obs.registry.MetricsRegistry` and embedded in a
:class:`~repro.obs.manifest.RunManifest` (its ``derived`` field).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Optional, Union

from repro.obs.manifest import code_version_stamp
from repro.sim.stats import Counter

#: Explicit derived-algorithm version.  Bump whenever a dataset builder
#: or renderer changes meaning in a way that must invalidate previously
#: cached artifacts (the code-version stamp also rotates on any edit;
#: this constant is the belt to that suspender, and the one knob tests
#: and emergency rollbacks can turn without touching source digests).
ANALYSIS_VERSION = 1

#: Bump when the on-disk entry layout (not the artifacts) changes.
DERIVED_FORMAT_VERSION = 1


def derived_key(kind: str, cell_keys: Iterable[str],
                params: Optional[Dict[str, Any]] = None,
                analysis_version: Optional[int] = None) -> str:
    """Content fingerprint of one derived artifact.

    ``cell_keys`` are the result-cache keys (or content fingerprints —
    see :meth:`~repro.analysis.experiments.ExperimentGrid.cell_keys`)
    of every cell the artifact was derived from, order-insensitive.
    ``params`` captures renderer parameters (widths, baselines,
    ``n_refs`` preambles) that change the artifact without changing its
    inputs.  If *any* component changes, the key changes and the stale
    entry is simply never seen again.
    """
    payload = {
        "kind": kind,
        "cell_keys": sorted(cell_keys),
        "analysis_version": (ANALYSIS_VERSION if analysis_version is None
                             else analysis_version),
        "code_version": code_version_stamp(),
        "derived_format": DERIVED_FORMAT_VERSION,
        "params": params or {},
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class DerivedCache:
    """Content-addressed on-disk cache of derived analysis artifacts.

    Same layout and integrity discipline as
    :class:`~repro.analysis.runner.ResultCache` — one JSON file per
    entry under ``<root>/<key[:2]>/<key>.json``, atomic writes, a
    SHA-256 integrity digest verified on every read, and quarantine
    (``<root>/quarantine/``) instead of crashes for anything
    untrustworthy — but holding arbitrary JSON artifacts instead of
    :class:`~repro.sim.system.SystemResult` cells, and never treated as
    a source of truth: a miss (or a whole deleted directory) only costs
    recomputation.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def load(self, key: str) -> Any:
        """The verified artifact for ``key``.

        Raises :class:`FileNotFoundError` for an absent entry and
        :class:`~repro.analysis.storage.CacheCorruptionError` for one
        that exists but fails any verification step.
        """
        from repro.analysis.storage import (
            CacheCorruptionError,
            integrity_digest,
        )

        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except FileNotFoundError:
            raise
        except OSError as error:
            raise CacheCorruptionError(
                f"unreadable derived entry {path}: {error}") from error
        try:
            payload = json.loads(raw)
        except ValueError as error:
            raise CacheCorruptionError(
                f"derived entry {path} is not valid JSON (truncated "
                f"write?): {error}") from error
        if not isinstance(payload, dict):
            raise CacheCorruptionError(
                f"derived entry {path} is not a JSON object")
        if payload.get("derived_format") != DERIVED_FORMAT_VERSION:
            raise CacheCorruptionError(
                f"derived entry {path} has format "
                f"{payload.get('derived_format')!r} "
                f"(expected {DERIVED_FORMAT_VERSION})")
        if "artifact" not in payload:
            raise CacheCorruptionError(
                f"derived entry {path} is missing its artifact payload")
        artifact = payload["artifact"]
        if payload.get("integrity") != integrity_digest({"artifact": artifact}):
            raise CacheCorruptionError(
                f"derived entry {path} failed its integrity digest "
                "(bit rot or a hand edit)")
        return artifact

    def get(self, key: str) -> Optional[Any]:
        """The artifact for ``key``, or ``None`` on a miss.

        A corrupt entry is quarantined and reported as a miss, so the
        caller re-derives (and :meth:`put` then heals the entry).  Note
        ``None`` is reserved for misses — artifacts themselves are
        always JSON objects/arrays by convention.
        """
        from repro.analysis.storage import CacheCorruptionError

        try:
            artifact = self.load(key)
        except FileNotFoundError:
            self.misses += 1
            return None
        except CacheCorruptionError:
            self._quarantine(key)
            self.misses += 1
            return None
        self.hits += 1
        return artifact

    def _quarantine(self, key: str) -> None:
        """Move a corrupt entry aside (never leave it to fail again)."""
        path = self.path_for(key)
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.quarantined += 1

    def put(self, key: str, kind: str, artifact: Any) -> None:
        """Store ``artifact`` under ``key`` atomically."""
        from repro.analysis.storage import integrity_digest

        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "derived_format": DERIVED_FORMAT_VERSION,
            "kind": kind,
            "analysis_version": ANALYSIS_VERSION,
            "code_version": code_version_stamp(),
            "integrity": integrity_digest({"artifact": artifact}),
            "artifact": artifact,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
        os.replace(tmp, path)
        self.stores += 1


class DerivedLane:
    """The routing layer between analyses and a :class:`DerivedCache`.

    ``cache=None`` disables the lane: every artifact is computed inline
    and nothing is stored, which keeps all callers on one code path
    whether or not a ``--derived-cache-dir`` was given.  Counters are
    kept regardless, so "how much did the lane save" is always
    reportable; :meth:`register` mounts them on a metrics registry as
    ``analysis.derived.*`` and :meth:`as_dict` is the JSON form a
    :class:`~repro.obs.manifest.RunManifest` embeds as its ``derived``
    provenance field.
    """

    def __init__(self, cache: Optional[DerivedCache] = None) -> None:
        self.cache = cache
        self.counter = Counter()
        for name in ("hits", "misses", "stores", "quarantined", "computed"):
            self.counter.add(name, 0)

    @property
    def enabled(self) -> bool:
        return self.cache is not None

    def get_or_compute(self, kind: str, cell_keys: Iterable[str],
                       params: Optional[Dict[str, Any]],
                       compute: Callable[[], Any]) -> Any:
        """The artifact ``(kind, cell_keys, params)`` names.

        Answered from the cache when warm; otherwise ``compute()`` runs
        and (when the lane is enabled) its JSON-able return value is
        stored for next time.  The lane is optimization-only: a
        disabled or cold lane and a warm lane return equal artifacts —
        modulo JSON round-tripping, which is why artifacts are required
        to be JSON-able (tuples come back as lists; callers that care
        re-tuple).
        """
        if self.cache is None:
            self.counter.add("computed")
            return compute()
        key = derived_key(kind, cell_keys, params)
        quarantined_before = self.cache.quarantined
        artifact = self.cache.get(key)
        self.counter.add("quarantined",
                         self.cache.quarantined - quarantined_before)
        if artifact is not None:
            self.counter.add("hits")
            return artifact
        self.counter.add("misses")
        artifact = compute()
        self.counter.add("computed")
        self.cache.put(key, kind, artifact)
        self.counter.add("stores")
        return artifact

    # -- observability -----------------------------------------------------
    def register(self, registry) -> None:
        """Mount the lane counters on ``registry`` as ``analysis.derived.*``."""
        registry.register("analysis.derived", self.counter)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready lane provenance for a run manifest."""
        doc: Dict[str, Any] = {"enabled": self.enabled,
                               "analysis_version": ANALYSIS_VERSION}
        doc.update(self.counter.as_dict())
        if self.cache is not None:
            doc["root"] = str(self.cache.root)
        return doc

    def summary(self) -> str:
        """One human line for the CLI footers."""
        counts = self.counter.as_dict()
        if not self.enabled:
            return (f"derived cache: disabled "
                    f"({counts['computed']} artifact(s) computed inline)")
        quarantine_note = (f", {counts['quarantined']} quarantined"
                          if counts["quarantined"] else "")
        return (f"derived cache: {counts['hits']} hit(s), "
                f"{counts['misses']} miss(es), {counts['stores']} "
                f"store(s){quarantine_note} under {self.cache.root}")


def as_lane(derived: Union[DerivedLane, DerivedCache, str, os.PathLike, None],
            ) -> DerivedLane:
    """Coerce a lane argument (directory path, cache, or lane) to a lane.

    ``None`` yields a disabled lane, so call sites never branch.
    """
    if isinstance(derived, DerivedLane):
        return derived
    if derived is None:
        return DerivedLane(None)
    if isinstance(derived, DerivedCache):
        return DerivedLane(derived)
    return DerivedLane(DerivedCache(derived))

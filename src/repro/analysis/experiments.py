"""Grid-runner utilities shared by the benchmark harnesses.

The paper's evaluation is a (design x benchmark) grid; these helpers run
it with a *shared trace per benchmark* (so every design sees the
identical reference stream, like the paper's identical checkpoints) and
return the per-cell :class:`~repro.sim.system.SystemResult` objects.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from repro.sim.processor import ProcessorConfig
from repro.sim.system import SystemResult, run_system
from repro.workloads.profiles import benchmark_names, get_profile
from repro.workloads.synthetic import generate_trace

#: The three designs of Figure 5 / Figure 6 / Table 9.
MAIN_DESIGNS: Tuple[str, ...] = ("SNUCA2", "DNUCA", "TLC")

#: The TLC family of Figure 7 / Figure 8.
TLC_FAMILY: Tuple[str, ...] = ("TLC", "TLCopt1000", "TLCopt500", "TLCopt350")


@dataclasses.dataclass(frozen=True)
class ExperimentGrid:
    """Results of a (design x benchmark) sweep."""

    designs: Tuple[str, ...]
    benchmarks: Tuple[str, ...]
    results: Dict[Tuple[str, str], SystemResult]  # (design, benchmark) -> result

    def result(self, design: str, benchmark: str) -> SystemResult:
        return self.results[(design, benchmark)]

    def normalized_execution_time(self, design: str, benchmark: str,
                                  baseline: str = "SNUCA2") -> float:
        """Execution time relative to ``baseline`` (Fig. 5 / Fig. 8)."""
        base = self.results[(baseline, benchmark)].cycles
        if base == 0:
            return 0.0
        return self.results[(design, benchmark)].cycles / base


def run_design_grid(designs: Sequence[str] = MAIN_DESIGNS,
                    benchmarks: Optional[Sequence[str]] = None,
                    n_refs: int = 30_000, seed: int = 7,
                    warmup_fraction: float = 0.3,
                    processor_config: Optional[ProcessorConfig] = None,
                    ) -> ExperimentGrid:
    """Run every design on every benchmark, one shared trace per benchmark."""
    if benchmarks is None:
        benchmarks = benchmark_names()
    results: Dict[Tuple[str, str], SystemResult] = {}
    for benchmark in benchmarks:
        profile = get_profile(benchmark)
        trace = generate_trace(profile.spec, n_refs, seed=seed)
        for design in designs:
            results[(design, benchmark)] = run_system(
                design, benchmark, trace=trace,
                warmup_fraction=warmup_fraction,
                processor_config=processor_config,
            )
    return ExperimentGrid(tuple(designs), tuple(benchmarks), results)


def run_benchmark_suite(design: str, benchmarks: Optional[Sequence[str]] = None,
                        n_refs: int = 30_000, seed: int = 7) -> Dict[str, SystemResult]:
    """Run one design across the benchmark suite."""
    if benchmarks is None:
        benchmarks = benchmark_names()
    return {
        benchmark: run_system(design, benchmark, n_refs=n_refs, seed=seed)
        for benchmark in benchmarks
    }

"""Grid-runner utilities shared by the benchmark harnesses.

The paper's evaluation is a (design x benchmark) grid; these helpers run
it with a *shared trace per benchmark* (so every design sees the
identical reference stream, like the paper's identical checkpoints) and
return the per-cell :class:`~repro.sim.system.SystemResult` objects.

Execution is delegated to :mod:`repro.analysis.runner`: pass
``workers > 1`` to fan cells out over processes and ``cache`` (a
directory path or :class:`~repro.analysis.runner.ResultCache`) to reuse
previously simulated cells across calls and sessions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from repro.sim.processor import ProcessorConfig
from repro.sim.system import SystemResult

#: The three designs of Figure 5 / Figure 6 / Table 9.
MAIN_DESIGNS: Tuple[str, ...] = ("SNUCA2", "DNUCA", "TLC")

#: The TLC family of Figure 7 / Figure 8.
TLC_FAMILY: Tuple[str, ...] = ("TLC", "TLCopt1000", "TLCopt500", "TLCopt350")


@dataclasses.dataclass(frozen=True)
class ExperimentGrid:
    """Results of a (design x benchmark) sweep."""

    designs: Tuple[str, ...]
    benchmarks: Tuple[str, ...]
    results: Dict[Tuple[str, str], SystemResult]  # (design, benchmark) -> result
    #: per-cell execution provenance from the runner —
    #: ``{"wall_time_s", "from_cache", "l2_hits", "l2_misses"}`` per
    #: ``(design, benchmark)``.  Runtime-only and excluded from
    #: equality: it describes how the grid was *obtained* (timings,
    #: cache hits), not what was measured, so saved/loaded and
    #: cached/recomputed grids still compare equal.  ``None`` for grids
    #: loaded from disk or built by hand.
    cell_meta: Optional[Dict[Tuple[str, str], dict]] = dataclasses.field(
        default=None, compare=False)

    def cell_keys(self, designs: Optional[Sequence[str]] = None,
                  benchmarks: Optional[Sequence[str]] = None,
                  ) -> Tuple[str, ...]:
        """Provenance keys of the cells in a (designs x benchmarks) slice.

        The sorted per-cell fingerprints the derived-artifact lane
        (:mod:`repro.analysis.derived`) keys figures/tables/report
        sections by.  Grids produced by the runner carry each cell's
        result-cache key in :attr:`cell_meta` (it embeds every
        simulation input plus the code-version stamp); grids loaded
        from disk or built by hand have no runner provenance, so their
        cells fall back to a ``content:``-prefixed digest of the result
        payload itself — a different namespace, but equally a pure
        function of what the cell holds, so derived artifacts stay
        correct either way (a warm entry can only be reused when the
        contributing data is identical).
        """
        designs = self.designs if designs is None else tuple(designs)
        benchmarks = self.benchmarks if benchmarks is None else tuple(benchmarks)
        keys = []
        for design in designs:
            for benchmark in benchmarks:
                meta = (self.cell_meta or {}).get((design, benchmark))
                if meta is not None and meta.get("cache_key"):
                    keys.append(meta["cache_key"])
                    continue
                from repro.analysis.storage import (
                    integrity_digest,
                    result_to_dict,
                )

                digest = integrity_digest(
                    result_to_dict(self.result(design, benchmark)))
                keys.append(f"content:{digest}")
        return tuple(sorted(keys))

    def result(self, design: str, benchmark: str) -> SystemResult:
        try:
            return self.results[(design, benchmark)]
        except KeyError:
            raise KeyError(
                f"no result for cell (design={design!r}, "
                f"benchmark={benchmark!r}); this grid holds designs "
                f"{list(self.designs)} and benchmarks "
                f"{list(self.benchmarks)}") from None

    def normalized_execution_time(self, design: str, benchmark: str,
                                  baseline: str = "SNUCA2") -> float:
        """Execution time relative to ``baseline`` (Fig. 5 / Fig. 8)."""
        base = self.result(baseline, benchmark).cycles
        if base == 0:
            return 0.0
        return self.result(design, benchmark).cycles / base


def run_design_grid(designs: Sequence[str] = MAIN_DESIGNS,
                    benchmarks: Optional[Sequence[str]] = None,
                    n_refs: int = 30_000, seed: int = 7,
                    warmup_fraction: float = 0.3,
                    processor_config: Optional[ProcessorConfig] = None,
                    workers: int = 1,
                    cache=None,
                    policy=None, checkpoint=None, fault_plan=None,
                    telemetry=None, sanitize: bool = False,
                    backend: str = "reference",
                    ) -> ExperimentGrid:
    """Run every design on every benchmark, one shared trace per benchmark.

    ``workers`` and ``cache`` are forwarded to
    :func:`repro.analysis.runner.run_grid`; the default (serial,
    uncached) path is cell-for-cell identical to both.  ``policy`` /
    ``checkpoint`` / ``fault_plan`` / ``telemetry`` opt into the
    fault-tolerant executor (:mod:`repro.analysis.resilience`).
    ``backend`` selects the simulation backend for every cell.
    """
    from repro.analysis.runner import run_grid

    return run_grid(designs=designs, benchmarks=benchmarks, n_refs=n_refs,
                    seed=seed, warmup_fraction=warmup_fraction,
                    processor_config=processor_config,
                    workers=workers, cache=cache,
                    policy=policy, checkpoint=checkpoint,
                    fault_plan=fault_plan, telemetry=telemetry,
                    sanitize=sanitize, backend=backend)


def run_benchmark_suite(design: str, benchmarks: Optional[Sequence[str]] = None,
                        n_refs: int = 30_000, seed: int = 7,
                        warmup_fraction: float = 0.3,
                        processor_config: Optional[ProcessorConfig] = None,
                        workers: int = 1,
                        cache=None,
                        policy=None, checkpoint=None, fault_plan=None,
                        telemetry=None, sanitize: bool = False,
                        backend: str = "reference",
                        ) -> Dict[str, SystemResult]:
    """Run one design across the benchmark suite.

    Accepts the same ``warmup_fraction`` / ``processor_config`` /
    ``sanitize`` as :func:`run_design_grid`, so a suite run is
    comparable cell-for-cell with grid cells (and shares their cache
    entries — ``sanitize`` is part of the cell cache key, so it must
    reach the runner or sanitized suite and grid runs would compute
    under one key and look each other up under another).
    """
    from repro.analysis.runner import run_grid

    grid = run_grid(designs=(design,), benchmarks=benchmarks, n_refs=n_refs,
                    seed=seed, warmup_fraction=warmup_fraction,
                    processor_config=processor_config,
                    workers=workers, cache=cache,
                    policy=policy, checkpoint=checkpoint,
                    fault_plan=fault_plan, telemetry=telemetry,
                    sanitize=sanitize, backend=backend)
    return {benchmark: grid.result(design, benchmark)
            for benchmark in grid.benchmarks}

"""Terminal-friendly figure rendering (ASCII bar charts) and the pure
dataset builders behind the paper's Figures 5-8.

The paper's Figures 5-8 are grouped bar charts; the rendering helpers
draw the same data in a terminal so the benchmark harnesses and the
CLI can show the figure, not just its table.  Pure string formatting —
no plotting dependencies.

The ``figure*_dataset`` builders extract each figure's rows from an
:class:`~repro.analysis.experiments.ExperimentGrid` (duck-typed; only
``result`` / ``normalized_execution_time`` / ``benchmarks`` are used)
as JSON-able lists of lists.  They are the ``(grid slice) -> dataset``
half of the report pipeline: datasets round-trip through the
derived-artifact cache lane (:mod:`repro.analysis.derived`), so they
must contain only JSON scalars and lists — renderers receive exactly
what JSON gives back.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def figure5_dataset(grid, designs: Sequence[str] = ("DNUCA", "TLC"),
                    baseline: str = "SNUCA2") -> List[list]:
    """Figure 5 rows: ``[benchmark, <normalized time per design>...]``."""
    return [[bench] + [round(grid.normalized_execution_time(d, bench,
                                                            baseline), 3)
                       for d in designs]
            for bench in grid.benchmarks]


def figure6_dataset(grid, designs: Sequence[str] = ("DNUCA", "TLC"),
                    ) -> List[list]:
    """Figure 6 rows: ``[benchmark, <mean lookup latency per design>...]``."""
    return [[bench] + [round(grid.result(d, bench).mean_lookup_latency, 1)
                       for d in designs]
            for bench in grid.benchmarks]


def figure7_dataset(grid, designs: Sequence[str]) -> List[list]:
    """Figure 7 rows: ``[benchmark, <link utilization per design>...]``."""
    return [[bench] + [grid.result(d, bench).link_utilization
                       for d in designs]
            for bench in grid.benchmarks]


def figure8_dataset(grid, designs: Sequence[str],
                    baseline: str = "SNUCA2") -> List[list]:
    """Figure 8 rows: ``[benchmark, <normalized time per design>...]``."""
    return [[bench] + [round(grid.normalized_execution_time(d, bench,
                                                            baseline), 3)
                       for d in designs]
            for bench in grid.benchmarks]


#: glyph cycle for the series of a grouped chart.
_SERIES_GLYPHS = "#*+o@%"


def horizontal_bar(value: float, scale: float, width: int,
                   glyph: str = "#") -> str:
    """A single bar of ``value`` out of ``scale``, at most ``width`` glyphs."""
    if scale <= 0:
        return ""
    filled = int(round(min(value / scale, 1.0) * width))
    return glyph * filled


def grouped_bar_chart(series: Mapping[str, Mapping[str, float]],
                      categories: Sequence[str],
                      title: str = "",
                      width: int = 40,
                      value_format: str = "{:.2f}",
                      scale: Optional[float] = None,
                      reference_line: Optional[float] = None) -> str:
    """Render ``series[name][category]`` as grouped horizontal bars.

    ``reference_line`` draws a marker at that value (e.g. the SNUCA2
    normalization at 1.0 in Figures 5 and 8).
    """
    if not series:
        raise ValueError("need at least one series")
    if not categories:
        raise ValueError("need at least one category")
    names = list(series)
    values = [series[name].get(category, 0.0)
              for name in names for category in categories]
    chart_scale = scale if scale is not None else max(values + [1e-12])

    label_width = max(len(c) for c in categories)
    name_width = max(len(n) for n in names)
    lines: List[str] = []
    if title:
        lines.append(title)
    for category in categories:
        for i, name in enumerate(names):
            value = series[name].get(category, 0.0)
            glyph = _SERIES_GLYPHS[i % len(_SERIES_GLYPHS)]
            bar = horizontal_bar(value, chart_scale, width, glyph)
            if reference_line is not None and 0 < reference_line <= chart_scale:
                marker = int(round(reference_line / chart_scale * width))
                padded = list(bar.ljust(width))
                if 0 <= marker < width and padded[marker] == " ":
                    padded[marker] = "|"
                bar = "".join(padded).rstrip()
            prefix = category.rjust(label_width) if i == 0 else " " * label_width
            lines.append(
                f"{prefix}  {name.ljust(name_width)} "
                f"{value_format.format(value):>7} {bar}"
            )
        lines.append("")
    legend = "  ".join(
        f"{_SERIES_GLYPHS[i % len(_SERIES_GLYPHS)]}={name}"
        for i, name in enumerate(names))
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def latency_histogram_sparkline(histogram, width: int = 60,
                                title: str = "") -> str:
    """Render a :class:`~repro.sim.stats.Histogram` as a density strip.

    Buckets the histogram into ``width`` latency columns and shades each
    by mass — a quick visual of lookup-latency concentration (TLC's is a
    single spike; DNUCA's spreads).
    """
    # Sort defensively: Histogram.items() is sorted, but manifest bins
    # and hand-built mappings come back in insertion order, and an
    # unsorted view would put low/high at arbitrary values and drive
    # the bucket index negative or past the strip.
    items = sorted(histogram.items())
    if not items:
        return (title + "\n" if title else "") + "(empty histogram)"
    low = items[0][0]
    high = items[-1][0]
    span = max(1, high - low + 1)
    buckets = [0] * min(width, span)
    for value, count in items:
        index = (value - low) * len(buckets) // span
        buckets[index] += count
    peak = max(buckets)
    shades = " .:-=+*#%@"
    strip = "".join(
        shades[min(len(shades) - 1, (b * (len(shades) - 1)) // peak)]
        for b in buckets)
    header = f"{title}\n" if title else ""
    return (f"{header}[{low:>4} cycles] {strip} [{high} cycles]  "
            f"peak={peak} mean={histogram.mean:.1f}")

"""Performance benchmarking: timing harness, suite, and BENCH documents.

See :mod:`repro.analysis.perf.harness` for the methodology and the
BENCH JSON schema, :mod:`repro.analysis.perf.suite` for the benchmark
definitions, and ``docs/PERFORMANCE.md`` for the workflow (including
the CI perf gate this package backs).
"""

from repro.analysis.perf.harness import (
    CALIBRATION_BENCHMARK,
    FORMAT_VERSION,
    BenchResult,
    Comparison,
    bench_document,
    compare_benchmarks,
    default_bench_name,
    load_benchmarks,
    mad,
    measure,
    median,
    pin_process,
    save_benchmarks,
    validate_benchmarks,
)
from repro.analysis.perf.suite import (
    LOOKUP_DESIGNS,
    SUITE,
    benchmark_names,
    run_suite,
)

__all__ = [
    "CALIBRATION_BENCHMARK",
    "FORMAT_VERSION",
    "LOOKUP_DESIGNS",
    "SUITE",
    "BenchResult",
    "Comparison",
    "bench_document",
    "benchmark_names",
    "compare_benchmarks",
    "default_bench_name",
    "load_benchmarks",
    "mad",
    "measure",
    "median",
    "pin_process",
    "run_suite",
    "save_benchmarks",
    "validate_benchmarks",
]

"""Microbenchmark timing harness and the BENCH JSON interchange format.

Methodology
-----------

Every benchmark is a zero-argument callable performing a fixed batch of
work (``meta["inner_ops"]`` operations).  :func:`measure` runs it
``warmup`` times untimed, then ``reps`` times under
:func:`time.perf_counter_ns`, and reports the **median** and the
**median absolute deviation** (MAD) of the rep timings.  Medians are
robust to the occasional scheduler preemption that poisons means; the
MAD is the matching robust spread estimate.  Where the platform allows
it the process is pinned to a single CPU first (:func:`pin_process`),
which removes cross-core migration noise.

BENCH documents
---------------

Results serialize to a ``BENCH_<rev>.json`` document (``<rev>`` is the
first 12 hex digits of the code version stamp)::

    {
      "format_version": 1,
      "code_version": "<sha-256 of every repro/*.py source>",
      "python": "3.11.7",
      "platform": "Linux-...",
      "pinned": true,
      "quick": false,
      "benchmarks": {
        "engine.run": {
          "median_ns": 1234567,
          "mad_ns": 890,
          "reps": 9,
          "meta": {"inner_ops": 2000}
        }
      }
    }

The document deliberately carries no timestamps: two runs of identical
code on identical inputs produce byte-identical documents apart from
the timings themselves.

Comparison
----------

:func:`compare_benchmarks` joins a current document against a baseline
and flags any benchmark whose median slowed by more than a threshold.
Because absolute nanoseconds are machine-dependent, ``normalize=True``
rescales by the ``calibration.spin`` benchmark — a fixed pure-Python
spin loop whose timing tracks single-core interpreter speed — so a CI
runner can be compared against a baseline captured on different
hardware.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

FORMAT_VERSION = 1

#: the benchmark used to normalize cross-machine comparisons.
CALIBRATION_BENCHMARK = "calibration.spin"


@dataclass(frozen=True)
class BenchResult:
    """Robust timing summary of one benchmark."""

    median_ns: int
    mad_ns: int
    reps: int
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "median_ns": self.median_ns,
            "mad_ns": self.mad_ns,
            "reps": self.reps,
            "meta": dict(self.meta),
        }


def pin_process(cpu: Optional[int] = None) -> bool:
    """Pin this process to one CPU; returns True when pinning took effect.

    Uses ``os.sched_setaffinity`` where available (Linux); elsewhere the
    call is a no-op returning False and timings simply carry a little
    more scheduler noise.
    """
    if not hasattr(os, "sched_setaffinity"):
        return False
    try:
        allowed = sorted(os.sched_getaffinity(0))
        if not allowed:
            return False
        target = cpu if cpu is not None else allowed[0]
        os.sched_setaffinity(0, {target})
        return True
    except (OSError, ValueError):
        return False


def median(values: List[int]) -> int:
    """The median of ``values``, as an int (even counts round down)."""
    if not values:
        raise ValueError("median of an empty list")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) // 2


def mad(values: List[int]) -> int:
    """Median absolute deviation from the median, as an int."""
    centre = median(values)
    return median([abs(v - centre) for v in values])


def measure(
    fn: Callable[[], Any],
    reps: int = 9,
    warmup: int = 2,
    meta: Optional[Dict[str, Any]] = None,
) -> BenchResult:
    """Time ``fn`` with warmup and repetition; returns a :class:`BenchResult`.

    ``fn`` is called ``warmup`` times untimed (populating caches,
    triggering lazy allocation, letting the interpreter specialize),
    then ``reps`` times under ``perf_counter_ns``.
    """
    if reps < 1:
        raise ValueError("reps must be at least 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    for _ in range(warmup):
        fn()
    timings: List[int] = []
    timer = time.perf_counter_ns
    for _ in range(reps):
        start = timer()
        fn()
        timings.append(timer() - start)
    return BenchResult(
        median_ns=median(timings),
        mad_ns=mad(timings),
        reps=reps,
        meta=dict(meta) if meta else {},
    )


# -- BENCH documents ---------------------------------------------------------


def bench_document(
    results: Dict[str, BenchResult],
    code_version: str,
    pinned: bool,
    quick: bool,
) -> Dict[str, Any]:
    """Assemble the BENCH JSON document for ``results``."""
    return {
        "format_version": FORMAT_VERSION,
        "code_version": code_version,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "pinned": pinned,
        "quick": quick,
        "benchmarks": {name: results[name].as_dict() for name in sorted(results)},
    }


def default_bench_name(code_version: str) -> str:
    """The conventional file name for a BENCH document."""
    return f"BENCH_{code_version[:12]}.json"


def save_benchmarks(path: str, document: Dict[str, Any]) -> str:
    """Validate and write ``document``; returns the path written.

    When ``path`` is an existing directory the file is named
    ``BENCH_<rev>.json`` inside it.
    """
    validate_benchmarks(document)
    if os.path.isdir(path):
        path = os.path.join(path, default_bench_name(document["code_version"]))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_benchmarks(path: str) -> Dict[str, Any]:
    """Read and validate a BENCH document."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    validate_benchmarks(document)
    return document


def validate_benchmarks(document: Any) -> None:
    """Raise :class:`ValueError` unless ``document`` is a valid BENCH doc."""
    if not isinstance(document, dict):
        raise ValueError("BENCH document must be a JSON object")
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported BENCH format_version: {version!r}")
    code_version = document.get("code_version")
    if not isinstance(code_version, str) or len(code_version) < 12:
        raise ValueError("BENCH document needs a code_version string")
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        raise ValueError("BENCH document needs a non-empty benchmarks map")
    for name, entry in benchmarks.items():
        if not isinstance(entry, dict):
            raise ValueError(f"benchmark {name!r} must be an object")
        for key in ("median_ns", "mad_ns", "reps"):
            value = entry.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"benchmark {name!r}: {key} must be an integer")
        if entry["median_ns"] <= 0:
            raise ValueError(f"benchmark {name!r} median_ns must be positive")
        if entry["mad_ns"] < 0:
            raise ValueError(f"benchmark {name!r} mad_ns must be >= 0")
        if entry["reps"] < 1:
            raise ValueError(f"benchmark {name!r} reps must be >= 1")
        if not isinstance(entry.get("meta"), dict):
            raise ValueError(f"benchmark {name!r} meta must be an object")


# -- comparison --------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """One benchmark's current-vs-baseline verdict."""

    name: str
    baseline_ns: int
    current_ns: int
    ratio: float
    regressed: bool


def compare_benchmarks(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    fail_above_pct: float = 40.0,
    normalize: bool = False,
) -> Tuple[List[Comparison], List[str]]:
    """Join ``current`` against ``baseline`` and flag regressions.

    Returns ``(comparisons, missing)`` where ``missing`` names baseline
    benchmarks absent from the current run.  A benchmark regresses when
    its (optionally calibration-normalized) median slowed by more than
    ``fail_above_pct`` percent.  The calibration benchmark itself is
    never flagged: it *is* the machine-speed probe.
    """
    if fail_above_pct < 0:
        raise ValueError("fail_above_pct must be non-negative")
    scale = 1.0
    if normalize:
        scale = _calibration_scale(current, baseline)
    threshold = 1.0 + fail_above_pct / 100.0
    comparisons: List[Comparison] = []
    current_entries = current["benchmarks"]
    baseline_entries = baseline["benchmarks"]
    for name in sorted(baseline_entries):
        if name not in current_entries:
            continue
        base_ns = baseline_entries[name]["median_ns"]
        cur_ns = current_entries[name]["median_ns"]
        ratio = (cur_ns * scale) / base_ns
        regressed = ratio > threshold and name != CALIBRATION_BENCHMARK
        comparisons.append(
            Comparison(
                name=name,
                baseline_ns=base_ns,
                current_ns=cur_ns,
                ratio=ratio,
                regressed=regressed,
            )
        )
    missing = sorted(set(baseline_entries) - set(current_entries))
    return comparisons, missing


def _calibration_scale(current: Dict[str, Any], baseline: Dict[str, Any]) -> float:
    """baseline-machine-speed / current-machine-speed, from calibration."""
    try:
        base_spin = baseline["benchmarks"][CALIBRATION_BENCHMARK]["median_ns"]
        cur_spin = current["benchmarks"][CALIBRATION_BENCHMARK]["median_ns"]
    except KeyError:
        message = f"normalization needs {CALIBRATION_BENCHMARK!r} in both documents"
        raise ValueError(message) from None
    if base_spin <= 0 or cur_spin <= 0:
        raise ValueError("calibration medians must be positive")
    return base_spin / cur_spin


def main_compare_exit_code(comparisons: List[Comparison]) -> int:
    """0 when nothing regressed, 1 otherwise (the CLI's contract)."""
    return 1 if any(c.regressed for c in comparisons) else 0


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    sys.exit("use `python -m repro perf` instead")

"""The repro microbenchmark suite.

Each benchmark exercises one layer of the simulator on a fixed,
deterministic workload:

* ``calibration.spin`` — a pure-Python integer spin loop; tracks the
  machine's single-core interpreter speed and anchors cross-machine
  normalization (see :func:`~repro.analysis.perf.harness.compare_benchmarks`).
* ``engine.run`` — schedule/dispatch throughput of the discrete-event
  engine, including zero-delay callbacks; reuses one engine via
  :meth:`~repro.sim.engine.Engine.reset`.
* ``l2.lookup.<design>`` — the L2 access path of each paper design
  (TLC, TLCopt500, SNUCA2, DNUCA) on a pre-warmed cache.
* ``link.transit`` / ``mesh.transit`` — transmission-line link and
  switched-mesh message timing.
* ``workload.generate`` — synthetic trace generation (numpy-backed).
* ``system.refs_per_sec.tlc`` — the end-to-end ``run_system`` path the
  experiment grids are built from; ``meta.refs_per_sec`` carries the
  headline throughput number.
* ``replay.probe.<backend>`` — the processor replay loop alone, against
  the fixed-latency :class:`~repro.sim.backend.LatencyProbe` (no L2
  model cost), one benchmark per available backend; the
  reference/batched pair is the headline backend-speedup figure.
* ``system.refs_per_sec.tlc.batched`` — the grid path under the
  batched backend (registered only when numpy is available).

Every workload is sized by a *scale* so ``--quick`` (CI) runs the same
shapes smaller.  Builders construct their fixtures outside the timed
region: construction and pre-warming are not part of any measurement.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.analysis.perf.harness import BenchResult, measure, pin_process

BenchBuilder = Callable[[int], Tuple[Callable[[], Any], Dict[str, Any]]]

#: designs whose lookup path is benchmarked individually.
LOOKUP_DESIGNS = ("TLC", "TLCopt500", "SNUCA2", "DNUCA")


def _build_calibration_spin(scale: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    n = max(10_000, 200_000 // scale)

    def fn() -> int:
        acc = 0
        for i in range(n):
            acc = (acc + i * 3) & 0xFFFFFFFF
        return acc

    return fn, {"inner_ops": n}


def _build_engine_run(scale: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    from repro.sim.engine import Engine

    engine = Engine()
    n = max(500, 4_000 // scale)

    def fn() -> None:
        engine.reset()
        fired = [0]

        def tick() -> None:
            fired[0] += 1
            if fired[0] % 7 == 0:
                engine.schedule(0, lambda: None)

        for i in range(n):
            engine.schedule(i % 97, tick)
        engine.run()

    return fn, {"inner_ops": n}


def _lookup_addresses(count: int) -> list:
    # A deterministic, well-scattered address set (Knuth multiplicative
    # hashing over a 1 GB span, 64-byte aligned).
    return [((i * 2654435761) % (1 << 24)) * 64 for i in range(count)]


def _build_l2_lookup(design: str) -> BenchBuilder:
    def build(scale: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
        from repro.core.config import build_design

        l2 = build_design(design)
        resident = _lookup_addresses(512)
        for addr in resident:
            l2.install(addr)
        n = max(250, 2_000 // scale)
        accesses = _lookup_addresses(n)
        clock = [0]

        def fn() -> None:
            time = clock[0]
            access = l2.access
            for index, addr in enumerate(accesses):
                access(addr, time, write=index % 5 == 4)
                time += 40
            clock[0] = time

        return fn, {"inner_ops": n, "design": design}

    return build


def _build_link_transit(scale: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    from repro.interconnect.link import Link
    from repro.sim.stats import UtilizationMeter

    link = Link(64, flight_cycles=1, meter=UtilizationMeter(1), length_m=0.011)
    n = max(1_000, 5_000 // scale)
    clock = [0]

    def fn() -> None:
        time = clock[0]
        send = link.send
        for i in range(n):
            send(time, 512 if i % 3 else 38, True)
            time += 5
        clock[0] = time

    return fn, {"inner_ops": n}


def _build_mesh_transit(scale: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    from repro.interconnect.mesh import MeshNetwork

    mesh = MeshNetwork(8, 4, flit_bits=128)
    n = max(500, 2_000 // scale)
    clock = [0]

    def fn() -> None:
        time = clock[0]
        send = mesh.send
        for i in range(n):
            send(i % 8, (i // 8) % 4, time, 550 if i % 3 else 38, i % 2 == 0)
            time += 7
        clock[0] = time

    return fn, {"inner_ops": n}


def _build_workload_generate(scale: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    from repro.workloads.profiles import get_profile
    from repro.workloads.synthetic import generate_trace

    spec = get_profile("mcf").spec
    n = max(5_000, 20_000 // scale)

    def fn() -> int:
        return len(generate_trace(spec, n, seed=7))

    return fn, {"inner_ops": n, "benchmark": "mcf"}


def _build_system_refs(scale: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    from repro.sim.system import run_system

    n = max(5_000, 20_000 // scale)

    def fn() -> Any:
        return run_system("TLC", "mcf", n_refs=n, seed=7)

    return fn, {"inner_ops": n, "design": "TLC", "benchmark": "mcf"}


def _build_system_refs_batched(scale: int) -> Tuple[Callable[[], Any],
                                                    Dict[str, Any]]:
    from repro.sim.system import run_system

    n = max(5_000, 20_000 // scale)

    def fn() -> Any:
        return run_system("TLC", "mcf", n_refs=n, seed=7, backend="batched")

    return fn, {"inner_ops": n, "design": "TLC", "benchmark": "mcf",
                "backend": "batched"}


def _probe_trace(count: int) -> list:
    """A deterministic all-read trace for the replay-loop benchmarks.

    Pure Python on purpose (an LCG gap stream plus Knuth-scattered
    addresses): the reference-backend variant must build and run on a
    numpy-free interpreter.
    """
    from repro.workloads.trace import Reference

    refs = []
    x = 1
    for i in range(count):
        x = (1103515245 * x + 12345) & 0x7FFFFFFF
        refs.append(Reference(gap=12 + (x % 9),
                              addr=((i * 2654435761) % (1 << 24)) * 64,
                              write=False, dependent=False))
    return refs


def _build_replay_probe(backend: str) -> BenchBuilder:
    def build(scale: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
        from repro.sim.backend import LatencyProbe
        from repro.sim.processor import Processor

        n = max(4_000, 16_000 // scale)
        trace = _probe_trace(n)
        probe = LatencyProbe()
        processor = Processor(probe, backend=backend)

        def fn() -> Any:
            probe.reset_stats()
            return processor.run(trace)

        return fn, {"inner_ops": n, "backend": backend, "refs": n}

    return build


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


#: name -> builder; names are stable identifiers BENCH documents key on.
SUITE: Dict[str, BenchBuilder] = {
    "calibration.spin": _build_calibration_spin,
    "engine.run": _build_engine_run,
    "link.transit": _build_link_transit,
    "mesh.transit": _build_mesh_transit,
    "workload.generate": _build_workload_generate,
    "system.refs_per_sec.tlc": _build_system_refs,
    "replay.probe.reference": _build_replay_probe("reference"),
}
for _design in LOOKUP_DESIGNS:
    SUITE[f"l2.lookup.{_design.lower()}"] = _build_l2_lookup(_design)
if _numpy_available():
    # The batched-backend pairs only exist where the backend can run;
    # a numpy-free interpreter benchmarks the reference backend alone.
    SUITE["replay.probe.batched"] = _build_replay_probe("batched")
    SUITE["system.refs_per_sec.tlc.batched"] = _build_system_refs_batched


def benchmark_names() -> Tuple[str, ...]:
    return tuple(sorted(SUITE))


def run_suite(
    quick: bool = False,
    name_filter: Optional[str] = None,
    reps: Optional[int] = None,
    pin: bool = True,
    progress: Optional[Callable[[str], Any]] = None,
) -> Tuple[Dict[str, BenchResult], bool]:
    """Run the suite; returns ``(results by name, whether pinning worked)``.

    ``quick`` shrinks every workload and takes fewer reps (the CI
    configuration); ``name_filter`` keeps only benchmarks whose name
    contains the substring; ``reps`` overrides the rep count.
    """
    scale = 4 if quick else 1
    default_reps = 5 if quick else 9
    effective_reps = reps if reps is not None else default_reps
    warmup = 1 if quick else 2
    pinned = pin_process() if pin else False
    results: Dict[str, BenchResult] = {}
    for name in benchmark_names():
        if name_filter is not None and name_filter not in name:
            continue
        if progress is not None:
            progress(name)
        fn, meta = SUITE[name](scale)
        result = measure(fn, reps=effective_reps, warmup=warmup, meta=meta)
        _add_derived_meta(result)
        results[name] = result
    return results, pinned


def _add_derived_meta(result: BenchResult) -> None:
    """Attach per-op and throughput figures derived from the median."""
    ops = result.meta.get("inner_ops")
    if not ops or result.median_ns <= 0:
        return
    result.meta["ns_per_op"] = round(result.median_ns / ops, 1)
    result.meta["ops_per_sec"] = round(ops * 1e9 / result.median_ns, 1)
    if "refs_per_sec" not in result.meta and "benchmark" in result.meta:
        result.meta["refs_per_sec"] = result.meta["ops_per_sec"]

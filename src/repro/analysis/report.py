"""Full reproduction report: every table and figure, measured vs paper.

``build_report`` runs (or accepts) the two experiment grids plus the
static models and renders one markdown document — the machinery behind
``EXPERIMENTS.md`` and the CLI's ``report`` subcommand.
"""

from __future__ import annotations

import io
from typing import Optional

from repro.analysis.experiments import (
    ExperimentGrid,
    MAIN_DESIGNS,
    TLC_FAMILY,
    run_design_grid,
)
from repro.analysis.tables import (
    PAPER_TABLE2,
    PAPER_TABLE6,
    PAPER_TABLE7,
    PAPER_TABLE8,
    PAPER_TABLE9,
)
from repro.area import (
    dnuca_area,
    dnuca_network_transistors,
    tlc_area,
    tlc_network_transistors,
)
from repro.core.config import DESIGNS
from repro.tline import TABLE1_LINES, evaluate_link


def _markdown_table(out: io.StringIO, headers, rows) -> None:
    out.write("| " + " | ".join(str(h) for h in headers) + " |\n")
    out.write("|" + "|".join("---" for _ in headers) + "|\n")
    for row in rows:
        cells = [f"{v:.3g}" if isinstance(v, float) else str(v) for v in row]
        out.write("| " + " | ".join(cells) + " |\n")
    out.write("\n")


def build_report(main_grid: Optional[ExperimentGrid] = None,
                 family_grid: Optional[ExperimentGrid] = None,
                 n_refs: int = 20_000) -> str:
    """Render the complete measured-vs-paper report as markdown."""
    if main_grid is None:
        main_grid = run_design_grid(designs=MAIN_DESIGNS, n_refs=n_refs)
    if family_grid is None:
        family_grid = run_design_grid(designs=("SNUCA2",) + TLC_FAMILY,
                                      n_refs=n_refs)

    out = io.StringIO()
    out.write("# Reproduction report: TLC: Transmission Line Caches\n\n")
    out.write(f"Grids measured at {n_refs} L2 references per benchmark "
              "(post-warmup); every value regenerable via "
              "`pytest benchmarks/ --benchmark-only -s`.\n\n")

    # ---- physical layer -------------------------------------------------
    out.write("## Signal integrity (Section 5 criteria)\n\n")
    rows = []
    for geometry in TABLE1_LINES:
        report = evaluate_link(geometry.length)
        rows.append([
            geometry.name, f"{report.line.z0:.1f}",
            f"{report.pulse.delay_s * 1e12:.0f} ps",
            f"{report.amplitude_fraction:.0%} (>=75%)",
            f"{report.width_fraction:.0%} (>=40%)",
            "PASS" if report.usable else "FAIL",
        ])
    _markdown_table(out, ["line", "Z0 (ohm)", "delay", "amplitude",
                          "width", "verdict"], rows)

    # ---- Table 2 ---------------------------------------------------------
    out.write("## Table 2: design parameters\n\n")
    rows = []
    for name, config in DESIGNS.items():
        paper = PAPER_TABLE2[name]
        measured = config.uncontended_latency_range
        rows.append([name, config.banks, f"{config.bank_bytes // 1024} KB",
                     config.total_lines or "-",
                     f"{measured[0]}-{measured[1]}",
                     f"{paper['uncontended'][0]}-{paper['uncontended'][1]}"])
    _markdown_table(out, ["design", "banks", "bank", "TL lines",
                          "latency (measured)", "latency (paper)"], rows)

    # ---- Figure 5 --------------------------------------------------------
    out.write("## Figure 5: normalized execution time (SNUCA2 = 1.0)\n\n")
    rows = []
    for bench in main_grid.benchmarks:
        rows.append([
            bench,
            round(main_grid.normalized_execution_time("DNUCA", bench), 3),
            round(main_grid.normalized_execution_time("TLC", bench), 3),
        ])
    _markdown_table(out, ["benchmark", "DNUCA", "TLC"], rows)

    # ---- Figure 6 --------------------------------------------------------
    out.write("## Figure 6: mean cache lookup latency (cycles)\n\n")
    rows = [[bench,
             round(main_grid.result("DNUCA", bench).mean_lookup_latency, 1),
             round(main_grid.result("TLC", bench).mean_lookup_latency, 1)]
            for bench in main_grid.benchmarks]
    _markdown_table(out, ["benchmark", "DNUCA", "TLC"], rows)

    # ---- Table 6 ---------------------------------------------------------
    out.write("## Table 6: benchmark characteristics\n\n")
    rows = []
    for bench in main_grid.benchmarks:
        tlc = main_grid.result("TLC", bench)
        dnuca = main_grid.result("DNUCA", bench)
        paper = PAPER_TABLE6[bench]
        close = dnuca.stats.get("close_hits", 0) / max(1, dnuca.l2_requests)
        promotes = dnuca.stats.get("promotions", 0)
        inserts = max(1, dnuca.stats.get("insertions", 0))
        rows.append([
            bench,
            f"{tlc.misses_per_kinstr:.3g} / {paper['tlc_mpki']:.3g}",
            f"{dnuca.misses_per_kinstr:.3g} / {paper['dnuca_mpki']:.3g}",
            f"{close:.0%} / {paper['close_hit']:.0%}",
            f"{promotes / inserts:.3g} / {paper['promotes_per_insert']:.3g}",
            f"{tlc.predictable_lookup_fraction:.0%} / {paper['tlc_pred']:.0%}",
            f"{dnuca.predictable_lookup_fraction:.0%} / {paper['dnuca_pred']:.0%}",
        ])
    _markdown_table(out, ["bench", "TLC mpki (ours/paper)",
                          "DNUCA mpki", "close hit", "promotes/insert",
                          "TLC predictable", "DNUCA predictable"], rows)

    # ---- Table 7 ---------------------------------------------------------
    out.write("## Table 7: substrate area (mm^2)\n\n")
    rows = []
    for name, report in (("DNUCA", dnuca_area()),
                         ("TLC", tlc_area(DESIGNS["TLC"].total_lines))):
        mm2 = report.as_mm2()
        paper = PAPER_TABLE7[name]
        rows.append([name,
                     f"{mm2['storage_mm2']:.1f} / {paper['storage']}",
                     f"{mm2['channel_mm2']:.1f} / {paper['channel']}",
                     f"{mm2['controller_mm2']:.1f} / {paper['controller']}",
                     f"{mm2['total_mm2']:.0f} / {paper['total']:.0f}"])
    _markdown_table(out, ["design", "storage (ours/paper)", "channel",
                          "controller", "total"], rows)

    # ---- Table 8 ---------------------------------------------------------
    out.write("## Table 8: network transistors\n\n")
    rows = []
    for name, report in (("DNUCA", dnuca_network_transistors()),
                         ("TLC", tlc_network_transistors(
                             DESIGNS["TLC"].total_lines))):
        paper = PAPER_TABLE8[name]
        rows.append([name,
                     f"{report.transistors:.2e} / {paper['transistors']:.1e}",
                     f"{report.gate_width_mega_lambda:.0f} M / "
                     f"{paper['gate_width_mega_lambda']:.0f} M"])
    _markdown_table(out, ["design", "transistors (ours/paper)",
                          "gate width"], rows)

    # ---- Table 9 ---------------------------------------------------------
    out.write("## Table 9: dynamic components\n\n")
    rows = []
    for bench in main_grid.benchmarks:
        dnuca = main_grid.result("DNUCA", bench)
        tlc = main_grid.result("TLC", bench)
        paper = PAPER_TABLE9[bench]
        saving = 1 - tlc.network_power_w / max(1e-12, dnuca.network_power_w)
        paper_saving = 1 - paper["tlc_mw"] / paper["dnuca_mw"]
        rows.append([
            bench,
            f"{dnuca.banks_accessed_per_request:.2f} / {paper['dnuca_banks']}",
            f"{tlc.banks_accessed_per_request:.0f} / 1",
            f"{saving:.0%} / {paper_saving:.0%}",
        ])
    _markdown_table(out, ["bench", "DNUCA banks/req (ours/paper)",
                          "TLC banks/req", "TLC power saving"], rows)

    # ---- Figures 7 and 8 ---------------------------------------------------
    out.write("## Figure 7: TLC family link utilization\n\n")
    rows = [[bench] + [
        f"{family_grid.result(d, bench).link_utilization:.1%}"
        for d in TLC_FAMILY] for bench in family_grid.benchmarks]
    _markdown_table(out, ["benchmark"] + list(TLC_FAMILY), rows)

    out.write("## Figure 8: TLC family normalized execution time\n\n")
    rows = [[bench] + [
        round(family_grid.normalized_execution_time(d, bench), 3)
        for d in TLC_FAMILY] for bench in family_grid.benchmarks]
    _markdown_table(out, ["benchmark"] + list(TLC_FAMILY), rows)

    return out.getvalue()

"""Full reproduction report: every table and figure, measured vs paper.

``build_report`` runs (or accepts) the two experiment grids plus the
static models and renders one markdown document — the machinery behind
``EXPERIMENTS.md`` and the CLI's ``report`` subcommand.

The report is a sequence of :class:`ReportSection` entries, each a pure
``(grid slice) -> dataset -> rendering`` pipeline: the dataset builders
live in :mod:`repro.analysis.tables` / :mod:`repro.analysis.figures`
and return JSON-able rows; the renderer turns rows into markdown and
never reads a grid.  That split is what lets every section route
through the derived-artifact cache lane (:mod:`repro.analysis.derived`):
a section is fingerprinted by the result-cache keys of exactly the
cells its slice reads (static sections — signal integrity, the area
tables — by the code version alone), so a warm lane re-renders without
recomputing any section, and a one-cell change re-derives only the
sections whose slice contains that cell.
"""

from __future__ import annotations

import dataclasses
import io
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import (
    ExperimentGrid,
    MAIN_DESIGNS,
    TLC_FAMILY,
    run_design_grid,
)
from repro.analysis.figures import (
    figure5_dataset,
    figure6_dataset,
    figure7_dataset,
    figure8_dataset,
)
from repro.analysis.tables import (
    signal_integrity_rows,
    table2_rows,
    table6_rows,
    table7_rows,
    table8_rows,
    table9_rows,
)


def _markdown_table(out: io.StringIO, headers, rows) -> None:
    out.write("| " + " | ".join(str(h) for h in headers) + " |\n")
    out.write("|" + "|".join("---" for _ in headers) + "|\n")
    for row in rows:
        cells = [f"{v:.3g}" if isinstance(v, float) else str(v) for v in row]
        out.write("| " + " | ".join(cells) + " |\n")
    out.write("\n")


def _section_text(heading: str, headers: Sequence[str], rows) -> str:
    """One rendered report section: heading plus a markdown table."""
    out = io.StringIO()
    out.write(f"## {heading}\n\n")
    _markdown_table(out, headers, rows)
    return out.getvalue()


@dataclasses.dataclass(frozen=True)
class ReportSection:
    """One report section as a pure dataset -> rendering pipeline.

    ``slices`` names the grid cells the dataset reads: a tuple of
    ``(grid name, designs)`` pairs where ``grid name`` is ``"main"`` or
    ``"family"`` and ``designs`` narrows to a design subset (``None``
    means the whole grid, including normalization baselines).  An empty
    tuple marks a static section derived from code alone.  The derived
    lane keys each section by exactly these cells, so invalidation has
    section granularity, not report granularity.

    ``dataset`` maps the named grids to JSON-able rows; ``render`` maps
    those rows (or their JSON round trip — it must not care which) to
    the section's markdown text.
    """

    name: str
    slices: Tuple[Tuple[str, Optional[Tuple[str, ...]]], ...]
    dataset: Callable[[Dict[str, ExperimentGrid]], list]
    render: Callable[[list], str]

    def cell_keys(self, grids: Dict[str, ExperimentGrid]) -> List[str]:
        keys: List[str] = []
        for grid_name, designs in self.slices:
            keys.extend(grids[grid_name].cell_keys(designs=designs))
        return keys


REPORT_SECTIONS: Tuple[ReportSection, ...] = (
    ReportSection(
        name="signal_integrity",
        slices=(),
        dataset=lambda grids: signal_integrity_rows(),
        render=lambda rows: _section_text(
            "Signal integrity (Section 5 criteria)",
            ["line", "Z0 (ohm)", "delay", "amplitude", "width", "verdict"],
            rows),
    ),
    ReportSection(
        name="table2",
        slices=(),
        dataset=lambda grids: table2_rows(),
        render=lambda rows: _section_text(
            "Table 2: design parameters",
            ["design", "banks", "bank", "TL lines", "latency (measured)",
             "latency (paper)"],
            rows),
    ),
    ReportSection(
        name="fig5",
        slices=(("main", None),),
        dataset=lambda grids: figure5_dataset(grids["main"]),
        render=lambda rows: _section_text(
            "Figure 5: normalized execution time (SNUCA2 = 1.0)",
            ["benchmark", "DNUCA", "TLC"], rows),
    ),
    ReportSection(
        name="fig6",
        slices=(("main", ("DNUCA", "TLC")),),
        dataset=lambda grids: figure6_dataset(grids["main"]),
        render=lambda rows: _section_text(
            "Figure 6: mean cache lookup latency (cycles)",
            ["benchmark", "DNUCA", "TLC"], rows),
    ),
    ReportSection(
        name="table6",
        slices=(("main", ("DNUCA", "TLC")),),
        dataset=lambda grids: table6_rows(grids["main"]),
        render=lambda rows: _section_text(
            "Table 6: benchmark characteristics",
            ["bench", "TLC mpki (ours/paper)", "DNUCA mpki", "close hit",
             "promotes/insert", "TLC predictable", "DNUCA predictable"],
            rows),
    ),
    ReportSection(
        name="table7",
        slices=(),
        dataset=lambda grids: table7_rows(),
        render=lambda rows: _section_text(
            "Table 7: substrate area (mm^2)",
            ["design", "storage (ours/paper)", "channel", "controller",
             "total"],
            rows),
    ),
    ReportSection(
        name="table8",
        slices=(),
        dataset=lambda grids: table8_rows(),
        render=lambda rows: _section_text(
            "Table 8: network transistors",
            ["design", "transistors (ours/paper)", "gate width"], rows),
    ),
    ReportSection(
        name="table9",
        slices=(("main", ("DNUCA", "TLC")),),
        dataset=lambda grids: table9_rows(grids["main"]),
        render=lambda rows: _section_text(
            "Table 9: dynamic components",
            ["bench", "DNUCA banks/req (ours/paper)", "TLC banks/req",
             "TLC power saving"],
            rows),
    ),
    ReportSection(
        name="fig7",
        slices=(("family", TLC_FAMILY),),
        dataset=lambda grids: figure7_dataset(grids["family"], TLC_FAMILY),
        render=lambda rows: _section_text(
            "Figure 7: TLC family link utilization",
            ["benchmark"] + list(TLC_FAMILY),
            [[row[0]] + [f"{v:.1%}" for v in row[1:]] for row in rows]),
    ),
    ReportSection(
        name="fig8",
        slices=(("family", None),),
        dataset=lambda grids: figure8_dataset(grids["family"], TLC_FAMILY),
        render=lambda rows: _section_text(
            "Figure 8: TLC family normalized execution time",
            ["benchmark"] + list(TLC_FAMILY), rows),
    ),
)


def report_preamble(n_refs: int) -> str:
    """The fixed document header above the cached sections."""
    return ("# Reproduction report: TLC: Transmission Line Caches\n\n"
            f"Grids measured at {n_refs} L2 references per benchmark "
            "(post-warmup); every value regenerable via "
            "`pytest benchmarks/ --benchmark-only -s`.\n\n")


def build_report(main_grid: Optional[ExperimentGrid] = None,
                 family_grid: Optional[ExperimentGrid] = None,
                 n_refs: int = 20_000,
                 derived=None) -> str:
    """Render the complete measured-vs-paper report as markdown.

    ``derived`` routes every section through a derived-artifact lane —
    a :class:`~repro.analysis.derived.DerivedLane`,
    :class:`~repro.analysis.derived.DerivedCache`, or cache directory
    path (``None`` disables caching).  The lane is optimization-only:
    warm, cold, and disabled lanes all render byte-identical documents.
    """
    from repro.analysis.derived import as_lane

    lane = as_lane(derived)
    if main_grid is None:
        main_grid = run_design_grid(designs=MAIN_DESIGNS, n_refs=n_refs)
    if family_grid is None:
        family_grid = run_design_grid(designs=("SNUCA2",) + TLC_FAMILY,
                                      n_refs=n_refs)
    grids = {"main": main_grid, "family": family_grid}

    out = io.StringIO()
    out.write(report_preamble(n_refs))
    for section in REPORT_SECTIONS:
        out.write(render_section(section, grids, lane))
    return out.getvalue()


def render_section(section: ReportSection,
                   grids: Dict[str, ExperimentGrid], lane) -> str:
    """One section's markdown, answered from ``lane`` when warm.

    The cached artifact carries both the dataset (rows) and the
    rendered text, so a warm section costs one cache read — no grid
    access, no row building, no formatting.
    """
    artifact = lane.get_or_compute(
        kind=f"report.{section.name}",
        cell_keys=section.cell_keys(grids),
        params=None,
        compute=lambda: _compute_section(section, grids))
    return artifact["rendered"]


def _compute_section(section: ReportSection,
                     grids: Dict[str, ExperimentGrid]) -> dict:
    rows = section.dataset(grids)
    return {"dataset": rows, "rendered": section.render(rows)}

"""Fault-tolerant grid execution: retries, timeouts, crash recovery,
checkpoint journals, and deterministic fault injection.

The paper's evaluation grids (Figs. 5-8, Tables 6-9) are the repo's hot
path, and at scale a grid dies for boring reasons: one cell hangs, one
worker process is OOM-killed, one cache file is truncated by a full
disk, one Ctrl-C throws away an hour of completed cells.  This module
gives :mod:`repro.analysis.runner` the machinery of a real job system:

* :class:`RetryPolicy` — per-cell wall-clock timeouts plus configurable
  retries with exponential backoff.  A timed-out or crashed cell is
  *rescheduled*, not lost; a cell that exhausts its attempts raises
  :class:`CellFailure` (loudly — a silently missing design point would
  corrupt every downstream figure).
* **worker-crash recovery** — each attempt runs in its own child
  process (one cell per process, results returned over a pipe), so a
  dying worker takes down exactly one attempt of one cell.  The parent
  observes the pipe's EOF, counts a ``worker_death``, and reschedules.
* :class:`CheckpointJournal` — an append-only JSONL journal of
  completed :class:`~repro.analysis.runner.CellOutcome`\\ s.  An
  interrupted ``repro grid --checkpoint`` / ``repro report
  --checkpoint`` resumes from the journal and produces a grid
  byte-identical to an uninterrupted run.  Journal keys embed the
  runner's cache key (inputs + code version), so entries from a
  different code version are ignored automatically.
* :class:`FaultPlan` — deterministic fault injection for tests and
  smoke runs: force a specific cell to ``raise``, ``hang``, or ``die``
  on its Nth attempt, either programmatically or via the
  ``REPRO_FAULT_PLAN`` environment variable (inline JSON or a path to
  a JSON file).
* :class:`RunnerTelemetry` — attempts / retries / timeouts / worker
  deaths / quarantined cache entries as a
  :class:`~repro.sim.stats.Counter`, registrable on a
  :class:`~repro.obs.registry.MetricsRegistry` (under ``runner.*``)
  and embedded in run manifests via the ``resilience`` field.

Execution stays deterministic: a cell's result is a pure function of
its :class:`~repro.analysis.runner.CellSpec`, so retried, resumed, and
fault-injected runs are byte-identical to clean serial runs (asserted
in ``tests/test_runner_faults.py`` and the CI fault smoke step).

On platforms where child processes cannot be spawned at all the
executor falls back to an in-process loop: retries and ``raise`` faults
still work, but timeouts cannot be enforced and ``hang``/``die``
faults are downgraded to ``raise`` (killing or stalling the test
process itself would be worse than the degraded fidelity).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.sim.stats import Counter

#: Environment variable holding a fault plan: inline JSON (starts with
#: ``{``) or a path to a JSON file.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Journal line layout version (bump on incompatible change).
JOURNAL_FORMAT_VERSION = 1

#: Exit code an injected ``die`` fault terminates the worker with —
#: distinguishable in logs from a Python crash (1) or a signal.
DIE_EXIT_CODE = 86

_FAULT_ACTIONS = ("raise", "hang", "die")


class InjectedFault(RuntimeError):
    """Raised inside a worker by a :class:`FaultPlan` ``raise`` action."""


class CellFailure(RuntimeError):
    """A cell exhausted every attempt its :class:`RetryPolicy` allowed.

    Deliberately fatal to the whole grid: the evaluation's figures and
    tables need *every* design point, so a permanently failing cell
    must stop the run rather than leave a hole.  Completed cells are
    preserved by the checkpoint journal (when one is active), so fixing
    the cause and re-running resumes instead of restarting.
    """

    def __init__(self, cell, attempts: int, last_failure: str) -> None:
        self.cell = cell
        self.attempts = attempts
        self.last_failure = last_failure
        super().__init__(
            f"cell ({cell.design}, {cell.benchmark}) failed permanently "
            f"after {attempts} attempt(s); last failure: {last_failure}")


# -- retry policy ----------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How hard the executor tries before declaring a cell dead.

    ``max_retries`` counts *re*-tries: 0 means one attempt, 2 means up
    to three.  ``cell_timeout_s`` bounds each attempt's wall time (the
    child is terminated and the attempt counted as a ``timeout``);
    ``None`` disables timeout enforcement.  Backoff before attempt
    ``n+1`` is ``backoff_base_s * backoff_factor**(n-1)`` capped at
    ``backoff_max_s`` — the default base of 0 retries immediately,
    which is right for deterministic simulation failures; raise it when
    retrying around flaky shared infrastructure (NFS, ulimits).
    """

    max_retries: int = 0
    cell_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError("cell_timeout_s must be positive (or None)")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def backoff_s(self, failed_attempt: int) -> float:
        """Seconds to wait before re-running after ``failed_attempt``."""
        if self.backoff_base_s <= 0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** (failed_attempt - 1)
        return min(self.backoff_max_s, delay)


# -- fault injection -------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One injected fault: *which cell*, *what happens*, *on which attempts*.

    ``action`` is ``"raise"`` (the worker raises :class:`InjectedFault`),
    ``"hang"`` (the worker sleeps ``hang_s`` seconds before computing —
    pair with a :class:`RetryPolicy` timeout), or ``"die"`` (the worker
    exits immediately with :data:`DIE_EXIT_CODE`, simulating an
    OOM-kill / SIGKILL).  ``attempts`` are 1-based attempt numbers.
    """

    design: str
    benchmark: str
    action: str
    attempts: Tuple[int, ...] = (1,)
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.action not in _FAULT_ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; "
                             f"choose from {_FAULT_ACTIONS}")
        if not self.attempts or any(a < 1 for a in self.attempts):
            raise ValueError("attempts must be 1-based attempt numbers")
        # JSON round-trips lists; the spec stores a hashable tuple.
        object.__setattr__(self, "attempts", tuple(self.attempts))


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` injections.

    JSON format (``REPRO_FAULT_PLAN`` accepts this inline or as a file
    path)::

        {"faults": [{"design": "TLC", "benchmark": "perl",
                     "action": "die", "attempts": [1]}]}

    Determinism is the point: the same plan against the same grid
    faults the same attempts every run, so recovery paths are testable
    exactly (``tests/test_runner_faults.py``) and reproducible in CI.
    """

    def __init__(self, faults: Sequence[FaultSpec] = ()) -> None:
        self.faults = tuple(faults)

    def __len__(self) -> int:
        return len(self.faults)

    def fault_for(self, cell, attempt: int) -> Optional[FaultSpec]:
        """The fault to inject for ``cell``'s ``attempt``, if any."""
        for fault in self.faults:
            if (fault.design == cell.design
                    and fault.benchmark == cell.benchmark
                    and attempt in fault.attempts):
                return fault
        return None

    def to_dict(self) -> dict:
        return {"faults": [dataclasses.asdict(f) for f in self.faults]}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultPlan":
        if not isinstance(payload, Mapping) or "faults" not in payload:
            raise ValueError(
                "fault plan must be an object with a 'faults' list")
        faults = []
        for entry in payload["faults"]:
            try:
                faults.append(FaultSpec(**entry))
            except TypeError as error:
                raise ValueError(f"bad fault entry {entry!r}: {error}") from None
        return cls(faults)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_env(cls, environ: Mapping[str, str] = os.environ,
                 ) -> Optional["FaultPlan"]:
        """The plan named by :data:`FAULT_PLAN_ENV`, or ``None``."""
        value = environ.get(FAULT_PLAN_ENV)
        if not value:
            return None
        if value.lstrip().startswith("{"):
            return cls.from_json(value)
        return cls.from_json(Path(value).read_text(encoding="utf-8"))


# -- telemetry -------------------------------------------------------------

#: Every count the executor can emit, in reporting order.  Stable zeros
#: (rather than absent keys) keep manifest diffs meaningful.
TELEMETRY_COUNTS = (
    "cells", "cache_hits", "checkpoint_replays", "computed",
    "attempts", "retries", "timeouts", "worker_deaths", "cell_errors",
    "faults_injected", "quarantined", "sanitized_retries",
)


class RunnerTelemetry:
    """Execution-provenance counters for one (or several) grid runs.

    Wraps a :class:`~repro.sim.stats.Counter` so the observability
    layer sees the live object: ``telemetry.register(registry)`` mounts
    it under ``runner`` and every count flattens into snapshots as
    ``runner.<count>``.  ``as_dict()`` is the JSON-ready form embedded
    in run manifests (the :attr:`~repro.obs.manifest.RunManifest.resilience`
    field).
    """

    def __init__(self) -> None:
        self.counter = Counter()

    def add(self, name: str, amount: int = 1) -> None:
        if name not in TELEMETRY_COUNTS:
            raise ValueError(f"unknown telemetry count {name!r}; "
                             f"choose from {TELEMETRY_COUNTS}")
        if amount:
            self.counter.add(name, amount)

    def __getitem__(self, name: str) -> int:
        return self.counter[name]

    def as_dict(self) -> Dict[str, int]:
        return {name: self.counter[name] for name in TELEMETRY_COUNTS}

    def register(self, registry, prefix: str = "runner") -> None:
        """Mount the live counter on a ``MetricsRegistry`` under ``prefix``."""
        registry.register(prefix, self.counter)

    def summary(self) -> str:
        """One human line for CLI output."""
        d = self.as_dict()
        return (f"{d['attempts']} attempt(s), {d['retries']} retry(ies), "
                f"{d['timeouts']} timeout(s), {d['worker_deaths']} worker "
                f"death(s), {d['quarantined']} quarantined cache entr(ies), "
                f"{d['checkpoint_replays']} checkpoint replay(s)")


# -- checkpoint journal ----------------------------------------------------

def load_jsonl(path: Union[str, os.PathLike]) -> Tuple[List[object], int]:
    """Tolerantly parse a JSONL file into ``(payloads, bad_lines)``.

    The shared read discipline of every append-only journal in the repo
    (:class:`CheckpointJournal` here, the service's
    :class:`~repro.service.journal.JobJournal`): a missing file is an
    empty journal, blank lines are ignored, and a line that fails to
    parse — the expected artifact of a process killed mid-write — is
    counted, not fatal.  Callers apply their own per-payload validation
    on top.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return [], 0
    payloads: List[object] = []
    bad_lines = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            payloads.append(json.loads(line))
        except ValueError:
            bad_lines += 1
    return payloads, bad_lines


@dataclasses.dataclass(frozen=True)
class JournalEntry:
    """One replayable completed cell, as loaded from a journal."""

    result: object  # SystemResult (untyped here to avoid an import cycle)
    wall_time_s: float
    attempts: int
    from_cache: bool


class CheckpointJournal:
    """Append-only JSONL journal of completed cells, keyed by cache key.

    Each completed cell appends one self-contained line (flushed
    immediately) holding the cell's cache key, its key fields, and the
    full result.  ``load()`` returns every trustworthy entry and
    silently skips a truncated final line — the expected artifact of a
    run killed mid-write — plus any line that fails result validation,
    counting them in :attr:`skipped_lines`.

    The key embeds the code-version stamp and every simulation input
    (see :func:`repro.analysis.runner.cache_key`), so resuming after a
    source edit or with different parameters simply finds no matching
    entries and recomputes — stale results can never be replayed.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path).expanduser()
        self._handle = None
        self.recorded = 0
        self.skipped_lines = 0

    def load(self) -> Dict[str, JournalEntry]:
        """Every valid journal entry, newest-wins, keyed by cache key."""
        from repro.analysis.storage import result_from_dict

        entries: Dict[str, JournalEntry] = {}
        payloads, bad_lines = load_jsonl(self.path)
        self.skipped_lines += bad_lines
        for payload in payloads:
            try:
                if (not isinstance(payload, dict)
                        or payload.get("format") != JOURNAL_FORMAT_VERSION):
                    raise ValueError("bad journal line format")
                key = payload["key"]
                entry = JournalEntry(
                    result=result_from_dict(payload["result"]),
                    wall_time_s=float(payload["wall_time_s"]),
                    attempts=int(payload["attempts"]),
                    from_cache=bool(payload["from_cache"]),
                )
            except (ValueError, KeyError, TypeError):
                self.skipped_lines += 1
                continue
            entries[key] = entry
        return entries

    def record(self, key: str, cell, outcome) -> None:
        """Append one completed outcome (opens the journal lazily)."""
        from repro.analysis.storage import result_to_dict

        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        payload = {
            "format": JOURNAL_FORMAT_VERSION,
            "key": key,
            "cell": cell.key_fields(),
            "attempts": outcome.attempts,
            "wall_time_s": outcome.wall_time_s,
            "from_cache": outcome.from_cache,
            "result": result_to_dict(outcome.result),
        }
        # No sort_keys: the result payload must keep result_to_dict's
        # field order so a *replayed* grid re-serializes byte-identical
        # to a computed one (save_grid preserves insertion order).
        self._handle.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._handle.flush()
        self.recorded += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def as_journal(checkpoint: Union["CheckpointJournal", str, os.PathLike, None],
               ) -> Optional[CheckpointJournal]:
    """Coerce a checkpoint argument (path or journal) to a journal."""
    if checkpoint is None or isinstance(checkpoint, CheckpointJournal):
        return checkpoint
    return CheckpointJournal(checkpoint)


# -- the resilient executor ------------------------------------------------

@dataclasses.dataclass
class _Task:
    """One cell awaiting (re-)execution."""

    index: int
    cell: object  # CellSpec
    key: str
    attempt: int = 1
    not_before: float = 0.0  # monotonic time the backoff expires


@dataclasses.dataclass
class _Running:
    """One in-flight attempt: its child process and result pipe."""

    task: _Task
    proc: object
    conn: object
    deadline: Optional[float]


def _attempt_cell(cell, attempt: int):
    """The cell to actually simulate on ``attempt``.

    The first attempt runs the cell as specified; retries re-run it
    under the simulator-core sanitizer, so a failure caused by a latent
    simulator bug (rather than a transient environment fault) surfaces
    as a :class:`~repro.sanitizer.SanitizerViolation` naming the broken
    invariant instead of failing identically.  A clean sanitized run is
    byte-identical, so the escalated result is still cached and
    journalled under the original cell's key.
    """
    if attempt <= 1 or getattr(cell, "sanitize", False):
        return cell
    try:
        return dataclasses.replace(cell, sanitize=True)
    except TypeError:
        return cell  # not a CellSpec (no sanitize field): run as-is


def _cell_worker(conn, cell, action: Optional[str], hang_s: float) -> None:
    """Child-process entry: inject the planned fault, then simulate.

    ``die`` exits before touching the pipe (the parent sees EOF with no
    message — indistinguishable from a real SIGKILL, which is the
    point).  ``hang`` sleeps first and then computes normally, so an
    un-timed-out hang eventually succeeds rather than wedging forever.
    """
    from repro.analysis.runner import run_cell_timed

    try:
        if action == "die":
            os._exit(DIE_EXIT_CODE)
        if action == "hang":
            time.sleep(hang_s)
        if action == "raise":
            raise InjectedFault(
                f"injected fault for ({cell.design}, {cell.benchmark})")
        result, wall_time_s = run_cell_timed(cell)
        conn.send(("ok", result, wall_time_s))
    except BaseException as error:  # noqa: BLE001 — must cross the pipe
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def execute_resilient(cells: Sequence, workers: int = 1, cache=None,
                      policy: Optional[RetryPolicy] = None,
                      checkpoint=None,
                      fault_plan: Optional[FaultPlan] = None,
                      telemetry: Optional[RunnerTelemetry] = None) -> List:
    """Run every cell with retries, timeouts, and crash recovery.

    The fault-tolerant twin of
    :func:`repro.analysis.runner.execute_cells_detailed` (which
    delegates here whenever a policy / checkpoint / fault plan /
    telemetry is in play): answers come from the checkpoint journal
    first, then the result cache (corrupt entries are quarantined and
    recomputed), and everything else runs one-cell-per-child-process so
    a timeout or worker death costs one attempt, never the grid.
    Returns outcomes parallel to ``cells``, byte-identical to a clean
    serial run.
    """
    from repro.analysis.runner import CellOutcome, as_cache, cache_key

    policy = policy or RetryPolicy()
    telemetry = telemetry or RunnerTelemetry()
    cache = as_cache(cache)
    journal = as_journal(checkpoint)

    telemetry.add("cells", len(cells))
    quarantined_before = cache.quarantined if cache is not None else 0
    replayable = journal.load() if journal is not None else {}

    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    pending: deque = deque()
    try:
        for index, cell in enumerate(cells):
            key = cache_key(cell)
            entry = replayable.get(key)
            if entry is not None:
                outcomes[index] = CellOutcome(
                    cell=cell, result=entry.result,
                    wall_time_s=entry.wall_time_s,
                    from_cache=entry.from_cache,
                    attempts=entry.attempts, from_checkpoint=True)
                telemetry.add("checkpoint_replays")
                continue
            if cache is not None:
                started = time.perf_counter()
                cached = cache.get(key)
                if cached is not None:
                    outcome = CellOutcome(
                        cell=cell, result=cached,
                        wall_time_s=time.perf_counter() - started,
                        from_cache=True)
                    outcomes[index] = outcome
                    telemetry.add("cache_hits")
                    if journal is not None:
                        journal.record(key, cell, outcome)
                    continue
            pending.append(_Task(index=index, cell=cell, key=key))

        if pending:
            _drain(pending, outcomes, max(1, workers), cache, policy,
                   fault_plan, telemetry, journal)
    finally:
        if cache is not None:
            telemetry.add("quarantined",
                          cache.quarantined - quarantined_before)
        if journal is not None:
            journal.close()
    return outcomes  # type: ignore[return-value]


def _drain(pending: deque, outcomes: List, capacity: int, cache, policy,
           fault_plan, telemetry, journal) -> None:
    """The scheduling loop: spawn, watch pipes, enforce deadlines, retry."""
    import multiprocessing
    from multiprocessing.connection import wait as connection_wait

    from repro.analysis.runner import CellOutcome

    ctx = multiprocessing.get_context()
    running: Dict[object, _Running] = {}

    def record_success(task: _Task, result, wall_time_s: float) -> None:
        outcome = CellOutcome(cell=task.cell, result=result,
                              wall_time_s=wall_time_s, from_cache=False,
                              attempts=task.attempt)
        outcomes[task.index] = outcome
        telemetry.add("computed")
        if cache is not None:
            cache.put(task.key, task.cell, result)
        if journal is not None:
            journal.record(task.key, task.cell, outcome)

    def reschedule(task: _Task, kind: str, detail: str = "") -> None:
        telemetry.add(kind)
        label = f"{kind}: {detail}" if detail else kind
        if task.attempt >= policy.max_attempts:
            raise CellFailure(task.cell, task.attempt, label)
        telemetry.add("retries")
        pending.append(dataclasses.replace(
            task, attempt=task.attempt + 1,
            not_before=time.monotonic() + policy.backoff_s(task.attempt)))

    def launch(task: _Task) -> bool:
        """Start one attempt; False means processes are unavailable."""
        fault = (fault_plan.fault_for(task.cell, task.attempt)
                 if fault_plan is not None else None)
        action = fault.action if fault is not None else None
        hang_s = fault.hang_s if fault is not None else 0.0
        run_cell = _attempt_cell(task.cell, task.attempt)
        try:
            receiver, sender = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_cell_worker,
                               args=(sender, run_cell, action, hang_s),
                               daemon=True)
            proc.start()
        except (ImportError, OSError, PermissionError):
            return False
        sender.close()
        telemetry.add("attempts")
        if run_cell is not task.cell:
            telemetry.add("sanitized_retries")
        if fault is not None:
            telemetry.add("faults_injected")
        deadline = (time.monotonic() + policy.cell_timeout_s
                    if policy.cell_timeout_s else None)
        running[receiver] = _Running(task=task, proc=proc, conn=receiver,
                                     deadline=deadline)
        return True

    def reap(state: _Running) -> None:
        """Collect one finished attempt (pipe signalled readable)."""
        message = None
        try:
            message = state.conn.recv()
        except (EOFError, OSError):
            pass  # the worker died before sending anything
        state.conn.close()
        state.proc.join(timeout=5)
        if state.proc.is_alive():
            state.proc.terminate()
            state.proc.join(timeout=5)
        if message is not None and message[0] == "ok":
            record_success(state.task, message[1], message[2])
        elif message is not None:
            reschedule(state.task, "cell_errors", message[1])
        else:
            code = state.proc.exitcode
            reschedule(state.task, "worker_deaths", f"exit code {code}")

    def kill(state: _Running) -> None:
        state.proc.terminate()
        state.proc.join(timeout=5)
        state.conn.close()

    try:
        while pending or running:
            now = time.monotonic()

            # Launch every backoff-expired task while capacity remains.
            deferred: List[_Task] = []
            while pending and len(running) < capacity:
                task = pending.popleft()
                if task.not_before > now:
                    deferred.append(task)
                    continue
                if not launch(task):
                    # No process support at all: restore order and run
                    # the remainder in-process (degraded but correct).
                    deferred.append(task)
                    for leftover in reversed(deferred):
                        pending.appendleft(leftover)
                    for state in list(running.values()):
                        kill(state)
                    running.clear()
                    _drain_in_process(pending, policy, fault_plan, telemetry,
                                      record_success, reschedule)
                    return
            for leftover in reversed(deferred):
                pending.appendleft(leftover)

            if not running:
                # Everything is backing off; sleep until the earliest
                # task becomes runnable.
                wake = min(task.not_before for task in pending)
                time.sleep(max(0.0, wake - now))
                continue

            ready = connection_wait(list(running),
                                    timeout=_wait_timeout(running, pending,
                                                          now))
            for conn in ready:
                reap(running.pop(conn))

            now = time.monotonic()
            for conn, state in list(running.items()):
                if state.deadline is not None and now >= state.deadline:
                    running.pop(conn)
                    kill(state)
                    reschedule(state.task, "timeouts",
                               f"exceeded {policy.cell_timeout_s:g}s")
    finally:
        for state in running.values():
            kill(state)


def _wait_timeout(running: Dict, pending: deque, now: float,
                  ) -> Optional[float]:
    """How long the pipe wait may block before a deadline/backoff fires."""
    horizons = [state.deadline for state in running.values()
                if state.deadline is not None]
    horizons += [task.not_before for task in pending if task.not_before > now]
    if not horizons:
        return None  # a pipe will signal (result, error, or EOF on death)
    return max(0.01, min(horizons) - now)


def _drain_in_process(pending: deque, policy, fault_plan, telemetry,
                      record_success, reschedule) -> None:
    """Fallback executor for platforms without child-process support.

    Retries and ``raise`` faults behave exactly as in the process path;
    timeouts cannot be enforced in-process, and ``hang``/``die`` faults
    are downgraded to ``raise`` rather than stalling or killing the
    hosting interpreter.
    """
    from repro.analysis.runner import run_cell_timed

    while pending:
        task = pending.popleft()
        delay = task.not_before - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        fault = (fault_plan.fault_for(task.cell, task.attempt)
                 if fault_plan is not None else None)
        run_cell = _attempt_cell(task.cell, task.attempt)
        telemetry.add("attempts")
        if run_cell is not task.cell:
            telemetry.add("sanitized_retries")
        try:
            if fault is not None:
                telemetry.add("faults_injected")
                raise InjectedFault(
                    f"injected {fault.action} fault (in-process) for "
                    f"({task.cell.design}, {task.cell.benchmark})")
            result, wall_time_s = run_cell_timed(run_cell)
        except Exception as error:  # noqa: BLE001 — any failure retries
            reschedule(task, "cell_errors", f"{type(error).__name__}: {error}")
            continue
        record_success(task, result, wall_time_s)

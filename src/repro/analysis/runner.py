"""Parallel experiment runner with a content-addressed result cache.

The paper's whole evaluation (Figs. 5-8, Tables 6-9) is a
(design x benchmark) grid whose cells are completely independent: every
cell is determined by ``(design, benchmark trace spec, n_refs, seed,
warmup_fraction, processor config, technology)`` and nothing else.  This
module exploits that twice:

* **parallelism** — cells fan out over a ``multiprocessing`` pool.
  Workers receive only a small picklable :class:`CellSpec` and regenerate
  the trace locally from ``(spec, n_refs, seed)`` (generation is
  deterministic and vectorized), so no multi-megabyte trace is ever
  pickled across the process boundary.  ``workers=1`` — or any failure
  to stand up a pool (sandboxes without semaphores, restricted
  platforms) — falls back to the serial path, which produces
  byte-identical results.

* **caching** — an on-disk :class:`ResultCache` keyed by the SHA-256 of
  every simulation input plus a code-version stamp (a digest of the
  ``repro`` package sources).  A warm cache answers a repeated cell
  without simulating; editing any source file under ``repro`` changes
  the stamp and invalidates every entry at once, so stale results can
  never leak across code versions.  Values are the same JSON documents
  :mod:`repro.analysis.storage` writes, one file per cell under
  ``<cache_dir>/<key[:2]>/<key>.json``.

:func:`run_grid` is the one entry point the grid/suite/sweep helpers in
:mod:`repro.analysis.experiments` and :mod:`repro.analysis.sweeps` are
layered on; :func:`execute_cells` is the lower-level list-in/list-out
executor for irregular cell sets (the sweeps).

Fault tolerance — per-cell timeouts, retries with backoff, worker-crash
recovery, checkpoint/resume journals, deterministic fault injection —
lives in :mod:`repro.analysis.resilience`; passing any of ``policy`` /
``checkpoint`` / ``fault_plan`` / ``telemetry`` (or setting the
``REPRO_FAULT_PLAN`` environment variable) routes execution through the
resilient path, which is byte-identical to this module's fast path.
Cache entries carry an integrity digest; a corrupted or truncated entry
is quarantined under ``<cache_dir>/quarantine/`` and recomputed instead
of crashing the grid (``ResultCache.load`` raises the typed
:class:`~repro.analysis.storage.CacheCorruptionError` for callers that
want the failure).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time as _time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

# The code-version stamp moved to repro.obs.manifest (manifests carry it
# too); re-exported here because cache keys embed it and callers import
# it from this module.
from repro.obs.manifest import code_version_stamp
from repro.sim.processor import ProcessorConfig
from repro.sim.system import SystemResult, run_system
from repro.tech import TECH_45NM, Technology
from repro.workloads.profiles import benchmark_names
from repro.workloads.synthetic import TraceSpec, generate_trace

#: Bump when the cache payload layout (not the simulated code) changes.
#: v2 added the per-entry integrity digest; v3 switched the result's
#: ``stats`` field to the canonical pair-list encoding (see
#: :func:`repro.analysis.storage.result_to_dict`), which preserves
#: integer stat keys across the JSON round trip.  Old entries hash to
#: different keys (the version is part of the key payload) and are
#: simply unseen.
CACHE_FORMAT_VERSION = 3


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One grid cell: everything that determines a :class:`SystemResult`.

    Small and picklable by construction — this is the only object
    shipped to pool workers.  ``trace_spec=None`` means "the calibrated
    profile named by ``benchmark``"; a non-``None`` spec supports the
    sweeps' custom workloads.  ``memory_latency_cycles=None`` keeps the
    design-point DRAM (300 cycles).
    """

    design: str
    benchmark: str
    n_refs: int
    seed: int
    warmup_fraction: float = 0.3
    processor_config: Optional[ProcessorConfig] = None
    tech: Technology = TECH_45NM
    trace_spec: Optional[TraceSpec] = None
    memory_latency_cycles: Optional[int] = None
    #: run under the simulator-core sanitizer (invariant checks +
    #: watchdog).  A clean sanitized run returns a byte-identical
    #: result, but the flag is still part of the cache key: a sanitized
    #: entry certifies "checked", and mixing would hide that provenance.
    sanitize: bool = False
    #: simulation backend (see :mod:`repro.sim.backend`).  Backends are
    #: proven observably identical by the differential suite, but the
    #: name is still part of the cache key for the same provenance
    #: reason as ``sanitize``: an entry records *how* it was computed.
    backend: str = "reference"
    #: registry design this cell's ``design`` is a *variant* of.  When
    #: set, ``design`` is a display name (not a registry key) and the
    #: cell is built as ``build_design(design_base, name=design,
    #: **design_overrides)`` — the design-space exploration layer
    #: (:mod:`repro.explore`) runs its expanded variants through the
    #: grid this way.  ``None`` (every classic cell) keeps ``design``
    #: as the registry name.
    design_base: Optional[str] = None
    #: canonical sorted ``(field, value)`` override pairs applied to the
    #: base config (see :class:`~repro.core.config.DesignVariant`).
    #: Part of the cache key: two variants differing in any override
    #: are different simulations.
    design_overrides: Optional[Tuple[Tuple[str, object], ...]] = None

    def key_fields(self) -> dict:
        """The canonical, JSON-able dictionary the cache key hashes."""
        processor = self.processor_config or ProcessorConfig()
        return {
            "design": self.design,
            "benchmark": self.benchmark,
            "n_refs": self.n_refs,
            "seed": self.seed,
            "warmup_fraction": self.warmup_fraction,
            "processor_config": dataclasses.asdict(processor),
            "tech": self.tech.name,
            "trace_spec": (None if self.trace_spec is None
                           else dataclasses.asdict(self.trace_spec)),
            "memory_latency_cycles": self.memory_latency_cycles,
            "sanitize": self.sanitize,
            "backend": self.backend,
            "design_base": self.design_base,
            "design_overrides": (None if self.design_overrides is None
                                 else [[field, value] for field, value
                                       in self.design_overrides]),
        }


def cache_key(cell: CellSpec) -> str:
    """Content hash of one cell: SHA-256 over inputs + code version."""
    payload = dict(cell.key_fields(),
                   code_version=code_version_stamp(),
                   cache_format=CACHE_FORMAT_VERSION)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_cell(cell: CellSpec) -> SystemResult:
    """Simulate one cell from scratch (no cache).  Pool worker entry."""
    from repro.sim.memory import MainMemory

    memory = (None if cell.memory_latency_cycles is None
              else MainMemory(latency_cycles=cell.memory_latency_cycles))
    design = cell.design
    overrides: Dict[str, object] = {}
    if cell.design_base is not None:
        # A variant cell: build the base design under the variant's own
        # name so the result (and the grid row) carries that name.
        design = cell.design_base
        overrides = dict(cell.design_overrides or ())
        overrides["name"] = cell.design
    if cell.trace_spec is not None:
        trace = generate_trace(cell.trace_spec, cell.n_refs, seed=cell.seed)
        return run_system(design, cell.benchmark, trace=trace,
                          warmup_fraction=cell.warmup_fraction,
                          prewarm_spec=cell.trace_spec,
                          processor_config=cell.processor_config,
                          tech=cell.tech, memory=memory,
                          sanitize=cell.sanitize, backend=cell.backend,
                          **overrides)
    return run_system(design, cell.benchmark, n_refs=cell.n_refs,
                      seed=cell.seed, warmup_fraction=cell.warmup_fraction,
                      processor_config=cell.processor_config,
                      tech=cell.tech, memory=memory,
                      sanitize=cell.sanitize, backend=cell.backend,
                      **overrides)


def run_cell_timed(cell: CellSpec) -> Tuple[SystemResult, float]:
    """Simulate one cell, returning ``(result, wall seconds)``.

    Pool worker entry for the detailed path: the wall time is measured
    inside the worker, so it reflects simulation cost, not pool
    scheduling or pickling.
    """
    started = _time.perf_counter()
    result = run_cell(cell)
    return result, _time.perf_counter() - started


@dataclasses.dataclass(frozen=True)
class CellOutcome:
    """One executed cell plus its execution provenance.

    ``wall_time_s`` is the wall-clock cost of answering the cell —
    simulation time for a computed cell, cache-read time for a cached
    one.  Provenance lives here and *not* in :class:`SystemResult` on
    purpose: results stay byte-stable across serial/parallel/cached
    execution (the saved-grid and cache formats hash and compare them),
    while outcomes may differ per run.
    """

    cell: CellSpec
    result: SystemResult
    wall_time_s: float
    from_cache: bool
    #: how many attempts the resilient executor needed (1 on the fast
    #: path: it never retries).
    attempts: int = 1
    #: True when the result was replayed from a checkpoint journal.
    from_checkpoint: bool = False


class ResultCache:
    """Content-addressed on-disk cache of :class:`SystemResult` cells.

    Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is
    :func:`cache_key`.  Each file carries the key fields it was computed
    from (for auditing with plain ``jq``/``grep``), the result in the
    :func:`repro.analysis.storage.result_to_dict` encoding, and an
    integrity digest over the result payload.  Writes are atomic
    (temp file + ``os.replace``) so concurrent workers or overlapping
    pytest sessions can share one cache directory safely.

    Read integrity: :meth:`load` verifies format, fields, and digest,
    raising the typed
    :class:`~repro.analysis.storage.CacheCorruptionError` on anything
    untrustworthy; :meth:`get` turns corruption into a quarantine (the
    bad file is moved to ``<root>/quarantine/`` for post-mortem) plus a
    miss, so grids recompute instead of crashing — or worse, silently
    analyzing garbage.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def load(self, key: str) -> SystemResult:
        """The verified cached result for ``key``.

        Raises :class:`FileNotFoundError` for an absent entry and
        :class:`~repro.analysis.storage.CacheCorruptionError` for one
        that exists but fails any verification step.
        """
        from repro.analysis.storage import (
            CacheCorruptionError,
            integrity_digest,
            result_from_dict,
        )

        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except FileNotFoundError:
            raise
        except OSError as error:
            raise CacheCorruptionError(
                f"unreadable cache entry {path}: {error}") from error
        try:
            payload = json.loads(raw)
        except ValueError as error:
            raise CacheCorruptionError(
                f"cache entry {path} is not valid JSON (truncated "
                f"write?): {error}") from error
        if not isinstance(payload, dict):
            raise CacheCorruptionError(
                f"cache entry {path} is not a JSON object")
        if payload.get("cache_format") != CACHE_FORMAT_VERSION:
            raise CacheCorruptionError(
                f"cache entry {path} has format "
                f"{payload.get('cache_format')!r} "
                f"(expected {CACHE_FORMAT_VERSION})")
        result_payload = payload.get("result")
        if not isinstance(result_payload, dict):
            raise CacheCorruptionError(
                f"cache entry {path} is missing its result payload")
        if payload.get("integrity") != integrity_digest(result_payload):
            raise CacheCorruptionError(
                f"cache entry {path} failed its integrity digest "
                "(bit rot or a hand edit)")
        try:
            return result_from_dict(result_payload)
        except (ValueError, TypeError) as error:
            raise CacheCorruptionError(
                f"cache entry {path} holds an invalid result: "
                f"{error}") from error

    def get(self, key: str) -> Optional[SystemResult]:
        """The cached result for ``key``, or ``None`` on a miss.

        A corrupt entry is quarantined and reported as a miss, so the
        caller recomputes (and :meth:`put` then heals the entry).
        """
        from repro.analysis.storage import CacheCorruptionError

        try:
            result = self.load(key)
        except FileNotFoundError:
            self.misses += 1
            return None
        except CacheCorruptionError:
            self._quarantine(key)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, key: str) -> None:
        """Move a corrupt entry aside (never leave it to fail again)."""
        path = self.path_for(key)
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.quarantined += 1

    def put(self, key: str, cell: CellSpec, result: SystemResult) -> None:
        """Store ``result`` under ``key`` atomically."""
        from repro.analysis.storage import integrity_digest, result_to_dict

        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        result_payload = result_to_dict(result)
        payload = {
            "cache_format": CACHE_FORMAT_VERSION,
            "code_version": code_version_stamp(),
            "cell": cell.key_fields(),
            "integrity": integrity_digest(result_payload),
            "result": result_payload,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
        os.replace(tmp, path)
        self.stores += 1


def as_cache(cache: Union[ResultCache, str, os.PathLike, None],
             ) -> Optional[ResultCache]:
    """Coerce a cache argument (directory path or ResultCache) to a cache."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _run_pool(cells: Sequence[CellSpec], workers: int,
              ) -> Optional[List[Tuple[SystemResult, float]]]:
    """Map :func:`run_cell_timed` over ``cells`` with a process pool.

    Returns ``None`` when no pool can be stood up (missing semaphore
    support, fork restrictions) so the caller falls back to serial.
    """
    import multiprocessing

    try:
        with multiprocessing.get_context().Pool(min(workers, len(cells))) as pool:
            return pool.map(run_cell_timed, cells, chunksize=1)
    except (ImportError, OSError, PermissionError):
        return None


def execute_cells_detailed(cells: Sequence[CellSpec], workers: int = 1,
                           cache: Union[ResultCache, str, os.PathLike,
                                        None] = None,
                           policy=None, checkpoint=None, fault_plan=None,
                           telemetry=None,
                           ) -> List[CellOutcome]:
    """Run every cell, in order, answering from ``cache`` where possible.

    Cache misses fan out over ``workers`` processes when ``workers > 1``
    (serial when ``workers=1`` or the pool is unavailable) and are
    written back to the cache.  The returned list is parallel to
    ``cells`` regardless of execution order, and parallel execution is
    bit-identical to serial: each cell is a deterministic function of
    its spec alone.  Each :class:`CellOutcome` additionally records the
    cell's wall time and whether the cache answered it.

    Passing a :class:`~repro.analysis.resilience.RetryPolicy`
    (``policy``), a checkpoint journal or path (``checkpoint``), a
    :class:`~repro.analysis.resilience.FaultPlan` (``fault_plan``), or a
    :class:`~repro.analysis.resilience.RunnerTelemetry` (``telemetry``)
    — or setting ``REPRO_FAULT_PLAN`` in the environment — routes
    execution through the fault-tolerant executor, which additionally
    retries, times out, and reschedules cells and journals completed
    outcomes.  Results are byte-identical either way.
    """
    cache = as_cache(cache)
    if fault_plan is None:
        from repro.analysis.resilience import FaultPlan

        fault_plan = FaultPlan.from_env()
    if (policy is not None or checkpoint is not None
            or fault_plan is not None or telemetry is not None):
        from repro.analysis.resilience import execute_resilient

        return execute_resilient(cells, workers=workers, cache=cache,
                                 policy=policy, checkpoint=checkpoint,
                                 fault_plan=fault_plan, telemetry=telemetry)
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    pending: List[Tuple[int, CellSpec, str]] = []
    for index, cell in enumerate(cells):
        key = cache_key(cell) if cache is not None else ""
        started = _time.perf_counter()
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            outcomes[index] = CellOutcome(
                cell=cell, result=cached,
                wall_time_s=_time.perf_counter() - started, from_cache=True)
        else:
            pending.append((index, cell, key))

    if pending:
        todo = [cell for _, cell, _ in pending]
        computed: Optional[List[Tuple[SystemResult, float]]] = None
        if workers > 1 and len(todo) > 1:
            computed = _run_pool(todo, workers)
        if computed is None:
            computed = [run_cell_timed(cell) for cell in todo]
        for (index, cell, key), (result, wall_time_s) in zip(pending, computed):
            outcomes[index] = CellOutcome(cell=cell, result=result,
                                          wall_time_s=wall_time_s,
                                          from_cache=False)
            if cache is not None:
                cache.put(key, cell, result)
    return outcomes  # type: ignore[return-value]


def execute_cells(cells: Sequence[CellSpec], workers: int = 1,
                  cache: Union[ResultCache, str, os.PathLike, None] = None,
                  **resilience) -> List[SystemResult]:
    """Run every cell, in order; results only (see
    :func:`execute_cells_detailed` for per-cell provenance)."""
    return [outcome.result for outcome
            in execute_cells_detailed(cells, workers=workers, cache=cache,
                                      **resilience)]


def design_label(design) -> str:
    """The grid-row name of one ``designs`` entry (name or variant)."""
    return design if isinstance(design, str) else design.name


def _cell_design_fields(design) -> Tuple[str, Optional[str],
                                         Optional[Tuple[Tuple[str, object],
                                                        ...]]]:
    """``(design, design_base, design_overrides)`` for one entry.

    A plain string is a registry design name; anything else is treated
    as a :class:`~repro.core.config.DesignVariant` (duck-typed on
    ``name`` / ``base`` / ``overrides`` so the runner does not import
    the exploration layer).
    """
    if isinstance(design, str):
        return design, None, None
    return design.name, design.base, tuple(design.overrides)


def grid_cell_specs(designs: Sequence,
                    benchmarks: Optional[Sequence[str]] = None,
                    n_refs: int = 30_000, seed: int = 7,
                    warmup_fraction: float = 0.3,
                    processor_config: Optional[ProcessorConfig] = None,
                    tech: Technology = TECH_45NM,
                    sanitize: bool = False,
                    backend: str = "reference",
                    ) -> Tuple[List[CellSpec], Tuple[str, ...]]:
    """The cell specs a :func:`run_grid` call would execute, without
    executing them.

    Returns ``(cells, benchmarks)`` with the benchmark default
    resolved.  Callers that only need the grid's *identity* — the
    derived-artifact lane fingerprints a whole report by its cells'
    cache keys before deciding whether any simulation is needed at all
    — get it from here for the cost of a few hashes.

    ``designs`` entries are registry names (strings) or
    :class:`~repro.core.config.DesignVariant`-like objects; a variant's
    cell carries its base design and override pairs so pool workers can
    rebuild it without any registry mutation.
    """
    if benchmarks is None:
        benchmarks = benchmark_names()
    fields = [_cell_design_fields(design) for design in designs]
    cells = [CellSpec(design=name, benchmark=benchmark, n_refs=n_refs,
                      seed=seed, warmup_fraction=warmup_fraction,
                      processor_config=processor_config, tech=tech,
                      sanitize=sanitize, backend=backend,
                      design_base=base, design_overrides=overrides)
             for benchmark in benchmarks
             for name, base, overrides in fields]
    return cells, tuple(benchmarks)


def run_grid(designs: Sequence,
             benchmarks: Optional[Sequence[str]] = None,
             n_refs: int = 30_000, seed: int = 7,
             warmup_fraction: float = 0.3,
             processor_config: Optional[ProcessorConfig] = None,
             tech: Technology = TECH_45NM,
             workers: int = 1,
             cache: Union[ResultCache, str, os.PathLike, None] = None,
             policy=None, checkpoint=None, fault_plan=None, telemetry=None,
             sanitize: bool = False,
             backend: str = "reference"):
    """Run a full (design x benchmark) grid through the runner.

    Returns an :class:`~repro.analysis.experiments.ExperimentGrid`.
    Every design sees the identical per-benchmark reference stream (the
    trace is a pure function of ``(profile spec, n_refs, seed)``), so
    this matches the legacy serial grid cell-for-cell.  ``policy`` /
    ``checkpoint`` / ``fault_plan`` / ``telemetry`` opt into the
    fault-tolerant executor (see :func:`execute_cells_detailed`).
    ``sanitize=True`` runs every cell under the simulator-core
    sanitizer; a clean sanitized grid is byte-identical to a plain one.
    ``backend`` selects the simulation backend for every cell (see
    :mod:`repro.sim.backend`); the differential suite proves grids are
    byte-identical across backends.

    ``designs`` entries may be registry names or
    :class:`~repro.core.config.DesignVariant`-like objects (see
    :func:`grid_cell_specs`); the returned grid is keyed by each
    entry's display name either way.
    """
    from repro.analysis.experiments import ExperimentGrid

    cells, benchmarks = grid_cell_specs(
        designs, benchmarks, n_refs=n_refs, seed=seed,
        warmup_fraction=warmup_fraction, processor_config=processor_config,
        tech=tech, sanitize=sanitize, backend=backend)
    outcomes = execute_cells_detailed(cells, workers=workers, cache=cache,
                                      policy=policy, checkpoint=checkpoint,
                                      fault_plan=fault_plan,
                                      telemetry=telemetry)
    cell_results: Dict[Tuple[str, str], SystemResult] = {
        (outcome.cell.design, outcome.cell.benchmark): outcome.result
        for outcome in outcomes
    }
    cell_meta = {
        (outcome.cell.design, outcome.cell.benchmark): {
            "wall_time_s": outcome.wall_time_s,
            "from_cache": outcome.from_cache,
            "attempts": outcome.attempts,
            "from_checkpoint": outcome.from_checkpoint,
            "l2_hits": outcome.result.l2_hits,
            "l2_misses": outcome.result.l2_misses,
            # The cell's result-cache key: the provenance fingerprint
            # the derived-artifact lane builds its own keys from, also
            # recorded when no result cache was in play (the key is a
            # pure function of the spec + code version, not of whether
            # a cache directory happened to be configured).
            "cache_key": cache_key(outcome.cell),
        }
        for outcome in outcomes
    }
    return ExperimentGrid(tuple(design_label(design) for design in designs),
                          tuple(benchmarks), cell_results,
                          cell_meta=cell_meta)

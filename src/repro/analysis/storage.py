"""Persistence for experiment results (JSON).

Grid sweeps are the expensive part of the reproduction; this module
saves their :class:`~repro.sim.system.SystemResult` cells to a JSON
document so analyses (tables, figures, the report) can be re-rendered
without re-simulating, and results can be diffed across code versions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Tuple

from repro.analysis.experiments import ExperimentGrid
from repro.sim.system import SystemResult

#: v2 canonicalized the result ``stats`` encoding: a sorted list of
#: ``[key, value]`` pairs instead of a JSON object.  JSON object keys
#: are always strings, so the v1 encoding silently converted integer
#: stat keys (e.g. per-distance or per-bank breakdowns) to strings on
#: the way to disk — a loaded grid could then compare unequal to the
#: grid that produced it and re-derive different artifact fingerprints.
#: Pair lists keep each key's JSON type intact.  v1 documents still
#: load (their stringified keys are unrecoverable, and kept as-is).
FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, FORMAT_VERSION)


class CacheCorruptionError(ValueError):
    """A persisted result entry exists but cannot be trusted.

    Raised (never silently swallowed into garbage data) when a cache
    file is truncated, is not JSON, carries the wrong format version,
    fails result-field validation, or fails its integrity digest.  The
    runner's :class:`~repro.analysis.runner.ResultCache` catches this to
    quarantine the entry and recompute the cell instead of crashing the
    grid — see ``ResultCache.get`` vs the raising ``ResultCache.load``.
    """


def _digest_canonical(value):
    """A JSON-able image of ``value`` that keeps dict-key types apart.

    ``json.dumps`` stringifies non-string dictionary keys, so a naive
    canonical encoding would hash ``{0: 3}`` and ``{"0": 3}`` — two
    different results — to the same digest (and crash outright on a
    dict mixing int and str keys under ``sort_keys=True``).  Every dict
    is therefore rewritten as ``{"__dict__": [[key, value], ...]}``
    with the pairs sorted by the compact JSON encoding of their
    (recursively canonicalized) key: keys stay JSON values of their own
    type, sorting never compares ints to strings, and the single-key
    ``__dict__`` wrapper cannot collide with any list or scalar a
    payload could contain.
    """
    if isinstance(value, dict):
        pairs = [[_digest_canonical(key), _digest_canonical(val)]
                 for key, val in value.items()]
        pairs.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True,
                                               separators=(",", ":")))
        return {"__dict__": pairs}
    if isinstance(value, (list, tuple)):
        return [_digest_canonical(item) for item in value]
    return value


def integrity_digest(result_payload: dict) -> str:
    """SHA-256 over the canonical JSON encoding of one result payload.

    Stored alongside every cache entry so bit rot *inside* an otherwise
    well-formed JSON document (a flipped digit survives both
    ``json.load`` and field validation) is still detected at read time.
    The canonical form (see :func:`_digest_canonical`) is key-type
    aware, so payloads differing only in the type of a nested dict key
    never share a digest — a hand-built grid's ``content:`` fallback
    fingerprint (:meth:`~repro.analysis.experiments.ExperimentGrid.cell_keys`)
    depends on that.
    """
    canonical = json.dumps(_digest_canonical(result_payload),
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _encode_stats(stats: dict) -> List[list]:
    """Canonical JSON encoding of a result's ``stats`` dictionary.

    A sorted list of ``[key, value]`` pairs rather than a JSON object:
    object keys must be strings, so ``json.dump`` would silently
    stringify integer keys and the decoded dictionary would no longer
    equal the one that was saved.  Pairs carry each key as a JSON value
    of its own type.  Sorting is by ``(type name, stringified key)`` —
    deterministic for the mixed int/str key sets real designs produce
    without ever comparing ints to strings.
    """
    return [[key, stats[key]]
            for key in sorted(stats, key=lambda k: (type(k).__name__, str(k)))]


def _decode_stats(encoded: object) -> dict:
    """Inverse of :func:`_encode_stats` (also accepts the legacy v1
    plain-object form, whose keys are necessarily strings)."""
    if isinstance(encoded, dict):
        return encoded
    if not isinstance(encoded, list):
        raise ValueError(
            f"stats must be a pair list or legacy object, got "
            f"{type(encoded).__name__}")
    stats = {}
    for item in encoded:
        if not isinstance(item, list) or len(item) != 2:
            raise ValueError(f"malformed stats pair: {item!r}")
        stats[item[0]] = item[1]
    return stats


def result_to_dict(result: SystemResult) -> dict:
    """A JSON-ready dictionary of one result.

    Everything is ``dataclasses.asdict`` except ``stats``, which uses
    the canonical pair-list encoding (see :func:`_encode_stats`) so the
    JSON round trip is lossless for non-string stat keys.
    """
    payload = dataclasses.asdict(result)
    payload["stats"] = _encode_stats(result.stats)
    return payload


def result_from_dict(payload: dict) -> SystemResult:
    """Inverse of :func:`result_to_dict`."""
    fields = {f.name for f in dataclasses.fields(SystemResult)}
    unknown = set(payload) - fields
    if unknown:
        raise ValueError(f"unknown result fields: {sorted(unknown)}")
    missing = fields - set(payload)
    if missing:
        raise ValueError(f"missing result fields: {sorted(missing)}")
    payload = dict(payload)
    payload["stats"] = _decode_stats(payload["stats"])
    return SystemResult(**payload)


def save_grid(path: str, grid: ExperimentGrid) -> None:
    """Write a grid (and all its cells) to ``path`` as JSON."""
    document = {
        "format_version": FORMAT_VERSION,
        "designs": list(grid.designs),
        "benchmarks": list(grid.benchmarks),
        "cells": [
            {"design": design, "benchmark": benchmark,
             "result": result_to_dict(result)}
            for (design, benchmark), result in sorted(grid.results.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)


def load_grid(path: str) -> ExperimentGrid:
    """Read a grid written by :func:`save_grid`."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported grid format {version!r} (expected one of "
            f"{list(_SUPPORTED_VERSIONS)})")
    designs = tuple(document["designs"])
    benchmarks = tuple(document["benchmarks"])
    results: Dict[Tuple[str, str], SystemResult] = {}
    for cell in document["cells"]:
        results[(cell["design"], cell["benchmark"])] = result_from_dict(
            cell["result"])
    _validate_coverage(path, designs, benchmarks, results)
    return ExperimentGrid(
        designs=designs,
        benchmarks=benchmarks,
        results=results,
    )


def _validate_coverage(path: str, designs: Tuple[str, ...],
                       benchmarks: Tuple[str, ...],
                       results: Dict[Tuple[str, str], SystemResult]) -> None:
    """Reject documents whose cells don't cover ``designs x benchmarks``.

    A truncated or hand-edited grid would otherwise load fine and only
    explode deep inside an analysis; fail here with the exact cells that
    are missing or unexpected.
    """
    expected = {(design, benchmark)
                for design in designs for benchmark in benchmarks}
    missing = sorted(expected - set(results))
    extra = sorted(set(results) - expected)
    if not missing and not extra:
        return
    problems = []
    if missing:
        problems.append(
            f"{len(missing)} missing cell(s) (first few: {missing[:5]})")
    if extra:
        problems.append(
            f"{len(extra)} cell(s) outside the declared grid "
            f"(first few: {extra[:5]})")
    raise ValueError(
        f"grid document {path!r} does not cover its declared "
        f"{len(designs)} designs x {len(benchmarks)} benchmarks: "
        + "; ".join(problems))

"""Parameter-sensitivity sweeps around the paper's design point.

The paper evaluates one technology point (45 nm, 10 GHz, 300-cycle
memory).  These sweeps quantify how its conclusions move with the
parameters a skeptical reader would poke at:

* :func:`memory_latency_sweep` — does TLC's advantage survive slower or
  faster memory?  (It grows as memory gets faster: L2 lookup latency is
  a larger share of the stall budget.)
* :func:`frequency_sweep` — the TLC latency budget at other clock
  rates: bank access cycles rescale, transmission-line flight stays
  about one cycle until the cycle time drops below the flight time.
* :func:`dependence_sweep` — how workload dependence (pointer chasing)
  moves each design's exposed latency; the knob behind mcf vs swim.

The simulating sweeps (memory latency, dependence) route their cells
through :mod:`repro.analysis.runner`, so they accept the same
``workers`` / ``cache`` knobs as the grid helpers, plus a
``derived_cache`` lane (:mod:`repro.analysis.derived`) that memoizes
the finished sweep table keyed by the cells' result-cache keys — a
warm lane answers without touching the runner at all.  The frequency
sweep is purely analytic (no simulation) and runs inline.

Each sweep returns plain lists of (parameter, metric) pairs so callers
can table or chart them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.area.cacti import bank_access_time_cycles
from repro.sim.processor import ProcessorConfig
from repro.tech import Technology
from repro.tline.signaling import evaluate_link
from repro.workloads.synthetic import TraceSpec


def memory_latency_sweep(benchmark: str = "gcc",
                         latencies: Sequence[int] = (150, 300, 600),
                         designs: Sequence[str] = ("SNUCA2", "TLC"),
                         n_refs: int = 10_000,
                         seed: int = 7,
                         warmup_fraction: float = 0.3,
                         workers: int = 1,
                         cache=None,
                         derived_cache=None,
                         backend: str = "reference",
                         ) -> List[Tuple[int, Dict[str, float]]]:
    """Execution cycles per design at several DRAM latencies.

    Returns ``[(latency, {design: cycles}), ...]``.  ``backend``
    selects the simulation backend per cell, exactly as in
    :func:`~repro.analysis.runner.run_grid` (it is part of each cell's
    cache key, and results are byte-identical across backends).
    """
    from repro.analysis.derived import as_lane
    from repro.analysis.runner import CellSpec, cache_key, execute_cells

    cells = [CellSpec(design=design, benchmark=benchmark, n_refs=n_refs,
                      seed=seed, warmup_fraction=warmup_fraction,
                      memory_latency_cycles=latency, backend=backend)
             for latency in latencies for design in designs]

    def compute() -> list:
        results = execute_cells(cells, workers=workers, cache=cache)
        by_cell = {(cell.memory_latency_cycles, cell.design): result
                   for cell, result in zip(cells, results)}
        return [[latency, {design: by_cell[(latency, design)].cycles
                           for design in designs}]
                for latency in latencies]

    lane = as_lane(derived_cache)
    rows = lane.get_or_compute(
        kind="sweep.memory_latency",
        cell_keys=[cache_key(cell) for cell in cells],
        # The key's cell set is sorted, so the row/column order must be
        # pinned separately.
        params={"benchmark": benchmark, "latencies": list(latencies),
                "designs": list(designs)},
        compute=compute)
    return [(latency, by_design) for latency, by_design in rows]


def frequency_sweep(frequencies_ghz: Sequence[float] = (5.0, 10.0, 20.0),
                    bank_bytes: int = 512 * 1024,
                    length_m: float = 0.013):
    """TLC latency budget across clock frequencies.

    Returns ``[(ghz, bank_cycles, line_cycles, usable), ...]`` — how the
    bank access and the 1.3 cm line trade places as the cycle shrinks.
    """
    rows = []
    for ghz in frequencies_ghz:
        tech = Technology(name=f"45nm-{ghz:g}GHz", frequency_hz=ghz * 1e9)
        bank_cycles = bank_access_time_cycles(bank_bytes, tech)
        report = evaluate_link(length_m, tech=tech)
        rows.append((ghz, bank_cycles, report.latency_cycles, report.usable))
    return rows


def dependence_sweep(fractions: Sequence[float] = (0.0, 0.3, 0.6, 0.9),
                     designs: Sequence[str] = ("SNUCA2", "TLC"),
                     n_refs: int = 8_000, seed: int = 7,
                     warmup_fraction: float = 0.3,
                     processor_config: Optional[ProcessorConfig] = None,
                     workers: int = 1,
                     cache=None,
                     derived_cache=None,
                     backend: str = "reference"):
    """Design sensitivity to workload dependence chains.

    Returns ``[(fraction, {design: cycles}), ...]``; the gap between
    designs should widen as dependence rises (nothing hides L2 latency
    in a pointer chase).  ``backend`` selects the simulation backend
    per cell, as in :func:`~repro.analysis.runner.run_grid`.
    """
    from repro.analysis.derived import as_lane
    from repro.analysis.runner import CellSpec, cache_key, execute_cells

    specs = {fraction: TraceSpec(mean_gap=12.0, hot_blocks=100_000,
                                 hot_skew=1.5, dependent_fraction=fraction,
                                 write_fraction=0.25)
             for fraction in fractions}
    cells = [CellSpec(design=design, benchmark=f"dep-{fraction}",
                      n_refs=n_refs, seed=seed,
                      warmup_fraction=warmup_fraction,
                      trace_spec=specs[fraction],
                      processor_config=processor_config,
                      backend=backend)
             for fraction in fractions for design in designs]

    def compute() -> list:
        results = execute_cells(cells, workers=workers, cache=cache)
        by_cell = {(cell.benchmark, cell.design): result
                   for cell, result in zip(cells, results)}
        return [[fraction,
                 {design: by_cell[(f"dep-{fraction}", design)].cycles
                  for design in designs}]
                for fraction in fractions]

    lane = as_lane(derived_cache)
    rows = lane.get_or_compute(
        kind="sweep.dependence",
        cell_keys=[cache_key(cell) for cell in cells],
        params={"fractions": list(fractions), "designs": list(designs)},
        compute=compute)
    return [(fraction, by_design) for fraction, by_design in rows]

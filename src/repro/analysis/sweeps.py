"""Parameter-sensitivity sweeps around the paper's design point.

The paper evaluates one technology point (45 nm, 10 GHz, 300-cycle
memory).  These sweeps quantify how its conclusions move with the
parameters a skeptical reader would poke at:

* :func:`memory_latency_sweep` — does TLC's advantage survive slower or
  faster memory?  (It grows as memory gets faster: L2 lookup latency is
  a larger share of the stall budget.)
* :func:`frequency_sweep` — the TLC latency budget at other clock
  rates: bank access cycles rescale, transmission-line flight stays
  about one cycle until the cycle time drops below the flight time.
* :func:`dependence_sweep` — how workload dependence (pointer chasing)
  moves each design's exposed latency; the knob behind mcf vs swim.

Each sweep returns plain lists of (parameter, metric) pairs so callers
can table or chart them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.area.cacti import bank_access_time_cycles
from repro.sim.processor import ProcessorConfig
from repro.sim.system import run_system
from repro.tech import Technology
from repro.tline.signaling import evaluate_link
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import TraceSpec, generate_trace


def memory_latency_sweep(benchmark: str = "gcc",
                         latencies: Sequence[int] = (150, 300, 600),
                         designs: Sequence[str] = ("SNUCA2", "TLC"),
                         n_refs: int = 10_000,
                         seed: int = 7) -> List[Tuple[int, Dict[str, float]]]:
    """Execution cycles per design at several DRAM latencies.

    Returns ``[(latency, {design: cycles}), ...]``.
    """
    from repro.sim.memory import MainMemory
    from repro.sim.system import System
    from repro.workloads.synthetic import resident_block_addresses

    profile = get_profile(benchmark)
    trace = generate_trace(profile.spec, n_refs, seed=seed)
    resident = resident_block_addresses(profile.spec)
    results = []
    for latency in latencies:
        row: Dict[str, float] = {}
        for design in designs:
            system = System(design,
                            memory=MainMemory(latency_cycles=latency))
            ordered = (resident if system.l2.install_order == "popular_last"
                       else reversed(resident))
            for addr in ordered:
                system.l2.install(addr)
            result = system.run(trace, benchmark,
                                warmup_refs=int(len(trace) * 0.3))
            row[design] = result.cycles
        results.append((latency, row))
    return results


def frequency_sweep(frequencies_ghz: Sequence[float] = (5.0, 10.0, 20.0),
                    bank_bytes: int = 512 * 1024,
                    length_m: float = 0.013):
    """TLC latency budget across clock frequencies.

    Returns ``[(ghz, bank_cycles, line_cycles, usable), ...]`` — how the
    bank access and the 1.3 cm line trade places as the cycle shrinks.
    """
    rows = []
    for ghz in frequencies_ghz:
        tech = Technology(name=f"45nm-{ghz:g}GHz", frequency_hz=ghz * 1e9)
        bank_cycles = bank_access_time_cycles(bank_bytes, tech)
        report = evaluate_link(length_m, tech=tech)
        rows.append((ghz, bank_cycles, report.latency_cycles, report.usable))
    return rows


def dependence_sweep(fractions: Sequence[float] = (0.0, 0.3, 0.6, 0.9),
                     designs: Sequence[str] = ("SNUCA2", "TLC"),
                     n_refs: int = 8_000, seed: int = 7,
                     processor_config: Optional[ProcessorConfig] = None):
    """Design sensitivity to workload dependence chains.

    Returns ``[(fraction, {design: cycles}), ...]``; the gap between
    designs should widen as dependence rises (nothing hides L2 latency
    in a pointer chase).
    """
    results = []
    for fraction in fractions:
        spec = TraceSpec(mean_gap=12.0, hot_blocks=100_000, hot_skew=1.5,
                         dependent_fraction=fraction, write_fraction=0.25)
        trace = generate_trace(spec, n_refs, seed=seed)
        row: Dict[str, float] = {}
        for design in designs:
            result = run_system(design, f"dep-{fraction}", trace=trace,
                                prewarm_spec=spec,
                                processor_config=processor_config)
            row[design] = result.cycles
        results.append((fraction, row))
    return results

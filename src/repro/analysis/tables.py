"""Paper reference values, table formatting, and the pure row builders
behind the paper's Tables 2/6/7/8/9.

Every table and figure in the paper's evaluation section is recorded
here as published, so the benchmark harnesses can print measured-vs-
paper rows and the tests can assert that the reproduced *shapes* hold
(who wins, by roughly what factor) without requiring absolute-number
matches — our substrate is a synthetic simulator, the authors' was
Simics on commercial workloads.

The ``*_rows`` builders are the ``(grid slice) -> dataset`` half of
each report table: JSON-able lists of lists that round-trip through
the derived-artifact cache lane (:mod:`repro.analysis.derived`)
unchanged, so a cached dataset renders byte-identically to a freshly
computed one.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Table 2 — design parameters as published.
PAPER_TABLE2: Dict[str, Dict[str, object]] = {
    "TLC": {"banks": 32, "banks_per_block": 1, "bank_kb": 512,
            "lines_per_pair": 128, "total_lines": 2048,
            "uncontended": (10, 16), "bank_access": 8},
    "TLCopt1000": {"banks": 16, "banks_per_block": 2, "bank_kb": 1024,
                   "lines_per_pair": 126, "total_lines": 1008,
                   "uncontended": (12, 13), "bank_access": 10},
    "TLCopt500": {"banks": 16, "banks_per_block": 4, "bank_kb": 1024,
                  "lines_per_pair": 64, "total_lines": 512,
                  "uncontended": (12, 12), "bank_access": 10},
    "TLCopt350": {"banks": 16, "banks_per_block": 8, "bank_kb": 1024,
                  "lines_per_pair": 44, "total_lines": 352,
                  "uncontended": (12, 12), "bank_access": 10},
    "SNUCA2": {"banks": 32, "banks_per_block": 1, "bank_kb": 512,
               "uncontended": (9, 32), "bank_access": 8},
    "DNUCA": {"banks": 256, "banks_per_block": 1, "bank_kb": 64,
              "uncontended": (3, 47), "bank_access": 3},
}

#: Table 6 — benchmark characteristics as published.  Keys: benchmark ->
#: (TLC misses/1k instr, DNUCA misses/1k instr, DNUCA close-hit %,
#:  DNUCA promotes/inserts, TLC predictable %, DNUCA predictable %).
PAPER_TABLE6: Dict[str, Dict[str, float]] = {
    "bzip": {"tlc_mpki": 0.051, "dnuca_mpki": 0.052, "close_hit": 0.81,
             "promotes_per_insert": 64, "tlc_pred": 0.92, "dnuca_pred": 0.56},
    "gcc": {"tlc_mpki": 0.068, "dnuca_mpki": 0.070, "close_hit": 0.99,
            "promotes_per_insert": 610, "tlc_pred": 0.99, "dnuca_pred": 0.62},
    "mcf": {"tlc_mpki": 0.019, "dnuca_mpki": 0.019, "close_hit": 0.48,
            "promotes_per_insert": 12000, "tlc_pred": 0.82, "dnuca_pred": 0.24},
    "perl": {"tlc_mpki": 0.028, "dnuca_mpki": 0.028, "close_hit": 0.97,
             "promotes_per_insert": 9.7, "tlc_pred": 0.96, "dnuca_pred": 0.90},
    "equake": {"tlc_mpki": 6.8, "dnuca_mpki": 5.2, "close_hit": 0.16,
               "promotes_per_insert": 0.55, "tlc_pred": 0.90, "dnuca_pred": 0.38},
    "swim": {"tlc_mpki": 40.0, "dnuca_mpki": 38.0, "close_hit": 0.007,
             "promotes_per_insert": 0.15, "tlc_pred": 0.98, "dnuca_pred": 0.39},
    "applu": {"tlc_mpki": 16.0, "dnuca_mpki": 16.0, "close_hit": 0.010,
              "promotes_per_insert": 0.06, "tlc_pred": 0.98, "dnuca_pred": 0.38},
    "lucas": {"tlc_mpki": 13.0, "dnuca_mpki": 12.0, "close_hit": 0.072,
              "promotes_per_insert": 0.15, "tlc_pred": 0.99, "dnuca_pred": 0.49},
    "apache": {"tlc_mpki": 4.8, "dnuca_mpki": 3.8, "close_hit": 0.67,
               "promotes_per_insert": 3.7, "tlc_pred": 0.98, "dnuca_pred": 0.61},
    "zeus": {"tlc_mpki": 6.4, "dnuca_mpki": 4.8, "close_hit": 0.60,
             "promotes_per_insert": 2.5, "tlc_pred": 0.97, "dnuca_pred": 0.57},
    "sjbb": {"tlc_mpki": 2.3, "dnuca_mpki": 2.3, "close_hit": 0.58,
             "promotes_per_insert": 1.9, "tlc_pred": 0.93, "dnuca_pred": 0.59},
    "oltp": {"tlc_mpki": 0.93, "dnuca_mpki": 0.79, "close_hit": 0.89,
             "promotes_per_insert": 13, "tlc_pred": 0.98, "dnuca_pred": 0.77},
}

#: Table 7 — consumed substrate area, mm^2.
PAPER_TABLE7: Dict[str, Dict[str, float]] = {
    "DNUCA": {"storage": 92.0, "channel": 17.0, "controller": 1.1, "total": 110.0},
    "TLC": {"storage": 77.0, "channel": 3.1, "controller": 10.0, "total": 91.0},
}

#: Table 8 — communication-network transistor inventory.
PAPER_TABLE8: Dict[str, Dict[str, float]] = {
    "DNUCA": {"transistors": 1.2e7, "gate_width_mega_lambda": 440.0},
    "TLC": {"transistors": 1.9e5, "gate_width_mega_lambda": 20.0},
}

#: Table 9 — banks accessed per request and network dynamic power (mW).
PAPER_TABLE9: Dict[str, Dict[str, float]] = {
    "bzip": {"dnuca_banks": 2.3, "dnuca_mw": 150, "tlc_mw": 56},
    "gcc": {"dnuca_banks": 2.0, "dnuca_mw": 150, "tlc_mw": 100},
    "mcf": {"dnuca_banks": 2.6, "dnuca_mw": 350, "tlc_mw": 150},
    "perl": {"dnuca_banks": 2.0, "dnuca_mw": 63, "tlc_mw": 36},
    "equake": {"dnuca_banks": 2.5, "dnuca_mw": 87, "tlc_mw": 23},
    "swim": {"dnuca_banks": 2.5, "dnuca_mw": 190, "tlc_mw": 56},
    "applu": {"dnuca_banks": 2.5, "dnuca_mw": 110, "tlc_mw": 34},
    "lucas": {"dnuca_banks": 2.5, "dnuca_mw": 57, "tlc_mw": 17},
    "apache": {"dnuca_banks": 2.4, "dnuca_mw": 200, "tlc_mw": 67},
    "zeus": {"dnuca_banks": 2.4, "dnuca_mw": 170, "tlc_mw": 53},
    "sjbb": {"dnuca_banks": 2.4, "dnuca_mw": 130, "tlc_mw": 43},
    "oltp": {"dnuca_banks": 2.1, "dnuca_mw": 220, "tlc_mw": 90},
}

#: Figure 5 qualitative shape: which benchmarks each design should
#: clearly improve over SNUCA2 (normalized execution time well below 1)
#: and which it should not (close to 1).
PAPER_FIG5_SHAPE: Dict[str, Dict[str, Sequence[str]]] = {
    "TLC": {
        "improves": ("gcc", "mcf"),
        "neutral": ("swim", "applu", "lucas"),
    },
    "DNUCA": {
        "improves": ("gcc", "equake"),
        "neutral": ("swim", "applu", "lucas"),
    },
}


def signal_integrity_rows() -> List[list]:
    """Section 5 criteria rows for every Table 1 line geometry."""
    from repro.tline import TABLE1_LINES, evaluate_link

    rows = []
    for geometry in TABLE1_LINES:
        report = evaluate_link(geometry.length)
        rows.append([
            geometry.name, f"{report.line.z0:.1f}",
            f"{report.pulse.delay_s * 1e12:.0f} ps",
            f"{report.amplitude_fraction:.0%} (>=75%)",
            f"{report.width_fraction:.0%} (>=40%)",
            "PASS" if report.usable else "FAIL",
        ])
    return rows


def table2_rows() -> List[list]:
    """Table 2 rows: design parameters, measured vs paper."""
    from repro.core.config import DESIGNS

    rows = []
    for name, config in DESIGNS.items():
        paper = PAPER_TABLE2[name]
        measured = config.uncontended_latency_range
        rows.append([name, config.banks, f"{config.bank_bytes // 1024} KB",
                     config.total_lines or "-",
                     f"{measured[0]}-{measured[1]}",
                     f"{paper['uncontended'][0]}-{paper['uncontended'][1]}"])
    return rows


def table6_rows(grid) -> List[list]:
    """Table 6 rows: benchmark characteristics, measured vs paper.

    ``grid`` must hold TLC and DNUCA cells for every benchmark.
    """
    rows = []
    for bench in grid.benchmarks:
        tlc = grid.result("TLC", bench)
        dnuca = grid.result("DNUCA", bench)
        paper = PAPER_TABLE6[bench]
        close = dnuca.stats.get("close_hits", 0) / max(1, dnuca.l2_requests)
        promotes = dnuca.stats.get("promotions", 0)
        inserts = max(1, dnuca.stats.get("insertions", 0))
        rows.append([
            bench,
            f"{tlc.misses_per_kinstr:.3g} / {paper['tlc_mpki']:.3g}",
            f"{dnuca.misses_per_kinstr:.3g} / {paper['dnuca_mpki']:.3g}",
            f"{close:.0%} / {paper['close_hit']:.0%}",
            f"{promotes / inserts:.3g} / {paper['promotes_per_insert']:.3g}",
            f"{tlc.predictable_lookup_fraction:.0%} / {paper['tlc_pred']:.0%}",
            f"{dnuca.predictable_lookup_fraction:.0%} / {paper['dnuca_pred']:.0%}",
        ])
    return rows


def table7_rows() -> List[list]:
    """Table 7 rows: consumed substrate area, measured vs paper."""
    from repro.area import dnuca_area, tlc_area
    from repro.core.config import DESIGNS

    rows = []
    for name, report in (("DNUCA", dnuca_area()),
                         ("TLC", tlc_area(DESIGNS["TLC"].total_lines))):
        mm2 = report.as_mm2()
        paper = PAPER_TABLE7[name]
        rows.append([name,
                     f"{mm2['storage_mm2']:.1f} / {paper['storage']}",
                     f"{mm2['channel_mm2']:.1f} / {paper['channel']}",
                     f"{mm2['controller_mm2']:.1f} / {paper['controller']}",
                     f"{mm2['total_mm2']:.0f} / {paper['total']:.0f}"])
    return rows


def table8_rows() -> List[list]:
    """Table 8 rows: network transistor inventory, measured vs paper."""
    from repro.area import dnuca_network_transistors, tlc_network_transistors
    from repro.core.config import DESIGNS

    rows = []
    for name, report in (("DNUCA", dnuca_network_transistors()),
                         ("TLC", tlc_network_transistors(
                             DESIGNS["TLC"].total_lines))):
        paper = PAPER_TABLE8[name]
        rows.append([name,
                     f"{report.transistors:.2e} / {paper['transistors']:.1e}",
                     f"{report.gate_width_mega_lambda:.0f} M / "
                     f"{paper['gate_width_mega_lambda']:.0f} M"])
    return rows


def table9_rows(grid) -> List[list]:
    """Table 9 rows: banks per request and network power, vs paper."""
    rows = []
    for bench in grid.benchmarks:
        dnuca = grid.result("DNUCA", bench)
        tlc = grid.result("TLC", bench)
        paper = PAPER_TABLE9[bench]
        saving = 1 - tlc.network_power_w / max(1e-12, dnuca.network_power_w)
        paper_saving = 1 - paper["tlc_mw"] / paper["dnuca_mw"]
        rows.append([
            bench,
            f"{dnuca.banks_accessed_per_request:.2f} / {paper['dnuca_banks']}",
            f"{tlc.banks_accessed_per_request:.0f} / 1",
            f"{saving:.0%} / {paper_saving:.0%}",
        ])
    return rows


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table (the benchmark harnesses print these)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{value:.3g}" if isinstance(value, float) else str(value)
            for value in row
        ])
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def normalized_time_rows(grid) -> List[list]:
    """Normalized-execution-time rows for a whole grid.

    ``[benchmark, <time normalized to the grid's first design>...]`` —
    the dataset behind ``repro grid``'s summary table and the service's
    job-result document.  The baseline is always the grid's first
    design, so the rows (and the derived-lane key built from them) are
    a pure function of the grid.
    """
    baseline = grid.designs[0]
    return [[bench] + [
        round(grid.normalized_execution_time(design, bench, baseline), 3)
        for design in grid.designs
    ] for bench in grid.benchmarks]


def normalized_time_artifact(grid, lane) -> dict:
    """The ``grid.normalized`` derived artifact for ``grid``, via ``lane``.

    ``{"dataset": rows, "rendered": ascii table}`` routed through the
    derived-artifact lane under one well-known key space — the CLI
    ``grid`` command and the job service both call this, so a lane
    warmed by either answers the other.
    """
    def compute() -> dict:
        rows = normalized_time_rows(grid)
        rendered = format_table(
            ["benchmark"] + list(grid.designs), rows,
            title=f"Normalized execution time ({grid.designs[0]} = 1.0)")
        return {"dataset": rows, "rendered": rendered}

    return lane.get_or_compute(
        kind="grid.normalized",
        cell_keys=list(grid.cell_keys()),
        # cell_keys is a sorted set; the table's row/column order (and
        # the baseline, always column 0) is pinned here.
        params={"designs": list(grid.designs),
                "benchmarks": list(grid.benchmarks)},
        compute=compute)

"""Area, access-time, and transistor-inventory models.

Substitutes for the paper's use of ECACTI (bank access time and layout)
and the BACPAC-style device models (transistor counts and gate widths).
Constants are calibrated to the paper's published values — 3/8/10-cycle
bank access times (Table 2), the Table 7 area breakdown, and the Table 8
transistor inventory — and scale with design parameters so that other
configurations can be explored.
"""

from repro.area.cacti import bank_access_time_cycles, bank_area_m2, BankModel
from repro.area.floorplan import (
    AreaReport,
    dnuca_area,
    snuca_area,
    tlc_area,
)
from repro.area.layout import BankPlacement, TLCFloorplan, build_floorplan
from repro.area.transistors import (
    TransistorReport,
    dnuca_network_transistors,
    tlc_network_transistors,
)

__all__ = [
    "bank_access_time_cycles",
    "bank_area_m2",
    "BankModel",
    "AreaReport",
    "dnuca_area",
    "snuca_area",
    "tlc_area",
    "BankPlacement",
    "TLCFloorplan",
    "build_floorplan",
    "TransistorReport",
    "dnuca_network_transistors",
    "tlc_network_transistors",
]

"""Reduced CACTI-style bank model (the paper's ECACTI substitute).

Two quantities feed the rest of the library:

* **Access time** in cycles at the design frequency.  The underlying
  physical trend is that decoder depth grows logarithmically and the
  word/bit-line RC grows with the square root of capacity (banks are
  tiled into roughly square subarrays).  We fit the three-coefficient
  model ``t = c0 + c1*sqrt(bytes) + c2*log2(bytes)`` exactly through the
  paper's three published points — 64 KB -> 3 cycles, 512 KB -> 8
  cycles, 1 MB -> 10 cycles (Table 2) — which pins the model to the
  authors' ECACTI results while interpolating sensibly between them.

* **Area** in square metres.  Storage cells dominate, with a peripheral
  overhead (decoders, sense amplifiers, drivers) whose *fraction* shrinks
  as banks grow — the reason TLC's 32 large banks need 77 mm^2 of
  storage where DNUCA's 256 small banks need 92 mm^2 (Table 7).
"""

from __future__ import annotations

import dataclasses
import math

try:  # optional: the 3x3 calibration solve has a pure-Python fallback
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from repro.tech import Technology, TECH_45NM

#: Calibration points from the paper: bytes -> access cycles at 10 GHz.
_ACCESS_CALIBRATION = (
    (64 * 1024, 3.0),   # DNUCA bank
    (512 * 1024, 8.0),  # TLC / SNUCA2 bank
    (1024 * 1024, 10.0),  # TLCopt bank
)


def _solve3(basis, targets):
    """Solve a 3x3 linear system by Gaussian elimination with partial
    pivoting (the numpy-free fallback for the calibration fit)."""
    rows = [list(row) + [target] for row, target in zip(basis, targets)]
    for col in range(3):
        pivot = max(range(col, 3), key=lambda r: abs(rows[r][col]))
        rows[col], rows[pivot] = rows[pivot], rows[col]
        for r in range(col + 1, 3):
            factor = rows[r][col] / rows[col][col]
            for c in range(col, 4):
                rows[r][c] -= factor * rows[col][c]
    out = [0.0, 0.0, 0.0]
    for r in (2, 1, 0):
        residual = rows[r][3] - sum(rows[r][c] * out[c] for c in range(r + 1, 3))
        out[r] = residual / rows[r][r]
    return out


def _access_coefficients():
    basis = [
        [1.0, math.sqrt(size), math.log2(size)]
        for size, _ in _ACCESS_CALIBRATION
    ]
    targets = [cycles for _, cycles in _ACCESS_CALIBRATION]
    if np is None:
        return _solve3(basis, targets)
    return np.linalg.solve(np.array(basis), np.array(targets))


_ACCESS_COEFFS = _access_coefficients()

#: Peripheral-overhead model ``factor = 1 + A * bytes**(-B)`` calibrated to
#: the Table 7 storage areas (2.28x at 64 KB, 1.91x at 512 KB).
_OVERHEAD_A = 7.93
_OVERHEAD_B = 0.164


def bank_access_time_cycles(size_bytes: int, tech: Technology = TECH_45NM) -> int:
    """Access latency of a bank of ``size_bytes``, in whole cycles.

    The fit is in cycles at 10 GHz; other frequencies rescale by the
    cycle-time ratio (wire and transistor delay are frequency
    independent).
    """
    if size_bytes <= 0:
        raise ValueError("bank size must be positive")
    c0, c1, c2 = _ACCESS_COEFFS
    cycles_at_10ghz = c0 + c1 * math.sqrt(size_bytes) + c2 * math.log2(size_bytes)
    scale = (1e-10) / tech.cycle_s  # calibrated at a 100 ps cycle
    return max(1, round(cycles_at_10ghz * scale))


def peripheral_overhead_factor(size_bytes: int) -> float:
    """Total-area / cell-area ratio for a bank of ``size_bytes``."""
    if size_bytes <= 0:
        raise ValueError("bank size must be positive")
    return 1.0 + _OVERHEAD_A * size_bytes ** (-_OVERHEAD_B)


def bank_area_m2(size_bytes: int, tech: Technology = TECH_45NM) -> float:
    """Substrate area of one bank, square metres."""
    bits = size_bytes * 8
    cell_area = bits * tech.sram_cell_area_m2
    return cell_area * peripheral_overhead_factor(size_bytes)


@dataclasses.dataclass(frozen=True)
class BankModel:
    """Convenience bundle of a bank's derived physical properties."""

    size_bytes: int
    tech: Technology = TECH_45NM

    @property
    def access_cycles(self) -> int:
        return bank_access_time_cycles(self.size_bytes, self.tech)

    @property
    def area_m2(self) -> float:
        return bank_area_m2(self.size_bytes, self.tech)

    @property
    def width_m(self) -> float:
        """Edge length assuming a square bank."""
        return math.sqrt(self.area_m2)

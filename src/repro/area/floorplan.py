"""Substrate-area models for the cache designs (paper Table 7).

Three components per design:

* **Storage** — the banks themselves (:func:`repro.area.cacti.bank_area_m2`).
* **Channel** — substrate consumed by interconnect.  For the NUCA
  designs this is the repeated-wire channels between banks (wires plus
  the repeater/latch tracks beneath them); for TLC it is only the
  conventional wiring *inside* the controller, because the transmission
  lines themselves are routed over the banks in upper metal and consume
  no substrate.
* **Controller** — DNUCA's central partial-tag structure, or TLC's wide
  controller whose height is set by the transmission-line pitch.

All dimensional constants trace either to Table 1/Figure 3 geometry or
to ITRS 2002 wire pitches; the resulting totals land on the paper's
Table 7 values (DNUCA 92/17/1.1 -> 110 mm^2, TLC 77/3.1/10 -> 91 mm^2).
"""

from __future__ import annotations

import dataclasses

from repro.area.cacti import bank_area_m2, peripheral_overhead_factor
from repro.cache.partial_tags import PARTIAL_TAG_BITS
from repro.tech import Technology, TECH_45NM

#: Width+spacing of one conventional channel wire (ITRS global tier).
_CHANNEL_WIRE_PITCH_M = 0.44e-6

#: Pitch of one transmission line including its shield wire, averaged over
#: the Table 1 geometry classes: 2 * (w + s) with w = s = 2.25 um mean.
_TL_PITCH_M = 9.0e-6

#: Transmission lines terminate on this many stacked metal layers at the
#: controller edge.
_TL_TERMINATION_LAYERS = 2

#: Width of the TLC controller (central logic plus wiring strip).
_TLC_CONTROLLER_WIDTH_M = 2.2e-3

#: Pitch of the relaxed conventional wires inside the TLC controller.
_TLC_INTERNAL_WIRE_PITCH_M = 1.0e-6

#: Average run of a controller-internal wire (edge to central logic).
_TLC_INTERNAL_WIRE_RUN_M = 1.5e-3


@dataclasses.dataclass(frozen=True)
class AreaReport:
    """Substrate-area breakdown of one cache design (square metres)."""

    design: str
    storage_m2: float
    channel_m2: float
    controller_m2: float

    @property
    def total_m2(self) -> float:
        return self.storage_m2 + self.channel_m2 + self.controller_m2

    def as_mm2(self) -> dict:
        scale = 1e6
        return {
            "design": self.design,
            "storage_mm2": self.storage_m2 * scale,
            "channel_mm2": self.channel_m2 * scale,
            "controller_mm2": self.controller_m2 * scale,
            "total_mm2": self.total_m2 * scale,
        }


def _mesh_channel_area(columns: int, rows: int, bank_bytes: int,
                       flit_bits: int, tech: Technology) -> float:
    """Channel area of a bank-grid mesh.

    One physical channel (both directions side by side) runs along every
    bank-to-bank segment; its width is the wire count times the
    conventional wire pitch.  Segment length equals the bank edge.
    """
    segments = (rows - 1) * columns + (columns - 1)
    bank_edge = bank_area_m2(bank_bytes, tech) ** 0.5
    channel_width = 2 * flit_bits * _CHANNEL_WIRE_PITCH_M
    return segments * bank_edge * channel_width


def dnuca_area(tech: Technology = TECH_45NM, columns: int = 16, rows: int = 16,
               bank_bytes: int = 64 * 1024, flit_bits: int = 128,
               sets_per_bank: int = 1024, ways_per_bank: int = 1) -> AreaReport:
    """Table 7's DNUCA row: 256 small banks, mesh channels, partial tags."""
    storage = columns * rows * bank_area_m2(bank_bytes, tech)
    channel = _mesh_channel_area(columns, rows, bank_bytes, flit_bits, tech)
    # Controller: the central partial-tag array mirroring every bank entry.
    pt_bits = columns * rows * sets_per_bank * ways_per_bank * PARTIAL_TAG_BITS
    pt_bytes = pt_bits // 8
    controller = pt_bits * tech.sram_cell_area_m2 * peripheral_overhead_factor(pt_bytes)
    return AreaReport("DNUCA", storage, channel, controller)


def snuca_area(tech: Technology = TECH_45NM, columns: int = 8, rows: int = 4,
               bank_bytes: int = 512 * 1024, flit_bits: int = 128) -> AreaReport:
    """SNUCA2: same storage as TLC, mesh channels, negligible controller."""
    storage = columns * rows * bank_area_m2(bank_bytes, tech)
    channel = _mesh_channel_area(columns, rows, bank_bytes, flit_bits, tech)
    controller = 0.1e-6  # simple static controller, ~0.1 mm^2
    return AreaReport("SNUCA2", storage, channel, controller)


def tlc_area(total_lines: int, banks: int = 32, bank_bytes: int = 512 * 1024,
             tech: Technology = TECH_45NM, design: str = "TLC") -> AreaReport:
    """Table 7's TLC row, parameterized by transmission-line count.

    The controller's height is the per-side line count divided across the
    termination layers times the shielded line pitch; its width is the
    central-logic strip.  The only substrate the network consumes is the
    conventional wiring inside the controller — the lines themselves fly
    over the banks.
    """
    if total_lines <= 0:
        raise ValueError("total_lines must be positive")
    storage = banks * bank_area_m2(bank_bytes, tech)
    channel = total_lines * _TLC_INTERNAL_WIRE_PITCH_M * _TLC_INTERNAL_WIRE_RUN_M
    lines_per_side = total_lines / 2
    height = lines_per_side * _TL_PITCH_M / _TL_TERMINATION_LAYERS
    controller = height * _TLC_CONTROLLER_WIDTH_M
    return AreaReport(design, storage, channel, controller)

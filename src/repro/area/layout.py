"""Physical floorplans of the TLC designs (paper Figures 2 and 4).

The base TLC floorplan: 32 banks line the two die edges — on each edge,
two columns of eight banks — with the processor core in the middle and
the cache controller at die centre.  Each bank pair's transmission
lines run from the pair's shared edge connector straight over the core
to the controller.

This module computes that geometry from the bank dimensions the area
model provides: bank positions, per-pair line lengths (which must land
inside Table 1's 0.9-1.3 cm envelope on a plausible die), and the
controller-edge landing order that sets the internal wire delays.  The
timing/energy models consume the lengths through
:class:`~repro.core.controller.TLCController`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Tuple

from repro.area.cacti import bank_area_m2
from repro.core.config import DesignConfig, TLC_BASE
from repro.tech import Technology, TECH_45NM

#: default die edge for the 45 nm design point (the paper's ~2 cm die
#: discussion; 16 MB of L2 plus core fits comfortably).
DEFAULT_DIE_EDGE_M = 1.8e-2

#: routed-over-direct length overhead (bends, keep-outs, serpentine
#: matching).  With this factor the base design's runs land exactly on
#: Table 1's 0.9-1.3 cm span.
ROUTING_FACTOR = 1.2


@dataclasses.dataclass(frozen=True)
class BankPlacement:
    """One bank's position on the die (centre coordinates, metres)."""

    index: int
    x: float
    y: float
    width: float
    height: float

    @property
    def pair(self) -> int:
        return self.index // 2


@dataclasses.dataclass(frozen=True)
class TLCFloorplan:
    """Computed geometry of a TLC design on a square die."""

    config: DesignConfig
    die_edge_m: float
    banks: Tuple[BankPlacement, ...]
    #: straight-line run from each pair's connector to die centre.
    pair_line_lengths_m: Tuple[float, ...]

    @property
    def min_line_m(self) -> float:
        return min(self.pair_line_lengths_m)

    @property
    def max_line_m(self) -> float:
        return max(self.pair_line_lengths_m)

    def fits_table1_envelope(self, envelope_max_m: float = 0.013) -> bool:
        """Do all runs fit the longest Table 1 geometry class?"""
        return self.max_line_m <= envelope_max_m + 1e-12


def build_floorplan(config: DesignConfig = TLC_BASE,
                    die_edge_m: float = DEFAULT_DIE_EDGE_M,
                    tech: Technology = TECH_45NM) -> TLCFloorplan:
    """Place a TLC design's banks per the Figure 2 / Figure 4 scheme.

    Half the banks line the left die edge, half the right, each side
    stacked as two columns of ``banks/8`` rows (two columns of eight for
    the base design).  Pairs are adjacent banks in a column; the pair's
    line connector sits between them, and its transmission line runs to
    the die centre where the controller is.
    """
    if config.kind not in ("tlc", "tlcopt"):
        raise ValueError(f"{config.name} is not a TLC-family design")
    area = bank_area_m2(config.bank_bytes, tech)
    per_side = config.banks // 2
    columns_per_side = 2
    rows = per_side // columns_per_side
    if rows * columns_per_side != per_side:
        raise ValueError("banks must fill the two edge columns evenly")

    # Size banks as rectangles filling the die height in `rows` rows.
    bank_height = die_edge_m / rows
    bank_width = area / bank_height
    if 2 * columns_per_side * bank_width >= die_edge_m:
        raise ValueError(
            f"die edge {die_edge_m * 100:.1f} cm too small for "
            f"{config.banks} banks of {config.bank_bytes // 1024} KB")

    banks: List[BankPlacement] = []
    centre = die_edge_m / 2.0
    for side, x_sign in ((0, -1.0), (1, 1.0)):
        for column in range(columns_per_side):
            # Inner column first: its banks pair with the outer column's.
            x_offset = centre - (column + 0.5) * bank_width
            x = centre + x_sign * x_offset
            for row in range(rows):
                index = side * per_side + row * columns_per_side + column
                y = (row + 0.5) * bank_height
                banks.append(BankPlacement(index, x, y,
                                           bank_width, bank_height))
    banks.sort(key=lambda b: b.index)

    lengths: List[float] = []
    for pair in range(config.pairs):
        a, b = banks[2 * pair], banks[2 * pair + 1]
        # The pair connector sits on the banks' shared inner edge.
        connector_x = (a.x + b.x) / 2.0 + (
            bank_width / 2.0 if a.x < centre else -bank_width / 2.0)
        connector_y = (a.y + b.y) / 2.0
        run = math.hypot(connector_x - centre, connector_y - centre)
        lengths.append(run * ROUTING_FACTOR)
    return TLCFloorplan(config=config, die_edge_m=die_edge_m,
                        banks=tuple(banks),
                        pair_line_lengths_m=tuple(lengths))

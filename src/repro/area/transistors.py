"""Transistor inventories for the communication networks (paper Table 8).

The paper estimates that replacing DNUCA's switched mesh with TLC's
point-to-point transmission lines cuts the network's transistor count by
more than 50x and its total gate width (the proxy for leakage power) by
over an order of magnitude.  These functions build the inventories from
first principles — switches, repeaters, and pipeline latches for DNUCA;
drivers, receivers, and impedance-tuning logic for TLC — with per-device
sizes calibrated to the published totals (1.2e7 / 440 Mlambda vs
1.9e5 / 20 Mlambda).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

# -- DNUCA switch/link device constants ----------------------------------
SWITCH_PORTS = 5
SWITCH_BUFFER_DEPTH_FLITS = 4
TRANSISTORS_PER_BUFFER_BIT = 10  # flip-flop + mux
TRANSISTORS_PER_CROSSBAR_POINT = 2  # pass gate + control
TRANSISTORS_PER_ARBITER = 2000
REPEATER_SPACING_M = 0.1e-3  # optimal repeater every ~0.1 mm at 45 nm
TRANSISTORS_PER_REPEATER = 2
TRANSISTORS_PER_LINK_LATCH_BIT = 16  # pipeline latch between hops

# Average gate widths in lambda (layout half-pitch units).
SWITCH_GATE_WIDTH_LAMBDA = 20.0
REPEATER_GATE_WIDTH_LAMBDA = 300.0  # optimally sized global repeaters are huge
LATCH_GATE_WIDTH_LAMBDA = 12.0

# -- TLC transmission-line endpoint constants ----------------------------
TRANSISTORS_PER_TL_DRIVER = 32  # binary-weighted source-terminated segments
TRANSISTORS_PER_TL_PREDRIVER = 8
TRANSISTORS_PER_TL_RECEIVER = 10
TRANSISTORS_PER_TL_TUNING = 42  # digital impedance trim register + decode

TL_DRIVER_GATE_WIDTH_LAMBDA = 8000.0  # low-ohm output stage
TL_PREDRIVER_GATE_WIDTH_LAMBDA = 1200.0
TL_RECEIVER_GATE_WIDTH_LAMBDA = 300.0
TL_TUNING_GATE_WIDTH_LAMBDA = 250.0


@dataclasses.dataclass(frozen=True)
class TransistorReport:
    """Transistor count and summed gate width of one network."""

    design: str
    transistors: int
    gate_width_lambda: float
    breakdown: Dict[str, int]

    @property
    def gate_width_mega_lambda(self) -> float:
        return self.gate_width_lambda / 1e6


def dnuca_network_transistors(columns: int = 16, rows: int = 16,
                              flit_bits: int = 128,
                              hop_length_m: float = 0.6e-3) -> TransistorReport:
    """Inventory of DNUCA's mesh: switches, repeaters, link latches."""
    switches = columns * rows
    per_switch = (
        SWITCH_PORTS * SWITCH_BUFFER_DEPTH_FLITS * flit_bits * TRANSISTORS_PER_BUFFER_BIT
        + SWITCH_PORTS * SWITCH_PORTS * flit_bits * TRANSISTORS_PER_CROSSBAR_POINT
        + TRANSISTORS_PER_ARBITER
    )
    switch_total = switches * per_switch

    segments = (rows - 1) * columns + (columns - 1)
    wires = 2 * flit_bits  # both directions
    repeaters_per_wire = max(1, math.ceil(hop_length_m / REPEATER_SPACING_M))
    repeater_total = segments * wires * repeaters_per_wire * TRANSISTORS_PER_REPEATER
    latch_total = segments * wires * TRANSISTORS_PER_LINK_LATCH_BIT

    total = switch_total + repeater_total + latch_total
    width = (
        switch_total * SWITCH_GATE_WIDTH_LAMBDA
        + repeater_total * REPEATER_GATE_WIDTH_LAMBDA
        + latch_total * LATCH_GATE_WIDTH_LAMBDA
    )
    return TransistorReport(
        design="DNUCA",
        transistors=total,
        gate_width_lambda=width,
        breakdown={
            "switches": switch_total,
            "repeaters": repeater_total,
            "link_latches": latch_total,
        },
    )


def tlc_network_transistors(total_lines: int = 2048,
                            design: str = "TLC") -> TransistorReport:
    """Inventory of a TLC network: one driver/receiver pair per line."""
    if total_lines <= 0:
        raise ValueError("total_lines must be positive")
    per_line = (
        TRANSISTORS_PER_TL_DRIVER
        + TRANSISTORS_PER_TL_PREDRIVER
        + TRANSISTORS_PER_TL_RECEIVER
        + TRANSISTORS_PER_TL_TUNING
    )
    total = total_lines * per_line
    per_line_width = (
        TL_DRIVER_GATE_WIDTH_LAMBDA
        + TL_PREDRIVER_GATE_WIDTH_LAMBDA
        + TL_RECEIVER_GATE_WIDTH_LAMBDA
        + TL_TUNING_GATE_WIDTH_LAMBDA
    )
    width = total_lines * per_line_width
    return TransistorReport(
        design=design,
        transistors=total,
        gate_width_lambda=width,
        breakdown={
            "drivers": total_lines * (TRANSISTORS_PER_TL_DRIVER + TRANSISTORS_PER_TL_PREDRIVER),
            "receivers": total_lines * TRANSISTORS_PER_TL_RECEIVER,
            "impedance_tuning": total_lines * TRANSISTORS_PER_TL_TUNING,
        },
    )

"""Generic cache substrate: addresses, replacement, banks, L1 caches."""

from repro.cache.address import AddressMap, block_address
from repro.cache.replacement import (
    LRUPolicy,
    LIPPolicy,
    FrequencyPolicy,
    RandomPolicy,
    make_policy,
)
from repro.cache.bank import CacheBank, AccessResult
from repro.cache.l1 import L1Cache
from repro.cache.partial_tags import PartialTagArray, partial_tag
from repro.cache.ecc import EccGeometry, secded_check_bits

__all__ = [
    "AddressMap",
    "block_address",
    "LRUPolicy",
    "LIPPolicy",
    "FrequencyPolicy",
    "RandomPolicy",
    "make_policy",
    "CacheBank",
    "AccessResult",
    "L1Cache",
    "PartialTagArray",
    "partial_tag",
    "EccGeometry",
    "secded_check_bits",
]

"""Address arithmetic: block/set/tag decomposition and bank interleaving.

All caches in the library operate on byte addresses.  The paper's block
size is 64 bytes throughout (Table 3), but every decomposition here takes
the block size as a parameter so other design points can be modelled.
"""

from __future__ import annotations

import dataclasses


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def block_address(addr: int, block_bytes: int = 64) -> int:
    """The block-aligned address containing byte ``addr``."""
    return addr & ~(block_bytes - 1)


@dataclasses.dataclass(frozen=True)
class AddressMap:
    """Decomposes byte addresses for a set-associative structure.

    The layout (low to high bits) is ``offset | set index | tag``; bank
    interleaving, when used, consumes the low bits of the set index so
    that consecutive blocks map to different banks (the static NUCA /
    TLC mapping).

    The derived shift/mask fields are computed once at construction —
    the decomposition runs on every simulated access, so the bit-length
    arithmetic must not be repeated per call.
    """

    block_bytes: int
    num_sets: int
    banks: int = 1

    def __post_init__(self) -> None:
        for name in ("block_bytes", "num_sets", "banks"):
            value = getattr(self, name)
            if not _is_power_of_two(value):
                raise ValueError(f"{name} must be a power of two, got {value}")
        # Frozen dataclass: the cached fields go in through the back door
        # exactly once.  They are derived, not identity, so equality and
        # asdict() still see only the three declared fields.
        object.__setattr__(self, "_offset_bits",
                           self.block_bytes.bit_length() - 1)
        object.__setattr__(self, "_set_bits", self.num_sets.bit_length() - 1)
        object.__setattr__(self, "_bank_bits", self.banks.bit_length() - 1)
        object.__setattr__(self, "_set_mask", self.num_sets - 1)
        object.__setattr__(self, "_bank_mask", self.banks - 1)
        object.__setattr__(self, "_tag_shift",
                           self._bank_bits + self._set_bits)

    @property
    def offset_bits(self) -> int:
        return self._offset_bits

    @property
    def set_bits(self) -> int:
        return self._set_bits

    @property
    def bank_bits(self) -> int:
        return self._bank_bits

    def block(self, addr: int) -> int:
        """Block number (address with the offset stripped)."""
        return addr >> self._offset_bits

    def set_index(self, addr: int) -> int:
        """Set index within one bank (bank bits excluded)."""
        return (addr >> self._offset_bits >> self._bank_bits) & self._set_mask

    def bank_index(self, addr: int) -> int:
        """Which bank this block interleaves to."""
        return (addr >> self._offset_bits) & self._bank_mask

    def tag(self, addr: int) -> int:
        """Tag bits: everything above bank + set index."""
        return addr >> self._offset_bits >> self._tag_shift

    def decompose(self, addr: int) -> "tuple[int, int, int]":
        """``(bank_index, set_index, tag)`` in one call.

        The access paths decompose every address exactly this way; doing
        it in one method shifts the block number once instead of three
        times.
        """
        block = addr >> self._offset_bits
        return (block & self._bank_mask,
                (block >> self._bank_bits) & self._set_mask,
                block >> self._tag_shift)

    def rebuild(self, tag: int, set_index: int, bank_index: int = 0) -> int:
        """Inverse of the decomposition: a canonical byte address."""
        block = (tag << (self._bank_bits + self._set_bits)) | (set_index << self._bank_bits) | bank_index
        return block << self._offset_bits

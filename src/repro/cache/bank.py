"""A set-associative cache bank.

Banks are the storage unit shared by every design in the paper: TLC uses
32 x 512 KB or 16 x 1 MB banks, DNUCA 256 x 64 KB banks, SNUCA2
32 x 512 KB banks.  A bank holds tags and dirty bits; data values are not
simulated (the timing and power models only need which block is where).

Sets and their replacement state are allocated lazily so that a 16 MB
cache with a small touched footprint stays cheap to simulate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.cache.replacement import make_policy, policy_factory


@dataclasses.dataclass(frozen=True)
class AccessResult:
    """Outcome of a bank access."""

    hit: bool
    way: Optional[int] = None
    evicted_tag: Optional[int] = None
    evicted_dirty: bool = False


class _Set:
    __slots__ = ("tags", "dirty", "policy")

    def __init__(self, ways: int, factory, seeded: bool, seed: int) -> None:
        self.tags: List[Optional[int]] = [None] * ways
        self.dirty: List[bool] = [False] * ways
        self.policy = factory(ways)
        if seeded:
            self.policy._rng.seed(seed)  # deterministic per set


class CacheBank:
    """Tag storage for one bank.

    Parameters
    ----------
    num_sets:
        Number of sets in the bank.
    ways:
        Associativity.  DNUCA banks are direct-mapped (``ways=1``).
    policy:
        Replacement policy name: ``lru`` (TLC default), ``frequency``,
        or ``random``.
    """

    def __init__(self, num_sets: int, ways: int, policy: str = "lru") -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self.policy_name = policy
        make_policy(policy, ways)  # validate the name eagerly
        # Sets are allocated lazily by the thousand during pre-warm, so
        # the per-set construction path resolves the policy class once
        # here rather than through the factory's name lookup every time.
        self._policy_factory = policy_factory(policy)
        self._policy_seeded = policy == "random"
        self._sets: Dict[int, _Set] = {}
        #: optional repro.sanitizer.Sanitizer (set by Sanitizer.watch_banks);
        #: receives one on_bank_insert per demand insert.
        self.sanitizer = None

    def _set(self, index: int) -> _Set:
        if not 0 <= index < self.num_sets:
            raise IndexError(f"set index {index} out of range [0, {self.num_sets})")
        entry = self._sets.get(index)
        if entry is None:
            entry = _Set(self.ways, self._policy_factory,
                         self._policy_seeded, seed=index)
            self._sets[index] = entry
        return entry

    # -- queries ---------------------------------------------------------
    def probe(self, set_index: int, tag: int) -> Optional[int]:
        """Return the way holding ``tag``, without touching LRU state."""
        entry = self._sets.get(set_index)
        if entry is None:
            return None
        try:
            return entry.tags.index(tag)
        except ValueError:
            return None

    def tag_at(self, set_index: int, way: int) -> Optional[int]:
        """The tag stored in (set, way), or None if the slot is empty."""
        entry = self._sets.get(set_index)
        if entry is None:
            return None
        return entry.tags[way]

    def dirty_at(self, set_index: int, way: int) -> bool:
        entry = self._sets.get(set_index)
        if entry is None:
            return False
        return entry.dirty[way]

    # -- state-changing accesses ----------------------------------------
    def lookup(self, set_index: int, tag: int, write: bool = False) -> AccessResult:
        """Look up ``tag``; on a hit, update replacement state (and dirty)."""
        entry = self._sets.get(set_index)
        if entry is None:
            entry = self._set(set_index)  # validates the index, creates
        try:
            way = entry.tags.index(tag)
        except ValueError:
            return AccessResult(hit=False)
        entry.policy.touch(way)
        if write:
            entry.dirty[way] = True
        return AccessResult(hit=True, way=way)

    def insert(self, set_index: int, tag: int, dirty: bool = False) -> AccessResult:
        """Insert ``tag``, evicting the policy's victim if the set is full.

        Returns an :class:`AccessResult` whose ``way`` is the filled slot
        and whose ``evicted_tag``/``evicted_dirty`` describe any victim.
        """
        entry = self._set(set_index)
        if tag in entry.tags:
            raise ValueError(f"tag {tag:#x} already present in set {set_index}")
        try:
            way = entry.tags.index(None)
            evicted_tag, evicted_dirty = None, False
        except ValueError:
            way = entry.policy.victim()
            evicted_tag = entry.tags[way]
            evicted_dirty = entry.dirty[way]
        entry.tags[way] = tag
        entry.dirty[way] = dirty
        entry.policy.insert(way)
        if self.sanitizer is not None:
            self.sanitizer.on_bank_insert(self, set_index, way)
        return AccessResult(
            hit=False, way=way, evicted_tag=evicted_tag, evicted_dirty=evicted_dirty
        )

    def install(self, set_index: int, tag: int, dirty: bool = False) -> None:
        """Pre-warm fast path: probe + insert + recency touch in one step.

        Equivalent to the designs' historical install sequence —
        ``probe() is None`` then ``insert(...)`` then ``lookup(...)`` —
        with a single set resolution.  The policy sees exactly the same
        call sequence (``insert(way)`` then ``touch(way)``), so the
        functional state after bulk pre-warming is bit-identical under
        every replacement policy.  Already-present tags are left
        untouched, exactly like the historical sequence.
        """
        entry = self._sets.get(set_index)
        if entry is None:
            entry = self._set(set_index)  # validates the index, creates
        tags = entry.tags
        if tag in tags:
            return
        try:
            way = tags.index(None)
        except ValueError:
            way = entry.policy.victim()
        tags[way] = tag
        entry.dirty[way] = dirty
        policy = entry.policy
        policy.insert(way)
        policy.touch(way)

    def invalidate(self, set_index: int, tag: int) -> Tuple[bool, bool]:
        """Remove ``tag`` if present.  Returns (was_present, was_dirty)."""
        entry = self._sets.get(set_index)
        if entry is None:
            return (False, False)
        try:
            way = entry.tags.index(tag)
        except ValueError:
            return (False, False)
        was_dirty = entry.dirty[way]
        entry.tags[way] = None
        entry.dirty[way] = False
        return (True, was_dirty)

    def replace_way(self, set_index: int, way: int, tag: Optional[int],
                    dirty: bool = False) -> Tuple[Optional[int], bool]:
        """Overwrite a specific slot (used by DNUCA's migration swaps).

        Returns the (tag, dirty) pair previously in the slot.
        """
        entry = self._set(set_index)
        old = (entry.tags[way], entry.dirty[way])
        entry.tags[way] = tag
        entry.dirty[way] = dirty
        if tag is not None:
            entry.policy.touch(way)
        return old

    def iter_sets(self):
        """Yield ``(set_index, tags, dirty)`` for every allocated set.

        Read-only walk over the lazily-allocated tag store, used by the
        sanitizer's coherence sweeps and by debug tooling.
        """
        for index, entry in self._sets.items():
            yield index, entry.tags, entry.dirty

    # -- statistics ------------------------------------------------------
    @property
    def occupied_blocks(self) -> int:
        return sum(
            1 for entry in self._sets.values() for t in entry.tags if t is not None
        )

    @property
    def capacity_blocks(self) -> int:
        return self.num_sets * self.ways

    def register_metrics(self, scope) -> None:
        """Mount this bank's gauges on a registry scope.

        ``scope`` is a :class:`~repro.obs.registry.ScopedRegistry` (or
        a registry); the owning design picks the prefix, e.g.
        ``l2.bank03``.  Occupancy is a gauge — evaluated only at
        snapshot time — so registration costs nothing per access.
        """
        scope.gauge("occupancy", lambda: self.occupied_blocks)
        scope.gauge("touched_sets", lambda: len(self._sets))

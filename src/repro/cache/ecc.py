"""End-to-end ECC for transmission-line transfers (Section 4).

The paper's noise story ends with: "Remaining faults on the
transmission lines could be repaired using end-to-end ECC checks ...
generating and checking the codes in the central controller."  This
module provides that layer:

* SECDED (single-error-correct, double-error-detect) Hamming code
  geometry — check-bit counts for any payload width, and the wire /
  bandwidth overhead it implies for each TLC design's response links;
* a functional encoder/corrector over integers, used by the tests to
  demonstrate single-bit faults injected on a "line" are repaired and
  double-bit faults are flagged.

The codes are generated and checked at the controller only (end to
end), so banks stay code-oblivious — exactly the paper's IBM Power4
reference point.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple


def secded_check_bits(data_bits: int) -> int:
    """Check bits for SECDED over ``data_bits`` (Hamming + parity).

    Smallest ``r`` with ``2**r >= data_bits + r + 1``, plus the overall
    parity bit that upgrades SEC to SECDED.
    """
    if data_bits <= 0:
        raise ValueError("data_bits must be positive")
    r = 0
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r + 1


@dataclasses.dataclass(frozen=True)
class EccGeometry:
    """Wire/bandwidth cost of protecting one message class."""

    data_bits: int

    @property
    def check_bits(self) -> int:
        return secded_check_bits(self.data_bits)

    @property
    def total_bits(self) -> int:
        return self.data_bits + self.check_bits

    @property
    def overhead_fraction(self) -> float:
        return self.check_bits / self.data_bits


# -- functional SECDED codec ----------------------------------------------

def _parity_positions(r: int) -> Tuple[int, ...]:
    return tuple(1 << i for i in range(r))


def encode(data: int, data_bits: int) -> int:
    """Encode ``data`` (``data_bits`` wide) into a SECDED codeword."""
    if data < 0 or data >= (1 << data_bits):
        raise ValueError("data out of range for the declared width")
    r = secded_check_bits(data_bits) - 1
    total = data_bits + r
    # Lay data bits into non-power-of-two positions (1-indexed).
    codeword = 0
    data_index = 0
    for position in range(1, total + 1):
        if position & (position - 1) == 0:  # parity slot
            continue
        if (data >> data_index) & 1:
            codeword |= 1 << (position - 1)
        data_index += 1
    # Compute the Hamming parity bits.
    for parity in _parity_positions(r):
        acc = 0
        for position in range(1, total + 1):
            if position & parity and (codeword >> (position - 1)) & 1:
                acc ^= 1
        if acc:
            codeword |= 1 << (parity - 1)
    # Overall parity bit (position total+1) for double-error detection.
    overall = bin(codeword).count("1") & 1
    if overall:
        codeword |= 1 << total
    return codeword


def decode(codeword: int, data_bits: int) -> Tuple[int, str]:
    """Decode a SECDED codeword.

    Returns ``(data, status)`` with status one of ``"clean"``,
    ``"corrected"``, or ``"uncorrectable"`` (data is best-effort for the
    last).
    """
    r = secded_check_bits(data_bits) - 1
    total = data_bits + r
    syndrome = 0
    for parity in _parity_positions(r):
        acc = 0
        for position in range(1, total + 1):
            if position & parity and (codeword >> (position - 1)) & 1:
                acc ^= 1
        if acc:
            syndrome |= parity
    overall = bin(codeword & ((1 << (total + 1)) - 1)).count("1") & 1

    status = "clean"
    if syndrome and overall:
        # Single error at `syndrome`: flip it.
        codeword ^= 1 << (syndrome - 1)
        status = "corrected"
    elif syndrome and not overall:
        status = "uncorrectable"
    elif not syndrome and overall:
        # The overall parity bit itself flipped.
        status = "corrected"

    data = 0
    data_index = 0
    for position in range(1, total + 1):
        if position & (position - 1) == 0:
            continue
        if (codeword >> (position - 1)) & 1:
            data |= 1 << data_index
        data_index += 1
    return data, status


def response_overhead(design_response_data_bits: int) -> EccGeometry:
    """ECC geometry for one TLC response message (per stripe bank)."""
    return EccGeometry(design_response_data_bits)

"""Level-1 cache model (64 KB, 2-way, 3-cycle access per Table 3).

The L1 filters the processor's reference stream before it reaches the
L2 designs under study.  It is a write-back, allocate-on-write-miss
cache.  Only hit/miss behaviour and writeback generation are modelled —
the L1's latency is a constant added by the processor model.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.cache.address import AddressMap
from repro.cache.bank import CacheBank
from repro.sim.stats import Counter


@dataclasses.dataclass(frozen=True)
class L1Access:
    """Outcome of an L1 access."""

    hit: bool
    #: block-aligned address that must be written back to L2 (if any).
    writeback: Optional[int] = None


class L1Cache:
    """A single L1 cache (use two instances for split I/D)."""

    def __init__(self, size_bytes: int = 64 * 1024, ways: int = 2,
                 block_bytes: int = 64, latency_cycles: int = 3) -> None:
        if size_bytes % (ways * block_bytes) != 0:
            raise ValueError("size must be divisible by ways * block size")
        self.size_bytes = size_bytes
        self.ways = ways
        self.block_bytes = block_bytes
        self.latency_cycles = latency_cycles
        num_sets = size_bytes // (ways * block_bytes)
        self.addr_map = AddressMap(block_bytes=block_bytes, num_sets=num_sets)
        self.bank = CacheBank(num_sets=num_sets, ways=ways, policy="lru")
        self.stats = Counter()

    def access(self, addr: int, write: bool = False) -> L1Access:
        """Access ``addr``; on a miss the block is allocated immediately.

        The caller is responsible for fetching the block from L2 (timing)
        and for forwarding any returned ``writeback`` address down.
        """
        set_index = self.addr_map.set_index(addr)
        tag = self.addr_map.tag(addr)
        result = self.bank.lookup(set_index, tag, write=write)
        if result.hit:
            self.stats.add("hits")
            return L1Access(hit=True)
        self.stats.add("misses")
        inserted = self.bank.insert(set_index, tag, dirty=write)
        writeback = None
        if inserted.evicted_tag is not None and inserted.evicted_dirty:
            writeback = self.addr_map.rebuild(inserted.evicted_tag, set_index)
            self.stats.add("writebacks")
        return L1Access(hit=False, writeback=writeback)

    @property
    def miss_rate(self) -> float:
        total = self.stats["hits"] + self.stats["misses"]
        if total == 0:
            return 0.0
        return self.stats["misses"] / total

"""Partial-tag structures (Kessler et al. [21], as used by DNUCA and TLCopt).

A partial tag stores only the six least-significant tag bits.  Matching
the partial tag is necessary but not sufficient for a hit; the structures
here therefore answer "which candidates *might* hold this block".

Two users in the paper:

* DNUCA keeps a *central* partial-tag array covering every bank of a
  bank set, consulted in parallel with the closest two banks to direct
  (or skip — a "fast miss") the search of the remaining banks.
* The TLCopt designs store a per-bank partial tag next to each data
  entry so the bank can respond without holding full tags; the central
  controller completes the comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

PARTIAL_TAG_BITS = 6
PARTIAL_TAG_MASK = (1 << PARTIAL_TAG_BITS) - 1


def partial_tag(tag: int) -> int:
    """The low six bits of a full tag."""
    return tag & PARTIAL_TAG_MASK


class PartialTagArray:
    """A (position, set) -> partial-tag map mirroring a group of banks.

    ``positions`` is the number of banks covered (16 for a DNUCA bank
    set) and ``ways`` the associativity of each covered bank.  Entries
    are kept consistent by the owning cache model calling
    :meth:`update` / :meth:`clear` whenever it moves blocks — the paper's
    "significant complexity" of keeping partial tags coherent during
    migration is exactly this bookkeeping.
    """

    def __init__(self, positions: int, num_sets: int, ways: int = 1) -> None:
        if positions <= 0 or num_sets <= 0 or ways <= 0:
            raise ValueError("positions, num_sets, and ways must be positive")
        self.positions = positions
        self.num_sets = num_sets
        self.ways = ways
        self._entries: Dict[Tuple[int, int], List[Optional[int]]] = {}

    def _slot(self, position: int, set_index: int) -> List[Optional[int]]:
        if not 0 <= position < self.positions:
            raise IndexError(f"position {position} out of range")
        if not 0 <= set_index < self.num_sets:
            raise IndexError(f"set index {set_index} out of range")
        key = (position, set_index)
        entry = self._entries.get(key)
        if entry is None:
            entry = [None] * self.ways
            self._entries[key] = entry
        return entry

    def update(self, position: int, set_index: int, way: int, tag: int) -> None:
        """Record that (position, set, way) now holds ``tag``."""
        self._slot(position, set_index)[way] = partial_tag(tag)

    def clear(self, position: int, set_index: int, way: int) -> None:
        """Record that (position, set, way) is now empty."""
        self._slot(position, set_index)[way] = None

    def stored(self, position: int, set_index: int, way: int) -> Optional[int]:
        """The partial tag recorded for (position, set, way), or None.

        Unallocated slots read as None; used by the sanitizer's
        bank/partial-tag coherence sweep.
        """
        entry = self._entries.get((position, set_index))
        if entry is None:
            return None
        return entry[way]

    def matches(self, set_index: int, tag: int,
                exclude: Tuple[int, ...] = ()) -> List[int]:
        """Positions whose partial tags match ``tag`` in ``set_index``.

        ``exclude`` lists positions already searched (DNUCA's closest two
        banks), which are skipped.  The result is sorted by position so
        searches proceed nearest-first.
        """
        wanted = partial_tag(tag)
        found = []
        for position in range(self.positions):
            if position in exclude:
                continue
            entry = self._entries.get((position, set_index))
            if entry is not None and wanted in entry:
                found.append(position)
        return found

    def storage_bits(self) -> int:
        """Total storage the array would occupy in hardware, in bits."""
        return self.positions * self.num_sets * self.ways * PARTIAL_TAG_BITS

"""Replacement policies for set-associative cache banks.

The paper's TLC designs use LRU (Table 3), while DNUCA's generational
promotion acts like a frequency policy — the comparison between the two
is the root cause of the equake anomaly discussed in Section 6.1.  To
support the replacement-policy ablation, banks take a pluggable policy.

A policy instance manages *one* set; banks construct one per set via the
factory.  This keeps policies trivially correct at the cost of a little
memory, which is fine at the scale we simulate.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List


class LRUPolicy:
    """Least-recently-used over ``ways`` slots."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.ways = ways
        self._order: List[int] = list(range(ways))  # MRU last

    def touch(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        return self._order[0]

    def insert(self, way: int) -> None:
        self.touch(way)


class FrequencyPolicy:
    """Evicts the slot with the lowest access count (LFU with aging).

    Counts are halved whenever the leader's count saturates, so stale
    blocks eventually become evictable — the same qualitative behaviour
    as DNUCA's promotion distance.
    """

    SATURATION = 255

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.ways = ways
        self._counts: List[int] = [0] * ways

    def touch(self, way: int) -> None:
        self._counts[way] += 1
        if self._counts[way] >= self.SATURATION:
            self._counts = [c // 2 for c in self._counts]

    def victim(self) -> int:
        return self._counts.index(min(self._counts))

    def insert(self, way: int) -> None:
        # A freshly inserted block starts with a single use, so it cannot
        # immediately displace a frequently accessed block but is itself
        # the preferred victim until it proves useful.
        self._counts[way] = 1


class LIPPolicy(LRUPolicy):
    """LRU with LRU-position insertion (LIP).

    New blocks enter at the *LRU* end and are only promoted to MRU when
    re-referenced — so a stream of single-use blocks evicts itself while
    the reused set stays protected.  This is the set-associative
    equivalent of DNUCA's insert-at-the-tail-bank policy, and the policy
    the replacement ablation gives TLC to close the equake gap.
    """

    def insert(self, way: int) -> None:
        self._order.remove(way)
        self._order.insert(0, way)


class RandomPolicy:
    """Evicts a uniformly random slot (baseline for the ablation)."""

    def __init__(self, ways: int, seed: int = 0) -> None:
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.ways = ways
        self._rng = random.Random(seed)

    def touch(self, way: int) -> None:  # noqa: D401 - no state to update
        """Random replacement keeps no use history."""

    def victim(self) -> int:
        return self._rng.randrange(self.ways)

    def insert(self, way: int) -> None:
        self.touch(way)


_POLICIES: Dict[str, Callable[[int], object]] = {
    "lru": LRUPolicy,
    "lip": LIPPolicy,
    "frequency": FrequencyPolicy,
    "random": RandomPolicy,
}


def policy_factory(name: str) -> Callable[[int], object]:
    """The constructor for policy ``name`` (resolved once, called per set).

    Banks allocate sets lazily by the tens of thousands during cache
    pre-warming; resolving the policy name outside that loop keeps the
    per-set cost to the construction itself.
    """
    try:
        return _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None


def make_policy(name: str, ways: int):
    """Construct a replacement policy by name (``lru``/``frequency``/``random``)."""
    return policy_factory(name)(ways)

"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``designs`` — list the design registry (Table 2).
* ``benchmarks`` — list the calibrated workload profiles.
* ``line <length_cm>`` — extract + grade a transmission line.
* ``run <design> <benchmark>`` — one experiment cell, full metrics;
  ``--metrics-out`` / ``--trace-out`` capture a run manifest and an
  event trace (docs/OBSERVABILITY.md).
* ``stats <manifest> [other]`` — pretty-print one manifest or diff two.
* ``compare <benchmark>`` — all designs on one benchmark, as a chart.
* ``trace <benchmark>`` — generate and characterize a trace.
* ``report`` — the full measured-vs-paper markdown report.
* ``explore`` — search a declarative design space (docs/EXPLORATION.md)
  and rank its variants on a Fig-5-style leaderboard.

Design names are forgiving: ``tlc_opt_500`` and ``TLCopt500`` both
work (see :func:`repro.core.config.resolve_design_name`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.figures import grouped_bar_chart
from repro.analysis.tables import format_table
from repro.core.config import DESIGNS, design_names, resolve_design_name
from repro.service.schema import (
    DEFAULT_MAX_ACTIVE_JOBS,
    DEFAULT_MAX_QUEUED_CELLS,
)
from repro.sim.system import run_system
from repro.workloads.profiles import PROFILES, benchmark_names, get_profile
from repro.workloads.synthetic import generate_trace


def _cmd_designs(_args) -> int:
    rows = []
    for name, config in DESIGNS.items():
        low, high = config.uncontended_latency_range
        rows.append([name, config.kind, config.banks,
                     f"{config.bank_bytes // 1024} KB",
                     config.total_lines or "-", f"{low}-{high}"])
    print(format_table(
        ["design", "kind", "banks", "bank size", "TL lines", "latency"],
        rows, title="Design registry (paper Table 2)"))
    return 0


def _cmd_benchmarks(_args) -> int:
    rows = []
    for profile in PROFILES.values():
        spec = profile.spec
        rows.append([
            profile.name, profile.suite,
            f"{profile.l2_requests_per_kinstr:.1f}",
            f"{spec.hot_blocks * 64 / 2**20:.1f} MB",
            f"{spec.stream_fraction:.0%}",
            f"{spec.dependent_fraction:.0%}",
        ])
    print(format_table(
        ["benchmark", "suite", "L2 refs/kinstr", "hot set", "stream", "dep"],
        rows, title="Calibrated workload profiles (paper Tables 4/5)"))
    return 0


def _cmd_line(args) -> int:
    from repro.tline import evaluate_link

    length_m = args.length_cm / 100.0
    try:
        report = evaluate_link(length_m)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"geometry class : {report.geometry.name} "
          f"(W={report.geometry.width * 1e6:.1f} um, "
          f"S={report.geometry.spacing * 1e6:.1f} um)")
    print(f"impedance      : {report.line.z0:.1f} ohm")
    print(f"flight time    : {report.line.flight_time * 1e12:.1f} ps "
          f"({report.latency_cycles} cycle at 10 GHz)")
    print(f"received pulse : {report.amplitude_fraction:.0%} of Vdd "
          f"(need >= 75%), width {report.width_fraction:.0%} of a cycle "
          f"(need >= 40%)")
    print(f"verdict        : {'USABLE' if report.usable else 'REJECTED'}")
    return 0 if report.usable else 2


def _resolve_run_cell(args) -> Optional[tuple]:
    """The (design, benchmark) a ``run`` invocation names, or ``None``.

    Both may be given positionally or by flag; flags win.  Errors are
    printed to stderr (returning ``None`` means exit 2).
    """
    design = args.design_opt or args.design
    benchmark = args.benchmark_opt or args.benchmark
    if design is None or benchmark is None:
        print("error: a design and a benchmark are required, e.g. "
              "`repro run TLC mcf` or "
              "`repro run --design tlc_opt_500 --benchmark mcf`",
              file=sys.stderr)
        return None
    try:
        design = resolve_design_name(design)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    if benchmark not in benchmark_names():
        print(f"error: unknown benchmark {benchmark!r}; choose from "
              f"{sorted(benchmark_names())}", file=sys.stderr)
        return None
    return design, benchmark


def _cmd_run(args) -> int:
    cell = _resolve_run_cell(args)
    if cell is None:
        return 2
    design, benchmark = cell

    observer = None
    if args.metrics_out or args.trace_out:
        from repro.obs import EventTracer, RunObserver

        tracer = None
        if args.trace_out:
            types = frozenset(args.trace_types) if args.trace_types else None
            tracer = EventTracer(capacity=args.trace_capacity, types=types)
        observer = RunObserver(tracer=tracer)

    sanitizer = None
    if args.sanitize or args.inject_fault:
        from repro.sanitizer import Sanitizer, SanitizerConfig, SimFault

        fault = None
        if args.inject_fault:
            try:
                fault = SimFault.parse(args.inject_fault)
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        config = SanitizerConfig(check_every=args.sanitize_interval,
                                 watchdog_stall_cycles=args.watchdog_cycles)
        sanitizer = Sanitizer(config=config, fault=fault)

    try:
        result = run_system(design, benchmark, n_refs=args.refs,
                            seed=args.seed, observer=observer,
                            sanitizer=sanitizer, crash_dir=args.crash_dir,
                            backend=args.backend)
    except Exception as error:
        from repro.core.config import ConfigError
        from repro.sanitizer import SanitizerViolation

        if isinstance(error, ConfigError):
            print(f"error: {error}", file=sys.stderr)
            return 2
        if not isinstance(error, SanitizerViolation):
            raise
        print(f"sanitizer violation: {error}", file=sys.stderr)
        bundle = getattr(error, "crash_bundle", None)
        if bundle is not None:
            print(f"crash bundle written to {bundle}", file=sys.stderr)
            print(f"replay with: repro replay {bundle}", file=sys.stderr)
        return 3
    rows = [
        ["cycles", result.cycles],
        ["instructions", result.instructions],
        ["IPC", round(result.ipc, 3)],
        ["L2 requests", result.l2_requests],
        ["L2 miss ratio", f"{result.miss_ratio:.2%}"],
        ["misses / kinstr", round(result.misses_per_kinstr, 3)],
        ["mean lookup latency", f"{result.mean_lookup_latency:.1f} cycles"],
        ["predictable lookups", f"{result.predictable_lookup_fraction:.0%}"],
        ["banks / request", round(result.banks_accessed_per_request, 2)],
        ["link utilization", f"{result.link_utilization:.1%}"],
        ["network power", f"{result.network_power_w * 1000:.0f} mW"],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{design} on {benchmark} "
                             f"({args.refs} refs, seed {args.seed})"))
    if sanitizer is not None:
        digest = sanitizer.summary()
        print(f"sanitizer: clean ({digest['invariants']} invariant(s), "
              f"{digest['checks_run']} sweep(s) over "
              f"{digest['accesses']} L2 accesses)")
    if observer is not None:
        if args.metrics_out:
            from repro.obs import save_manifest

            save_manifest(args.metrics_out, observer.manifest)
            print(f"manifest written to {args.metrics_out}")
        if args.trace_out:
            written = observer.tracer.write_jsonl(args.trace_out)
            summary = observer.tracer.summary()
            note = ""
            if summary["dropped"]:
                note = f" ({summary['dropped']} older event(s) dropped)"
            print(f"{written} trace event(s) written to "
                  f"{args.trace_out}{note}")
    return 0


def _cmd_replay(args) -> int:
    """Replay a crash bundle; exit 0 iff the failure reproduces."""
    from repro.sanitizer import load_bundle, minimize_bundle, replay_bundle

    try:
        bundle = load_bundle(args.bundle)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot load bundle {args.bundle!r}: {error}",
              file=sys.stderr)
        return 2
    expected = bundle.error.get("type", "?")
    detail = (bundle.error.get("kind")
              or bundle.error.get("message", ""))
    print(f"bundle: {bundle.design} on {bundle.benchmark} "
          f"(seed {bundle.seed}, {len(bundle.trace)} trace refs)")
    print(f"expected failure: {expected}: {detail}")
    if bundle.minimized_from:
        print(f"minimized from: {bundle.minimized_from}")
    try:
        outcome = replay_bundle(bundle)
    except ValueError as error:
        print(f"error: bundle is not replayable: {error}", file=sys.stderr)
        return 2
    print(f"replay: {outcome.outcome} ({outcome.refs} refs)")
    if not outcome.reproduced:
        if outcome.error is not None:
            print(f"got instead: {type(outcome.error).__name__}: "
                  f"{outcome.error}", file=sys.stderr)
        return 1
    if args.minimize:
        minimal, path = minimize_bundle(bundle, out_dir=args.out)
        print(f"minimized: {len(bundle.trace)} -> {minimal} refs")
        print(f"minimized bundle written to {path}")
    return 0


def _manifest_overview_rows(manifest) -> list:
    """Provenance summary rows shared by the stats views."""
    trace = manifest.trace or {}
    return [
        ["kind", manifest.kind],
        ["design", manifest.design or "-"],
        ["benchmark", manifest.benchmark or "-"],
        ["seed", manifest.seed if manifest.seed is not None else "-"],
        ["config digest", manifest.config_digest[:16] + "..."],
        ["code version", manifest.code_version[:16] + "..."],
        ["wall time", f"{manifest.wall_time_s:.2f} s"],
        ["trace events", trace.get("events", "-")],
    ]


def _cmd_stats(args) -> int:
    from repro.obs import diff_manifests, flatten, load_manifest

    try:
        manifest = load_manifest(args.manifest)
        other = load_manifest(args.other) if args.other else None
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if other is not None:
        rows = diff_manifests(manifest, other, skip_bins=not args.bins)
        if not rows:
            print("manifests are identical (ignoring wall time"
                  + ("" if args.bins else " and histogram bins") + ")")
            return 0
        print(format_table(
            ["field", "a", "b"],
            [[name, va, vb] for name, va, vb in rows],
            title=f"{len(rows)} difference(s): a={args.manifest} "
                  f"b={args.other}"))
        return 0

    print(format_table(["field", "value"], _manifest_overview_rows(manifest),
                       title=f"Run manifest: {args.manifest}"))
    if manifest.result:
        print()
        print(format_table(
            ["result field", "value"],
            sorted(flatten(manifest.result).items()),
            title="Headline result"))
    print()
    print(format_table(
        ["metric", "value"],
        sorted(flatten(manifest.metrics, skip_bins=not args.bins).items()),
        title="Metrics snapshot"))
    return 0


def _cmd_compare(args) -> int:
    designs = args.designs or list(design_names())
    profile = get_profile(args.benchmark)
    trace = generate_trace(profile.spec, args.refs, seed=args.seed)
    results = {design: run_system(design, args.benchmark, trace=trace)
               for design in designs}
    baseline_name = "SNUCA2" if "SNUCA2" in results else designs[0]
    baseline = results[baseline_name].cycles

    norm = {"normalized time": {d: r.cycles / baseline
                                for d, r in results.items()}}
    print(grouped_bar_chart(
        norm, designs, width=44, reference_line=1.0,
        title=f"Execution time on {args.benchmark}, "
              f"normalized to {baseline_name}"))
    print()
    lookup = {"mean lookup (cycles)": {d: r.mean_lookup_latency
                                       for d, r in results.items()}}
    print(grouped_bar_chart(lookup, designs, width=44,
                            value_format="{:.1f}",
                            title="Mean lookup latency"))
    return 0


def _cmd_trace(args) -> int:
    from repro.workloads.stats import summarize

    profile = get_profile(args.benchmark)
    trace = generate_trace(profile.spec, args.refs, seed=args.seed)
    summary = summarize(trace)
    rows = [["references", summary.references],
            ["instructions", summary.instructions],
            ["footprint", f"{summary.footprint_bytes / 2**20:.1f} MB"],
            ["writes", f"{summary.write_fraction:.0%}"],
            ["dependent", f"{summary.dependent_fraction:.0%}"],
            ["L2 refs / kinstr", round(summary.l2_refs_per_kinstr, 1)],
            ["LRU miss @ 16 MB (predicted)",
             f"{summary.predicted_miss_ratio_16mb:.1%}"]]
    print(format_table(["property", "value"], rows,
                       title=f"Trace characterization: {args.benchmark}"))
    if args.out:
        from repro.workloads.trace import save_trace
        save_trace(args.out, trace)
        print(f"\ntrace written to {args.out}")
    return 0


def _grid_cache(args):
    """A ResultCache for --cache-dir, or None when caching is off."""
    if not getattr(args, "cache_dir", None):
        return None
    from repro.analysis.runner import ResultCache

    return ResultCache(args.cache_dir)


def _derived_lane(args):
    """The derived-artifact lane the grid/report commands route through.

    ``--derived-cache-dir`` names the lane directory explicitly;
    without it, a ``--cache-dir`` run keeps derived artifacts beside
    the results it fingerprints (``<cache-dir>/derived``).
    ``--no-derived-cache`` — or neither flag — yields a disabled lane
    (same rendering, nothing persisted).
    """
    from repro.analysis.derived import as_lane

    if getattr(args, "no_derived_cache", False):
        return as_lane(None)
    root = getattr(args, "derived_cache_dir", None)
    if not root and getattr(args, "cache_dir", None):
        import os

        root = os.path.join(args.cache_dir, "derived")
    return as_lane(root)


def _grid_resilience(args):
    """``(policy, checkpoint, telemetry)`` for the grid/report commands.

    All ``None`` when no resilience flag is set and no ``REPRO_FAULT_PLAN``
    is in the environment, which keeps the default path on the fast
    (pool-based) executor.
    """
    from repro.analysis.resilience import (
        CheckpointJournal,
        FaultPlan,
        RetryPolicy,
        RunnerTelemetry,
    )

    wanted = (args.retries or args.cell_timeout or args.checkpoint
              or FaultPlan.from_env() is not None)
    if not wanted:
        return None, None, None
    policy = RetryPolicy(max_retries=args.retries,
                         cell_timeout_s=args.cell_timeout,
                         backoff_base_s=0.5)
    checkpoint = CheckpointJournal(args.checkpoint) if args.checkpoint else None
    return policy, checkpoint, RunnerTelemetry()


def _cmd_grid(args) -> int:
    from repro.analysis.experiments import run_design_grid
    from repro.analysis.storage import load_grid, save_grid

    if args.load:
        grid = load_grid(args.load)
        print(f"loaded grid from {args.load}")
    else:
        cache = _grid_cache(args)
        policy, checkpoint, telemetry = _grid_resilience(args)
        from repro.core.config import ConfigError

        try:
            grid = run_design_grid(
                designs=args.designs or ("SNUCA2", "DNUCA", "TLC"),
                benchmarks=args.benchmarks or None,
                n_refs=args.refs, seed=args.seed,
                workers=args.workers, cache=cache,
                policy=policy, checkpoint=checkpoint,
                telemetry=telemetry,
                sanitize=args.sanitize, backend=args.backend)
        except ConfigError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if cache is not None:
            print(f"cache: {cache.hits} hit(s), {cache.stores} cell(s) "
                  f"simulated and stored under {args.cache_dir}")
        if telemetry is not None:
            print(f"resilience: {telemetry.summary()}")
            if args.checkpoint:
                print(f"checkpoint journal: {args.checkpoint}")
    if args.save:
        save_grid(args.save, grid)
        print(f"grid saved to {args.save}")

    from repro.analysis.tables import normalized_time_artifact

    lane = _derived_lane(args)
    artifact = normalized_time_artifact(grid, lane)
    print(artifact["rendered"])
    if lane.enabled:
        print(lane.summary())
    return 0


def _grid_manifest_section(grid) -> dict:
    """One grid rendered as a nested metrics document for a manifest.

    ``<design>.<benchmark>`` carries the cell's headline numbers plus
    the runner's execution provenance (wall time, cache hit).
    """
    section = {}
    for (design, benchmark), result in sorted(grid.results.items()):
        cell = {
            "cycles": result.cycles,
            "ipc": round(result.ipc, 6),
            "l2_miss_ratio": round(result.miss_ratio, 6),
            "mean_lookup_latency": round(result.mean_lookup_latency, 4),
        }
        if grid.cell_meta is not None:
            meta = grid.cell_meta[(design, benchmark)]
            cell["wall_time_s"] = round(meta["wall_time_s"], 4)
            cell["from_cache"] = meta["from_cache"]
        section.setdefault(design, {})[benchmark] = cell
    return section


def _cmd_report(args) -> int:
    import time as _time

    from repro.analysis.experiments import (
        MAIN_DESIGNS,
        TLC_FAMILY,
        run_design_grid,
    )
    from repro.analysis.report import build_report
    from repro.analysis.runner import cache_key, grid_cell_specs

    started = _time.perf_counter()
    cache = _grid_cache(args)
    lane = _derived_lane(args)
    policy, checkpoint, telemetry = _grid_resilience(args)

    # Every cell either grid would run, fingerprinted without running
    # anything — this keys the whole rendered document, so a warm lane
    # serves the report with zero simulation and zero section work.
    family_designs = ("SNUCA2",) + TLC_FAMILY
    main_cells, benchmarks = grid_cell_specs(designs=MAIN_DESIGNS,
                                             n_refs=args.refs)
    family_cells, _ = grid_cell_specs(designs=family_designs,
                                      n_refs=args.refs)
    document_keys = [cache_key(cell) for cell in main_cells + family_cells]

    grids = {}

    def compute_document() -> dict:
        grids["main"] = run_design_grid(
            designs=MAIN_DESIGNS, n_refs=args.refs, workers=args.workers,
            cache=cache, policy=policy, checkpoint=checkpoint,
            telemetry=telemetry)
        grids["family"] = run_design_grid(
            designs=family_designs, n_refs=args.refs, workers=args.workers,
            cache=cache, policy=policy, checkpoint=checkpoint,
            telemetry=telemetry)
        text = build_report(main_grid=grids["main"],
                            family_grid=grids["family"],
                            n_refs=args.refs, derived=lane)
        return {"rendered": text}

    artifact = lane.get_or_compute(
        kind="report.document",
        cell_keys=document_keys,
        params={"n_refs": args.refs},
        compute=compute_document)
    text = artifact["rendered"]

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    if not grids:
        print("report: rendered from derived cache (0 cells simulated)")
    if lane.enabled:
        print(lane.summary())
    if telemetry is not None:
        print(f"resilience: {telemetry.summary()}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry, build_manifest, save_manifest

        config = {
            "n_refs": args.refs,
            "main_designs": list(MAIN_DESIGNS),
            "family_designs": list(family_designs),
            "benchmarks": list(benchmarks),
            "workers": args.workers,
            "cached": cache is not None,
            "derived_cached": lane.enabled,
            "retries": args.retries,
            "cell_timeout_s": args.cell_timeout,
            "checkpoint": args.checkpoint,
        }
        # Per-cell sections exist only when the grids actually ran; a
        # document-warm report simulated nothing to report on.
        metrics = {}
        if grids:
            metrics["main"] = _grid_manifest_section(grids["main"])
            metrics["family"] = _grid_manifest_section(grids["family"])
        # Mount the live counters on a registry so the manifest carries
        # the same runner.* / analysis.derived.* names snapshots use.
        registry = MetricsRegistry()
        lane.register(registry)
        if telemetry is not None:
            telemetry.register(registry)
        metrics.update(registry.snapshot())
        manifest = build_manifest(
            kind="report",
            config=config,
            metrics=metrics,
            wall_time_s=_time.perf_counter() - started,
            resilience=telemetry.as_dict() if telemetry is not None else None,
            derived=lane.as_dict(),
        )
        save_manifest(args.metrics_out, manifest)
        print(f"report manifest written to {args.metrics_out}")
    return 0


def _cmd_explore(args) -> int:
    import json
    import time as _time

    from repro.core.config import ConfigError
    from repro.explore import (
        build_search_manifest,
        leaderboard_artifact,
        run_search,
        validate_space_spec,
    )
    from repro.obs import MetricsRegistry

    started = _time.perf_counter()
    try:
        with open(args.space, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        print(f"error: cannot read space file: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: {args.space} is not valid JSON: {error}",
              file=sys.stderr)
        return 2

    cache = _grid_cache(args)
    lane = _derived_lane(args)
    policy, checkpoint, telemetry = _grid_resilience(args)
    registry = MetricsRegistry()
    try:
        spec = validate_space_spec(payload)
        result = run_search(spec, driver=args.driver, seed=args.seed,
                            budget=args.budget, workers=args.workers,
                            cache=cache, policy=policy,
                            checkpoint=checkpoint, telemetry=telemetry,
                            backend=args.backend, registry=registry)
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    artifact = leaderboard_artifact(result, lane, top_k=args.top_k)
    text = artifact["rendered"]
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"leaderboard written to {args.out}")
    else:
        print(text)
    if args.trajectory_out:
        document = json.dumps(result.trajectory(), indent=1,
                              sort_keys=True) + "\n"
        with open(args.trajectory_out, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"trajectory written to {args.trajectory_out}")
    # The smoke-test contract line: a repeated search against a warm
    # cache must report "0 cell(s) simulated" (CI greps for it).
    print(f"explore: {result.cells_simulated} cell(s) simulated, "
          f"{result.cells_from_cache} cache hit(s) across "
          f"{len(result.rounds)} round(s); "
          f"{result.variants_total} variant(s) in space, "
          f"{result.variants_skipped} skipped")
    if cache is not None:
        print(f"cache: {cache.hits} hit(s), {cache.stores} cell(s) "
              f"simulated and stored under {args.cache_dir}")
    if lane.enabled:
        print(lane.summary())
    if telemetry is not None:
        print(f"resilience: {telemetry.summary()}")
    if args.metrics_out:
        from repro.obs import save_manifest

        lane.register(registry)
        if telemetry is not None:
            telemetry.register(registry)
        manifest = build_search_manifest(
            result, wall_time_s=_time.perf_counter() - started,
            metrics=registry.snapshot(), top_k=args.top_k)
        save_manifest(args.metrics_out, manifest)
        print(f"search manifest written to {args.metrics_out}")
    return 0


def _cmd_perf(args) -> int:
    from repro.analysis.perf import (
        bench_document,
        compare_benchmarks,
        load_benchmarks,
        run_suite,
        save_benchmarks,
    )
    from repro.obs.manifest import code_version_stamp

    results, pinned = run_suite(
        quick=args.quick, name_filter=args.filter, reps=args.reps,
        pin=not args.no_pin,
        progress=lambda name: print(f"  bench {name} ...", file=sys.stderr))
    if not results:
        _print_no_filter_match(args.filter)
        return 2
    document = bench_document(results, code_version=code_version_stamp(),
                              pinned=pinned, quick=args.quick)

    rows = []
    for name in sorted(results):
        result = results[name]
        ops = result.meta.get("ops_per_sec")
        rows.append([name, f"{result.median_ns / 1e6:.3f}",
                     f"{result.mad_ns / 1e6:.3f}", result.reps,
                     f"{ops:,.0f}" if ops else "-"])
    mode = "quick" if args.quick else "full"
    print(format_table(
        ["benchmark", "median (ms)", "MAD (ms)", "reps", "ops/sec"],
        rows, title=f"Microbenchmarks ({mode} mode, "
                    f"{'pinned' if pinned else 'unpinned'})"))
    _print_backend_speedups(results)

    if args.save:
        written = save_benchmarks(args.save, document)
        print(f"benchmarks written to {written}")

    if args.compare:
        try:
            baseline = load_benchmarks(args.compare)
        except (OSError, ValueError) as error:
            print(f"error: cannot load baseline: {error}", file=sys.stderr)
            return 2
        try:
            comparisons, missing = compare_benchmarks(
                document, baseline, fail_above_pct=args.fail_above,
                normalize=args.normalize)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        compare_rows = [
            [c.name, f"{c.baseline_ns / 1e6:.3f}",
             f"{c.current_ns / 1e6:.3f}", f"{c.ratio:.2f}x",
             "REGRESSED" if c.regressed else "ok"]
            for c in comparisons
        ]
        norm = " (calibration-normalized)" if args.normalize else ""
        print()
        print(format_table(
            ["benchmark", "baseline (ms)", "current (ms)", "ratio", "verdict"],
            compare_rows,
            title=f"vs {args.compare}, fail above "
                  f"+{args.fail_above:.0f}%{norm}"))
        for name in missing:
            print(f"warning: baseline benchmark {name!r} was not run",
                  file=sys.stderr)
        regressions = [c.name for c in comparisons if c.regressed]
        if regressions:
            print(f"PERF REGRESSION in: {', '.join(regressions)}",
                  file=sys.stderr)
            return 1
        print("no perf regressions")
    return 0


def _print_no_filter_match(name_filter) -> None:
    """The zero-match --filter diagnostic (stderr), with the names."""
    from repro.analysis.perf import benchmark_names

    print(f"error: no benchmark matches filter {name_filter!r}; "
          f"available benchmarks:", file=sys.stderr)
    for name in benchmark_names():
        print(f"  {name}", file=sys.stderr)


def _print_backend_speedups(results) -> None:
    """Median-time speedup lines for reference/batched benchmark pairs.

    A pair is ``<stem>.batched`` next to ``<stem>.reference`` or a bare
    ``<stem>`` (the ``system.refs_per_sec.tlc`` convention, where the
    unsuffixed name is the reference run).
    """
    lines = []
    for name in sorted(results):
        if not name.endswith(".batched"):
            continue
        stem = name[:-len(".batched")]
        sibling = next((candidate for candidate
                        in (f"{stem}.reference", stem)
                        if candidate in results), None)
        if sibling is None or results[name].median_ns <= 0:
            continue
        speedup = results[sibling].median_ns / results[name].median_ns
        lines.append(f"  {stem}: {speedup:.2f}x "
                     f"({sibling} / {name}, median)")
    if lines:
        print("backend speedup (batched vs reference):")
        for line in lines:
            print(line)


def _cmd_perf_list(args) -> int:
    from repro.analysis.perf import benchmark_names

    names = [name for name in benchmark_names()
             if args.filter is None or args.filter in name]
    if not names:
        _print_no_filter_match(args.filter)
        return 2
    for name in names:
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TLC: Transmission Line Caches — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the design registry").set_defaults(
        func=_cmd_designs)
    sub.add_parser("benchmarks", help="list workload profiles").set_defaults(
        func=_cmd_benchmarks)

    line = sub.add_parser("line", help="grade a transmission line")
    line.add_argument("length_cm", type=float, help="routed length in cm")
    line.set_defaults(func=_cmd_line)

    run = sub.add_parser("run", help="run one design on one benchmark")
    run.add_argument("design", nargs="?",
                     help="design name (any case/separator spelling, "
                          "e.g. TLC or tlc_opt_500)")
    run.add_argument("benchmark", nargs="?",
                     help="benchmark profile name (see `repro benchmarks`)")
    run.add_argument("--design", dest="design_opt", metavar="DESIGN",
                     help="design name (flag form of the positional)")
    run.add_argument("--benchmark", dest="benchmark_opt", metavar="BENCH",
                     help="benchmark name (flag form of the positional)")
    run.add_argument("--refs", type=int, default=20_000)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--backend", default=None, metavar="NAME",
                     help="simulation backend: 'reference' (scalar loop, "
                          "full feature support) or 'batched' (numpy "
                          "struct-of-arrays, byte-identical results); "
                          "default: the design config's backend")
    run.add_argument("--metrics-out", metavar="FILE",
                     help="write the run manifest (config digest, code "
                          "version, full metrics snapshot) as JSON")
    run.add_argument("--trace-out", metavar="FILE",
                     help="capture an event trace and write it as JSONL")
    run.add_argument("--trace-types", nargs="+", metavar="TYPE",
                     help="only trace these event types "
                          "(e.g. l2.access run.warmup_end)")
    run.add_argument("--sanitize", action="store_true",
                     help="run under the simulator-core sanitizer "
                          "(invariant checks + livelock watchdog); a "
                          "violation exits 3")
    run.add_argument("--sanitize-interval", type=int, default=1024,
                     metavar="N", help="invariant sweep every N L2 "
                                       "accesses (default 1024)")
    run.add_argument("--watchdog-cycles", type=int, default=1_000_000,
                     metavar="CYCLES",
                     help="cycles without retirement before the "
                          "livelock watchdog trips (default 1000000)")
    run.add_argument("--crash-dir", metavar="DIR",
                     help="write a replayable crash bundle here on any "
                          "failure (see `repro replay`)")
    run.add_argument("--inject-fault", metavar="KIND[:AT[:CHANNEL]]",
                     help="seed a deliberate fault to exercise the "
                          "sanitizer, e.g. drop_transfer:40 or "
                          "double_install:3 (implies --sanitize)")
    run.add_argument("--trace-capacity", type=int, default=None,
                     metavar="N",
                     help="keep only the newest N events (ring buffer); "
                          "default keeps every event")
    run.set_defaults(func=_cmd_run)

    replay = sub.add_parser(
        "replay", help="re-execute a crash bundle deterministically")
    replay.add_argument("bundle", help="crash-bundle directory (written "
                                       "by a --crash-dir run)")
    replay.add_argument("--minimize", action="store_true",
                        help="bisect the reference stream to a minimal "
                             "failing prefix and write a *-min bundle")
    replay.add_argument("--out", metavar="DIR",
                        help="directory for the minimized bundle "
                             "(default: <bundle>-min)")
    replay.set_defaults(func=_cmd_replay)

    stats = sub.add_parser(
        "stats", help="pretty-print a run manifest, or diff two")
    stats.add_argument("manifest",
                       help="manifest JSON from `run --metrics-out` or "
                            "`report --metrics-out`")
    stats.add_argument("other", nargs="?",
                       help="second manifest: show differences instead")
    stats.add_argument("--bins", action="store_true",
                       help="include histogram bins (hidden by default)")
    stats.set_defaults(func=_cmd_stats)

    compare = sub.add_parser("compare", help="all designs on one benchmark")
    compare.add_argument("benchmark", choices=list(benchmark_names()))
    compare.add_argument("--designs", nargs="+",
                         choices=list(design_names()))
    compare.add_argument("--refs", type=int, default=15_000)
    compare.add_argument("--seed", type=int, default=7)
    compare.set_defaults(func=_cmd_compare)

    trace = sub.add_parser("trace", help="generate + characterize a trace")
    trace.add_argument("benchmark", choices=list(benchmark_names()))
    trace.add_argument("--refs", type=int, default=20_000)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--out", help="write the trace to this path")
    trace.set_defaults(func=_cmd_trace)

    grid = sub.add_parser("grid", help="run/save/load an experiment grid")
    grid.add_argument("--designs", nargs="+", choices=list(design_names()))
    grid.add_argument("--benchmarks", nargs="+",
                      choices=list(benchmark_names()))
    grid.add_argument("--refs", type=int, default=15_000)
    grid.add_argument("--seed", type=int, default=7)
    grid.add_argument("--sanitize", action="store_true",
                      help="run every cell under the simulator-core "
                           "sanitizer (identical results, checked)")
    grid.add_argument("--backend", default="reference", metavar="NAME",
                      help="simulation backend for every cell "
                           "('reference' or 'batched'; results are "
                           "byte-identical, but the name is part of each "
                           "cell's cache key)")
    grid.add_argument("--save", help="write the grid to this JSON path")
    grid.add_argument("--load", help="load a grid instead of running")
    grid.add_argument("--workers", type=int, default=1,
                      help="worker processes for grid cells (1 = serial)")
    grid.add_argument("--cache-dir",
                      help="content-addressed result cache directory; "
                           "cells already simulated (by any command "
                           "sharing the directory) are reused")
    _add_resilience_flags(grid)
    _add_derived_flags(grid)
    grid.set_defaults(func=_cmd_grid)

    report = sub.add_parser("report", help="full measured-vs-paper report")
    report.add_argument("--refs", type=int, default=20_000)
    report.add_argument("--out", help="write markdown to this path")
    report.add_argument("--workers", type=int, default=1,
                        help="worker processes for grid cells (1 = serial)")
    report.add_argument("--cache-dir",
                        help="content-addressed result cache directory "
                             "(the report's two grids share 24 cells, so "
                             "a cache pays off within one run)")
    report.add_argument("--metrics-out", metavar="FILE",
                        help="write a grid manifest (per-cell headline "
                             "numbers, wall times, cache hits, resilience "
                             "counters) as JSON")
    _add_resilience_flags(report)
    _add_derived_flags(report)
    report.set_defaults(func=_cmd_report)

    explore = sub.add_parser(
        "explore",
        help="search a declarative design space and rank its variants")
    explore.add_argument("--space", required=True, metavar="FILE",
                         help="JSON SpaceSpec document "
                              "(docs/EXPLORATION.md has the reference)")
    explore.add_argument("--driver", default="random",
                         choices=["random", "grid", "halving"],
                         help="search driver (default: random)")
    explore.add_argument("--seed", type=int, default=0,
                         help="search seed — drives candidate selection "
                              "only; the trace seed lives in the spec")
    explore.add_argument("--budget", type=int, default=8,
                         help="variants admitted to evaluation")
    explore.add_argument("--top-k", type=int, default=5, dest="top_k",
                         help="variants shown on the leaderboard")
    explore.add_argument("--backend", default=None, metavar="NAME",
                         help="override the spec's simulation backend "
                              "('reference' or 'batched')")
    explore.add_argument("--workers", type=int, default=1,
                         help="worker processes for grid cells (1 = serial)")
    explore.add_argument("--cache-dir",
                         help="content-addressed result cache directory; "
                              "a repeated search (or one sharing cells "
                              "with any other command) simulates only "
                              "what is new")
    explore.add_argument("--out", metavar="FILE",
                         help="write the leaderboard to this path "
                              "(byte-identical across repeated runs)")
    explore.add_argument("--trajectory-out", metavar="FILE",
                         help="write the deterministic search-trajectory "
                              "JSON to this path")
    explore.add_argument("--metrics-out", metavar="FILE",
                         help="write a kind=explore.search run manifest "
                              "(explore.* counters, wall time, cache "
                              "provenance) as JSON")
    _add_resilience_flags(explore)
    _add_derived_flags(explore)
    explore.set_defaults(func=_cmd_explore)

    perf = sub.add_parser(
        "perf", help="run the microbenchmark suite; optionally compare "
                     "against a BENCH baseline")
    perf.add_argument("--quick", action="store_true",
                      help="smaller workloads, fewer reps (the CI mode)")
    perf.add_argument("--filter", metavar="SUBSTR",
                      help="only run benchmarks whose name contains SUBSTR")
    perf.add_argument("--reps", type=int, default=None, metavar="N",
                      help="override the repetition count")
    perf.add_argument("--no-pin", action="store_true",
                      help="do not pin the process to one CPU")
    perf.add_argument("--save", metavar="FILE",
                      help="write the BENCH JSON document (a directory "
                           "gets the conventional BENCH_<rev>.json name)")
    perf.add_argument("--compare", metavar="BASELINE",
                      help="compare against a BENCH baseline document; "
                           "exits 1 on regression")
    perf.add_argument("--fail-above", type=float, default=40.0,
                      metavar="PCT",
                      help="regression threshold in percent slowdown "
                           "(default: 40)")
    perf.add_argument("--normalize", action="store_true",
                      help="rescale by the calibration.spin benchmark "
                           "before comparing (cross-machine baselines)")
    perf.add_argument("--list", dest="list_only", action="store_true",
                      help="list benchmark names and exit")
    perf.set_defaults(func=_cmd_perf_dispatch)

    serve = sub.add_parser(
        "serve", help="run the HTTP/JSON job API over the grid runner "
                      "(see docs/SERVICE.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port; 0 picks a free one (default: 8765)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker threads sharding job cells (default: 2)")
    serve.add_argument("--cache-dir",
                       help="content-addressed result cache shared by every "
                            "job (and with grid/report runs); without it "
                            "dedupe only spans this process's lifetime")
    serve.add_argument("--checkpoint-dir", metavar="DIR",
                       help="journal each job's completed cells under DIR "
                            "(one JSONL file per job) for crash resume")
    serve.add_argument("--retries", type=int, default=0, metavar="N",
                       help="retry a failed, crashed, or timed-out cell up "
                            "to N times (routes cells through the resilient "
                            "process-per-cell executor)")
    serve.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="kill and reschedule any cell attempt running "
                            "longer than this")
    serve.add_argument("--journal-dir", metavar="DIR",
                       help="durable job journal under DIR "
                            "(journal.jsonl); on restart, unfinished jobs "
                            "are re-enqueued under their original ids and "
                            "finished jobs replay from the result cache")
    serve.add_argument("--max-active-jobs", type=int,
                       default=DEFAULT_MAX_ACTIVE_JOBS, metavar="N",
                       help="admission cap on concurrently active "
                            "(queued+running) jobs; over-capacity submits "
                            "answer 429 with Retry-After; 0 = unlimited "
                            f"(default: {DEFAULT_MAX_ACTIVE_JOBS})")
    serve.add_argument("--max-queued-cells", type=int,
                       default=DEFAULT_MAX_QUEUED_CELLS, metavar="N",
                       help="admission cap on the shared cell queue depth; "
                            "0 = unlimited "
                            f"(default: {DEFAULT_MAX_QUEUED_CELLS})")
    serve.add_argument("--job-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="evict a finished job's status this long after "
                            "it completes (status answers 410 gone; the "
                            "result stays reachable by resubmitting the "
                            "spec — the cache replays it without "
                            "simulation); default: keep forever")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="on SIGTERM/SIGINT, stop admitting (503) and "
                            "wait up to this long for in-flight jobs "
                            "before exiting (default: 30)")
    _add_derived_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    return parser


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.analysis.resilience import RetryPolicy
    from repro.service import JobStore, make_server
    from repro.service.journal import as_job_journal, describe_recovery

    policy = None
    if args.retries or args.cell_timeout or args.checkpoint_dir:
        policy = RetryPolicy(max_retries=args.retries,
                             cell_timeout_s=args.cell_timeout,
                             backoff_base_s=0.5)
    store = JobStore(cache=_grid_cache(args), derived=_derived_lane(args),
                     workers=args.workers, policy=policy,
                     checkpoint_dir=args.checkpoint_dir,
                     journal=as_job_journal(args.journal_dir),
                     max_active_jobs=args.max_active_jobs,
                     max_queued_cells=args.max_queued_cells,
                     job_ttl_s=args.job_ttl)
    # make_server replays the journal before workers start.
    server = make_server(store, host=args.host, port=args.port, quiet=False)
    host, port = server.server_address[:2]
    if args.journal_dir:
        print(describe_recovery(store.recovery_stats), flush=True)
    print(f"repro service on http://{host}:{port} "
          f"({args.workers} worker(s), "
          f"cache={'on' if args.cache_dir else 'off'}, "
          f"derived={'on' if store.lane.enabled else 'off'}, "
          f"journal={'on' if args.journal_dir else 'off'})",
          flush=True)

    def _drain(signum, frame) -> None:
        # First signal: stop admitting (503 draining), finish in-flight
        # work, then stop the HTTP loop.  A second signal still kills.
        if store.draining:
            return
        print(f"drain: signal {signum}; finishing in-flight jobs "
              f"(up to {args.drain_timeout}s)", flush=True)
        store.begin_drain()

        def _finish() -> None:
            store.await_drain(args.drain_timeout)
            server.shutdown()

        threading.Thread(target=_finish, name="repro-drain",
                         daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        # Ctrl-C: stop serving immediately, but still drain in-flight
        # jobs and journal the shutdown marker via store.shutdown().
        pass
    finally:
        server.shutdown()
        server.server_close()
        clean = store.shutdown(drain_timeout_s=args.drain_timeout)
        print(f"shutdown: {'clean' if clean else 'drain timed out'}",
              flush=True)
    return 0


def _cmd_perf_dispatch(args) -> int:
    if args.list_only:
        return _cmd_perf_list(args)
    return _cmd_perf(args)


def _add_derived_flags(parser: argparse.ArgumentParser) -> None:
    """The derived-artifact lane flags shared by ``grid`` and ``report``."""
    parser.add_argument("--derived-cache-dir", metavar="DIR",
                        help="cache derived artifacts (report sections, "
                             "rendered tables) here, keyed by the result "
                             "cells they were computed from; a warm "
                             "report re-renders with zero simulation")
    parser.add_argument("--no-derived-cache", action="store_true",
                        help="never read or write derived artifacts, even "
                             "when --cache-dir implies a lane at "
                             "<cache-dir>/derived")


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance flags shared by ``grid`` and ``report``."""
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry a failed, crashed, or timed-out cell "
                             "up to N times (exponential backoff)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill and reschedule any cell attempt running "
                             "longer than this")
    parser.add_argument("--checkpoint", metavar="FILE",
                        help="journal completed cells to FILE (JSONL); an "
                             "interrupted run resumes from it and produces "
                             "a byte-identical grid")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # `repro stats m.json | head` closes stdout mid-table; point
        # stdout at devnull so the interpreter's shutdown flush doesn't
        # raise a second time, and exit quietly like other CLIs do.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``designs`` — list the design registry (Table 2).
* ``benchmarks`` — list the calibrated workload profiles.
* ``line <length_cm>`` — extract + grade a transmission line.
* ``run <design> <benchmark>`` — one experiment cell, full metrics.
* ``compare <benchmark>`` — all designs on one benchmark, as a chart.
* ``trace <benchmark>`` — generate and characterize a trace.
* ``report`` — the full measured-vs-paper markdown report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.figures import grouped_bar_chart
from repro.analysis.tables import format_table
from repro.core.config import DESIGNS, design_names
from repro.sim.system import run_system
from repro.workloads.profiles import PROFILES, benchmark_names, get_profile
from repro.workloads.synthetic import generate_trace


def _cmd_designs(_args) -> int:
    rows = []
    for name, config in DESIGNS.items():
        low, high = config.uncontended_latency_range
        rows.append([name, config.kind, config.banks,
                     f"{config.bank_bytes // 1024} KB",
                     config.total_lines or "-", f"{low}-{high}"])
    print(format_table(
        ["design", "kind", "banks", "bank size", "TL lines", "latency"],
        rows, title="Design registry (paper Table 2)"))
    return 0


def _cmd_benchmarks(_args) -> int:
    rows = []
    for profile in PROFILES.values():
        spec = profile.spec
        rows.append([
            profile.name, profile.suite,
            f"{profile.l2_requests_per_kinstr:.1f}",
            f"{spec.hot_blocks * 64 / 2**20:.1f} MB",
            f"{spec.stream_fraction:.0%}",
            f"{spec.dependent_fraction:.0%}",
        ])
    print(format_table(
        ["benchmark", "suite", "L2 refs/kinstr", "hot set", "stream", "dep"],
        rows, title="Calibrated workload profiles (paper Tables 4/5)"))
    return 0


def _cmd_line(args) -> int:
    from repro.tline import evaluate_link

    length_m = args.length_cm / 100.0
    try:
        report = evaluate_link(length_m)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"geometry class : {report.geometry.name} "
          f"(W={report.geometry.width * 1e6:.1f} um, "
          f"S={report.geometry.spacing * 1e6:.1f} um)")
    print(f"impedance      : {report.line.z0:.1f} ohm")
    print(f"flight time    : {report.line.flight_time * 1e12:.1f} ps "
          f"({report.latency_cycles} cycle at 10 GHz)")
    print(f"received pulse : {report.amplitude_fraction:.0%} of Vdd "
          f"(need >= 75%), width {report.width_fraction:.0%} of a cycle "
          f"(need >= 40%)")
    print(f"verdict        : {'USABLE' if report.usable else 'REJECTED'}")
    return 0 if report.usable else 2


def _cmd_run(args) -> int:
    result = run_system(args.design, args.benchmark, n_refs=args.refs,
                        seed=args.seed)
    rows = [
        ["cycles", result.cycles],
        ["instructions", result.instructions],
        ["IPC", round(result.ipc, 3)],
        ["L2 requests", result.l2_requests],
        ["L2 miss ratio", f"{result.miss_ratio:.2%}"],
        ["misses / kinstr", round(result.misses_per_kinstr, 3)],
        ["mean lookup latency", f"{result.mean_lookup_latency:.1f} cycles"],
        ["predictable lookups", f"{result.predictable_lookup_fraction:.0%}"],
        ["banks / request", round(result.banks_accessed_per_request, 2)],
        ["link utilization", f"{result.link_utilization:.1%}"],
        ["network power", f"{result.network_power_w * 1000:.0f} mW"],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.design} on {args.benchmark} "
                             f"({args.refs} refs, seed {args.seed})"))
    return 0


def _cmd_compare(args) -> int:
    designs = args.designs or list(design_names())
    profile = get_profile(args.benchmark)
    trace = generate_trace(profile.spec, args.refs, seed=args.seed)
    results = {design: run_system(design, args.benchmark, trace=trace)
               for design in designs}
    baseline_name = "SNUCA2" if "SNUCA2" in results else designs[0]
    baseline = results[baseline_name].cycles

    norm = {"normalized time": {d: r.cycles / baseline
                                for d, r in results.items()}}
    print(grouped_bar_chart(
        norm, designs, width=44, reference_line=1.0,
        title=f"Execution time on {args.benchmark}, "
              f"normalized to {baseline_name}"))
    print()
    lookup = {"mean lookup (cycles)": {d: r.mean_lookup_latency
                                       for d, r in results.items()}}
    print(grouped_bar_chart(lookup, designs, width=44,
                            value_format="{:.1f}",
                            title="Mean lookup latency"))
    return 0


def _cmd_trace(args) -> int:
    from repro.workloads.stats import summarize

    profile = get_profile(args.benchmark)
    trace = generate_trace(profile.spec, args.refs, seed=args.seed)
    summary = summarize(trace)
    rows = [["references", summary.references],
            ["instructions", summary.instructions],
            ["footprint", f"{summary.footprint_bytes / 2**20:.1f} MB"],
            ["writes", f"{summary.write_fraction:.0%}"],
            ["dependent", f"{summary.dependent_fraction:.0%}"],
            ["L2 refs / kinstr", round(summary.l2_refs_per_kinstr, 1)],
            ["LRU miss @ 16 MB (predicted)",
             f"{summary.predicted_miss_ratio_16mb:.1%}"]]
    print(format_table(["property", "value"], rows,
                       title=f"Trace characterization: {args.benchmark}"))
    if args.out:
        from repro.workloads.trace import save_trace
        save_trace(args.out, trace)
        print(f"\ntrace written to {args.out}")
    return 0


def _grid_cache(args):
    """A ResultCache for --cache-dir, or None when caching is off."""
    if not getattr(args, "cache_dir", None):
        return None
    from repro.analysis.runner import ResultCache

    return ResultCache(args.cache_dir)


def _cmd_grid(args) -> int:
    from repro.analysis.experiments import run_design_grid
    from repro.analysis.storage import load_grid, save_grid

    if args.load:
        grid = load_grid(args.load)
        print(f"loaded grid from {args.load}")
    else:
        cache = _grid_cache(args)
        grid = run_design_grid(designs=args.designs or ("SNUCA2", "DNUCA", "TLC"),
                               benchmarks=args.benchmarks or None,
                               n_refs=args.refs, seed=args.seed,
                               workers=args.workers, cache=cache)
        if cache is not None:
            print(f"cache: {cache.hits} hit(s), {cache.stores} cell(s) "
                  f"simulated and stored under {args.cache_dir}")
    if args.save:
        save_grid(args.save, grid)
        print(f"grid saved to {args.save}")

    baseline = grid.designs[0]
    rows = []
    for bench in grid.benchmarks:
        rows.append([bench] + [
            round(grid.normalized_execution_time(design, bench, baseline), 3)
            for design in grid.designs
        ])
    print(format_table(["benchmark"] + list(grid.designs), rows,
                       title=f"Normalized execution time ({baseline} = 1.0)"))
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.experiments import (
        MAIN_DESIGNS,
        TLC_FAMILY,
        run_design_grid,
    )
    from repro.analysis.report import build_report

    cache = _grid_cache(args)
    main_grid = run_design_grid(designs=MAIN_DESIGNS, n_refs=args.refs,
                                workers=args.workers, cache=cache)
    family_grid = run_design_grid(designs=("SNUCA2",) + TLC_FAMILY,
                                  n_refs=args.refs,
                                  workers=args.workers, cache=cache)
    text = build_report(main_grid=main_grid, family_grid=family_grid,
                        n_refs=args.refs)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TLC: Transmission Line Caches — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the design registry").set_defaults(
        func=_cmd_designs)
    sub.add_parser("benchmarks", help="list workload profiles").set_defaults(
        func=_cmd_benchmarks)

    line = sub.add_parser("line", help="grade a transmission line")
    line.add_argument("length_cm", type=float, help="routed length in cm")
    line.set_defaults(func=_cmd_line)

    run = sub.add_parser("run", help="run one design on one benchmark")
    run.add_argument("design", choices=list(design_names()))
    run.add_argument("benchmark", choices=list(benchmark_names()))
    run.add_argument("--refs", type=int, default=20_000)
    run.add_argument("--seed", type=int, default=7)
    run.set_defaults(func=_cmd_run)

    compare = sub.add_parser("compare", help="all designs on one benchmark")
    compare.add_argument("benchmark", choices=list(benchmark_names()))
    compare.add_argument("--designs", nargs="+",
                         choices=list(design_names()))
    compare.add_argument("--refs", type=int, default=15_000)
    compare.add_argument("--seed", type=int, default=7)
    compare.set_defaults(func=_cmd_compare)

    trace = sub.add_parser("trace", help="generate + characterize a trace")
    trace.add_argument("benchmark", choices=list(benchmark_names()))
    trace.add_argument("--refs", type=int, default=20_000)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--out", help="write the trace to this path")
    trace.set_defaults(func=_cmd_trace)

    grid = sub.add_parser("grid", help="run/save/load an experiment grid")
    grid.add_argument("--designs", nargs="+", choices=list(design_names()))
    grid.add_argument("--benchmarks", nargs="+",
                      choices=list(benchmark_names()))
    grid.add_argument("--refs", type=int, default=15_000)
    grid.add_argument("--seed", type=int, default=7)
    grid.add_argument("--save", help="write the grid to this JSON path")
    grid.add_argument("--load", help="load a grid instead of running")
    grid.add_argument("--workers", type=int, default=1,
                      help="worker processes for grid cells (1 = serial)")
    grid.add_argument("--cache-dir",
                      help="content-addressed result cache directory; "
                           "cells already simulated (by any command "
                           "sharing the directory) are reused")
    grid.set_defaults(func=_cmd_grid)

    report = sub.add_parser("report", help="full measured-vs-paper report")
    report.add_argument("--refs", type=int, default=20_000)
    report.add_argument("--out", help="write markdown to this path")
    report.add_argument("--workers", type=int, default=1,
                        help="worker processes for grid cells (1 = serial)")
    report.add_argument("--cache-dir",
                        help="content-addressed result cache directory "
                             "(the report's two grids share 24 cells, so "
                             "a cache pays off within one run)")
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

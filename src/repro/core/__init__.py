"""The paper's contribution: the Transmission Line Cache design family.

Exports the TLC designs themselves, the shared L2 design interface, and
the Table 2 configuration registry (which also covers the NUCA
baselines implemented in :mod:`repro.nuca`).
"""

from repro.core.base import L2Design, L2Outcome
from repro.core.config import (
    DesignConfig,
    DESIGNS,
    TLC_BASE,
    TLC_OPT_1000,
    TLC_OPT_500,
    TLC_OPT_350,
    SNUCA2,
    DNUCA,
    design_names,
    get_design,
    build_design,
)
from repro.core.controller import TLCController
from repro.core.tlc import TransmissionLineCache
from repro.core.tlc_opt import OptimizedTLC

__all__ = [
    "L2Design",
    "L2Outcome",
    "DesignConfig",
    "DESIGNS",
    "TLC_BASE",
    "TLC_OPT_1000",
    "TLC_OPT_500",
    "TLC_OPT_350",
    "SNUCA2",
    "DNUCA",
    "design_names",
    "get_design",
    "build_design",
    "TLCController",
    "TransmissionLineCache",
    "OptimizedTLC",
]

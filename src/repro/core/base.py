"""The shared interface and bookkeeping for all L2 cache designs.

Every design (TLC family and NUCA baselines) exposes one method::

    outcome = design.access(addr, time, write=False)

where ``time`` is the cycle the request reaches the L2 controller and
the returned :class:`L2Outcome` carries the completion time plus the
classification the paper's evaluation needs (hit/miss, lookup latency,
latency predictability, banks touched).

Designs update *functional* state (which block lives where) immediately
and compute *timing* through FIFO resource models, which is exact for
the arrival-ordered request stream a single core produces.  The base
class centralizes the statistics the evaluation section reports, so the
experiment harness can treat every design uniformly:

* ``stats``: requests, hits, misses, writebacks, bank accesses, ...
* ``lookup_latencies``: Histogram feeding Fig. 6 (mean lookup latency)
  and Table 6's predictable-lookup percentage.
* ``network_energy_j``: accumulated interconnect energy for Table 9.

All of these live in a per-design
:class:`~repro.obs.registry.MetricsRegistry` (``design.metrics``) under
dotted names — ``l2.hits``, ``l2.lookup_latency``,
``l2.bank03.occupancy``, ``memory.reads`` — plus whatever the concrete
design mounts (TLC link bundles under ``link.*``, NUCA meshes under
``mesh.*``).  ``design.metrics.snapshot()`` is the machine-readable
record a :class:`~repro.obs.manifest.RunManifest` embeds.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Optional

from repro.obs.registry import MetricsRegistry
from repro.sim.memory import MainMemory
from repro.tech import Technology, TECH_45NM


@dataclasses.dataclass(frozen=True)
class L2Outcome:
    """Result of one L2 access."""

    #: cycle the critical word is available to the requester (reads), or
    #: the cycle the write was accepted (writes).
    complete_time: int
    hit: bool
    #: cycles from controller arrival to hit data / miss determination.
    lookup_latency: int
    #: True when the latency matched the static prediction a scheduler
    #: would have made (Table 6, columns 7-8).
    predictable: bool
    write: bool = False


class L2Design(abc.ABC):
    """Base class: statistics plumbing shared by every design."""

    #: human-readable design name, set by subclasses.
    name: str = "l2"

    #: how pre-warm blocks should be ordered for this design:
    #: "popular_last" leaves the popular blocks most-recently-used (right
    #: for LRU designs); DNUCA overrides with "popular_first" so popular
    #: blocks claim the banks nearest the controller.
    install_order: str = "popular_last"

    def __init__(self, memory: Optional[MainMemory] = None,
                 tech: Technology = TECH_45NM) -> None:
        self.memory = memory if memory is not None else MainMemory()
        self.tech = tech
        #: every measurement this design (and its components) exposes,
        #: under dotted names; see repro.obs.registry.
        self.metrics = MetricsRegistry()
        self.stats = self.metrics.counter("l2")
        self.lookup_latencies = self.metrics.histogram("l2.lookup_latency")
        self.metrics.register("memory", self.memory.stats)
        self.metrics.gauge("l2.network_energy_j", self.network_energy_j)
        self._network_energy_acc = 0.0
        #: optional repro.sanitizer.Sanitizer; see attach_sanitizer.
        self.sanitizer = None

    # -- the design-specific part ----------------------------------------
    @abc.abstractmethod
    def access(self, addr: int, time: int, write: bool = False) -> L2Outcome:
        """Process one request arriving at the controller at ``time``."""

    @abc.abstractmethod
    def link_utilization(self, elapsed_cycles: int) -> float:
        """Average utilization of the design's data links (Fig. 7)."""

    @abc.abstractmethod
    def install(self, addr: int, dirty: bool = False) -> None:
        """Functionally place a block in the cache, with no timing cost.

        Used to pre-warm the cache to a plausible steady state before a
        measured run — the stand-in for the paper's multi-billion-
        instruction fast-forward phase.  Evictions during installation
        are silent (no writebacks, no statistics).
        """

    def reset_stats(self) -> None:
        """Clear all measurement state (used at the warmup boundary).

        Functional cache contents and resource busy times are preserved;
        only the statistics the evaluation reports are zeroed.  Metrics
        are cleared *in place* (via the registry), so the objects
        registered at construction keep observing the live values.
        """
        self.metrics.reset()
        self._network_energy_acc = 0.0
        self._reset_stats_extra()

    def _reset_stats_extra(self) -> None:
        """Hook for subclasses to clear design-specific meters."""

    # -- sanitizer wiring --------------------------------------------------
    def attach_sanitizer(self, sanitizer) -> None:
        """Wire a :class:`~repro.sanitizer.Sanitizer` into this design.

        Sets the per-access hook on this object, then lets the concrete
        design wire its links/mesh/banks and register design-specific
        invariants via :meth:`_attach_sanitizer_extra`.  Attaching a
        sanitizer never changes simulated behaviour.
        """
        self.sanitizer = sanitizer
        self._attach_sanitizer_extra(sanitizer)

    def _attach_sanitizer_extra(self, sanitizer) -> None:
        """Hook for subclasses to wire components and invariants."""

    # -- shared bookkeeping ------------------------------------------------
    def _record(self, outcome: L2Outcome, banks_accessed: int) -> None:
        self.stats.add("requests")
        self.stats.add("bank_accesses", banks_accessed)
        if outcome.write:
            self.stats.add("writes")
        else:
            self.stats.add("reads")
            if outcome.hit:
                # Fig. 6 plots the latency of lookups that return data.
                self.lookup_latencies.record(outcome.lookup_latency)
            if outcome.predictable:
                self.stats.add("predictable_lookups")
        if outcome.hit:
            self.stats.add("hits")
        else:
            self.stats.add("misses")
        if self.sanitizer is not None:
            self.sanitizer.on_access(outcome.complete_time)

    # -- derived metrics the tables report ---------------------------------
    @property
    def miss_ratio(self) -> float:
        return self.stats.ratio("misses", "requests")

    @property
    def banks_accessed_per_request(self) -> float:
        return self.stats.ratio("bank_accesses", "requests")

    @property
    def predictable_lookup_fraction(self) -> float:
        """Fraction of read lookups whose latency matched the prediction."""
        return self.stats.ratio("predictable_lookups", "reads")

    @property
    def mean_lookup_latency(self) -> float:
        return self.lookup_latencies.mean

    def network_energy_j(self) -> float:
        """Total interconnect dynamic energy so far, joules.

        The TLC designs accumulate per-transfer signalling energy; the
        NUCA designs override this to price their mesh traffic.
        """
        return self._network_energy_acc

    def network_power_w(self, elapsed_cycles: int) -> float:
        """Average network dynamic power over the run, watts (Table 9)."""
        if elapsed_cycles <= 0:
            return 0.0
        elapsed_s = elapsed_cycles * self.tech.cycle_s
        return self.network_energy_j() / elapsed_s

"""Design-parameter registry: the paper's Table 2.

One :class:`DesignConfig` per design — the four TLC designs plus the two
NUCA baselines — carrying every parameter the timing, area, and power
models need.  ``build_design`` instantiates the matching simulator
class.

Derived quantities (link widths, controller delays) follow the paper's
constraints:

* Base TLC: each adjacent bank pair shares two 8-byte unidirectional
  links (128 lines/pair, 2048 total); uncontended latency 10-16 cycles
  = 1 (TL) + 8 (bank) + 1 (TL) + 0..6 cycles of round-trip controller
  wire delay depending on where the pair's lines land on the controller.
* TLCopt: request links are 22 bits (set index + 6-bit partial tag +
  command); the rest of each pair's lines form the response link.  The
  smaller controllers add at most one cycle (TLCopt 1000) or none
  (500/350), giving the 12-13 / 12 / 12 cycle uncontended latencies.
* DNUCA: 16 bank sets x 16 banks on a 16x16 mesh, 3-cycle banks,
  1-cycle hops -> 3..47 cycles uncontended.
* SNUCA2: 32 static banks on an 8x4 mesh, 8-cycle banks, 2-cycle hops.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

from repro.sim.memory import MainMemory
from repro.tech import Technology, TECH_45NM

#: Bits on a TLCopt request link: 13 set-index + 6 partial-tag + 3 command.
OPT_REQUEST_LINK_BITS = 22

#: Design kinds build_design knows how to instantiate.
DESIGN_KINDS = ("tlc", "tlcopt", "snuca", "dnuca")


class ConfigError(ValueError):
    """A field combination that cannot describe a buildable design.

    Raised by :class:`DesignConfig` construction (including
    ``dataclasses.replace`` variants) and by :func:`build_design` for
    unknown override names, so an invalid configuration fails at the
    door instead of producing a half-built simulator or NaN latencies.
    """


@dataclasses.dataclass(frozen=True)
class DesignConfig:
    """Parameters of one cache design (a row of Table 2, plus internals)."""

    name: str
    kind: str  # "tlc", "tlcopt", "snuca", "dnuca"
    banks: int
    bank_bytes: int
    bank_access_cycles: int
    banks_per_block: int = 1
    associativity: int = 4
    replacement: str = "lru"
    # TLC-family parameters.
    lines_per_pair: int = 0
    #: round-trip controller wire delay for each bank pair, cycles.
    controller_rt_delays: Tuple[int, ...] = ()
    # NUCA parameters.
    mesh_columns: int = 0
    mesh_rows: int = 0
    mesh_flit_bits: int = 128
    mesh_hop_latency: int = 1
    mesh_hop_length_m: float = 0.66e-3
    partial_tag_latency: int = 2
    #: DNUCA only: disable for the ablation where a closest-two miss must
    #: search every remaining bank of the set (no fast misses either).
    use_partial_tags: bool = True
    #: DNUCA only: banks a block moves toward the controller per hit.
    promotion_distance: int = 1
    #: DNUCA only: where blocks from memory enter the bank set
    #: ("tail" = furthest bank, the paper's policy; "head" = closest).
    insertion_position: str = "tail"
    #: DNUCA only: how partial-tag candidates are searched
    #: ("multicast" = all at once; "incremental" = nearest first, one at
    #: a time — less bank traffic, longer worst-case latency).
    search_mode: str = "multicast"
    controller_overhead: int = 0
    #: simulation backend replaying traces against this design —
    #: ``"reference"`` (the scalar per-event loop) or ``"batched"``
    #: (numpy struct-of-arrays; see :mod:`repro.sim.backend`).  Part of
    #: the design config so a build_design override selects it, and part
    #: of every result-cache key via ``CellSpec.backend``.
    backend: str = "reference"

    def __post_init__(self) -> None:
        self._check_scalars()
        if self.kind in ("tlc", "tlcopt"):
            self._check_tlc_family()
        else:
            self._check_nuca_family()

    def _require(self, condition: bool, message: str) -> None:
        if not condition:
            raise ConfigError(f"{self.name or '<unnamed>'}: {message}")

    @staticmethod
    def _is_int(value) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    def _check_scalars(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError("design name must be a non-empty string")
        self._require(self.kind in DESIGN_KINDS,
                      f"unknown kind {self.kind!r}; choose from {DESIGN_KINDS}")
        for field in ("banks", "bank_bytes", "bank_access_cycles",
                      "banks_per_block", "associativity"):
            value = getattr(self, field)
            self._require(self._is_int(value) and value > 0,
                          f"{field} must be a positive integer, got {value!r}")
        for field in ("lines_per_pair", "mesh_columns", "mesh_rows",
                      "mesh_flit_bits", "mesh_hop_latency",
                      "partial_tag_latency", "controller_overhead"):
            value = getattr(self, field)
            self._require(self._is_int(value) and value >= 0,
                          f"{field} must be a non-negative integer, "
                          f"got {value!r}")
        length = self.mesh_hop_length_m
        self._require(isinstance(length, (int, float))
                      and not isinstance(length, bool)
                      and math.isfinite(length) and length > 0,
                      f"mesh_hop_length_m must be a positive finite number, "
                      f"got {length!r}")
        self._require(self._is_int(self.promotion_distance)
                      and self.promotion_distance >= 1,
                      "promotion_distance must be a positive integer")
        self._require(self.insertion_position in ("tail", "head"),
                      f"insertion_position must be 'tail' or 'head', "
                      f"got {self.insertion_position!r}")
        self._require(self.search_mode in ("multicast", "incremental"),
                      f"search_mode must be 'multicast' or 'incremental', "
                      f"got {self.search_mode!r}")
        # Imported lazily, like make_policy below: the backend module
        # imports ConfigError from this one.
        from repro.sim.backend import BACKEND_NAMES

        self._require(self.backend in BACKEND_NAMES,
                      f"backend must be one of {list(BACKEND_NAMES)}, "
                      f"got {self.backend!r}")
        from repro.cache.replacement import make_policy

        try:
            make_policy(self.replacement, 1)
        except (ValueError, TypeError) as error:
            raise ConfigError(
                f"{self.name}: bad replacement policy "
                f"{self.replacement!r}: {error}") from error
        self._require(self.banks % self.banks_per_block == 0,
                      f"banks_per_block={self.banks_per_block} must divide "
                      f"banks={self.banks}")
        self._require(self.bank_bytes % (64 * self.associativity) == 0,
                      f"bank_bytes={self.bank_bytes} must be a whole number "
                      f"of 64-byte x {self.associativity}-way sets")

    def _check_tlc_family(self) -> None:
        self._require(self.banks % 2 == 0 and self.banks >= 2,
                      "TLC-family designs pair banks; banks must be even")
        # A list from JSON (bundle replay) is coerced to the canonical
        # tuple so configs stay hashable and comparable.
        delays = self.controller_rt_delays
        if not isinstance(delays, tuple):
            try:
                delays = tuple(delays)
            except TypeError:
                raise ConfigError(
                    f"{self.name}: controller_rt_delays must be a sequence "
                    f"of integers, got {self.controller_rt_delays!r}") from None
            object.__setattr__(self, "controller_rt_delays", delays)
        for delay in delays:
            self._require(self._is_int(delay) and delay >= 0,
                          f"controller_rt_delays entries must be "
                          f"non-negative integers, got {delay!r}")
        self._require(len(delays) == self.pairs,
                      f"controller_rt_delays has {len(delays)} entries for "
                      f"{self.pairs} bank pairs")
        if self.kind == "tlc":
            self._require(self.lines_per_pair >= 2
                          and self.lines_per_pair % 2 == 0,
                          "a TLC pair splits its lines into two equal "
                          "links; lines_per_pair must be even and >= 2")
        else:
            self._require(self.lines_per_pair > OPT_REQUEST_LINK_BITS,
                          f"a TLCopt pair needs more than "
                          f"{OPT_REQUEST_LINK_BITS} lines "
                          f"({OPT_REQUEST_LINK_BITS}-bit request link + "
                          f"response lines)")

    def _check_nuca_family(self) -> None:
        self._require(self.mesh_columns >= 2 and self.mesh_columns % 2 == 0,
                      "mesh_columns must be an even number >= 2")
        self._require(self.mesh_rows >= 1, "mesh_rows must be positive")
        self._require(self.banks == self.mesh_columns * self.mesh_rows,
                      f"banks={self.banks} must equal mesh_columns x "
                      f"mesh_rows = {self.mesh_columns * self.mesh_rows}")
        self._require(self.mesh_flit_bits > 0,
                      "mesh_flit_bits must be positive")
        self._require(self.mesh_hop_latency > 0,
                      "mesh_hop_latency must be positive")

    @property
    def total_bytes(self) -> int:
        return self.banks * self.bank_bytes

    @property
    def pairs(self) -> int:
        """Bank pairs sharing a link bundle (TLC family only)."""
        return self.banks // 2

    @property
    def total_lines(self) -> int:
        """Total transmission lines used (Table 2, column 6)."""
        return self.lines_per_pair * self.pairs

    @property
    def request_link_bits(self) -> int:
        if self.kind == "tlc":
            return self.lines_per_pair // 2  # 64 bits: an 8-byte link
        if self.kind == "tlcopt":
            return OPT_REQUEST_LINK_BITS
        raise ValueError(f"{self.name} has no transmission-line links")

    @property
    def response_link_bits(self) -> int:
        if self.kind == "tlc":
            return self.lines_per_pair // 2
        if self.kind == "tlcopt":
            return self.lines_per_pair - OPT_REQUEST_LINK_BITS
        raise ValueError(f"{self.name} has no transmission-line links")

    @property
    def uncontended_latency_range(self) -> Tuple[int, int]:
        """Min/max uncontended read-hit latency (Table 2, column 7)."""
        if self.kind in ("tlc", "tlcopt"):
            base = 2 + self.bank_access_cycles  # TL out + bank + TL back
            delays = self.controller_rt_delays or (0,)
            return (base + min(delays), base + max(delays))
        bank = self.bank_access_cycles
        max_hops = (self.mesh_columns // 2 - 1) + (self.mesh_rows - 1)
        per_hop = 2 * self.mesh_hop_latency
        oh = self.controller_overhead  # applied once, at request injection
        return (bank + oh, bank + oh + max_hops * per_hop)


#: Fields a :class:`DesignVariant` may not override.  ``name`` is the
#: variant's own identity (set from ``DesignVariant.name``), and
#: ``backend`` must be selected per *run*, not per design: the grid
#: runner always passes an explicit backend to ``run_system`` (it is
#: part of every cell's cache key), so a config-level override would be
#: silently ignored — better to refuse it at the door.
RESERVED_VARIANT_FIELDS = ("name", "backend")


def _freeze_override_value(value):
    """Coerce JSON-decoded override values to their canonical form.

    Lists become tuples (``controller_rt_delays`` arrives as a JSON
    array) so variants stay hashable and two spellings of one override
    compare equal.
    """
    if isinstance(value, list):
        return tuple(_freeze_override_value(item) for item in value)
    return value


@dataclasses.dataclass(frozen=True)
class DesignVariant:
    """A named variant of a registered design: ``base`` + field overrides.

    This is the unit the design-space exploration layer
    (:mod:`repro.explore`) expands a :class:`~repro.explore.SpaceSpec`
    into, and the grid runner accepts anywhere a design *name* is
    accepted (see :func:`repro.analysis.runner.grid_cell_specs`).
    ``overrides`` is a canonical sorted tuple of ``(field, value)``
    pairs — hashable, picklable, and JSON-able — applied through
    :func:`build_design`-style ``dataclasses.replace``, so an invalid
    combination fails with the same typed :class:`ConfigError` as any
    other bad config.

    Construction validates eagerly: the base must resolve against the
    registry, override fields must exist on :class:`DesignConfig` (and
    not be reserved), and the resulting config must pass
    ``DesignConfig.__post_init__`` — an unbuildable variant never
    escapes.
    """

    name: str
    base: str
    overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError(
                "design variant name must be a non-empty string, "
                f"got {self.name!r}")
        try:
            object.__setattr__(self, "base", resolve_design_name(self.base))
        except (ValueError, AttributeError) as error:
            raise ConfigError(f"variant {self.name}: {error}") from error
        overrides = self.overrides
        if isinstance(overrides, dict):
            overrides = tuple(sorted(overrides.items()))
        try:
            overrides = tuple(
                (field, _freeze_override_value(value))
                for field, value in overrides)
        except (TypeError, ValueError) as error:
            raise ConfigError(
                f"variant {self.name}: overrides must be (field, value) "
                f"pairs, got {self.overrides!r}") from error
        fields = sorted(field for field, _ in overrides)
        if len(set(fields)) != len(fields):
            duplicates = sorted({f for f in fields if fields.count(f) > 1})
            raise ConfigError(
                f"variant {self.name}: duplicate override field(s) "
                f"{duplicates}")
        known = {f.name for f in dataclasses.fields(DesignConfig)}
        for field, _ in overrides:
            if not isinstance(field, str) or field not in known:
                raise ConfigError(
                    f"variant {self.name}: unknown override field "
                    f"{field!r}; known fields: {sorted(known)}")
            if field in RESERVED_VARIANT_FIELDS:
                reason = ("variants are named by their own name field"
                          if field == "name"
                          else "select the backend per run, not per design")
                raise ConfigError(
                    f"variant {self.name}: field {field!r} cannot be "
                    f"overridden by a variant ({reason})")
        object.__setattr__(self, "overrides",
                           tuple(sorted(overrides)))
        self.config()  # raises ConfigError for an unbuildable combination

    def config(self) -> DesignConfig:
        """The validated :class:`DesignConfig` this variant describes."""
        base = get_design(self.base)
        try:
            return dataclasses.replace(base, name=self.name,
                                       **dict(self.overrides))
        except TypeError as error:
            raise ConfigError(
                f"variant {self.name}: bad override ({error})") from error

    def as_dict(self) -> dict:
        """JSON-ready form (overrides as a ``{field: value}`` object)."""
        return {"name": self.name, "base": self.base,
                "overrides": {field: (list(value) if isinstance(value, tuple)
                                      else value)
                              for field, value in self.overrides}}


def _tlc_controller_delays(pairs: int, max_delay: int) -> Tuple[int, ...]:
    """Round-trip controller wire delay per pair, from landing position.

    A pair's lines land on the controller edge at a height matching the
    pair's row on the die edge, so rows near the die's vertical centre
    reach the central logic with no extra wire while the extreme rows
    pay up to ``max_delay`` round-trip cycles — consistent with the
    floorplan model, where the same central rows also get the shortest
    transmission lines.
    """
    per_side = pairs // 2
    centre = (per_side - 1) / 2.0
    dist_min, dist_max = 0.5, centre  # nearest / farthest row distances
    if dist_max <= dist_min:
        return (0,) * pairs
    side = tuple(
        round(max_delay * (abs(i - centre) - dist_min) / (dist_max - dist_min))
        for i in range(per_side)
    )
    return side + side


TLC_BASE = DesignConfig(
    name="TLC",
    kind="tlc",
    banks=32,
    bank_bytes=512 * 1024,
    bank_access_cycles=8,
    banks_per_block=1,
    lines_per_pair=128,
    controller_rt_delays=_tlc_controller_delays(16, 6),
)

TLC_OPT_1000 = DesignConfig(
    name="TLCopt1000",
    kind="tlcopt",
    banks=16,
    bank_bytes=1024 * 1024,
    bank_access_cycles=10,
    banks_per_block=2,
    lines_per_pair=126,
    controller_rt_delays=_tlc_controller_delays(8, 1),
)

TLC_OPT_500 = DesignConfig(
    name="TLCopt500",
    kind="tlcopt",
    banks=16,
    bank_bytes=1024 * 1024,
    bank_access_cycles=10,
    banks_per_block=4,
    lines_per_pair=64,
    controller_rt_delays=(0,) * 8,
)

TLC_OPT_350 = DesignConfig(
    name="TLCopt350",
    kind="tlcopt",
    banks=16,
    bank_bytes=1024 * 1024,
    bank_access_cycles=10,
    banks_per_block=8,
    lines_per_pair=44,
    controller_rt_delays=(0,) * 8,
)

SNUCA2 = DesignConfig(
    name="SNUCA2",
    kind="snuca",
    banks=32,
    bank_bytes=512 * 1024,
    bank_access_cycles=8,
    mesh_columns=8,
    mesh_rows=4,
    mesh_hop_latency=2,
    mesh_hop_length_m=1.6e-3,
    controller_overhead=1,
)

DNUCA = DesignConfig(
    name="DNUCA",
    kind="dnuca",
    banks=256,
    bank_bytes=64 * 1024,
    bank_access_cycles=3,
    associativity=1,  # direct-mapped within each bank; 16-way across the set
    mesh_columns=16,
    mesh_rows=16,
    mesh_hop_latency=1,
    mesh_hop_length_m=0.66e-3,
)

DESIGNS: Dict[str, DesignConfig] = {
    cfg.name: cfg
    for cfg in (TLC_BASE, TLC_OPT_1000, TLC_OPT_500, TLC_OPT_350, SNUCA2, DNUCA)
}


def design_names() -> Tuple[str, ...]:
    return tuple(DESIGNS)


def resolve_design_name(name: str) -> str:
    """Map a user-spelled design name onto its registry key.

    The registry uses the paper's spellings (``TLCopt500``), which are
    awkward to type; this accepts any case/separator variation —
    ``tlc_opt_500``, ``TLC-OPT-500``, ``snuca2`` — by comparing names
    with underscores and dashes stripped, case-insensitively.
    """
    if name in DESIGNS:
        return name
    wanted = name.lower().replace("_", "").replace("-", "")
    for key in DESIGNS:
        if key.lower() == wanted:
            return key
    raise ValueError(
        f"unknown design {name!r}; choose from {sorted(DESIGNS)}")


def get_design(name: str) -> DesignConfig:
    return DESIGNS[resolve_design_name(name)]


def build_design(design: str, memory: Optional[MainMemory] = None,
                 tech: Technology = TECH_45NM, **overrides):
    """Instantiate the simulator for design ``design``.

    ``overrides`` replace fields of the registered config (e.g.
    ``replacement="frequency"`` for the ablation study, or ``name=...``
    plus axis fields for an exploration variant — the parameter is
    called ``design`` precisely so a ``name`` override stays available).
    """
    config = get_design(design)
    if overrides:
        try:
            config = dataclasses.replace(config, **overrides)
        except TypeError as error:
            known = sorted(f.name for f in dataclasses.fields(config))
            raise ConfigError(
                f"{config.name}: bad design override ({error}); "
                f"known fields: {known}") from error
    # Imported lazily: the design modules import this one for the configs.
    from repro.core.tlc import TransmissionLineCache
    from repro.core.tlc_opt import OptimizedTLC
    from repro.nuca.snuca import StaticNUCA
    from repro.nuca.dnuca import DynamicNUCA

    builders = {
        "tlc": TransmissionLineCache,
        "tlcopt": OptimizedTLC,
        "snuca": StaticNUCA,
        "dnuca": DynamicNUCA,
    }
    return builders[config.kind](config, memory=memory, tech=tech)

"""The central TLC cache controller.

The controller owns the transmission-line link bundles (one request and
one response link per bank pair), the per-pair internal wire delays, and
the physical characterization of each pair's lines.  Pairs further from
the controller's centre connect through longer internal conventional
wires (up to 3 extra round-trip cycles in the base design — the spread
behind Table 2's 10-16 cycle range) and through longer transmission
lines (0.9 / 1.1 / 1.3 cm classes from Table 1), which sets the
per-bit signalling energy used in the Table 9 power accounting.

The controller is also where full-tag comparison happens in the TLCopt
designs and where end-to-end ECC would be generated and checked; both
are timing-neutral here (the compare fits in the already-counted
controller wire cycles).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import DesignConfig
from repro.interconnect.link import Link, Transfer
from repro.sim.stats import UtilizationMeter
from repro.tech import Technology, TECH_45NM
from repro.tline.extraction import extract
from repro.tline.geometry import tl_geometry_for_length, TABLE1_LINES
from repro.tline.power import transmission_line_energy_per_bit


class TLCController:
    """Link bundles, wire delays, and energy accounting for a TLC design."""

    def __init__(self, config: DesignConfig, tech: Technology = TECH_45NM) -> None:
        if config.kind not in ("tlc", "tlcopt"):
            raise ValueError(f"{config.name} is not a TLC-family design")
        self.config = config
        self.tech = tech
        pairs = config.pairs
        #: one meter across every link; Fig. 7 reports the average.
        self.meter = UtilizationMeter(resources=2 * pairs)
        self.request_links: List[Link] = []
        self.response_links: List[Link] = []
        self._energy_per_bit: List[float] = []
        self._line_lengths = self._pair_line_lengths()
        for pair in range(pairs):
            length = self._line_lengths[pair]
            geometry = tl_geometry_for_length(length)
            line = extract(geometry, tech)
            flight = 1  # every Table 1 line flies in one 10 GHz cycle
            self.request_links.append(
                Link(config.request_link_bits, flight, self.meter, length)
            )
            self.response_links.append(
                Link(config.response_link_bits, flight, self.meter, length)
            )
            self._energy_per_bit.append(
                transmission_line_energy_per_bit(line.z0, tech)
            )
        # Latency tables: the wire-delay split and uncontended latency
        # are pure functions of the pair index and the config, asked for
        # on every access — compute them once instead of per request.
        rt_delays = config.controller_rt_delays
        self._request_delays = [rt_delays[pair] // 2 for pair in range(pairs)]
        self._response_delays = [rt_delays[pair] - rt_delays[pair] // 2
                                 for pair in range(pairs)]
        self._uncontended = [2 + config.bank_access_cycles + rt_delays[pair]
                             for pair in range(pairs)]

    def _pair_line_lengths(self) -> List[float]:
        """Per-pair routed line lengths, from the computed floorplan.

        Falls back to interpolating across Table 1's span when the
        configuration cannot be floorplanned (e.g. exotic bank counts in
        ablation studies).
        """
        try:
            from repro.area.layout import build_floorplan

            return list(build_floorplan(self.config, tech=self.tech)
                        .pair_line_lengths_m)
        except ValueError:
            min_len = TABLE1_LINES[0].length
            max_len = TABLE1_LINES[-1].length
            per_side = max(1, self.config.pairs // 2)
            return [
                min_len + (pair % per_side) / max(1, per_side - 1)
                * (max_len - min_len)
                for pair in range(self.config.pairs)
            ]

    # -- wire-delay split --------------------------------------------------
    def request_delay(self, pair: int) -> int:
        """Controller-internal wire cycles on the request path."""
        return self._request_delays[pair]

    def response_delay(self, pair: int) -> int:
        """Controller-internal wire cycles on the response path."""
        return self._response_delays[pair]

    def uncontended_latency(self, pair: int) -> int:
        """Read-hit latency with idle links and bank (Table 2, column 7)."""
        return self._uncontended[pair]

    # -- transfers ----------------------------------------------------------
    def send_request(self, pair: int, time: int, bits: int,
                     contend: bool = True) -> Tuple[Transfer, float]:
        """Controller -> bank.  Returns the transfer and its energy (J)."""
        transfer = self.request_links[pair].send(
            time + self._request_delays[pair], bits, contend)
        return transfer, bits * self._energy_per_bit[pair]

    def send_response(self, pair: int, time: int, bits: int,
                      contend: bool = True) -> Tuple[Transfer, int, float]:
        """Bank -> controller.  Returns (transfer, arrival-at-logic, energy).

        The arrival time adds the controller-internal wire delay after the
        critical word lands at the controller edge.
        """
        transfer = self.response_links[pair].send(time, bits, contend)
        arrival = transfer.first_arrival + self._response_delays[pair]
        return transfer, arrival, bits * self._energy_per_bit[pair]

    def utilization(self, elapsed_cycles: int) -> float:
        return self.meter.utilization(elapsed_cycles)

    # -- observability -----------------------------------------------------
    def register_metrics(self, scope) -> None:
        """Mount the shared meter and per-pair link gauges on a registry
        scope (the designs use ``link``), yielding names like
        ``link.util`` and ``link.pair02.req.bits_sent``."""
        scope.register("util", self.meter)
        for pair, (req, resp) in enumerate(
                zip(self.request_links, self.response_links)):
            req.register_metrics(scope.scope(f"pair{pair:02d}.req"))
            resp.register_metrics(scope.scope(f"pair{pair:02d}.resp"))

    def attach_sanitizer(self, sanitizer) -> None:
        """Route every bundle link's transfers into ``sanitizer`` for
        message-conservation accounting."""
        for link in self.request_links + self.response_links:
            link.sanitizer = sanitizer

    def reset_counters(self) -> None:
        """Zero traffic accounting in place, preserving link busy state
        (the warmup-boundary reset the designs call)."""
        self.meter.reset()
        for link in self.request_links + self.response_links:
            link.reset_counters()

"""The base Transmission Line Cache (Section 4, Figure 2).

32 x 512 KB banks line the die edges; each adjacent pair of banks shares
two 8-byte unidirectional transmission-line links to the central
controller.  Blocks map to banks statically (address interleaving), so
exactly one bank is accessed per request — the source of TLC's
consistent latency, single-bank power profile (Table 9), and trivially
predictable lookups.

Read timing (uncontended): controller wire (0-3) + transmission line (1)
+ bank (8) + transmission line (1) + controller wire (0-3) = 10-16
cycles, Table 2's range.  Contention arises only at the shared pair
links and at the banks themselves ("TLC encounters more bank contention
due to its fewer banks and longer bank access latencies").

Stores need no tag comparison (the design is an exclusive write-back
cache): the incoming block is simply written, evicting the set's LRU
victim if needed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.address import AddressMap
from repro.cache.bank import CacheBank
from repro.core.base import L2Design, L2Outcome
from repro.core.config import DesignConfig, TLC_BASE
from repro.core.controller import TLCController
from repro.interconnect.message import BLOCK_BITS, REQUEST_BITS
from repro.sim.memory import MainMemory
from repro.tech import Technology, TECH_45NM


class TransmissionLineCache(L2Design):
    """The base TLC design."""

    def __init__(self, config: DesignConfig = TLC_BASE,
                 memory: Optional[MainMemory] = None,
                 tech: Technology = TECH_45NM) -> None:
        super().__init__(memory=memory, tech=tech)
        if config.kind != "tlc":
            raise ValueError(f"{config.name} is not a base TLC config")
        self.config = config
        self.name = config.name
        sets_per_bank = config.bank_bytes // (64 * config.associativity)
        self.addr_map = AddressMap(block_bytes=64, num_sets=sets_per_bank,
                                   banks=config.banks)
        self.banks: List[CacheBank] = [
            CacheBank(sets_per_bank, config.associativity, config.replacement)
            for _ in range(config.banks)
        ]
        self.controller = TLCController(config, tech)
        self._bank_busy_until = [0] * config.banks
        self.controller.register_metrics(self.metrics.scope("link"))
        for index, bank in enumerate(self.banks):
            bank.register_metrics(self.metrics.scope(f"l2.bank{index:02d}"))

    # -- timing helpers ----------------------------------------------------
    def _bank_access(self, bank: int, ready: int, contend: bool = True) -> int:
        """Occupy the bank; returns the cycle its access completes.

        ``contend=False`` (refills arriving from memory) models the port
        time without reserving the bank against earlier demand requests.
        """
        if not contend:
            return ready + self.config.bank_access_cycles
        start = max(ready, self._bank_busy_until[bank])
        done = start + self.config.bank_access_cycles
        self._bank_busy_until[bank] = done
        return done

    def uncontended_latency(self, addr: int) -> int:
        pair = self.addr_map.bank_index(addr) // 2
        return self.controller.uncontended_latency(pair)

    # -- the access path ----------------------------------------------------
    def access(self, addr: int, time: int, write: bool = False) -> L2Outcome:
        bank_idx, set_index, tag = self.addr_map.decompose(addr)
        pair = bank_idx // 2
        bank = self.banks[bank_idx]

        if write:
            outcome = self._write(bank, bank_idx, pair, set_index, tag, time)
        else:
            outcome = self._read(bank, bank_idx, pair, set_index, tag, time)
        self._record(outcome, banks_accessed=1)
        return outcome

    def _read(self, bank: CacheBank, bank_idx: int, pair: int,
              set_index: int, tag: int, time: int) -> L2Outcome:
        request, energy = self.controller.send_request(pair, time, REQUEST_BITS)
        self._network_energy_acc += energy
        bank_done = self._bank_access(bank_idx, request.first_arrival)
        lookup = bank.lookup(set_index, tag)
        expected = self.controller.uncontended_latency(pair)

        if lookup.hit:
            _, arrival, energy = self.controller.send_response(
                pair, bank_done, BLOCK_BITS)
            self._network_energy_acc += energy
            latency = arrival - time
            return L2Outcome(
                complete_time=arrival,
                hit=True,
                lookup_latency=latency,
                predictable=(latency == expected),
            )

        # Miss: the bank's tag compare fails; a short ack tells the
        # controller, which fetches from memory and refills the bank.
        _, miss_at, energy = self.controller.send_response(
            pair, bank_done, REQUEST_BITS)
        self._network_energy_acc += energy
        latency = miss_at - time
        mem_done = self.memory.read(miss_at)
        self._refill(bank, bank_idx, pair, set_index, tag, mem_done)
        return L2Outcome(
            complete_time=mem_done,
            hit=False,
            lookup_latency=latency,
            predictable=(latency == expected),
        )

    def _write(self, bank: CacheBank, bank_idx: int, pair: int,
               set_index: int, tag: int, time: int) -> L2Outcome:
        # Store/writeback: address and a full block ride the request link;
        # no tag comparison is needed (exclusive write-back design).
        request, energy = self.controller.send_request(
            pair, time, REQUEST_BITS + BLOCK_BITS)
        self._network_energy_acc += energy
        self._bank_access(bank_idx, request.last_arrival)
        hit = bank.lookup(set_index, tag, write=True).hit
        if not hit:
            self._insert(bank, bank_idx, pair, set_index, tag,
                         request.last_arrival, dirty=True)
        return L2Outcome(
            complete_time=request.last_arrival,
            hit=hit,
            lookup_latency=0,
            predictable=True,
            write=True,
        )

    def _refill(self, bank: CacheBank, bank_idx: int, pair: int,
                set_index: int, tag: int, time: int) -> None:
        """Install a block fetched from memory (occupies the request link)."""
        refill, energy = self.controller.send_request(
            pair, time, REQUEST_BITS + BLOCK_BITS, contend=False)
        self._network_energy_acc += energy
        self._bank_access(bank_idx, refill.last_arrival, contend=False)
        self._insert(bank, bank_idx, pair, set_index, tag,
                     refill.last_arrival, dirty=False)

    def _insert(self, bank: CacheBank, bank_idx: int, pair: int,
                set_index: int, tag: int, time: int, dirty: bool) -> None:
        result = bank.insert(set_index, tag, dirty=dirty)
        if result.evicted_tag is not None and result.evicted_dirty:
            # Victim writeback: block travels bank -> controller -> memory.
            _, arrival, energy = self.controller.send_response(
                pair, time, BLOCK_BITS, contend=False)
            self._network_energy_acc += energy
            self.memory.write(arrival)
            self.stats.add("writebacks")

    def link_utilization(self, elapsed_cycles: int) -> float:
        return self.controller.utilization(elapsed_cycles)

    def install(self, addr: int, dirty: bool = False) -> None:
        bank_idx, set_index, tag = self.addr_map.decompose(addr)
        # Insert-then-touch in one bank call: a pre-warmed block was, by
        # definition, referenced, so recency-ordered installs hold under
        # any insertion policy (see CacheBank.install).
        self.banks[bank_idx].install(set_index, tag, dirty=dirty)

    def _reset_stats_extra(self) -> None:
        self.controller.reset_counters()

    def _attach_sanitizer_extra(self, sanitizer) -> None:
        self.controller.attach_sanitizer(sanitizer)
        sanitizer.watch_banks(self.name, [
            (f"bank{index:02d}", bank)
            for index, bank in enumerate(self.banks)
        ])

"""The optimized TLC designs: TLCopt 1000 / 500 / 350 (Section 4, Figure 4).

The optimized designs cut transmission-line count three ways:

* a 64-byte block is striped across ``banks_per_block`` (2/4/8) banks,
  so each bank moves only a slice of the block per request;
* banks double to 1 MB (16 banks instead of 32), halving the number of
  link bundles;
* banks receive only a set index plus a 6-bit partial tag.  Each bank
  compares the partial tag and responds with its data slice plus the
  stored upper tag bits; the *controller* performs the full comparison.

Stripes are distributed so the banks of one block sit on distinct pair
links (bank ``g + j*num_groups`` for stripe ``j``), letting all slices
return in parallel — which is what keeps the uncontended latency at
12-13 cycles despite the narrower links.

Partial-tag corner cases, faithfully modelled:

* **False hit** — exactly one way matches the partial tag but the full
  tag differs: the banks ship their slices anyway, the controller's
  full compare fails, and the access becomes a miss discovered at the
  normal response time (wasted bandwidth, no extra latency).
* **Multiple matches** — more than one way matches: the banks return the
  upper tag bits of all candidates, the controller resolves which (if
  any) is the real block and issues a second, way-addressed fetch —
  roughly doubling that access's latency.  The paper measures this in
  about 1 % of lookups.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cache.address import AddressMap
from repro.cache.bank import CacheBank
from repro.cache.partial_tags import partial_tag
from repro.core.base import L2Design, L2Outcome
from repro.core.config import DesignConfig, TLC_OPT_500
from repro.core.controller import TLCController
from repro.interconnect.message import BLOCK_BITS
from repro.sim.memory import MainMemory
from repro.tech import Technology, TECH_45NM

#: Bits of a bank's request message: set index + partial tag + command.
OPT_REQUEST_BITS = 22

#: Non-data overhead bits on a response: upper tag bits + status.
RESPONSE_OVERHEAD_BITS = 16

#: Bits of a miss ack / per-candidate tag report.
ACK_BITS = 16


class OptimizedTLC(L2Design):
    """A TLCopt design (1000, 500, or 350 total lines)."""

    def __init__(self, config: DesignConfig = TLC_OPT_500,
                 memory: Optional[MainMemory] = None,
                 tech: Technology = TECH_45NM) -> None:
        super().__init__(memory=memory, tech=tech)
        if config.kind != "tlcopt":
            raise ValueError(f"{config.name} is not a TLCopt config")
        self.config = config
        self.name = config.name
        self.stripe_banks = config.banks_per_block
        self.num_groups = config.banks // self.stripe_banks
        group_bytes = config.bank_bytes * self.stripe_banks
        sets_per_group = group_bytes // (64 * config.associativity)
        self.addr_map = AddressMap(block_bytes=64, num_sets=sets_per_group,
                                   banks=self.num_groups)
        # Tag state is logically per group (every stripe bank holds the
        # same partial tag and a share of the upper bits).
        self.groups: List[CacheBank] = [
            CacheBank(sets_per_group, config.associativity, config.replacement)
            for _ in range(self.num_groups)
        ]
        self.controller = TLCController(config, tech)
        self._bank_busy_until = [0] * config.banks
        self._data_slice_bits = BLOCK_BITS // self.stripe_banks
        # Stripe geometry and group round-trip delay are pure functions
        # of the group index, used on every access — tabulate them once.
        self._group_banks = [self.banks_for_group(group)
                             for group in range(self.num_groups)]
        self._group_rt_delays = [
            max(config.controller_rt_delays[b // 2]
                for b in self._group_banks[group])
            for group in range(self.num_groups)
        ]
        self.controller.register_metrics(self.metrics.scope("link"))
        for index, group in enumerate(self.groups):
            group.register_metrics(self.metrics.scope(f"l2.group{index:02d}"))

    # -- stripe geometry -----------------------------------------------------
    def banks_for_group(self, group: int) -> Tuple[int, ...]:
        """Physical banks holding the stripes of blocks in ``group``."""
        return tuple(group + j * self.num_groups for j in range(self.stripe_banks))

    def uncontended_latency(self, addr: int) -> int:
        group = self.addr_map.bank_index(addr)
        return 2 + self.config.bank_access_cycles + self._group_rt_delay(group)

    def _group_rt_delay(self, group: int) -> int:
        return self._group_rt_delays[group]

    # -- timing helpers --------------------------------------------------------
    def _bank_access(self, bank: int, ready: int, contend: bool = True) -> int:
        if not contend:
            return ready + self.config.bank_access_cycles
        start = max(ready, self._bank_busy_until[bank])
        done = start + self.config.bank_access_cycles
        self._bank_busy_until[bank] = done
        return done

    def _fan_out(self, group: int, time: int, request_bits: int,
                 contend: bool = True) -> List[Tuple[int, int]]:
        """Send a request to every stripe bank; returns (bank, done) pairs."""
        results = []
        for bank in self._group_banks[group]:
            transfer, energy = self.controller.send_request(
                bank // 2, time, request_bits, contend)
            self._network_energy_acc += energy
            done = self._bank_access(bank, transfer.last_arrival, contend)
            results.append((bank, done))
        return results

    def _gather(self, bank_dones: List[Tuple[int, int]], response_bits: int,
                contend: bool = True) -> int:
        """Collect responses from every stripe bank; returns last arrival."""
        last = 0
        for bank, done in bank_dones:
            _, arrival, energy = self.controller.send_response(
                bank // 2, done, response_bits, contend)
            self._network_energy_acc += energy
            last = max(last, arrival)
        return last

    # -- partial-tag classification ---------------------------------------------
    def _partial_matches(self, group: CacheBank, set_index: int, tag: int) -> List[int]:
        wanted = partial_tag(tag)
        matches = []
        for way in range(group.ways):
            stored = group.tag_at(set_index, way)
            if stored is not None and partial_tag(stored) == wanted:
                matches.append(way)
        return matches

    # -- the access path ----------------------------------------------------------
    def access(self, addr: int, time: int, write: bool = False) -> L2Outcome:
        group_idx, set_index, tag = self.addr_map.decompose(addr)
        group = self.groups[group_idx]

        if write:
            outcome = self._write(group, group_idx, set_index, tag, time)
        else:
            outcome = self._read(group, group_idx, set_index, tag, time)
        self._record(outcome, banks_accessed=self.stripe_banks)
        return outcome

    def _read(self, group: CacheBank, group_idx: int, set_index: int,
              tag: int, time: int) -> L2Outcome:
        expected = 2 + self.config.bank_access_cycles + self._group_rt_delay(group_idx)
        matches = self._partial_matches(group, set_index, tag)
        hit = group.lookup(set_index, tag).hit
        bank_dones = self._fan_out(group_idx, time, OPT_REQUEST_BITS)

        if len(matches) == 0:
            # Clean partial-tag miss: every bank acks "no match".
            miss_at = self._gather(bank_dones, ACK_BITS)
            return self._miss(group, group_idx, set_index, tag, miss_at,
                              lookup_latency=miss_at - time,
                              predictable=(miss_at - time == expected))

        if len(matches) == 1:
            # Banks ship the (single) candidate's slices plus upper tag
            # bits; the controller's full compare decides hit vs false hit.
            response_bits = self._data_slice_bits + RESPONSE_OVERHEAD_BITS
            arrival = self._gather(bank_dones, response_bits)
            latency = arrival - time
            predictable = latency == expected
            if hit:
                return L2Outcome(arrival, True, latency, predictable)
            self.stats.add("false_hits")
            return self._miss(group, group_idx, set_index, tag, arrival,
                              lookup_latency=latency, predictable=predictable)

        # Multiple partial matches: candidates' tag bits come back first,
        # then the controller re-requests the resolved way (if any).
        self.stats.add("multi_partial_matches")
        report_at = self._gather(bank_dones, ACK_BITS * len(matches))
        if not hit:
            return self._miss(group, group_idx, set_index, tag, report_at,
                              lookup_latency=report_at - time, predictable=False)
        second = self._fan_out(group_idx, report_at, OPT_REQUEST_BITS)
        response_bits = self._data_slice_bits + RESPONSE_OVERHEAD_BITS
        arrival = self._gather(second, response_bits)
        return L2Outcome(arrival, True, arrival - time, predictable=False)

    def _miss(self, group: CacheBank, group_idx: int, set_index: int, tag: int,
              miss_at: int, lookup_latency: int, predictable: bool) -> L2Outcome:
        mem_done = self.memory.read(miss_at)
        self._refill(group, group_idx, set_index, tag, mem_done, dirty=False)
        return L2Outcome(mem_done, False, lookup_latency, predictable)

    def _write(self, group: CacheBank, group_idx: int, set_index: int,
               tag: int, time: int) -> L2Outcome:
        # Stores carry their data slices on the request links and are
        # written without any tag comparison (exclusive write-back).
        write_bits = OPT_REQUEST_BITS + self._data_slice_bits
        bank_dones = self._fan_out(group_idx, time, write_bits)
        accepted = max(done for _, done in bank_dones)
        hit = group.lookup(set_index, tag, write=True).hit
        if not hit:
            self._insert(group, group_idx, set_index, tag, accepted, dirty=True)
        return L2Outcome(accepted, hit, 0, predictable=True, write=True)

    def _refill(self, group: CacheBank, group_idx: int, set_index: int,
                tag: int, time: int, dirty: bool) -> None:
        write_bits = OPT_REQUEST_BITS + self._data_slice_bits
        bank_dones = self._fan_out(group_idx, time, write_bits, contend=False)
        accepted = max(done for _, done in bank_dones)
        self._insert(group, group_idx, set_index, tag, accepted, dirty=dirty)

    def _insert(self, group: CacheBank, group_idx: int, set_index: int,
                tag: int, time: int, dirty: bool) -> None:
        result = group.insert(set_index, tag, dirty=dirty)
        if result.evicted_tag is not None and result.evicted_dirty:
            # Victim slices stream back from every stripe bank to memory.
            response_bits = self._data_slice_bits + RESPONSE_OVERHEAD_BITS
            arrival = self._gather(
                [(b, time) for b in self._group_banks[group_idx]],
                response_bits, contend=False)
            self.memory.write(arrival)
            self.stats.add("writebacks")

    def link_utilization(self, elapsed_cycles: int) -> float:
        return self.controller.utilization(elapsed_cycles)

    def install(self, addr: int, dirty: bool = False) -> None:
        group_idx, set_index, tag = self.addr_map.decompose(addr)
        # Insert-then-touch in one bank call (see CacheBank.install).
        self.groups[group_idx].install(set_index, tag, dirty=dirty)

    def _reset_stats_extra(self) -> None:
        self.controller.reset_counters()

    def _attach_sanitizer_extra(self, sanitizer) -> None:
        self.controller.attach_sanitizer(sanitizer)
        sanitizer.watch_banks(self.name, [
            (f"group{index:02d}", group)
            for index, group in enumerate(self.groups)
        ])

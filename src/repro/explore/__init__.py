"""Declarative design-space exploration over the grid runner.

The subsystem ROADMAP open item 3 asked for: a design family is written
as a declarative :class:`~repro.explore.space.SpaceSpec` document, a
search driver (``grid`` / ``random`` / ``halving``) evaluates its
variants through :func:`~repro.analysis.runner.run_grid` — result
cache, resilient executor, and backend selection included — and the
outcome is a deterministic trajectory plus a Fig-5-style leaderboard
routed through the derived-artifact lane.  ``repro explore`` is the CLI
face; docs/EXPLORATION.md is the reference.
"""

from repro.explore.drivers import (
    DRIVER_NAMES,
    SearchResult,
    build_search_manifest,
    run_search,
)
from repro.explore.leaderboard import (
    DEFAULT_TOP_K,
    leaderboard_artifact,
    leaderboard_dataset,
    render_leaderboard,
)
from repro.explore.space import (
    MAX_AXES,
    MAX_CHOICES_PER_AXIS,
    MAX_REFS_PER_CELL,
    MAX_SEED,
    MAX_VARIANTS,
    SPACE_SPEC_SCHEMA,
    AxisSpec,
    Expansion,
    SpaceSpec,
    expand,
    expand_variants,
    validate_space_spec,
)

__all__ = [
    "AxisSpec",
    "DEFAULT_TOP_K",
    "DRIVER_NAMES",
    "Expansion",
    "MAX_AXES",
    "MAX_CHOICES_PER_AXIS",
    "MAX_REFS_PER_CELL",
    "MAX_SEED",
    "MAX_VARIANTS",
    "SPACE_SPEC_SCHEMA",
    "SearchResult",
    "SpaceSpec",
    "build_search_manifest",
    "expand",
    "expand_variants",
    "leaderboard_artifact",
    "leaderboard_dataset",
    "render_leaderboard",
    "run_search",
    "validate_space_spec",
]

"""Search drivers: a validated space + a budget -> a ranked trajectory.

Three drivers turn a :class:`~repro.explore.space.SpaceSpec` into a
ranking of its variants, all through the same evaluation path —
:func:`repro.analysis.runner.run_grid` — so every candidate cell gets
the result cache, the resilient executor, worker pools, and backend
selection for free:

* ``grid`` — exhaustive enumeration in expansion order, clipped to the
  budget.  The control: it visits combinations exactly as the DSL
  enumerates them.
* ``random`` — a seeded uniform sample (without replacement) of
  ``budget`` variants, evaluated in one round at full fidelity.
* ``halving`` — successive halving over a seeded cohort: every rung
  evaluates the survivors at a doubled reference count, keeps the best
  half, and the final rung runs at the spec's full ``n_refs``.  Cheap
  rungs share nothing with full-fidelity cells (``n_refs`` is part of
  the cell cache key) but each rung is itself cached, so re-running a
  search replays every rung for free.

**Scoring** is the paper's Figure-5 statistic: a variant's score is its
mean execution time over the spec's benchmarks, normalized per
benchmark to the spec's ``baseline`` design (lower is better).  Ties
break on the variant name, so a ranking is a pure function of the
measured cycles.

**Determinism contract** (enforced by CI's explore smoke job): same
space document + driver + search seed + budget ⇒ the same variants are
evaluated in the same order at the same fidelities, producing a
byte-identical trajectory document and leaderboard — and since every
cell's cache key is a pure function of those inputs, a repeated search
against a warm cache simulates **zero** cells.  The search seed only
drives candidate *selection*; trace generation uses the spec's own
``seed`` so every variant is measured against identical reference
streams.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, List, Optional, Tuple

from repro.core.config import ConfigError, DesignVariant
from repro.explore.space import MAX_SEED, SpaceSpec, expand
from repro.obs.manifest import RunManifest, build_manifest
from repro.sim.stats import Counter

#: Drivers ``run_search`` (and ``repro explore --driver``) accepts.
DRIVER_NAMES = ("grid", "random", "halving")

#: Scores are rounded to this many digits before ranking and before
#: entering any JSON document, so trajectory bytes never depend on
#: float formatting noise.
SCORE_DIGITS = 6

#: Successive halving never drops a rung below this many references —
#: a handful of post-warmup misses is noise, not a signal to rank on.
MIN_RUNG_REFS = 500

#: Version of the trajectory document layout.
TRAJECTORY_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """Everything one search produced.

    The JSON-able views (:meth:`trajectory`, ``ranking``, ``rounds``)
    deliberately exclude wall-clock times and cache-hit provenance —
    they are byte-stable across reruns.  Runtime provenance lives in
    the separate ``cells_simulated`` / ``cells_from_cache`` fields
    (excluded from equality, like ``ExperimentGrid.cell_meta``).
    """

    spec: SpaceSpec
    driver: str
    search_seed: int
    budget: int
    backend: str
    variants_total: int
    variants_skipped: int
    #: one entry per evaluation round:
    #: ``{"round", "n_refs", "designs", "scores", "eliminated"}``.
    rounds: Tuple[dict, ...]
    #: best-to-worst over every evaluated variant:
    #: ``{"rank", "variant", "base", "overrides", "score", "n_refs",
    #: "round", "final"}`` — ``final`` marks variants scored in the
    #: last round (full fidelity), the only ones the leaderboard plots.
    ranking: Tuple[dict, ...]
    #: the last round's grid (references + surviving variants at full
    #: ``n_refs``); the leaderboard renders from it.
    final_grid: object = dataclasses.field(compare=False, repr=False)
    cells_simulated: int = dataclasses.field(default=0, compare=False)
    cells_from_cache: int = dataclasses.field(default=0, compare=False)

    def trajectory(self) -> dict:
        """The canonical search-trajectory document (byte-stable)."""
        return {
            "schema": TRAJECTORY_SCHEMA,
            "spec": self.spec.as_dict(),
            "driver": self.driver,
            "search_seed": self.search_seed,
            "budget": self.budget,
            "backend": self.backend,
            "variants_total": self.variants_total,
            "variants_skipped": self.variants_skipped,
            "rounds": list(self.rounds),
            "ranking": list(self.ranking),
        }


def _score_round(grid, spec: SpaceSpec,
                 variants: List[DesignVariant]) -> Dict[str, float]:
    """Mean normalized time per variant (the Fig-5 statistic)."""
    scores: Dict[str, float] = {}
    for variant in variants:
        total = sum(
            grid.normalized_execution_time(variant.name, bench,
                                           spec.baseline)
            for bench in spec.benchmarks)
        scores[variant.name] = round(total / len(spec.benchmarks),
                                     SCORE_DIGITS)
    return scores


def _select(driver: str, variants: Tuple[DesignVariant, ...],
            budget: int, seed: int) -> List[DesignVariant]:
    """The candidates a driver evaluates, in evaluation order."""
    count = min(budget, len(variants))
    if driver == "grid":
        return list(variants[:count])
    # random and halving share the seeded-sample cohort; halving then
    # spends the budget across rungs instead of one full-fidelity round.
    return random.Random(seed).sample(list(variants), count)


def _rung_refs(spec: SpaceSpec, depth: int, rung: int) -> int:
    """References per cell at ``rung`` (0-based; last rung = full)."""
    if rung >= depth - 1:
        return spec.n_refs
    scaled = spec.n_refs >> (depth - 1 - rung)
    return min(spec.n_refs, max(MIN_RUNG_REFS, scaled))


def run_search(spec: SpaceSpec, driver: str = "random", seed: int = 0,
               budget: int = 8, *, workers: int = 1, cache=None,
               policy=None, checkpoint=None, telemetry=None,
               backend: Optional[str] = None,
               registry=None) -> SearchResult:
    """Search ``spec``'s design space and rank what was evaluated.

    ``seed`` steers candidate selection (``random``/``halving``);
    ``budget`` is the number of variants admitted to evaluation.
    ``backend`` overrides the spec's backend (the CLI threads
    ``--backend`` here); ``cache``/``policy``/``checkpoint``/
    ``telemetry``/``workers`` pass straight through to ``run_grid``.
    ``registry`` (a :class:`~repro.obs.registry.MetricsRegistry`)
    receives the ``explore.*`` counters when given.

    Raises :class:`~repro.core.config.ConfigError` for an unknown
    driver, a non-positive budget, or a bad seed — same typed-error
    contract as the spec validator.
    """
    if driver not in DRIVER_NAMES:
        raise ConfigError(f"unknown driver {driver!r}; choose from "
                          f"{list(DRIVER_NAMES)}")
    if not isinstance(budget, int) or isinstance(budget, bool) or budget < 1:
        raise ConfigError(f"budget must be a positive integer, "
                          f"got {budget!r}")
    if (not isinstance(seed, int) or isinstance(seed, bool)
            or not 0 <= seed <= MAX_SEED):
        raise ConfigError(f"search seed must be an integer in "
                          f"[0, {MAX_SEED}], got {seed!r}")
    effective_backend = spec.backend if backend is None else backend

    counter = Counter()
    if registry is not None:
        registry.register("explore", counter)

    expansion = expand(spec)
    counter.add("variants_total", expansion.total)
    counter.add("variants_skipped", len(expansion.skipped))

    cohort = _select(driver, expansion.variants, budget, seed)
    counter.add("variants_evaluated", len(cohort))

    from repro.analysis.runner import run_grid

    cells_simulated = 0
    cells_from_cache = 0

    def evaluate(candidates: List[DesignVariant], refs: int):
        nonlocal cells_simulated, cells_from_cache
        grid = run_grid(list(spec.references) + candidates,
                        benchmarks=spec.benchmarks, n_refs=refs,
                        seed=spec.seed,
                        warmup_fraction=spec.warmup_fraction,
                        workers=workers, cache=cache, policy=policy,
                        checkpoint=checkpoint, telemetry=telemetry,
                        sanitize=spec.sanitize,
                        backend=effective_backend)
        for meta in (grid.cell_meta or {}).values():
            if meta.get("from_cache"):
                cells_from_cache += 1
            else:
                cells_simulated += 1
        return grid

    # Successive halving runs ceil(log2(cohort)) rungs; the other
    # drivers are the depth-1 special case (one full-fidelity round).
    depth = (max(1, (len(cohort) - 1).bit_length())
             if driver == "halving" else 1)
    survivors = list(cohort)
    rounds: List[dict] = []
    eliminated_stack: List[List[dict]] = []
    final_grid = None
    for rung in range(depth):
        refs = _rung_refs(spec, depth, rung)
        final_grid = evaluate(survivors, refs)
        scores = _score_round(final_grid, spec, survivors)
        ranked = sorted(survivors,
                        key=lambda v: (scores[v.name], v.name))
        last = rung == depth - 1
        keep = len(ranked) if last else max(1, math.ceil(len(ranked) / 2))
        dropped = ranked[keep:]
        rounds.append({
            "round": rung,
            "n_refs": refs,
            "designs": list(spec.references)
                       + [v.name for v in survivors],
            "scores": [[v.name, scores[v.name]] for v in ranked],
            "eliminated": [v.name for v in dropped],
        })
        if dropped:
            eliminated_stack.append([
                {"variant": v, "score": scores[v.name],
                 "n_refs": refs, "round": rung}
                for v in dropped])
        survivors = ranked[:keep]
        counter.add("rounds")

    # Final ranking: last-round survivors by their full-fidelity score,
    # then earlier casualties — later (higher-fidelity) rungs first,
    # each group by its elimination-rung score.
    entries: List[dict] = [
        {"variant": v, "score": _score_round(final_grid, spec, [v])[v.name],
         "n_refs": rounds[-1]["n_refs"], "round": depth - 1, "final": True}
        for v in survivors]
    for group in reversed(eliminated_stack):
        entries.extend({**item, "final": False} for item in group)
    ranking = tuple(
        {"rank": position + 1,
         "variant": entry["variant"].name,
         "base": entry["variant"].base,
         "overrides": entry["variant"].as_dict()["overrides"],
         "score": entry["score"],
         "n_refs": entry["n_refs"],
         "round": entry["round"],
         "final": entry["final"]}
        for position, entry in enumerate(entries))

    counter.add("cells_simulated", cells_simulated)
    counter.add("cells_from_cache", cells_from_cache)

    return SearchResult(
        spec=spec, driver=driver, search_seed=seed, budget=budget,
        backend=effective_backend,
        variants_total=expansion.total,
        variants_skipped=len(expansion.skipped),
        rounds=tuple(rounds), ranking=ranking, final_grid=final_grid,
        cells_simulated=cells_simulated,
        cells_from_cache=cells_from_cache)


def build_search_manifest(result: SearchResult, wall_time_s: float,
                          metrics: Optional[Dict[str, object]] = None,
                          top_k: Optional[int] = None) -> RunManifest:
    """The ``kind="explore.search"`` run manifest for one search.

    The manifest is the *provenance* record — unlike the trajectory it
    carries wall time and cache-hit counts, so two runs of the same
    search produce equal trajectories but distinguishable manifests.
    """
    ranking = list(result.ranking)
    if top_k is not None:
        ranking = ranking[:top_k]
    return build_manifest(
        kind="explore.search",
        config={"spec": result.spec.as_dict(), "driver": result.driver,
                "search_seed": result.search_seed,
                "budget": result.budget, "backend": result.backend},
        metrics=dict(metrics or {}),
        wall_time_s=wall_time_s,
        seed=result.spec.seed,
        result={"variants_total": result.variants_total,
                "variants_skipped": result.variants_skipped,
                "rounds": len(result.rounds),
                "cells_simulated": result.cells_simulated,
                "cells_from_cache": result.cells_from_cache,
                "ranking": ranking})

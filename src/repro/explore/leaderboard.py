"""The leaderboard: top-k variants vs the paper's designs, Fig-5 style.

A pure dataset -> render pipeline, routed through the derived-artifact
lane under its own ``explore.leaderboard`` kind (the same discipline as
``grid.normalized``): the dataset is a pure function of the final
round's cells plus the search ranking, the rendered text is a pure
function of the dataset, and the lane entry is keyed by the
contributing cells' cache fingerprints plus the ranking itself — so a
warm lane can only ever answer with bytes the cold path would have
produced.

Nothing time-dependent enters the dataset or the rendering; two runs of
one search emit byte-identical leaderboards (the property CI's explore
smoke job asserts with ``cmp``).
"""

from __future__ import annotations

from typing import List

from repro.analysis.figures import grouped_bar_chart
from repro.analysis.tables import format_table
from repro.explore.drivers import SearchResult

#: Default number of variants shown.
DEFAULT_TOP_K = 5


def leaderboard_dataset(result: SearchResult, top_k: int = DEFAULT_TOP_K) -> dict:
    """The JSON dataset behind the leaderboard.

    Rows are the spec's reference designs (the paper's rows — baseline
    first, always 1.0-normalized against itself) followed by the top-k
    *final* variants: only candidates scored in the last round carry
    full-fidelity per-benchmark numbers, so ``halving`` leaderboards
    never mix rung fidelities (eliminated variants still appear in the
    trajectory's ranking, marked ``final: false``).
    """
    spec = result.spec
    grid = result.final_grid
    top = [entry for entry in result.ranking if entry["final"]][:top_k]

    def normalized(design: str) -> dict:
        return {bench: round(grid.normalized_execution_time(
                    design, bench, spec.baseline), 3)
                for bench in spec.benchmarks}

    rows: List[dict] = []
    for design in spec.references:
        norm = normalized(design)
        rows.append({"design": design, "role": "reference",
                     "score": round(sum(norm.values())
                                    / len(spec.benchmarks), 6),
                     "overrides": None,
                     "normalized": norm})
    for entry in top:
        rows.append({"design": entry["variant"], "role": "variant",
                     "score": entry["score"],
                     "overrides": entry["overrides"],
                     "normalized": normalized(entry["variant"])})
    return {
        "kind": "explore.leaderboard",
        "space": spec.name,
        "baseline": spec.baseline,
        "driver": result.driver,
        "search_seed": result.search_seed,
        "budget": result.budget,
        "top_k": top_k,
        "n_refs": spec.n_refs,
        "benchmarks": list(spec.benchmarks),
        "variants_total": result.variants_total,
        "variants_skipped": result.variants_skipped,
        "rows": rows,
    }


def render_leaderboard(dataset: dict) -> str:
    """Render a leaderboard dataset as text (table + Fig-5-style bars)."""
    def describe(overrides) -> str:
        if not overrides:
            return "(paper design)"
        return ", ".join(f"{field}={value}"
                         for field, value in sorted(overrides.items()))

    table_rows = [
        [row["design"], row["role"], f"{row['score']:.3f}",
         describe(row["overrides"])]
        for row in dataset["rows"]]
    table = format_table(
        ["design", "role", "mean norm. time", "overrides"], table_rows,
        title=(f"Design-space leaderboard: {dataset['space']} "
               f"(driver={dataset['driver']}, seed={dataset['search_seed']}, "
               f"budget={dataset['budget']}, "
               f"baseline {dataset['baseline']} = 1.0)"))
    series = {row["design"]: row["normalized"] for row in dataset["rows"]}
    chart = grouped_bar_chart(
        series, dataset["benchmarks"],
        title=(f"Normalized execution time, top-{dataset['top_k']} "
               f"variants vs paper designs ({dataset['baseline']} = 1.0)"),
        reference_line=1.0)
    summary = (f"{dataset['variants_total']} variant(s) in space, "
               f"{dataset['variants_skipped']} skipped as unbuildable, "
               f"{len(dataset['rows'])} row(s) shown at "
               f"n_refs={dataset['n_refs']}")
    return "\n\n".join([table, chart, summary])


def leaderboard_artifact(result: SearchResult, lane,
                         top_k: int = DEFAULT_TOP_K) -> dict:
    """``{"dataset", "rendered"}`` via the derived lane.

    Keyed by the final round's cell fingerprints (references + every
    final-round variant) plus the full ranking and the renderer
    parameters — the ranking matters because ``halving`` orders final
    survivors using scores the final cells alone don't determine.
    """
    def compute() -> dict:
        dataset = leaderboard_dataset(result, top_k)
        return {"dataset": dataset,
                "rendered": render_leaderboard(dataset)}

    return lane.get_or_compute(
        kind="explore.leaderboard",
        cell_keys=list(result.final_grid.cell_keys()),
        params={"space": result.spec.name,
                "driver": result.driver,
                "search_seed": result.search_seed,
                "budget": result.budget,
                "top_k": top_k,
                "baseline": result.spec.baseline,
                "references": list(result.spec.references),
                "benchmarks": list(result.spec.benchmarks),
                "ranking": [[entry["variant"], entry["score"],
                             entry["final"]]
                            for entry in result.ranking]},
        compute=compute)

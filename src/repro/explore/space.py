"""The design-space DSL: declarative ``SpaceSpec`` -> concrete variants.

A :class:`SpaceSpec` names a *family* of cache designs: a registered
base design (a row of the paper's Table 2), a set of **axes** that each
vary one field — or several coupled fields — of
:class:`~repro.core.config.DesignConfig`, and the workload/trace
parameters every candidate is evaluated under.  Expansion takes the
cartesian product of the axes and yields named
:class:`~repro.core.config.DesignVariant` objects the grid runner
executes like any registry design (see
:func:`repro.analysis.runner.grid_cell_specs`).

Specs have two interchangeable forms, mirroring
:mod:`repro.service.schema`: the frozen dataclass, and the JSON/dict
document :data:`SPACE_SPEC_SCHEMA` describes.  :func:`validate_space_spec`
is the executable twin of the schema: it accepts a decoded JSON payload
and raises the typed :class:`~repro.core.config.ConfigError` — and only
``ConfigError`` — for every way a document can be invalid (the
Hypothesis suite in ``tests/test_explore.py`` enforces that contract
over arbitrary JSON, like ``test_service.py`` does for job specs).

Determinism is the load-bearing property: expansion order is the
product order of the axes as written, variant names are
``<spec.name>-<NNNN>`` by product index, and every value is coerced to
one canonical form — so the same document always expands to the same
variants, which is what lets a search trajectory (and its leaderboard)
be byte-reproducible and lets the result cache answer a repeated
search with zero simulation.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Dict, List, Optional, Tuple

from repro.core.config import (
    ConfigError,
    DesignVariant,
    RESERVED_VARIANT_FIELDS,
    DesignConfig,
    resolve_design_name,
)
from repro.workloads.profiles import benchmark_names

#: Guard rails for one exploration (same spirit as the service caps:
#: a declarative document should not be able to demand unbounded work).
MAX_VARIANTS = 512
MAX_AXES = 8
MAX_CHOICES_PER_AXIS = 64
MAX_REFS_PER_CELL = 2_000_000
MAX_SEED = 2**32 - 1
MAX_NAME_LENGTH = 48

#: JSON Schema for a space document (the ``repro explore --space`` file).
#: :func:`validate_space_spec` is the executable twin of this
#: declaration; docs/EXPLORATION.md embeds it.
SPACE_SPEC_SCHEMA = {
    "type": "object",
    "required": ["name", "base", "axes"],
    "additionalProperties": False,
    "properties": {
        "name": {
            "type": "string",
            "pattern": r"^[A-Za-z0-9][A-Za-z0-9._-]*$",
            "maxLength": MAX_NAME_LENGTH,
            "description": "family name; variants are named "
                           "<name>-<NNNN> by product index",
        },
        "base": {
            "type": "string",
            "description": "registered design every variant starts from "
                           "(any case/separator spelling)",
        },
        "baseline": {
            "type": "string",
            "description": "registered design scores are normalized "
                           "against (default: base)",
        },
        "references": {
            "type": "array",
            "minItems": 1,
            "items": {"type": "string"},
            "description": "registered designs shown beside the variants "
                           "on the leaderboard (default: baseline + base); "
                           "the baseline is always included",
        },
        "axes": {
            "type": "array",
            "minItems": 1,
            "maxItems": MAX_AXES,
            "items": {
                "type": "object",
                "required": ["values"],
                "additionalProperties": False,
                "properties": {
                    "field": {
                        "type": "string",
                        "description": "DesignConfig field scalar values "
                                       "apply to; omit when every value "
                                       "is an object of coupled fields",
                    },
                    "values": {
                        "type": "array",
                        "minItems": 1,
                        "maxItems": MAX_CHOICES_PER_AXIS,
                        "description": "axis choices: scalars (require "
                                       "field), arrays (tuple fields like "
                                       "controller_rt_delays), or objects "
                                       "mapping several DesignConfig "
                                       "fields varied together",
                    },
                },
            },
            "description": "explored dimensions; expansion is the "
                           "cartesian product in document order",
        },
        "benchmarks": {
            "type": "array",
            "minItems": 1,
            "items": {"type": "string"},
            "description": "calibrated workload profiles every candidate "
                           "runs; omitted means the full suite",
        },
        "n_refs": {
            "type": "integer",
            "minimum": 1,
            "maximum": MAX_REFS_PER_CELL,
            "default": 20_000,
            "description": "L2 references per cell at full fidelity "
                           "(successive halving starts lower)",
        },
        "seed": {
            "type": "integer",
            "minimum": 0,
            "maximum": MAX_SEED,
            "default": 7,
            "description": "trace-generation seed (identical for every "
                           "variant; the search seed is separate)",
        },
        "warmup_fraction": {
            "type": "number",
            "minimum": 0.0,
            "exclusiveMaximum": 1.0,
            "default": 0.3,
            "description": "leading fraction of each trace excluded "
                           "from measurement",
        },
        "backend": {
            "type": "string",
            "default": "reference",
            "description": "simulation backend for every cell "
                           "('reference' or 'batched'; part of each "
                           "cell's cache key)",
        },
        "sanitize": {
            "type": "boolean",
            "default": False,
            "description": "run every cell under the simulator-core "
                           "sanitizer (part of the cell cache key)",
        },
        "on_invalid": {
            "type": "string",
            "enum": ["raise", "skip"],
            "default": "raise",
            "description": "what expansion does with a product "
                           "combination DesignConfig rejects: fail the "
                           "whole space, or drop that combination "
                           "(names stay stable either way: variants are "
                           "numbered before skipping)",
        },
    },
}


@dataclasses.dataclass(frozen=True)
class AxisSpec:
    """One explored dimension, in canonical form.

    ``choices`` holds one entry per axis value, each a sorted tuple of
    ``(field, value)`` override pairs — a scalar axis value becomes the
    single pair ``(field, value)``, an object value becomes one pair
    per coupled field.  Canonicalization makes axes hashable and makes
    two spellings of one axis compare equal.
    """

    choices: Tuple[Tuple[Tuple[str, object], ...], ...]

    def fields(self) -> Tuple[str, ...]:
        """Every DesignConfig field this axis touches, sorted."""
        return tuple(sorted({field for choice in self.choices
                             for field, _ in choice}))


@dataclasses.dataclass(frozen=True)
class SpaceSpec:
    """A validated design space (one ``repro explore --space`` document).

    Construction goes through :func:`validate_space_spec`; fields are
    normalized (design names resolved to registry spellings, benchmark
    default expanded, axis values canonicalized) so two spellings of
    one space expand to identical variants and share cache entries.
    """

    name: str
    base: str
    axes: Tuple[AxisSpec, ...]
    baseline: str
    references: Tuple[str, ...]
    benchmarks: Tuple[str, ...]
    n_refs: int = 20_000
    seed: int = 7
    warmup_fraction: float = 0.3
    backend: str = "reference"
    sanitize: bool = False
    on_invalid: str = "raise"

    @property
    def size(self) -> int:
        """Variants a full expansion enumerates (before any skips)."""
        return math.prod(len(axis.choices) for axis in self.axes)

    def as_dict(self) -> dict:
        """The canonical JSON document form (round-trips through
        :func:`validate_space_spec` unchanged)."""
        def value_out(value):
            return list(value) if isinstance(value, tuple) else value

        return {
            "name": self.name,
            "base": self.base,
            "baseline": self.baseline,
            "references": list(self.references),
            "axes": [
                {"values": [{field: value_out(value)
                             for field, value in choice}
                            for choice in axis.choices]}
                for axis in self.axes
            ],
            "benchmarks": list(self.benchmarks),
            "n_refs": self.n_refs,
            "seed": self.seed,
            "warmup_fraction": self.warmup_fraction,
            "backend": self.backend,
            "sanitize": self.sanitize,
            "on_invalid": self.on_invalid,
        }


@dataclasses.dataclass(frozen=True)
class Expansion:
    """The result of expanding a space: variants plus skip provenance."""

    variants: Tuple[DesignVariant, ...]
    #: names of product combinations dropped by ``on_invalid="skip"``,
    #: with the ConfigError text that rejected each.
    skipped: Tuple[Tuple[str, str], ...]

    @property
    def total(self) -> int:
        return len(self.variants) + len(self.skipped)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _fail(message: str) -> None:
    raise ConfigError(f"space spec: {message}")


def _known_fields() -> Dict[str, None]:
    return {f.name: None for f in dataclasses.fields(DesignConfig)}


def _valid_override_value(value: object) -> bool:
    """JSON-able scalar or flat array of scalars (tuple fields)."""
    if value is None or isinstance(value, (bool, str)):
        return True
    if isinstance(value, (int, float)):
        return not isinstance(value, float) or math.isfinite(value)
    if isinstance(value, (list, tuple)):
        return all(isinstance(item, (bool, int, float, str))
                   and (not isinstance(item, float) or math.isfinite(item))
                   for item in value)
    return False


def _canonical_choice(axis_index: int, field: Optional[str],
                      value: object) -> Tuple[Tuple[str, object], ...]:
    """One axis value -> its sorted (field, value) override pairs."""
    known = _known_fields()
    if isinstance(value, dict):
        if not value:
            _fail(f"axes[{axis_index}]: an object value must name at "
                  f"least one field")
        pairs = []
        for key in sorted(value):
            _check_override_field(axis_index, key, known)
            if not _valid_override_value(value[key]):
                _fail(f"axes[{axis_index}]: value for field {key!r} must "
                      f"be a finite JSON scalar or flat array, "
                      f"got {value[key]!r}")
            pairs.append((key, _freeze(value[key])))
        return tuple(pairs)
    if field is None:
        _fail(f"axes[{axis_index}]: scalar/array values need the axis "
              f"'field' name (or use object values)")
    if not _valid_override_value(value):
        _fail(f"axes[{axis_index}]: value for field {field!r} must be a "
              f"finite JSON scalar or flat array, got {value!r}")
    return ((field, _freeze(value)),)


def _freeze(value: object) -> object:
    return tuple(value) if isinstance(value, (list, tuple)) else value


def _check_override_field(axis_index: int, field: object,
                          known: Dict[str, None]) -> None:
    if not isinstance(field, str) or field not in known:
        _fail(f"axes[{axis_index}]: unknown DesignConfig field {field!r}; "
              f"known fields: {sorted(known)}")
    if field in RESERVED_VARIANT_FIELDS:
        reason = ("variant names are assigned by expansion"
                  if field == "name"
                  else "select the backend at the spec level")
        _fail(f"axes[{axis_index}]: field {field!r} cannot be an axis "
              f"({reason})")


def _validated_axis(axis_index: int, raw: object) -> AxisSpec:
    if not isinstance(raw, dict):
        _fail(f"axes[{axis_index}] must be an object with 'values' "
              f"(and optionally 'field'), got {raw!r}")
    unknown = sorted(set(raw) - {"field", "values"})
    if unknown:
        _fail(f"axes[{axis_index}]: unknown key(s) {unknown}")
    field = raw.get("field")
    if field is not None:
        _check_override_field(axis_index, field, _known_fields())
    values = raw.get("values")
    if not isinstance(values, (list, tuple)) or not values:
        _fail(f"axes[{axis_index}]: values must be a non-empty array, "
              f"got {values!r}")
    if len(values) > MAX_CHOICES_PER_AXIS:
        _fail(f"axes[{axis_index}]: {len(values)} values exceed the "
              f"per-axis cap of {MAX_CHOICES_PER_AXIS}")
    choices = tuple(_canonical_choice(axis_index, field, value)
                    for value in values)
    if len(set(choices)) != len(choices):
        _fail(f"axes[{axis_index}]: values contain duplicates "
              f"(after canonicalization)")
    return AxisSpec(choices=choices)


def _validated_design(raw: object, field: str) -> str:
    if not isinstance(raw, str):
        _fail(f"{field} must be a design name string, got {raw!r}")
    try:
        return resolve_design_name(raw)
    except ValueError as error:
        raise ConfigError(f"space spec: {field}: {error}") from error


def _validated_benchmarks(raw: object) -> Tuple[str, ...]:
    if (not isinstance(raw, (list, tuple)) or not raw
            or not all(isinstance(item, str) for item in raw)):
        _fail(f"benchmarks must be a non-empty array of strings, "
              f"got {raw!r}")
    for item in raw:
        if item not in benchmark_names():
            _fail(f"unknown benchmark {item!r}; choose from "
                  f"{sorted(benchmark_names())}")
    duplicates = sorted({name for name in raw if raw.count(name) > 1})
    if duplicates:
        _fail(f"benchmarks contains duplicate entries {duplicates}")
    return tuple(raw)


def validate_space_spec(payload: object) -> SpaceSpec:
    """Validate one space document into a :class:`SpaceSpec`.

    Raises :class:`~repro.core.config.ConfigError` — and only
    ``ConfigError`` — for every way a payload can be invalid.  The
    returned spec is canonical: expanding it (or its ``as_dict()``
    round trip) always yields the same variants in the same order.
    """
    if not isinstance(payload, dict):
        _fail(f"document must be a JSON object, got "
              f"{type(payload).__name__}")
    known = set(SPACE_SPEC_SCHEMA["properties"])
    unknown = sorted(set(payload) - known)
    if unknown:
        _fail(f"unknown field(s) {unknown}; known fields: {sorted(known)}")
    for required in SPACE_SPEC_SCHEMA["required"]:
        if required not in payload:
            _fail(f"{required} is required")

    name = payload["name"]
    if (not isinstance(name, str) or not name
            or len(name) > MAX_NAME_LENGTH
            or not all(c.isalnum() or c in "._-" for c in name)
            or not name[0].isalnum()):
        _fail(f"name must match [A-Za-z0-9][A-Za-z0-9._-]* and be at "
              f"most {MAX_NAME_LENGTH} characters, got {name!r}")

    base = _validated_design(payload["base"], "base")
    baseline = (_validated_design(payload["baseline"], "baseline")
                if "baseline" in payload else base)

    raw_axes = payload["axes"]
    if not isinstance(raw_axes, (list, tuple)) or not raw_axes:
        _fail(f"axes must be a non-empty array, got {raw_axes!r}")
    if len(raw_axes) > MAX_AXES:
        _fail(f"{len(raw_axes)} axes exceed the cap of {MAX_AXES}")
    axes = tuple(_validated_axis(i, axis) for i, axis in enumerate(raw_axes))
    touched: List[str] = []
    for axis in axes:
        touched.extend(axis.fields())
    duplicates = sorted({f for f in touched if touched.count(f) > 1})
    if duplicates:
        _fail(f"field(s) {duplicates} appear on more than one axis; "
              f"couple fields inside one axis's object values instead")

    size = math.prod(len(axis.choices) for axis in axes)
    if size > MAX_VARIANTS:
        _fail(f"space expands to {size} variants; the cap is "
              f"{MAX_VARIANTS} (split the space or drop an axis)")

    if "references" in payload:
        raw_refs = payload["references"]
        if (not isinstance(raw_refs, (list, tuple)) or not raw_refs
                or not all(isinstance(item, str) for item in raw_refs)):
            _fail(f"references must be a non-empty array of design "
                  f"names, got {raw_refs!r}")
        resolved = [_validated_design(item, "references") for item in raw_refs]
    else:
        resolved = [baseline, base]
    references = tuple(dict.fromkeys([baseline] + resolved))

    benchmarks = (_validated_benchmarks(payload["benchmarks"])
                  if "benchmarks" in payload
                  else tuple(benchmark_names()))

    n_refs = payload.get("n_refs", 20_000)
    if not _is_int(n_refs) or not 1 <= n_refs <= MAX_REFS_PER_CELL:
        _fail(f"n_refs must be an integer in [1, {MAX_REFS_PER_CELL}], "
              f"got {n_refs!r}")
    seed = payload.get("seed", 7)
    if not _is_int(seed) or not 0 <= seed <= MAX_SEED:
        _fail(f"seed must be an integer in [0, {MAX_SEED}], got {seed!r}")
    warmup = payload.get("warmup_fraction", 0.3)
    if (not isinstance(warmup, (int, float)) or isinstance(warmup, bool)
            or not math.isfinite(warmup) or not 0.0 <= warmup < 1.0):
        _fail(f"warmup_fraction must be a finite number in [0, 1), "
              f"got {warmup!r}")
    backend = payload.get("backend", "reference")
    from repro.sim.backend import BACKEND_NAMES

    if backend not in BACKEND_NAMES:
        _fail(f"backend must be one of {list(BACKEND_NAMES)}, "
              f"got {backend!r}")
    sanitize = payload.get("sanitize", False)
    if not isinstance(sanitize, bool):
        _fail(f"sanitize must be a boolean, got {sanitize!r}")
    on_invalid = payload.get("on_invalid", "raise")
    if on_invalid not in ("raise", "skip"):
        _fail(f"on_invalid must be 'raise' or 'skip', got {on_invalid!r}")

    return SpaceSpec(name=name, base=base, axes=axes, baseline=baseline,
                     references=references, benchmarks=benchmarks,
                     n_refs=n_refs, seed=seed,
                     warmup_fraction=float(warmup), backend=backend,
                     sanitize=sanitize, on_invalid=on_invalid)


def expand(spec: SpaceSpec) -> Expansion:
    """Expand a space into its concrete, validated design variants.

    Product order follows the axes as declared (last axis fastest);
    names are ``<spec.name>-<NNNN>`` by product index *before* any
    skipping, so a combination's name never depends on which of its
    siblings happened to be invalid.  ``on_invalid="raise"`` (the
    default) turns the first unbuildable combination into a
    :class:`~repro.core.config.ConfigError` naming it;
    ``on_invalid="skip"`` records it and moves on.  A space whose every
    combination is invalid is an error under either policy.
    """
    width = max(4, len(str(max(spec.size - 1, 0))))
    variants: List[DesignVariant] = []
    skipped: List[Tuple[str, str]] = []
    for index, combo in enumerate(
            itertools.product(*[axis.choices for axis in spec.axes])):
        overrides = tuple(sorted(pair for choice in combo for pair in choice))
        name = f"{spec.name}-{index:0{width}d}"
        try:
            variants.append(DesignVariant(name=name, base=spec.base,
                                          overrides=overrides))
        except ConfigError as error:
            if spec.on_invalid == "raise":
                raise ConfigError(
                    f"space {spec.name}: combination {index} "
                    f"({dict(overrides)!r}) is unbuildable: {error}"
                ) from error
            skipped.append((name, str(error)))
    if not variants:
        raise ConfigError(
            f"space {spec.name}: every combination is unbuildable "
            f"({len(skipped)} skipped)")
    return Expansion(variants=tuple(variants), skipped=tuple(skipped))


def expand_variants(spec: SpaceSpec) -> Tuple[DesignVariant, ...]:
    """The expanded variants alone (see :func:`expand`)."""
    return expand(spec).variants

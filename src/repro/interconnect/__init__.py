"""On-chip interconnect substrate: links, messages, and the NUCA mesh."""

from repro.interconnect.message import (
    flits_for_bits,
    REQUEST_BITS,
    BLOCK_BITS,
    BLOCK_BYTES,
)
from repro.interconnect.link import Link, Transfer
from repro.interconnect.mesh import MeshNetwork, MeshPath

__all__ = [
    "flits_for_bits",
    "REQUEST_BITS",
    "BLOCK_BITS",
    "BLOCK_BYTES",
    "Link",
    "Transfer",
    "MeshNetwork",
    "MeshPath",
]

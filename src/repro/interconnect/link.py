"""A point-to-point unidirectional link modelled as a FIFO resource.

TLC's transmission-line links (and the individual channel segments of
the NUCA mesh) are occupied for one cycle per flit.  Because a single
processor issues requests in nondecreasing time order, a busy-until
scalar gives exact FIFO contention behaviour without event scheduling.

Timing convention::

    start          = max(send_time, busy_until)      (queueing)
    first_arrival  = start + flight_cycles           (critical word)
    last_arrival   = start + flits - 1 + flight_cycles
    busy_until     = start + flits                   (serialization)

``flight_cycles`` covers wave propagation plus receiver capture — one
cycle for every Table 1 transmission line (see
:func:`repro.tline.signaling.evaluate_link`).
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional

from repro.interconnect.message import flits_for_bits
from repro.sim.stats import UtilizationMeter


class Transfer(NamedTuple):
    """Timing of one message transfer over a link.

    A NamedTuple rather than a dataclass: one is constructed per
    simulated message, and tuple construction is several times cheaper
    than frozen-dataclass field assignment.
    """

    start: int
    first_arrival: int
    last_arrival: int
    queued_cycles: int
    flits: int


class Link:
    """One unidirectional link of a given width (bits) and flight time."""

    def __init__(self, width_bits: int, flight_cycles: int = 1,
                 meter: Optional[UtilizationMeter] = None,
                 length_m: float = 0.0) -> None:
        if width_bits <= 0:
            raise ValueError("width must be positive")
        if flight_cycles < 0:
            raise ValueError("flight cycles must be non-negative")
        self.width_bits = width_bits
        self.flight_cycles = flight_cycles
        self.meter = meter
        self.length_m = length_m
        self.busy_until = 0
        self.bits_sent = 0
        self.transfers = 0
        #: optional repro.sanitizer.Sanitizer receiving one on_transfer
        #: per send for message-conservation accounting.  Mesh-internal
        #: links stay detached — the mesh accounts at message level.
        self.sanitizer = None
        # Messages come in a handful of fixed sizes (request, ack, block,
        # request+block), so the flit count per size is computed once.
        self._flits_cache: Dict[int, int] = {}

    def send(self, time: int, message_bits: int, contend: bool = True) -> Transfer:
        """Send a message; returns its timing including queueing delay.

        ``contend=False`` is used for fill/writeback traffic scheduled at
        a future completion time (e.g. a refill arriving from memory):
        the transfer still consumes bandwidth for utilization and energy
        accounting, but does not reserve the link against *earlier*
        demand requests — the scalar busy-until model would otherwise
        charge requests that arrive first for traffic that arrives later.
        """
        flits = self._flits_cache.get(message_bits)
        if flits is None:
            flits = flits_for_bits(message_bits, self.width_bits)
            self._flits_cache[message_bits] = flits
        if contend:
            start = max(time, self.busy_until)
            self.busy_until = start + flits
        else:
            start = time
        self.bits_sent += message_bits
        self.transfers += 1
        if self.meter is not None:
            self.meter.busy(flits)
        if self.sanitizer is not None:
            self.sanitizer.on_transfer("link", time)
        return Transfer(
            start=start,
            first_arrival=start + self.flight_cycles,
            last_arrival=start + flits - 1 + self.flight_cycles,
            queued_cycles=start - time,
            flits=flits,
        )

    def register_metrics(self, scope) -> None:
        """Mount this link's traffic gauges on a registry scope
        (e.g. ``link.pair02.req``); see :mod:`repro.obs.registry`."""
        scope.gauge("bits_sent", lambda: self.bits_sent)
        scope.gauge("transfers", lambda: self.transfers)

    def reset_counters(self) -> None:
        """Zero traffic accounting, preserving busy (timing) state —
        the warmup-boundary reset."""
        self.bits_sent = 0
        self.transfers = 0

    def reset(self) -> None:
        self.busy_until = 0
        self.bits_sent = 0
        self.transfers = 0

"""The 2-D switched mesh used by the NUCA designs (paper Figure 1).

Banks form ``columns`` x ``rows`` grid; the cache controller sits at the
middle of the bottom edge.  A message to bank (column c, position p)
crosses ``hd`` horizontal edge links (hd = 0 for the two centre columns)
and ``p`` vertical links up the column, paying ``hop_latency`` cycles of
switch-plus-wire delay per hop — giving DNUCA's 3..47-cycle uncontended
range for a 16 x 16 grid with 3-cycle banks, and SNUCA2's 9..32-ish range
for an 8 x 4 grid of slower, larger banks.

Wormhole switching: the head flit advances one hop per ``hop_latency``
cycles and each traversed link stays busy for the message's full flit
count, so contention appears wherever message paths overlap — the
paper's "contention in the routing network to and from the banks".
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from repro.interconnect.link import Link
from repro.interconnect.message import flits_for_bits
from repro.sim.stats import UtilizationMeter

LinkKey = Tuple[str, int, int, int]  # (kind, column, index, direction)


class MeshPath(NamedTuple):
    """A routed path plus the timing of a transfer along it.

    A NamedTuple for the same reason as
    :class:`~repro.interconnect.link.Transfer`: one is built per mesh
    message, on the innermost simulation path.
    """

    links: Tuple[LinkKey, ...]
    start: int
    first_arrival: int
    last_arrival: int
    queued_cycles: int

    @property
    def hops(self) -> int:
        return len(self.links)


class MeshNetwork:
    """A controller-rooted mesh over ``columns`` x ``rows`` banks."""

    def __init__(self, columns: int, rows: int, flit_bits: int,
                 hop_latency: int = 1, hop_length_m: float = 0.66e-3) -> None:
        if columns < 2 or columns % 2:
            raise ValueError("columns must be an even number >= 2")
        if rows < 1:
            raise ValueError("rows must be positive")
        self.columns = columns
        self.rows = rows
        self.flit_bits = flit_bits
        self.hop_latency = hop_latency
        self.hop_length_m = hop_length_m
        # Directed links: horizontal edge links + vertical column links.
        self.meter = UtilizationMeter(resources=self._count_links())
        self._links: Dict[LinkKey, Link] = {}
        # Routing is a pure function of the endpoint, and every message
        # size maps to a fixed flit count; both are asked for on every
        # simulated transfer, so both are computed once and memoized.
        self._route_cache: Dict[Tuple[int, int, bool],
                                Tuple[Tuple[LinkKey, ...], List[Link]]] = {}
        self._flits_cache: Dict[int, int] = {}
        self.bit_hops = 0
        self.switch_traversals = 0
        #: optional repro.sanitizer.Sanitizer; accounted per *message*
        #: (not per hop) so multi-link routes count as one transfer.
        self.sanitizer = None

    def _count_links(self) -> int:
        horizontal = 2 * (self.columns - 1)
        vertical = 2 * self.columns * (self.rows - 1)
        return horizontal + vertical

    def _link(self, key: LinkKey) -> Link:
        link = self._links.get(key)
        if link is None:
            link = Link(self.flit_bits, flight_cycles=self.hop_latency,
                        meter=self.meter, length_m=self.hop_length_m)
            self._links[key] = link
        return link

    # -- routing ---------------------------------------------------------
    def horizontal_distance(self, column: int) -> int:
        """Edge hops from the centred controller to ``column``."""
        if not 0 <= column < self.columns:
            raise IndexError(f"column {column} out of range")
        centre_right = self.columns // 2
        if column >= centre_right:
            return column - centre_right
        return (centre_right - 1) - column

    def hops_to(self, column: int, position: int) -> int:
        """One-way hop count from the controller to bank (column, position)."""
        if not 0 <= position < self.rows:
            raise IndexError(f"position {position} out of range")
        return self.horizontal_distance(column) + position

    def uncontended_latency(self, column: int, position: int,
                            bank_cycles: int) -> int:
        """Round-trip network plus bank access latency, no contention."""
        return 2 * self.hops_to(column, position) * self.hop_latency + bank_cycles

    def _route(self, column: int, position: int, outbound: bool) -> Tuple[LinkKey, ...]:
        """Links from controller to (column, position); reversed if inbound."""
        links: List[LinkKey] = []
        centre_right = self.columns // 2
        direction = 1 if outbound else -1
        if column >= centre_right:
            for j in range(centre_right, column):
                links.append(("h", j, 0, direction))
        else:
            for j in range(centre_right - 2, column - 1, -1):
                links.append(("h", j, 0, -direction))
        for r in range(position):
            links.append(("v", column, r, direction))
        if not outbound:
            links.reverse()
        return tuple(links)

    # -- transfers -------------------------------------------------------
    def send(self, column: int, position: int, time: int, message_bits: int,
             outbound: bool, contend: bool = True) -> MeshPath:
        """Route a message controller<->bank and account for contention.

        ``contend=False`` (fill/writeback traffic scheduled in the
        future) consumes bandwidth for accounting but does not reserve
        links against earlier demand traffic — see ``Link.send``.
        """
        route = self._route_cache.get((column, position, outbound))
        if route is None:
            keys = self._route(column, position, outbound)
            route = (keys, [self._link(key) for key in keys])
            self._route_cache[(column, position, outbound)] = route
        links, link_objects = route
        flits = self._flits_cache.get(message_bits)
        if flits is None:
            flits = flits_for_bits(message_bits, self.flit_bits)
            self._flits_cache[message_bits] = flits
        head = time
        start = time
        first = True
        for link in link_objects:
            transfer = link.send(head, message_bits, contend)
            if first:
                start = transfer.start
                first = False
            head = transfer.first_arrival
        self.bit_hops += message_bits * len(links)
        self.switch_traversals += len(links)
        if self.sanitizer is not None:
            self.sanitizer.on_transfer("mesh", time)
        return MeshPath(
            links=links,
            start=start,
            first_arrival=head,
            last_arrival=head + flits - 1,
            queued_cycles=start - time,
        )

    def transfer_between(self, column: int, upper_position: int, time: int,
                         message_bits: int, upward: bool) -> MeshPath:
        """One-hop bank-to-adjacent-bank transfer (DNUCA promotion swaps).

        Moves a message between (column, upper_position-1) and
        (column, upper_position) over the single vertical link joining
        them; ``upward`` selects the direction away from the controller.
        """
        if not 1 <= upper_position < self.rows:
            raise IndexError("upper_position must be in [1, rows)")
        key: LinkKey = ("v", column, upper_position - 1, 1 if upward else -1)
        transfer = self._link(key).send(time, message_bits)
        self.bit_hops += message_bits
        self.switch_traversals += 1
        if self.sanitizer is not None:
            self.sanitizer.on_transfer("mesh", time)
        return MeshPath(
            links=(key,),
            start=transfer.start,
            first_arrival=transfer.first_arrival,
            last_arrival=transfer.last_arrival,
            queued_cycles=transfer.queued_cycles,
        )

    def utilization(self, elapsed_cycles: int) -> float:
        return self.meter.utilization(elapsed_cycles)

    def register_metrics(self, scope) -> None:
        """Mount the mesh's meters/gauges on a registry scope (``mesh``).

        Links are created lazily as traffic first touches them, so the
        per-link population is summarized by aggregate gauges rather
        than registered individually.
        """
        scope.register("util", self.meter)
        scope.gauge("bit_hops", lambda: self.bit_hops)
        scope.gauge("switch_traversals", lambda: self.switch_traversals)
        scope.gauge("links_touched", lambda: len(self._links))
        scope.gauge("links_total", self._count_links)

    def reset_counters(self) -> None:
        """Zero traffic accounting in place, preserving link busy state
        (the warmup-boundary reset the designs call)."""
        self.meter.reset()
        self.bit_hops = 0
        self.switch_traversals = 0
        for link in self._links.values():
            link.reset_counters()

"""Message sizing shared by all interconnect models.

Caches exchange two kinds of messages: short request/command messages
(an address, a command, and for TLCopt a partial tag) and data messages
carrying some or all of a 64-byte cache block.  Links serialize messages
into *flits* of the link's width; link widths are expressed in bits
because the optimized TLC designs use links narrower than a byte
multiple (Table 2's 44-line design).
"""

from __future__ import annotations

#: Size of a request/command/ack message in bits (address + command).
REQUEST_BITS = 64

#: Cache block size used throughout the paper (Table 3), in bits.
BLOCK_BITS = 64 * 8

#: Cache block size in bytes.
BLOCK_BYTES = 64


def flits_for_bits(message_bits: int, link_width_bits: int) -> int:
    """Number of link-width flits needed to carry ``message_bits``.

    Pure integer ceiling division: exact for any operand size (a float
    ``ceil`` is not) and called once per simulated transfer.
    """
    if message_bits <= 0:
        raise ValueError("message size must be positive")
    if link_width_bits <= 0:
        raise ValueError("link width must be positive")
    return -(-message_bits // link_width_bits)

"""The NUCA baselines from Kim et al. (ASPLOS 2002): SNUCA2 and DNUCA."""

from repro.nuca.snuca import StaticNUCA
from repro.nuca.dnuca import DynamicNUCA

__all__ = ["StaticNUCA", "DynamicNUCA"]

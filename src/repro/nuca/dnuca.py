"""DNUCA: the Dynamic Non-Uniform Cache Architecture baseline (Kim et al.).

16 MB organized as 16 *bank sets* (one per mesh column) of 16 direct-
mapped 64 KB banks — a 16-way set-associative cache whose ways are
physically spread from 3 to 47 cycles away from the controller.

Mechanisms implemented, following Section 2 of the paper:

* **Closest-two parallel lookup**: every request probes the two nearest
  banks of its bank set while the central 6-bit partial-tag array is
  consulted in parallel.
* **Partial-tag directed search**: on a closest-two miss, only banks
  whose partial tag matches are searched; if none match anywhere the
  request is a *fast miss*, resolved at the fixed partial-tag latency.
* **Generational promotion**: every hit in a non-nearest bank swaps the
  block one bank closer to the controller, displacing the occupant one
  bank further.  The swap moves two blocks over the vertical link
  between the banks and briefly occupies both banks — the migration
  bandwidth DNUCA pays for its locality.
* **Insert at tail**: blocks arriving from memory enter the furthest
  bank of their bank set, evicting (and writing back, if dirty) its
  occupant.  On streaming workloads with few re-references this policy
  never pays off — the paper's swim/applu observation.

The partial-tag array is updated synchronously with every insert, evict,
and swap; the paper's "complex synchronization mechanism" guaranteeing
that a search never misses an in-flight block is modelled by these
atomic functional updates.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cache.address import AddressMap
from repro.cache.bank import CacheBank
from repro.cache.partial_tags import PartialTagArray, partial_tag
from repro.core.base import L2Design, L2Outcome
from repro.core.config import DesignConfig, DNUCA
from repro.interconnect.mesh import MeshNetwork
from repro.interconnect.message import BLOCK_BITS, REQUEST_BITS
from repro.sim.memory import MainMemory
from repro.tech import Technology, TECH_45NM

#: Banks probed in parallel on every lookup.
CLOSEST_BANKS = (0, 1)


class DynamicNUCA(L2Design):
    """The DNUCA design."""

    def __init__(self, config: DesignConfig = DNUCA,
                 memory: Optional[MainMemory] = None,
                 tech: Technology = TECH_45NM) -> None:
        super().__init__(memory=memory, tech=tech)
        if config.kind != "dnuca":
            raise ValueError(f"{config.name} is not a DNUCA config")
        if config.insertion_position not in ("tail", "head"):
            raise ValueError("insertion_position must be 'tail' or 'head'")
        if config.search_mode not in ("multicast", "incremental"):
            raise ValueError("search_mode must be 'multicast' or 'incremental'")
        if config.promotion_distance < 1:
            raise ValueError("promotion_distance must be at least 1")
        self.config = config
        self.name = config.name
        self.banksets = config.mesh_columns
        self.positions = config.mesh_rows
        sets_per_bank = config.bank_bytes // (64 * config.associativity)
        self.sets_per_bank = sets_per_bank
        self.addr_map = AddressMap(block_bytes=64, num_sets=sets_per_bank,
                                   banks=self.banksets)
        # banks[column][position]; position 0 is nearest the controller.
        self.banks: List[List[CacheBank]] = [
            [CacheBank(sets_per_bank, config.associativity, config.replacement)
             for _ in range(self.positions)]
            for _ in range(self.banksets)
        ]
        self.partial_tags: List[PartialTagArray] = [
            PartialTagArray(self.positions, sets_per_bank, config.associativity)
            for _ in range(self.banksets)
        ]
        self.mesh = MeshNetwork(config.mesh_columns, config.mesh_rows,
                                config.mesh_flit_bits, config.mesh_hop_latency,
                                config.mesh_hop_length_m)
        self._bank_busy_until = [
            [0] * self.positions for _ in range(self.banksets)
        ]
        # Uncontended latency is a pure function of (column, position)
        # and the config, asked for on every read hit — tabulate it once.
        self._uncontended = [
            [self.mesh.uncontended_latency(column, position,
                                           config.bank_access_cycles)
             for position in range(self.positions)]
            for column in range(self.banksets)
        ]
        # Fast-path state for bulk pre-warming: per-(column, set) tags
        # installed so far, valid only until the first timed access.
        self._install_seen: Optional[dict] = {}
        self.mesh.register_metrics(self.metrics.scope("mesh"))
        # 256 banks: per-bank gauges would dominate every snapshot, so
        # occupancy is exposed per bank set (mesh column) instead.
        for column in range(self.banksets):
            self.metrics.gauge(
                f"l2.bankset{column:02d}.occupancy",
                lambda banks=self.banks[column]: sum(
                    bank.occupied_blocks for bank in banks))

    # -- functional helpers ------------------------------------------------
    def _find(self, column: int, set_index: int, tag: int) -> Optional[Tuple[int, int]]:
        """(position, way) currently holding ``tag``, or None."""
        for position in range(self.positions):
            way = self.banks[column][position].probe(set_index, tag)
            if way is not None:
                return position, way
        return None

    def _bank_access(self, column: int, position: int, ready: int,
                     contend: bool = True) -> int:
        if not contend:
            return ready + self.config.bank_access_cycles
        start = max(ready, self._bank_busy_until[column][position])
        done = start + self.config.bank_access_cycles
        self._bank_busy_until[column][position] = done
        return done

    def uncontended_latency_of(self, column: int, position: int) -> int:
        return self._uncontended[column][position]

    # -- the access path ----------------------------------------------------
    def access(self, addr: int, time: int, write: bool = False) -> L2Outcome:
        self._install_seen = None  # timed accesses invalidate the fast path
        column, set_index, tag = self.addr_map.decompose(addr)
        outcome, banks_accessed = self._lookup(column, set_index, tag, time, write)
        self._record(outcome, banks_accessed)
        return outcome

    def _lookup(self, column: int, set_index: int, tag: int, time: int,
                write: bool) -> Tuple[L2Outcome, int]:
        holder = self._find(column, set_index, tag)
        pta = self.partial_tags[column]
        all_matches = pta.matches(set_index, tag)

        # Probe the closest two banks (in parallel with the partial tags).
        probe_done = {}
        for position in CLOSEST_BANKS:
            request = self.mesh.send(column, position, time, REQUEST_BITS, True)
            probe_done[position] = self._bank_access(column, position,
                                                     request.first_arrival)
        banks_accessed = len(CLOSEST_BANKS)

        if holder is not None and holder[0] in CLOSEST_BANKS:
            position = holder[0]
            outcome = self._hit(column, position, holder[1], set_index, tag,
                                time, probe_done[position], write,
                                close_hit=True)
            self.stats.add("close_hits")
            return outcome, banks_accessed

        # Closest-two miss.  Miss acks flow back while the partial tags
        # direct (or rule out) a wider search.
        ack_times = [
            self.mesh.send(column, p, probe_done[p], REQUEST_BITS, False).first_arrival
            for p in CLOSEST_BANKS
        ]
        if self.config.use_partial_tags:
            search_candidates = [p for p in all_matches if p not in CLOSEST_BANKS]
        else:
            # Ablation: no partial tags, so every remaining bank must be
            # searched and no miss can be declared early.
            all_matches = list(range(self.positions))
            search_candidates = [p for p in range(self.positions)
                                 if p not in CLOSEST_BANKS]

        if not search_candidates:
            if not all_matches:
                # Fast miss: no partial tag matched anywhere, so the miss
                # is known at the fixed partial-tag latency.
                miss_at = time + self.config.partial_tag_latency
                self.stats.add("fast_misses")
                predictable = True
            else:
                # A closest-bank partial tag matched but the full tag
                # didn't; the controller must wait for the probe acks.
                miss_at = max(ack_times)
                predictable = False
            return (self._miss(column, set_index, tag, time, miss_at,
                               predictable, write), banks_accessed)

        # Directed search of the partial-tag candidates.  If a closest
        # bank's partial tag matched, its probe might still hit and the
        # controller waits for the acks; otherwise the partial tags have
        # already ruled the closest banks out and the search launches at
        # the partial-tag latency.
        close_partial_match = any(p in CLOSEST_BANKS for p in all_matches)
        search_start = time + self.config.partial_tag_latency
        if close_partial_match:
            search_start = max([search_start] + ack_times)

        if self.config.search_mode == "incremental":
            return self._incremental_search(column, set_index, tag, time,
                                            search_start, search_candidates,
                                            banks_accessed, holder, write)

        banks_accessed += len(search_candidates)
        search_done = {}
        for position in search_candidates:
            request = self.mesh.send(column, position, search_start,
                                     REQUEST_BITS, True)
            search_done[position] = self._bank_access(column, position,
                                                      request.first_arrival)

        if holder is not None and holder[0] in search_done:
            position = holder[0]
            outcome = self._hit(column, position, holder[1], set_index, tag,
                                time, search_done[position], write,
                                close_hit=False)
            return outcome, banks_accessed

        # Every candidate was a partial-tag false positive.
        search_acks = [
            self.mesh.send(column, p, done, REQUEST_BITS, False).first_arrival
            for p, done in search_done.items()
        ]
        miss_at = max(search_acks)
        return (self._miss(column, set_index, tag, time, miss_at,
                           predictable=False, write=write), banks_accessed)

    def _incremental_search(self, column: int, set_index: int, tag: int,
                            time: int, search_start: int,
                            candidates, banks_accessed: int,
                            holder, write: bool) -> Tuple[L2Outcome, int]:
        """Probe candidates nearest-first, one at a time.

        Saves bank accesses whenever an early candidate hits, at the
        cost of serialized round trips when it does not — the
        latency/bandwidth trade-off of Kim et al.'s incremental search.
        """
        now = search_start
        for position in candidates:
            banks_accessed += 1
            request = self.mesh.send(column, position, now, REQUEST_BITS, True)
            done = self._bank_access(column, position, request.first_arrival)
            if holder is not None and holder[0] == position:
                outcome = self._hit(column, position, holder[1], set_index,
                                    tag, time, done, write, close_hit=False)
                return outcome, banks_accessed
            ack = self.mesh.send(column, position, done, REQUEST_BITS, False)
            now = ack.first_arrival
        return (self._miss(column, set_index, tag, time, now,
                           predictable=False, write=write), banks_accessed)

    # -- hit / miss handling ----------------------------------------------------
    def _hit(self, column: int, position: int, way: int, set_index: int,
             tag: int, time: int, bank_done: int, write: bool,
             close_hit: bool) -> L2Outcome:
        bank = self.banks[column][position]
        bank.lookup(set_index, tag, write=write)
        if write:
            # The store's data follows the probe to the located bank.
            data = self.mesh.send(column, position, bank_done, BLOCK_BITS, True)
            complete = data.last_arrival
            outcome = L2Outcome(complete, True, 0, predictable=True, write=True)
        else:
            response = self.mesh.send(column, position, bank_done, BLOCK_BITS, False)
            latency = response.first_arrival - time
            expected = self._uncontended[column][position]
            predictable = close_hit and latency == expected
            outcome = L2Outcome(response.first_arrival, True, latency, predictable)
        if position > 0:
            self._promote(column, position, way, set_index,
                          outcome.complete_time)
        return outcome

    def _promote(self, column: int, position: int, way: int, set_index: int,
                 time: int) -> None:
        """Swap the hit block ``promotion_distance`` banks closer."""
        target = max(0, position - self.config.promotion_distance)
        upper = self.banks[column][position]
        lower = self.banks[column][target]
        moving_tag, moving_dirty = upper.tag_at(set_index, way), upper.dirty_at(set_index, way)
        displaced = lower.replace_way(set_index, way, moving_tag, moving_dirty)
        upper.replace_way(set_index, way, displaced[0], displaced[1])
        pta = self.partial_tags[column]
        if moving_tag is not None:
            pta.update(target, set_index, way, moving_tag)
        if displaced[0] is not None:
            pta.update(position, set_index, way, displaced[0])
        else:
            pta.clear(position, set_index, way)
        # Two block transfers over every vertical link between the banks,
        # which briefly occupies both endpoint banks as well.
        transfer_time = time
        for hop in range(target + 1, position + 1):
            self.mesh.transfer_between(column, hop, transfer_time,
                                       BLOCK_BITS, upward=False)
            self.mesh.transfer_between(column, hop, transfer_time,
                                       BLOCK_BITS, upward=True)
        self._bank_access(column, position, time)
        self._bank_access(column, target, time)
        self.stats.add("promotions")

    def _miss(self, column: int, set_index: int, tag: int, time: int,
              miss_at: int, predictable: bool, write: bool) -> L2Outcome:
        latency = miss_at - time
        if write:
            # An L1 writeback that missed everywhere: insert at the tail
            # without a memory fetch (the block is the full 64 bytes).
            insert_at = self._insert_at_tail(column, set_index, tag, miss_at,
                                             dirty=True)
            return L2Outcome(insert_at, False, 0, predictable=True, write=True)
        mem_done = self.memory.read(miss_at)
        self._insert_at_tail(column, set_index, tag, mem_done, dirty=False)
        return L2Outcome(mem_done, False, latency, predictable)

    def _insert_at_tail(self, column: int, set_index: int, tag: int,
                        time: int, dirty: bool) -> int:
        """Insert per the configured insertion position (tail by default)."""
        if self.config.insertion_position == "tail":
            entry = self.positions - 1
        else:
            entry = 0
        transfer = self.mesh.send(column, entry, time,
                                  REQUEST_BITS + BLOCK_BITS, True, contend=False)
        accepted = self._bank_access(column, entry, transfer.last_arrival,
                                     contend=False)
        bank = self.banks[column][entry]
        result = bank.insert(set_index, tag, dirty=dirty)
        pta = self.partial_tags[column]
        pta.update(entry, set_index, result.way, tag)
        self.stats.add("insertions")
        if result.evicted_tag is not None and result.evicted_dirty:
            writeback = self.mesh.send(column, entry, accepted, BLOCK_BITS,
                                       False, contend=False)
            self.memory.write(writeback.last_arrival)
            self.stats.add("writebacks")
        return accepted

    #: pre-warm blocks arrive most-popular-first (see L2Design.install).
    install_order = "popular_first"

    def install(self, addr: int, dirty: bool = False) -> None:
        """Place a block in the shallowest empty bank of its set.

        Blocks are installed most-popular-first, so the popular ones
        claim the positions nearest the controller — the distribution
        generational promotion converges to after a long warm-up.
        """
        column, set_index, tag = self.addr_map.decompose(addr)
        pta = self.partial_tags[column]
        if self._install_seen is not None and self.config.associativity == 1:
            # Bulk pre-warm fast path: no timed access has run yet, so
            # set occupancy equals the tags installed here.
            seen = self._install_seen.setdefault((column, set_index), set())
            if tag in seen:
                return
            position = min(len(seen), self.positions - 1)
            bank = self.banks[column][position]
            if len(seen) >= self.positions:
                seen.discard(bank.tag_at(set_index, 0))
            bank.replace_way(set_index, 0, tag, dirty)
            pta.update(position, set_index, 0, tag)
            seen.add(tag)
            return
        if self._find(column, set_index, tag) is not None:
            return
        for position in range(self.positions):
            bank = self.banks[column][position]
            for way in range(bank.ways):
                if bank.tag_at(set_index, way) is None:
                    bank.replace_way(set_index, way, tag, dirty)
                    pta.update(position, set_index, way, tag)
                    return
        # Set completely full: silently replace the tail occupant.
        tail = self.positions - 1
        self.banks[column][tail].replace_way(set_index, 0, tag, dirty)
        pta.update(tail, set_index, 0, tag)

    # -- reporting -----------------------------------------------------------
    @property
    def promotes_per_insert(self) -> float:
        """Table 6, column 6: block promotions per insertion."""
        return self.stats.ratio("promotions", "insertions")

    @property
    def close_hit_fraction(self) -> float:
        """Table 6, column 5: fraction of reads hitting the closest banks."""
        return self.stats.ratio("close_hits", "requests")

    def link_utilization(self, elapsed_cycles: int) -> float:
        return self.mesh.utilization(elapsed_cycles)

    def _reset_stats_extra(self) -> None:
        self.mesh.reset_counters()

    def _attach_sanitizer_extra(self, sanitizer) -> None:
        from repro.sanitizer.core import SanitizerViolation

        self.mesh.sanitizer = sanitizer
        sanitizer.watch_banks(self.name, [
            (f"bankset{column:02d}.pos{position:02d}", bank)
            for column, bankset in enumerate(self.banks)
            for position, bank in enumerate(bankset)
        ])

        def check_partial_tags(cycle: int) -> None:
            # The central partial-tag arrays must mirror the banks
            # exactly — the paper's migration-coherence requirement.
            for column in range(self.banksets):
                pta = self.partial_tags[column]
                for position in range(self.positions):
                    bank = self.banks[column][position]
                    for set_index, tags, _dirty in bank.iter_sets():
                        for way, tag in enumerate(tags):
                            expected = (None if tag is None
                                        else partial_tag(tag))
                            got = pta.stored(position, set_index, way)
                            if got != expected:
                                raise SanitizerViolation(
                                    "dnuca.partial_tag_incoherent",
                                    f"{self.name}.bankset{column:02d}"
                                    f".pos{position:02d}", cycle,
                                    {"set": set_index, "way": way,
                                     "bank_partial_tag": expected,
                                     "array_partial_tag": got})

        sanitizer.register_invariant(f"{self.name}.partial_tags",
                                     check_partial_tags)

    def network_energy_j(self) -> float:
        wire = self.tech.conventional_energy_per_bit(self.mesh.hop_length_m)
        per_bit_hop = wire + self.tech.switch_energy_per_bit
        return self.mesh.bit_hops * per_bit_hop

"""SNUCA2: the statically partitioned NUCA baseline (Kim et al.).

32 x 512 KB banks on an 8 x 4 switched mesh with conventional repeated
wires.  Blocks map to banks by address interleaving — no migration, no
search.  Uncontended latency spans 9-33 cycles depending on which bank
an address happens to live in (Table 2 reports 9-32 for the authors'
floorplan), which is the non-uniformity both DNUCA and TLC attack.

SNUCA2 is the Figure 5 / Figure 8 normalization baseline: every other
design's execution time is reported relative to it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.address import AddressMap
from repro.cache.bank import CacheBank
from repro.core.base import L2Design, L2Outcome
from repro.core.config import DesignConfig, SNUCA2
from repro.interconnect.mesh import MeshNetwork
from repro.interconnect.message import BLOCK_BITS, REQUEST_BITS
from repro.sim.memory import MainMemory
from repro.tech import Technology, TECH_45NM


class StaticNUCA(L2Design):
    """The SNUCA2 design."""

    def __init__(self, config: DesignConfig = SNUCA2,
                 memory: Optional[MainMemory] = None,
                 tech: Technology = TECH_45NM) -> None:
        super().__init__(memory=memory, tech=tech)
        if config.kind != "snuca":
            raise ValueError(f"{config.name} is not an SNUCA config")
        self.config = config
        self.name = config.name
        sets_per_bank = config.bank_bytes // (64 * config.associativity)
        self.addr_map = AddressMap(block_bytes=64, num_sets=sets_per_bank,
                                   banks=config.banks)
        self.banks: List[CacheBank] = [
            CacheBank(sets_per_bank, config.associativity, config.replacement)
            for _ in range(config.banks)
        ]
        self.mesh = MeshNetwork(config.mesh_columns, config.mesh_rows,
                                config.mesh_flit_bits, config.mesh_hop_latency,
                                config.mesh_hop_length_m)
        self._bank_busy_until = [0] * config.banks
        # Per-bank geometry and uncontended latency are pure functions of
        # the config; tabulate them once instead of re-deriving per access.
        self._grids = [self._grid(bank) for bank in range(config.banks)]
        self._uncontended = [
            config.controller_overhead
            + self.mesh.uncontended_latency(column, position,
                                            config.bank_access_cycles)
            for column, position in self._grids
        ]
        self.mesh.register_metrics(self.metrics.scope("mesh"))
        for index, bank in enumerate(self.banks):
            bank.register_metrics(self.metrics.scope(f"l2.bank{index:02d}"))

    # -- geometry ------------------------------------------------------------
    def _grid(self, bank_idx: int):
        return bank_idx % self.config.mesh_columns, bank_idx // self.config.mesh_columns

    def uncontended_latency(self, addr: int) -> int:
        return self._uncontended[self.addr_map.bank_index(addr)]

    def _bank_access(self, bank: int, ready: int, contend: bool = True) -> int:
        if not contend:
            return ready + self.config.bank_access_cycles
        start = max(ready, self._bank_busy_until[bank])
        done = start + self.config.bank_access_cycles
        self._bank_busy_until[bank] = done
        return done

    # -- the access path --------------------------------------------------------
    def access(self, addr: int, time: int, write: bool = False) -> L2Outcome:
        bank_idx, set_index, tag = self.addr_map.decompose(addr)
        column, position = self._grids[bank_idx]
        bank = self.banks[bank_idx]
        t_inject = time + self.config.controller_overhead

        if write:
            outcome = self._write(bank, bank_idx, column, position,
                                  set_index, tag, t_inject)
        else:
            outcome = self._read(bank, bank_idx, column, position,
                                 set_index, tag, time, t_inject)
        self._record(outcome, banks_accessed=1)
        return outcome

    def _read(self, bank: CacheBank, bank_idx: int, column: int, position: int,
              set_index: int, tag: int, time: int, t_inject: int) -> L2Outcome:
        request = self.mesh.send(column, position, t_inject, REQUEST_BITS, True)
        done = self._bank_access(bank_idx, request.first_arrival)
        expected = self._uncontended[bank_idx]
        if bank.lookup(set_index, tag).hit:
            response = self.mesh.send(column, position, done, BLOCK_BITS, False)
            latency = response.first_arrival - time
            return L2Outcome(response.first_arrival, True, latency,
                             predictable=(latency == expected))
        ack = self.mesh.send(column, position, done, REQUEST_BITS, False)
        latency = ack.first_arrival - time
        mem_done = self.memory.read(ack.first_arrival)
        self._refill(bank, bank_idx, column, position, set_index, tag, mem_done)
        return L2Outcome(mem_done, False, latency,
                         predictable=(latency == expected))

    def uncontended_latency_of(self, column: int, position: int) -> int:
        return (self.config.controller_overhead
                + self.mesh.uncontended_latency(column, position,
                                                self.config.bank_access_cycles))

    def _write(self, bank: CacheBank, bank_idx: int, column: int, position: int,
               set_index: int, tag: int, t_inject: int) -> L2Outcome:
        request = self.mesh.send(column, position, t_inject,
                                 REQUEST_BITS + BLOCK_BITS, True)
        accepted = self._bank_access(bank_idx, request.last_arrival)
        hit = bank.lookup(set_index, tag, write=True).hit
        if not hit:
            self._insert(bank, bank_idx, column, position, set_index, tag,
                         accepted, dirty=True)
        return L2Outcome(accepted, hit, 0, predictable=True, write=True)

    def _refill(self, bank: CacheBank, bank_idx: int, column: int, position: int,
                set_index: int, tag: int, time: int) -> None:
        refill = self.mesh.send(column, position, time,
                                REQUEST_BITS + BLOCK_BITS, True, contend=False)
        self._bank_access(bank_idx, refill.last_arrival, contend=False)
        self._insert(bank, bank_idx, column, position, set_index, tag,
                     refill.last_arrival, dirty=False)

    def _insert(self, bank: CacheBank, bank_idx: int, column: int, position: int,
                set_index: int, tag: int, time: int, dirty: bool) -> None:
        result = bank.insert(set_index, tag, dirty=dirty)
        if result.evicted_tag is not None and result.evicted_dirty:
            writeback = self.mesh.send(column, position, time, BLOCK_BITS,
                                       False, contend=False)
            self.memory.write(writeback.last_arrival)
            self.stats.add("writebacks")

    def install(self, addr: int, dirty: bool = False) -> None:
        bank_idx, set_index, tag = self.addr_map.decompose(addr)
        # Insert-then-touch in one bank call (see CacheBank.install).
        self.banks[bank_idx].install(set_index, tag, dirty=dirty)

    # -- reporting -----------------------------------------------------------
    def link_utilization(self, elapsed_cycles: int) -> float:
        return self.mesh.utilization(elapsed_cycles)

    def _reset_stats_extra(self) -> None:
        self.mesh.reset_counters()

    def _attach_sanitizer_extra(self, sanitizer) -> None:
        self.mesh.sanitizer = sanitizer
        sanitizer.watch_banks(self.name, [
            (f"bank{index:02d}", bank)
            for index, bank in enumerate(self.banks)
        ])

    def network_energy_j(self) -> float:
        wire = self.tech.conventional_energy_per_bit(self.mesh.hop_length_m)
        per_bit_hop = wire + self.tech.switch_energy_per_bit
        return self.mesh.bit_hops * per_bit_hop

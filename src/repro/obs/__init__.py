"""repro.obs — the unified observability layer.

Three pieces (see docs/OBSERVABILITY.md for the formats):

* :class:`~repro.obs.registry.MetricsRegistry` — dotted-name registry
  owning the :mod:`repro.sim.stats` primitives every design mutates;
  every :class:`~repro.core.base.L2Design` carries one as ``.metrics``.
* :class:`~repro.obs.trace.EventTracer` — opt-in event capture (ring
  buffer or full, per-type filtering, JSONL export) hooked into the
  engine, the processor models, and the full-system pipeline.
* :class:`~repro.obs.manifest.RunManifest` — provenance + metrics
  snapshot of a run, emitted by ``run_system`` / ``run_full_system``
  via a :class:`~repro.obs.manifest.RunObserver` and rendered or
  diffed by ``python -m repro stats``.
"""

from repro.obs.manifest import (
    RunManifest,
    RunObserver,
    build_manifest,
    code_version_stamp,
    config_digest,
    diff_manifests,
    flatten,
    load_manifest,
    manifest_from_dict,
    manifest_to_dict,
    save_manifest,
)
from repro.obs.registry import MetricsRegistry, ScopedRegistry
from repro.obs.trace import EventTracer, TraceEvent, read_jsonl

__all__ = [
    "EventTracer",
    "MetricsRegistry",
    "RunManifest",
    "RunObserver",
    "ScopedRegistry",
    "TraceEvent",
    "build_manifest",
    "code_version_stamp",
    "config_digest",
    "diff_manifests",
    "flatten",
    "load_manifest",
    "manifest_from_dict",
    "manifest_to_dict",
    "read_jsonl",
    "save_manifest",
]

"""Run manifests: machine-readable provenance for every measured run.

A :class:`RunManifest` records *what* was measured (the full metrics
snapshot and headline result), *under which configuration* (the
canonical run parameters plus their SHA-256 digest), and *by which
code* (a digest of every source file in the ``repro`` package).  Two
manifests therefore answer the questions a reproduction constantly
asks: "did anything change?", and if so, "was it the code, the
configuration, or the measurement?" — see ``repro stats`` and
:func:`diff_manifests`.

Manifests are emitted by :func:`repro.sim.system.run_system` /
:func:`repro.sim.full_system.run_full_system` when handed a
:class:`RunObserver`, and by the ``repro report`` command for whole
grids.  The JSON format (schema version {SCHEMA_VERSION}) is documented
in docs/OBSERVABILITY.md; loading validates fields strictly so a
truncated or hand-edited manifest fails at the door rather than deep
inside an analysis.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Bump when the manifest JSON layout changes incompatibly.
SCHEMA_VERSION = 1

_CODE_VERSION_STAMP: Optional[str] = None


def code_version_stamp() -> str:
    """SHA-256 digest of every ``.py`` source file in the ``repro`` package.

    Stamped into every manifest (and every result-cache key — see
    :mod:`repro.analysis.runner`): any edit to the simulator produces a
    different stamp, so results can always be traced to the exact code
    that measured them.  Computed once per process.
    """
    global _CODE_VERSION_STAMP
    if _CODE_VERSION_STAMP is None:
        import repro

        package_root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for source in sorted(package_root.rglob("*.py")):
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(source.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION_STAMP = digest.hexdigest()
    return _CODE_VERSION_STAMP


def config_digest(config: Dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of a configuration dict."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class RunManifest:
    """Provenance + measurements of one run (or one grid of runs)."""

    #: manifest layout version (:data:`SCHEMA_VERSION`).
    schema: int
    #: "system", "full_system", or "report".
    kind: str
    #: design / benchmark of a single run; None for grid manifests.
    design: Optional[str]
    benchmark: Optional[str]
    seed: Optional[int]
    #: every parameter that determined the run, JSON-ready.
    config: Dict[str, Any]
    #: SHA-256 over the canonical encoding of ``config``.
    config_digest: str
    #: :func:`code_version_stamp` of the sources that ran.
    code_version: str
    #: wall-clock seconds the run took (not simulated cycles).
    wall_time_s: float
    #: the :meth:`~repro.obs.registry.MetricsRegistry.snapshot` document.
    metrics: Dict[str, Any]
    #: the headline result (e.g. a SystemResult as a dict), if any.
    result: Optional[Dict[str, Any]] = None
    #: :meth:`~repro.obs.trace.EventTracer.summary`, when tracing was on.
    trace: Optional[Dict[str, Any]] = None
    #: :meth:`~repro.analysis.resilience.RunnerTelemetry.as_dict` —
    #: attempts / retries / timeouts / worker deaths / quarantined
    #: cache entries / checkpoint replays — when the run went through
    #: the fault-tolerant executor.  Execution provenance like wall
    #: time: excluded from :func:`diff_manifests` (a retried run and a
    #: clean run measure the same thing).
    resilience: Optional[Dict[str, Any]] = None
    #: :meth:`~repro.sanitizer.Sanitizer.summary` (clean runs) or its
    #: full snapshot (crash bundles), when the sanitizer was attached.
    #: Like ``resilience``, execution provenance: sanitized and plain
    #: runs of the same cell measure the same thing, so this is
    #: excluded from :func:`diff_manifests`.
    sanitizer: Optional[Dict[str, Any]] = None
    #: :meth:`~repro.analysis.derived.DerivedLane.as_dict` — the
    #: derived-artifact cache lane's hit/miss/store/quarantine counts
    #: and ``ANALYSIS_VERSION`` — when a report or grid command routed
    #: its analysis through the lane.  Execution provenance (the lane
    #: is optimization-only; warm and cold runs measure the same
    #: thing), so excluded from :func:`diff_manifests`.
    derived: Optional[Dict[str, Any]] = None
    #: :meth:`~repro.service.jobs.JobStore.lifecycle_as_dict` — the
    #: service durability layer's ``service.lifecycle.*`` counts
    #: (journal replays, admission rejects, evictions, drains) for
    #: ``kind="service.job"`` manifests.  Execution provenance like
    #: ``resilience``: a resumed job and an uninterrupted one measure
    #: the same thing, so excluded from :func:`diff_manifests`.
    lifecycle: Optional[Dict[str, Any]] = None


def build_manifest(kind: str, config: Dict[str, Any],
                   metrics: Dict[str, Any],
                   wall_time_s: float,
                   design: Optional[str] = None,
                   benchmark: Optional[str] = None,
                   seed: Optional[int] = None,
                   result: Optional[Dict[str, Any]] = None,
                   trace: Optional[Dict[str, Any]] = None,
                   resilience: Optional[Dict[str, Any]] = None,
                   sanitizer: Optional[Dict[str, Any]] = None,
                   derived: Optional[Dict[str, Any]] = None,
                   lifecycle: Optional[Dict[str, Any]] = None) -> RunManifest:
    """Assemble a manifest, stamping the config digest and code version."""
    return RunManifest(
        schema=SCHEMA_VERSION,
        kind=kind,
        design=design,
        benchmark=benchmark,
        seed=seed,
        config=config,
        config_digest=config_digest(config),
        code_version=code_version_stamp(),
        wall_time_s=wall_time_s,
        metrics=metrics,
        result=result,
        trace=trace,
        resilience=resilience,
        sanitizer=sanitizer,
        derived=derived,
        lifecycle=lifecycle,
    )


class RunObserver:
    """Opt-in observability for ``run_system`` / ``run_full_system``.

    Pass one to a run entry point to receive its manifest (and feed it
    an :class:`~repro.obs.trace.EventTracer` to capture events)::

        obs = RunObserver(tracer=EventTracer())
        result = run_system("TLC", "mcf", observer=obs)
        save_manifest("m.json", obs.manifest)
        obs.tracer.write_jsonl("t.jsonl")

    The observer never influences the simulation — results with and
    without one attached are identical.
    """

    def __init__(self, tracer=None) -> None:
        self.tracer = tracer
        self.manifest: Optional[RunManifest] = None


# -- persistence -----------------------------------------------------------

def manifest_to_dict(manifest: RunManifest) -> dict:
    """A JSON-ready dictionary of one manifest."""
    return dataclasses.asdict(manifest)


def manifest_from_dict(payload: dict) -> RunManifest:
    """Inverse of :func:`manifest_to_dict`, with strict field validation."""
    fields = {f.name for f in dataclasses.fields(RunManifest)}
    unknown = set(payload) - fields
    if unknown:
        raise ValueError(f"unknown manifest fields: {sorted(unknown)}")
    missing = {f.name for f in dataclasses.fields(RunManifest)
               if f.default is dataclasses.MISSING} - set(payload)
    if missing:
        raise ValueError(f"missing manifest fields: {sorted(missing)}")
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(f"unsupported manifest schema {schema!r} "
                         f"(expected {SCHEMA_VERSION})")
    return RunManifest(**payload)


def save_manifest(path: str, manifest: RunManifest) -> None:
    """Write ``manifest`` to ``path`` as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest_to_dict(manifest), handle, indent=1)
        handle.write("\n")


def load_manifest(path: str) -> RunManifest:
    """Read a manifest written by :func:`save_manifest`."""
    with open(path, "r", encoding="utf-8") as handle:
        return manifest_from_dict(json.load(handle))


# -- diffing ---------------------------------------------------------------

def flatten(document: Dict[str, Any], prefix: str = "",
            skip_bins: bool = True) -> Dict[str, Any]:
    """Flatten nested dictionaries to dotted scalar keys.

    ``skip_bins=True`` drops histogram ``bins`` sub-documents (their
    count/mean/min/max summaries remain), which keeps diffs readable;
    pass ``False`` for a bin-exact comparison.
    """
    flat: Dict[str, Any] = {}
    for key, value in document.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            if skip_bins and key == "bins":
                continue
            flat.update(flatten(value, prefix=f"{name}.", skip_bins=skip_bins))
        else:
            flat[name] = value
    return flat


def diff_manifests(a: RunManifest, b: RunManifest,
                   skip_bins: bool = True) -> List[Tuple[str, Any, Any]]:
    """Differences between two manifests as ``(name, a_value, b_value)``.

    Compares provenance (kind / design / benchmark / seed / config
    digest / code version), then every flattened metric and result
    field.  Wall time is reported only when either run took measurably
    longer (it is never byte-stable).  An empty list means the runs
    measured the same thing, the same way, with the same code.
    """
    rows: List[Tuple[str, Any, Any]] = []
    for field in ("kind", "design", "benchmark", "seed",
                  "config_digest", "code_version"):
        va, vb = getattr(a, field), getattr(b, field)
        if va != vb:
            rows.append((field, va, vb))
    for section, da, db in (("config", a.config, b.config),
                            ("metrics", a.metrics, b.metrics),
                            ("result", a.result or {}, b.result or {})):
        fa = flatten(da, prefix=f"{section}.", skip_bins=skip_bins)
        fb = flatten(db, prefix=f"{section}.", skip_bins=skip_bins)
        for name in sorted(set(fa) | set(fb)):
            va, vb = fa.get(name), fb.get(name)
            if va != vb:
                rows.append((name, va, vb))
    return rows

"""A hierarchical metrics registry over the stats primitives.

Every component that measures something — a design's request counter, a
link bundle's utilization meter, a bank's occupancy — registers it here
under a dotted, lowercase name (``l2.bank03.occupancy``,
``link.pair02.req.bits_sent``, ``mesh.util``).  The registry owns no
semantics of its own: it holds the *same* :class:`~repro.sim.stats`
objects the timing models mutate, so registration costs nothing on the
access path and a snapshot always reflects the live values.

Metric kinds
------------

* :class:`~repro.sim.stats.Counter` — registered under a prefix; its
  named counts flatten into the snapshot as ``<prefix>.<count>``
  (a Counter named ``l2`` with a ``hits`` count appears as ``l2.hits``).
* :class:`~repro.sim.stats.Histogram` — snapshots to a dictionary of
  ``{count, mean, min, max, bins}``.
* :class:`~repro.sim.stats.UtilizationMeter` — snapshots to
  ``{resources, busy_cycles, saturated}`` (utilization itself needs the
  elapsed-cycle count, which the run manifest's result section carries).
* **gauges** — zero-argument callables evaluated at snapshot time, for
  values that live as plain attributes (bank occupancy, bits sent).

Names collide loudly: registering two metrics under one name raises,
because a silent overwrite would split measurement between two objects.
:meth:`MetricsRegistry.snapshot` is sorted by name, so two snapshots of
identical state are identical documents — the property the run-manifest
round-trip and diff tooling rely on.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, Iterator, Tuple, TypeVar, Union

from repro.sim.stats import Counter, Histogram, UtilizationMeter

Metric = Union[Counter, Histogram, UtilizationMeter, Callable[[], Any]]
M = TypeVar("M", bound=Metric)

#: dotted lowercase path: segments of [a-z0-9_]+ joined by single dots.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


def valid_name(name: str) -> bool:
    """True when ``name`` follows the dotted lowercase naming scheme."""
    return bool(_NAME_RE.match(name))


class MetricsRegistry:
    """A flat namespace of dotted metric names -> live metric objects."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- registration ------------------------------------------------------
    def register(self, name: str, metric: M) -> M:
        """Register ``metric`` under ``name``; returns the metric.

        Raises :class:`ValueError` on a malformed name or a collision —
        one name must mean one measurement.
        """
        if not valid_name(name):
            raise ValueError(
                f"invalid metric name {name!r}: use dotted lowercase "
                "segments of letters, digits, and underscores")
        if name in self._metrics:
            raise ValueError(f"metric name collision: {name!r} is already "
                             f"registered ({type(self._metrics[name]).__name__})")
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        """Create and register a :class:`Counter` under ``name``."""
        return self.register(name, Counter())

    def histogram(self, name: str) -> Histogram:
        """Create and register a :class:`Histogram` under ``name``."""
        return self.register(name, Histogram())

    def meter(self, name: str, resources: int) -> UtilizationMeter:
        """Create and register a :class:`UtilizationMeter` under ``name``."""
        return self.register(name, UtilizationMeter(resources))

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a zero-argument callable evaluated at snapshot time."""
        if not callable(fn):
            raise TypeError("gauge requires a zero-argument callable")
        self.register(name, fn)

    def scope(self, prefix: str) -> "ScopedRegistry":
        """A view that prefixes every registered name with ``prefix.``."""
        if not valid_name(prefix):
            raise ValueError(f"invalid scope prefix {prefix!r}")
        return ScopedRegistry(self, prefix)

    # -- queries -----------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Tuple[str, Metric]]:
        return iter(sorted(self._metrics.items()))

    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._metrics))

    # -- lifecycle ---------------------------------------------------------
    def reset(self) -> None:
        """Clear every owned metric in place (gauges are left alone —
        they read live component state the components themselves reset)."""
        for metric in self._metrics.values():
            if isinstance(metric, (Counter, Histogram)):
                metric.clear()
            elif isinstance(metric, UtilizationMeter):
                metric.reset()

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A sorted, JSON-ready document of every metric's current value.

        Encoding (documented in docs/OBSERVABILITY.md):

        * Counter ``l2`` with counts ``{hits: 5}`` -> ``"l2.hits": 5``
          (counts sorted within the counter; an empty counter
          contributes nothing).
        * Histogram -> ``{"count", "mean", "min", "max", "bins"}`` with
          bins keyed by the stringified value (JSON keys are strings);
          min/max are ``None`` when empty.
        * UtilizationMeter -> ``{"resources", "busy_cycles", "saturated"}``.
        * gauge -> its return value, verbatim.
        """
        out: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                for key, value in metric:  # already sorted
                    out[f"{name}.{key}"] = value
            elif isinstance(metric, Histogram):
                empty = metric.count == 0
                out[name] = {
                    "count": metric.count,
                    "mean": metric.mean,
                    "min": None if empty else metric.min,
                    "max": None if empty else metric.max,
                    "bins": {str(v): n for v, n in metric.items()},
                }
            elif isinstance(metric, UtilizationMeter):
                out[name] = {
                    "resources": metric.resources,
                    "busy_cycles": metric.busy_cycles,
                    "saturated": metric.saturated,
                }
            else:  # gauge
                out[name] = metric()
        return out


class ScopedRegistry:
    """A prefixing view onto a :class:`MetricsRegistry`.

    Components register against a scope (``registry.scope("link")``)
    without knowing where in the hierarchy they were mounted; scopes
    nest (``scope.scope("pair00")``).
    """

    def __init__(self, base: MetricsRegistry, prefix: str) -> None:
        self._base = base
        self._prefix = prefix

    def _qualify(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def register(self, name: str, metric: M) -> M:
        return self._base.register(self._qualify(name), metric)

    def counter(self, name: str) -> Counter:
        return self._base.counter(self._qualify(name))

    def histogram(self, name: str) -> Histogram:
        return self._base.histogram(self._qualify(name))

    def meter(self, name: str, resources: int) -> UtilizationMeter:
        return self._base.meter(self._qualify(name), resources)

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        self._base.gauge(self._qualify(name), fn)

    def scope(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self._base, self._qualify(prefix))

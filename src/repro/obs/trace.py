"""Low-overhead event tracing for the timing models.

Hook sites hold an ``Optional[EventTracer]`` and guard every emission
with ``if tracer is not None`` — tracing *off* therefore costs exactly
one branch per hook, and never allocates.  When a tracer is attached,
each hook records a :class:`TraceEvent` carrying the simulation time,
a dotted event type (``l2.access``, ``engine.dispatch``), and free-form
scalar fields.

Capture modes
-------------

* **full** (``capacity=None``) — every event is kept; right for short
  diagnostic runs.
* **ring buffer** (``capacity=N``) — the newest N events are kept and
  :attr:`EventTracer.dropped` counts what fell off the front; right
  for long runs where only the tail matters.

Per-type filtering (``types={"l2.access"}``) drops non-matching events
at the emission site before they are stored, so a narrow trace of a
long run stays cheap.

Export is JSONL — one ``{"time": ..., "type": ..., <fields>}`` object
per line (the schema is documented in docs/OBSERVABILITY.md) — which
streams, greps, and diffs well.  Tracing is strictly observational:
no simulation state ever depends on whether a tracer is attached,
which `tests/test_obs.py` asserts end to end.
"""

from __future__ import annotations

import dataclasses
import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: keys every JSONL trace line carries; everything else is event fields.
RESERVED_KEYS = ("time", "type")


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One traced event: when, what kind, and its scalar payload."""

    time: int
    type: str
    fields: Tuple[Tuple[str, Any], ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        """The JSONL encoding of this event."""
        doc: Dict[str, Any] = {"time": self.time, "type": self.type}
        doc.update(self.fields)
        return doc


class EventTracer:
    """Collects :class:`TraceEvent` objects from instrumented hook sites."""

    def __init__(self, capacity: Optional[int] = None,
                 types: Optional[Iterable[str]] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for full capture)")
        self.capacity = capacity
        self.types = None if types is None else frozenset(types)
        self._events: deque = deque(maxlen=capacity)
        #: events aged out of the ring buffer (always 0 for full capture).
        self.dropped = 0
        #: events rejected by the type filter.
        self.filtered = 0

    def wants(self, event_type: str) -> bool:
        """Whether an event of ``event_type`` would be recorded."""
        return self.types is None or event_type in self.types

    def emit(self, event_type: str, time: int, **fields: Any) -> None:
        """Record one event (subject to the type filter / ring capacity).

        ``fields`` must be JSON-serializable scalars; they are stored
        as-is and only encoded at export time.
        """
        if self.types is not None and event_type not in self.types:
            self.filtered += 1
            return
        if self.capacity is not None and len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(
            TraceEvent(time=time, type=event_type,
                       fields=tuple(sorted(fields.items()))))

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def counts_by_type(self) -> Dict[str, int]:
        """Retained event counts per type, sorted by type."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.type] = counts.get(event.type, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> Dict[str, Any]:
        """The manifest-embeddable description of this trace."""
        return {
            "events": len(self._events),
            "dropped": self.dropped,
            "filtered": self.filtered,
            "capacity": self.capacity,
            "types": None if self.types is None else sorted(self.types),
            "by_type": self.counts_by_type(),
        }

    # -- persistence -------------------------------------------------------
    def write_jsonl(self, path: str) -> int:
        """Write the retained events to ``path``, one JSON object per
        line, oldest first.  Returns the number of lines written."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(json.dumps(event.as_dict(), sort_keys=False))
                handle.write("\n")
        return len(self._events)


def read_jsonl(path: str) -> List[TraceEvent]:
    """Read a JSONL trace written by :meth:`EventTracer.write_jsonl`."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
                time, event_type = doc["time"], doc["type"]
            except (ValueError, KeyError) as error:
                raise ValueError(f"{path}:{lineno}: not a trace event "
                                 f"({error})") from None
            fields = tuple(sorted(
                (k, v) for k, v in doc.items() if k not in RESERVED_KEYS))
            events.append(TraceEvent(time=time, type=event_type, fields=fields))
    return events

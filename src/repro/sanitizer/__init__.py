"""Runtime sanitizer for the simulator core: invariant checks, a
livelock/retirement watchdog, seeded fault injection, crash bundles,
and deterministic replay.  See :mod:`repro.sanitizer.core` for the
invariant catalog and ``docs/ROBUSTNESS.md`` for the workflow.
"""

from repro.sanitizer.bundle import (
    BUNDLE_FORMAT_VERSION,
    CrashBundle,
    load_bundle,
    write_crash_bundle,
)
from repro.sanitizer.core import (
    FAULT_KINDS,
    Sanitizer,
    SanitizerConfig,
    SanitizerViolation,
    SimFault,
)
from repro.sanitizer.replay import (
    ReplayResult,
    minimize_bundle,
    replay_bundle,
)

__all__ = [
    "BUNDLE_FORMAT_VERSION",
    "CrashBundle",
    "FAULT_KINDS",
    "ReplayResult",
    "Sanitizer",
    "SanitizerConfig",
    "SanitizerViolation",
    "SimFault",
    "load_bundle",
    "minimize_bundle",
    "replay_bundle",
    "write_crash_bundle",
]

"""Crash bundles: everything needed to re-run a failure deterministically.

When a sanitized ``run_system`` dies — on a :class:`SanitizerViolation`
or any other exception — the system writes one directory under the
requested crash root::

    <crash_dir>/<design>-<benchmark>-s<seed>-<nnn>/
        bundle.json     run parameters, error, sanitizer state
        trace.txt       the reference-stream prefix, standard trace format
        events.jsonl    recent event-trace ring buffer (when captured)
        manifest.json   a RunManifest (kind="crash"), when the design built

Bundle directories are named deterministically (first free index, no
timestamps) so CI scripts can glob for them.  ``bundle.json`` stores
only JSON-serializable run parameters; anything else (an exotic
``design_overrides`` value, say) is recorded by ``repr`` and flagged in
``unreplayable`` so :func:`~repro.sanitizer.replay.replay_bundle` can
refuse loudly instead of replaying a different experiment.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, List, Optional

from repro.sanitizer.core import SanitizerViolation
from repro.workloads.trace import Reference, load_trace, save_trace

BUNDLE_FORMAT_VERSION = 1

#: references kept beyond the last one the processor completed, so the
#: prefix always covers the access that tripped the check.
TRACE_PREFIX_MARGIN = 16


@dataclasses.dataclass(frozen=True)
class CrashBundle:
    """A loaded crash bundle, ready to replay."""

    path: str
    design: str
    benchmark: str
    seed: int
    warmup_refs: int
    processor_config: Dict[str, int]
    tech: str
    memory_latency_cycles: Optional[int]
    design_overrides: Dict[str, Any]
    error: Dict[str, Any]
    sanitizer: Dict[str, Any]
    trace: List[Reference]
    unreplayable: List[str]
    minimized_from: Optional[str] = None


def _error_info(error: BaseException) -> Dict[str, Any]:
    if isinstance(error, SanitizerViolation):
        return {"type": "SanitizerViolation", **error.as_dict()}
    return {"type": type(error).__name__, "message": str(error)}


def _split_serializable(overrides: Dict[str, Any]):
    """Partition overrides into JSON-safe values and repr-only leftovers."""
    clean: Dict[str, Any] = {}
    unreplayable: List[str] = []
    for key, value in sorted(overrides.items()):
        if isinstance(value, tuple):
            value = list(value)
        try:
            json.dumps(value)
        except TypeError:
            clean[key] = repr(value)
            unreplayable.append(key)
        else:
            clean[key] = value
    return clean, unreplayable


def _claim_bundle_dir(crash_dir: str, design: str, benchmark: str,
                      seed: int) -> str:
    os.makedirs(crash_dir, exist_ok=True)
    for index in range(1000):
        path = os.path.join(
            crash_dir, f"{design}-{benchmark}-s{seed}-{index:03d}")
        try:
            os.mkdir(path)
        except FileExistsError:
            continue
        return path
    raise RuntimeError(f"crash_dir {crash_dir!r} holds 1000 bundles already")


def write_crash_bundle(crash_dir: str, *, design: str, benchmark: str,
                       seed: int, warmup_refs: int,
                       trace, error: BaseException,
                       processor_config: Dict[str, int],
                       tech: str,
                       memory_latency_cycles: Optional[int],
                       design_overrides: Optional[Dict[str, Any]] = None,
                       sanitizer=None,
                       tracer=None,
                       metrics: Optional[Dict[str, Any]] = None,
                       wall_time_s: float = 0.0,
                       minimized_from: Optional[str] = None) -> str:
    """Write one crash bundle; returns the bundle directory path."""
    path = _claim_bundle_dir(crash_dir, design, benchmark, seed)
    snapshot = sanitizer.snapshot() if sanitizer is not None else {}

    refs_done = snapshot.get("refs", 0)
    trace = list(trace)
    if sanitizer is not None and refs_done:
        prefix = min(len(trace), refs_done + TRACE_PREFIX_MARGIN)
    else:
        prefix = len(trace)
    save_trace(os.path.join(path, "trace.txt"), trace[:prefix])

    overrides, unreplayable = _split_serializable(design_overrides or {})
    document = {
        "format_version": BUNDLE_FORMAT_VERSION,
        "design": design,
        "benchmark": benchmark,
        "seed": seed,
        "warmup_refs": min(warmup_refs, prefix),
        "n_refs": prefix,
        "processor_config": dict(processor_config),
        "tech": tech,
        "memory_latency_cycles": memory_latency_cycles,
        "design_overrides": overrides,
        "unreplayable": unreplayable,
        "error": _error_info(error),
        "sanitizer": snapshot,
        "minimized_from": minimized_from,
    }
    with open(os.path.join(path, "bundle.json"), "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if tracer is not None:
        try:
            tracer.write_jsonl(os.path.join(path, "events.jsonl"))
        except Exception:
            pass  # the ring buffer is best-effort context, never load-bearing

    if metrics is not None:
        from repro.obs.manifest import build_manifest, save_manifest

        manifest = build_manifest(
            kind="crash", design=design, benchmark=benchmark, seed=seed,
            config={"n_refs": prefix, "warmup_refs": document["warmup_refs"],
                    "tech": tech, "design_overrides": overrides},
            metrics=metrics, wall_time_s=wall_time_s,
            sanitizer=snapshot or None)
        save_manifest(os.path.join(path, "manifest.json"), manifest)

    return path


def load_bundle(bundle_dir: str) -> CrashBundle:
    """Load a crash bundle directory written by :func:`write_crash_bundle`."""
    bundle_json = os.path.join(bundle_dir, "bundle.json")
    if not os.path.isfile(bundle_json):
        raise FileNotFoundError(f"{bundle_dir!r} is not a crash bundle "
                                "(no bundle.json)")
    with open(bundle_json, encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("format_version")
    if version != BUNDLE_FORMAT_VERSION:
        raise ValueError(f"unsupported bundle format {version!r} "
                         f"(this build reads {BUNDLE_FORMAT_VERSION})")
    trace = load_trace(os.path.join(bundle_dir, "trace.txt"))
    return CrashBundle(
        path=os.path.abspath(bundle_dir),
        design=document["design"],
        benchmark=document["benchmark"],
        seed=document["seed"],
        warmup_refs=document["warmup_refs"],
        processor_config=document["processor_config"],
        tech=document["tech"],
        memory_latency_cycles=document.get("memory_latency_cycles"),
        design_overrides=document.get("design_overrides", {}),
        error=document["error"],
        sanitizer=document.get("sanitizer", {}),
        trace=trace,
        unreplayable=document.get("unreplayable", []),
        minimized_from=document.get("minimized_from"),
    )

"""Runtime invariant checking for the simulator core.

The sanitizer is an opt-in observation layer threaded through the event
engine, the interconnect, the cache banks, and the processor model.  It
never changes simulated behaviour — with a sanitizer attached (and no
fault injected) every design produces byte-identical results — it only
*watches*, and raises a structured :class:`SanitizerViolation` the
moment an invariant breaks:

* **Message conservation** — every transfer injected into a
  :class:`~repro.interconnect.link.Link` bundle or
  :class:`~repro.interconnect.mesh.MeshNetwork` must be delivered
  exactly once (kinds ``link.conservation`` / ``mesh.conservation``).
* **Bank coherence** — a :class:`~repro.cache.bank.CacheBank` set may
  never hold more blocks than its associativity nor the same tag twice
  (``bank.occupancy`` / ``bank.duplicate_tag``); DNUCA's central
  partial-tag array must mirror the banks exactly
  (``dnuca.partial_tag_incoherent``).
* **Engine progress** — dispatched event times must be monotonic
  (``engine.time_regression``) and a cycle may not dispatch unboundedly
  many events (``engine.livelock``).
* **Processor progress** — retirement must advance within
  ``watchdog_stall_cycles`` (``watchdog.no_retirement``) and the number
  of outstanding L2 requests may never exceed the configured MSHRs,
  checked per reference and at quiesce (``mshr.leak``).

Checks that sweep state (bank coherence, conservation) run every
``check_every`` L2 accesses and once more at quiesce; per-event checks
(watchdog, MSHR, engine progress) are a compare-and-branch each.

:class:`SimFault` injects one seeded corruption — used by the test
suite and the CI smoke to prove each invariant actually fires and that
the resulting crash bundle replays deterministically.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

FAULT_KINDS = ("drop_transfer", "double_install", "stall_retirement")


class SanitizerViolation(RuntimeError):
    """A broken simulator invariant, with enough structure to triage.

    ``kind`` is a stable dotted identifier (``mesh.conservation``,
    ``bank.duplicate_tag``, ``watchdog.no_retirement``, ...),
    ``component`` names the stuck or corrupt part, ``cycle`` is the
    simulation time the check fired, and ``details`` carries the
    check-specific numbers.
    """

    def __init__(self, kind: str, component: str, cycle: int,
                 details: Optional[Dict[str, Any]] = None) -> None:
        self.kind = kind
        self.component = component
        self.cycle = cycle
        self.details = dict(details or {})
        extra = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        super().__init__(
            f"[{kind}] {component} at cycle {cycle}" + (f" ({extra})" if extra else ""))

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "component": self.component,
                "cycle": self.cycle, "details": self.details}


@dataclasses.dataclass(frozen=True)
class SimFault:
    """A seeded corruption to inject into a sanitized run.

    ``kind`` selects the corruption, ``at`` the 1-based ordinal of the
    event to corrupt (the Nth eligible transfer / bank insert /
    reference), and ``channel`` optionally restricts ``drop_transfer``
    to ``"link"`` or ``"mesh"`` traffic.
    """

    kind: str
    at: int = 1
    channel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.at < 1:
            raise ValueError("fault ordinal 'at' must be >= 1")
        if self.channel is not None and self.channel not in ("link", "mesh"):
            raise ValueError("fault channel must be 'link' or 'mesh'")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at, "channel": self.channel}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimFault":
        return cls(kind=data["kind"], at=data["at"],
                   channel=data.get("channel"))

    @classmethod
    def parse(cls, spec: str) -> "SimFault":
        """Parse a CLI fault spec: ``KIND[:AT[:CHANNEL]]``."""
        parts = spec.split(":")
        if len(parts) > 3:
            raise ValueError(f"bad fault spec {spec!r}; want KIND[:AT[:CHANNEL]]")
        kind = parts[0]
        at = int(parts[1]) if len(parts) > 1 else 1
        channel = parts[2] if len(parts) > 2 else None
        return cls(kind=kind, at=at, channel=channel)


@dataclasses.dataclass(frozen=True)
class SanitizerConfig:
    """Knobs for check frequency and watchdog sensitivity.

    Defaults are sized so a healthy run can never trip them: no
    workload in the suite goes ``watchdog_stall_cycles`` cycles without
    retiring an instruction, and nothing schedules
    ``max_same_cycle_events`` events in one cycle.  Tighten them per
    run via ``repro run --watchdog-cycles`` when hunting a real hang.
    """

    check_every: int = 1024
    watchdog_stall_cycles: int = 1_000_000
    max_same_cycle_events: int = 100_000
    event_ring: int = 256

    def __post_init__(self) -> None:
        for name in ("check_every", "watchdog_stall_cycles",
                     "max_same_cycle_events", "event_ring"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SanitizerConfig":
        return cls(**data)


class Sanitizer:
    """The invariant registry plus every runtime hook the core calls.

    One sanitizer instance watches one simulated system.  Components
    receive the sanitizer via ``attach_*`` and call its ``on_*`` hooks;
    every hook site is guarded by ``if sanitizer is not None`` so the
    default (detached) cost is a single predicted branch.
    """

    def __init__(self, config: Optional[SanitizerConfig] = None,
                 fault: Optional[SimFault] = None) -> None:
        self.config = config if config is not None else SanitizerConfig()
        self.fault = fault
        #: (name, check(cycle)) pairs swept at intervals and quiesce.
        self._invariants: List[Tuple[str, Callable[[int], None]]] = []
        # Message conservation, per channel kind ("link" / "mesh").
        self._sent: Dict[str, int] = {}
        self._delivered: Dict[str, int] = {}
        self._fault_transfer_seq = 0
        self._dropped: List[Dict[str, Any]] = []
        # Bank insert ordinal (double_install fault targeting).
        self._insert_seq = 0
        # Interval sweep trigger.
        self._accesses = 0
        self._checks_run = 0
        # Processor watchdog state.
        self._refs = 0
        self._mshrs: Optional[int] = None
        self._last_retired = -1
        self._last_retire_cycle = 0
        self._stall_frozen: Optional[int] = None
        # Engine livelock state.
        self._same_cycle_events = 0
        self._last_cycle = 0

    # -- attachment --------------------------------------------------------
    def attach_system(self, system) -> None:
        """Wire this sanitizer into a built :class:`~repro.sim.system.System`."""
        self.attach_processor(system.processor)
        system.l2.attach_sanitizer(self)

    def attach_processor(self, processor) -> None:
        processor.sanitizer = self
        self._mshrs = processor.config.mshrs

    def attach_engine(self, engine) -> None:
        engine.sanitizer = self

    def register_invariant(self, name: str,
                           check: Callable[[int], None]) -> None:
        """Register ``check(cycle)`` to run at every interval sweep."""
        self._invariants.append((name, check))

    def watch_banks(self, component: str, labeled_banks) -> None:
        """Watch ``(label, CacheBank)`` pairs for occupancy/tag coherence.

        Sets each bank's ``sanitizer`` attribute (enabling the insert
        hook that carries the ``double_install`` fault) and registers
        one sweep covering them all.
        """
        watched = []
        for label, bank in labeled_banks:
            bank.sanitizer = self
            watched.append((f"{component}.{label}", bank))
        banks = tuple(watched)

        def check(cycle: int) -> None:
            for label, bank in banks:
                for set_index, tags, _dirty in bank.iter_sets():
                    present = [t for t in tags if t is not None]
                    if len(tags) != bank.ways or len(present) > bank.ways:
                        raise SanitizerViolation(
                            "bank.occupancy", label, cycle,
                            {"set": set_index, "occupied": len(present),
                             "ways": bank.ways})
                    if len(set(present)) != len(present):
                        seen = set()
                        dup = next(t for t in present
                                   if t in seen or seen.add(t))
                        raise SanitizerViolation(
                            "bank.duplicate_tag", label, cycle,
                            {"set": set_index, "tag": dup})

        self.register_invariant(f"{component}.banks", check)

    # -- runtime hooks -----------------------------------------------------
    def on_transfer(self, channel: str, cycle: int) -> None:
        """Account one message injected into ``channel`` ("link"/"mesh")."""
        self._sent[channel] = self._sent.get(channel, 0) + 1
        fault = self.fault
        if (fault is not None and fault.kind == "drop_transfer"
                and (fault.channel is None or fault.channel == channel)):
            self._fault_transfer_seq += 1
            if self._fault_transfer_seq == fault.at:
                # Model the flit vanishing in flight: injected but never
                # delivered, so the books stop balancing.
                self._dropped.append({"channel": channel, "cycle": cycle})
                return
        self._delivered[channel] = self._delivered.get(channel, 0) + 1

    def on_bank_insert(self, bank, set_index: int, way: int) -> None:
        """Account one block installed into a watched bank."""
        self._insert_seq += 1
        fault = self.fault
        if (fault is not None and fault.kind == "double_install"
                and self._insert_seq == fault.at and bank.ways > 1):
            # Corrupt the tag store directly (bypassing insert()'s own
            # duplicate rejection), as a buggy install path would.
            entry = bank._sets[set_index]
            entry.tags[(way + 1) % bank.ways] = entry.tags[way]

    def on_access(self, cycle: int) -> None:
        """Per-L2-access hook: trigger the interval sweep when due."""
        self._accesses += 1
        if self._accesses % self.config.check_every == 0:
            self.run_checks(cycle)

    def on_retire(self, cycle: int, retired: int, outstanding: int) -> None:
        """Per-reference processor hook: MSHR bound + retirement watchdog."""
        self._refs += 1
        fault = self.fault
        if (fault is not None and fault.kind == "stall_retirement"
                and self._refs >= fault.at):
            # Freeze the retirement count the watchdog sees, as a stuck
            # commit stage would present it.
            if self._stall_frozen is None:
                self._stall_frozen = retired
            retired = self._stall_frozen
        if self._mshrs is not None and outstanding > self._mshrs:
            raise SanitizerViolation(
                "mshr.leak", "processor", cycle,
                {"outstanding": outstanding, "mshrs": self._mshrs})
        if retired > self._last_retired:
            self._last_retired = retired
            self._last_retire_cycle = cycle
        elif cycle - self._last_retire_cycle > self.config.watchdog_stall_cycles:
            raise SanitizerViolation(
                "watchdog.no_retirement", "processor", cycle,
                {"stalled_cycles": cycle - self._last_retire_cycle,
                 "retired_instructions": retired,
                 "outstanding_requests": outstanding})
        self._last_cycle = cycle

    def on_quiesce(self, cycle: int, outstanding: int) -> None:
        """End-of-trace hook: leak detection plus a final full sweep."""
        if self._mshrs is not None and outstanding > self._mshrs:
            raise SanitizerViolation(
                "mshr.leak", "processor", cycle,
                {"outstanding": outstanding, "mshrs": self._mshrs,
                 "at_quiesce": True})
        self.run_checks(cycle)

    def on_engine_reset(self) -> None:
        """Engine-reset hook: forget per-run engine progress state.

        :meth:`Engine.reset` rewinds the clock to zero; without this
        hook the livelock counter accumulated by the previous run would
        leak into the next one and could fire ``engine.livelock``
        spuriously on a reused sanitized engine.
        """
        self._same_cycle_events = 0
        self._last_cycle = 0

    def on_engine_dispatch(self, now: int, event_time: int,
                           pending: int) -> None:
        """Per-event engine hook: monotonic time + same-cycle progress."""
        if event_time < now:
            raise SanitizerViolation(
                "engine.time_regression", "engine", now,
                {"event_time": event_time})
        if event_time == now:
            self._same_cycle_events += 1
            if self._same_cycle_events > self.config.max_same_cycle_events:
                raise SanitizerViolation(
                    "engine.livelock", "engine", event_time,
                    {"events_this_cycle": self._same_cycle_events,
                     "pending": pending})
        else:
            self._same_cycle_events = 0

    # -- sweeps ------------------------------------------------------------
    def run_checks(self, cycle: int) -> None:
        """Run message conservation plus every registered invariant."""
        self._checks_run += 1
        for channel, sent in self._sent.items():
            delivered = self._delivered.get(channel, 0)
            if delivered != sent:
                raise SanitizerViolation(
                    f"{channel}.conservation", channel, cycle,
                    {"sent": sent, "delivered": delivered,
                     "lost": sent - delivered})
        for _name, check in self._invariants:
            check(cycle)

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Full machine-readable state, embedded in crash bundles."""
        return {
            "accesses": self._accesses,
            "refs": self._refs,
            "checks_run": self._checks_run,
            "last_cycle": self._last_cycle,
            "transfers": {"sent": dict(self._sent),
                          "delivered": dict(self._delivered)},
            "bank_inserts": self._insert_seq,
            "dropped_transfers": list(self._dropped),
            "invariants": [name for name, _ in self._invariants],
            "config": self.config.to_dict(),
            "fault": None if self.fault is None else self.fault.to_dict(),
        }

    def summary(self) -> Dict[str, Any]:
        """Compact digest for a clean run's :class:`RunManifest`."""
        return {
            "enabled": True,
            "checks_run": self._checks_run,
            "accesses": self._accesses,
            "invariants": len(self._invariants),
            "fault": None if self.fault is None else self.fault.to_dict(),
        }

"""Deterministic re-execution of crash bundles, with delta-debugging.

:func:`replay_bundle` rebuilds the exact run a bundle captured — same
design, same overrides, same reference-stream prefix, same injected
fault — with the sanitizer forced on, and reports whether the recorded
violation reproduces.  Because the simulator is fully deterministic
given the trace and configuration, a faithful bundle either reproduces
its violation exactly or proves the bug has been fixed.

:func:`minimize_bundle` shrinks a reproducing bundle to the shortest
failing prefix of its reference stream by bisection: the empty prefix
passes, the full prefix fails, and for the ordinal-seeded corruption
model every extension of a failing prefix keeps failing, so binary
search finds the boundary in ``log2(n)`` replays.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

from repro.sanitizer.bundle import CrashBundle, load_bundle, write_crash_bundle
from repro.sanitizer.core import (
    Sanitizer,
    SanitizerConfig,
    SanitizerViolation,
    SimFault,
)

BundleLike = Union[str, CrashBundle]


@dataclasses.dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one crash bundle."""

    reproduced: bool
    expected: dict
    violation: Optional[SanitizerViolation] = None
    error: Optional[BaseException] = None
    refs: int = 0

    @property
    def outcome(self) -> str:
        if self.reproduced:
            return "reproduced"
        if self.violation is not None or self.error is not None:
            return "different-failure"
        return "passed"


def _resolve(bundle: BundleLike) -> CrashBundle:
    if isinstance(bundle, CrashBundle):
        return bundle
    return load_bundle(bundle)


def _rebuild_sanitizer(bundle: CrashBundle) -> Sanitizer:
    state = bundle.sanitizer or {}
    config = (SanitizerConfig.from_dict(state["config"])
              if state.get("config") else SanitizerConfig())
    fault = (SimFault.from_dict(state["fault"])
             if state.get("fault") else None)
    return Sanitizer(config=config, fault=fault)


def _run_prefix(bundle: CrashBundle, prefix: int):
    """Run the bundle's first ``prefix`` references; returns the raised
    exception (None on a clean pass)."""
    from repro.sim.memory import MainMemory
    from repro.sim.processor import ProcessorConfig
    from repro.sim.system import run_system
    from repro.tech import TECH_45NM

    if bundle.unreplayable:
        raise ValueError(
            f"bundle {bundle.path} is not replayable: design overrides "
            f"{bundle.unreplayable} were not JSON-serializable")
    if bundle.tech != TECH_45NM.name:
        raise ValueError(
            f"bundle {bundle.path} used technology {bundle.tech!r}; only "
            f"{TECH_45NM.name!r} bundles can be replayed")
    memory = (None if bundle.memory_latency_cycles is None
              else MainMemory(latency_cycles=bundle.memory_latency_cycles))
    overrides = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in bundle.design_overrides.items()
    }
    trace = bundle.trace[:prefix]
    try:
        run_system(
            bundle.design, bundle.benchmark,
            seed=bundle.seed,
            trace=trace,
            warmup_refs=min(bundle.warmup_refs, prefix),
            processor_config=ProcessorConfig(**bundle.processor_config),
            memory=memory,
            sanitizer=_rebuild_sanitizer(bundle),
            **overrides,
        )
    except Exception as error:
        return error
    return None


def _matches(expected: dict, error: Optional[BaseException]) -> bool:
    if error is None:
        return False
    if expected.get("type") == "SanitizerViolation":
        return (isinstance(error, SanitizerViolation)
                and error.kind == expected.get("kind")
                and error.component == expected.get("component"))
    return type(error).__name__ == expected.get("type")


def replay_bundle(bundle: BundleLike) -> ReplayResult:
    """Re-execute ``bundle`` with the sanitizer forced on."""
    bundle = _resolve(bundle)
    error = _run_prefix(bundle, len(bundle.trace))
    violation = error if isinstance(error, SanitizerViolation) else None
    return ReplayResult(
        reproduced=_matches(bundle.error, error),
        expected=bundle.error,
        violation=violation,
        error=error,
        refs=len(bundle.trace),
    )


def minimize_bundle(bundle: BundleLike,
                    out_dir: Optional[str] = None) -> Tuple[int, str]:
    """Bisect the reference stream to a minimal failing prefix.

    Returns ``(prefix_length, minimized_bundle_path)``.  Raises
    ``ValueError`` if the full bundle does not reproduce its recorded
    violation (nothing to minimize).
    """
    bundle = _resolve(bundle)
    expected = bundle.error
    total = len(bundle.trace)

    def fails(prefix: int) -> Optional[BaseException]:
        error = _run_prefix(bundle, prefix)
        return error if _matches(expected, error) else None

    full_error = fails(total)
    if full_error is None:
        raise ValueError(
            f"bundle {bundle.path} does not reproduce its recorded "
            f"violation {expected.get('kind', expected.get('type'))!r}; "
            "nothing to minimize")

    lo, hi = 0, total  # lo passes (or fails differently), hi fails
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if fails(mid) is not None:
            hi = mid
        else:
            lo = mid
    minimal = hi
    final_error = fails(minimal)
    assert final_error is not None  # hi is always a known-failing length

    if out_dir is None:
        out_dir = bundle.path.rstrip("/\\") + "-min"
    # A fresh sanitizer carries the config/fault into the minimized
    # bundle's snapshot; its run counters stay zero, which keeps the
    # whole minimal trace in the written prefix.
    sanitizer = _rebuild_sanitizer(bundle)
    path = write_crash_bundle(
        out_dir,
        design=bundle.design,
        benchmark=bundle.benchmark,
        seed=bundle.seed,
        warmup_refs=min(bundle.warmup_refs, minimal),
        trace=bundle.trace[:minimal],
        error=final_error,
        processor_config=bundle.processor_config,
        tech=bundle.tech,
        memory_latency_cycles=bundle.memory_latency_cycles,
        design_overrides=dict(bundle.design_overrides),
        sanitizer=sanitizer,
        minimized_from=bundle.path,
    )
    return minimal, path

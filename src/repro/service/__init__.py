"""Simulation-as-a-service: an HTTP/JSON job API over the grid runner.

The service wraps the whole prior stack — designs
(:mod:`repro.core.config`), the resilient grid executor and
content-addressed result cache (:mod:`repro.analysis.runner`,
:mod:`repro.analysis.resilience`), the derived-artifact lane
(:mod:`repro.analysis.derived`), and observability
(:mod:`repro.obs`) — behind five endpoints so many concurrent clients
share one result store.  Stdlib only; see ``docs/SERVICE.md``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobStore, job_key
from repro.service.schema import (
    ENDPOINTS,
    ERROR_CODES,
    JOB_SPEC_SCHEMA,
    SERVICE_SCHEMA_VERSION,
    JobSpec,
    validate_job_spec,
)
from repro.service.server import ServiceHandler, make_server, serve

__all__ = [
    "ENDPOINTS",
    "ERROR_CODES",
    "JOB_SPEC_SCHEMA",
    "SERVICE_SCHEMA_VERSION",
    "Job",
    "JobSpec",
    "JobStore",
    "ServiceClient",
    "ServiceError",
    "ServiceHandler",
    "job_key",
    "make_server",
    "serve",
    "validate_job_spec",
]

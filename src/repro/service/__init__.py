"""Simulation-as-a-service: an HTTP/JSON job API over the grid runner.

The service wraps the whole prior stack — designs
(:mod:`repro.core.config`), the resilient grid executor and
content-addressed result cache (:mod:`repro.analysis.runner`,
:mod:`repro.analysis.resilience`), the derived-artifact lane
(:mod:`repro.analysis.derived`), and observability
(:mod:`repro.obs`) — behind five endpoints so many concurrent clients
share one result store.  Stdlib only; see ``docs/SERVICE.md``.
"""

from repro.service.client import (
    ServiceClient,
    ServiceError,
    backoff_delay,
    poll_schedule,
)
from repro.service.jobs import (
    LIFECYCLE_COUNTS,
    AdmissionError,
    DrainingError,
    Job,
    JobStore,
    job_key,
)
from repro.service.journal import (
    JobJournal,
    as_job_journal,
    describe_recovery,
)
from repro.service.schema import (
    ENDPOINTS,
    ERROR_CODES,
    JOB_SPEC_SCHEMA,
    SERVICE_SCHEMA_VERSION,
    JobSpec,
    validate_job_spec,
)
from repro.service.server import ServiceHandler, make_server, serve

__all__ = [
    "ENDPOINTS",
    "ERROR_CODES",
    "JOB_SPEC_SCHEMA",
    "LIFECYCLE_COUNTS",
    "SERVICE_SCHEMA_VERSION",
    "AdmissionError",
    "DrainingError",
    "Job",
    "JobJournal",
    "JobSpec",
    "JobStore",
    "ServiceClient",
    "ServiceError",
    "ServiceHandler",
    "as_job_journal",
    "backoff_delay",
    "describe_recovery",
    "job_key",
    "make_server",
    "poll_schedule",
    "serve",
    "validate_job_spec",
]

"""Minimal stdlib client for the simulation service.

Used by ``examples/service_client.py``, the test suite, and the CI
smoke job — anything that talks to ``repro serve`` without pulling in
an HTTP library.  Error envelopes become :class:`ServiceError` (with
the machine-readable ``code``); everything else returns parsed JSON.

Backpressure-aware: a 429 ``over_capacity`` / 503 ``draining`` submit
is retried (up to ``retries`` times) with capped exponential backoff
plus jitter, never sooner than the server's ``Retry-After`` header
advertises.  :meth:`wait` polls with its own capped exponential
schedule (:func:`poll_schedule`) instead of a fixed interval, so a
long-running job costs O(log) requests instead of O(duration).  Both
the sleep function and the jitter RNG are injectable, so the backoff
behavior is unit-testable without wall-clock time.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

#: Submit statuses that mean "try again later", not "you are wrong".
RETRYABLE_STATUSES = (429, 503)


def backoff_delay(attempt: int, base_s: float = 0.25,
                  factor: float = 2.0, cap_s: float = 10.0) -> float:
    """Capped exponential backoff delay for retry ``attempt`` (0-based)."""
    return min(cap_s, base_s * (factor ** attempt))


def poll_schedule(initial_s: float = 0.1, factor: float = 1.5,
                  cap_s: float = 2.0) -> Iterator[float]:
    """The infinite sequence of poll delays :meth:`ServiceClient.wait` uses.

    Starts fast (a short job answers quickly) and decays to ``cap_s``
    (a long job is not hammered at 10 Hz forever).
    """
    delay = initial_s
    while True:
        yield min(delay, cap_s)
        delay = min(delay * factor, cap_s)


class ServiceError(RuntimeError):
    """A non-2xx service response, carrying the error envelope."""

    def __init__(self, status: int, code: str, message: str,
                 detail: Optional[str] = None,
                 retry_after_s: Optional[float] = None) -> None:
        text = f"HTTP {status} {code}: {message}"
        if detail:
            text += f" ({detail})"
        super().__init__(text)
        self.status = status
        self.code = code
        self.detail = detail
        #: Server-advertised retry delay (from the ``Retry-After``
        #: header or the envelope's ``retry_after_s``), when present.
        self.retry_after_s = retry_after_s


def _retry_after(headers: Any, document: Any) -> Optional[float]:
    """The server's advertised retry delay, header first, envelope second."""
    raw = None
    if headers is not None:
        raw = headers.get("Retry-After")
    if raw is not None:
        try:
            return float(raw)
        except ValueError:
            pass
    if isinstance(document, dict):
        envelope = document.get("error")
        if isinstance(envelope, dict):
            value = envelope.get("retry_after_s")
            if isinstance(value, (int, float)):
                return float(value)
    return None


class ServiceClient:
    """One service endpoint (``http://host:port``) as Python calls."""

    def __init__(self, base_url: str, timeout_s: float = 30.0,
                 retries: int = 0,
                 backoff_base_s: float = 0.25,
                 backoff_factor: float = 2.0,
                 backoff_max_s: float = 10.0,
                 jitter_fraction: float = 0.1,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.jitter_fraction = jitter_fraction
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    # -- transport ---------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> Tuple[int, bytes, Any]:
        data = (json.dumps(body).encode() if body is not None else None)
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return response.status, response.read(), response.headers
        except urllib.error.HTTPError as error:
            return error.code, error.read(), error.headers

    def _json(self, method: str, path: str,
              body: Optional[dict] = None) -> Tuple[int, Any]:
        status, raw, headers = self._request(method, path, body)
        document = json.loads(raw) if raw else None
        if isinstance(document, dict) and "error" in document:
            envelope = document["error"]
            raise ServiceError(status, envelope.get("code", "unknown"),
                               envelope.get("message", ""),
                               envelope.get("detail"),
                               retry_after_s=_retry_after(headers, document))
        return status, document

    def _retry_delay(self, attempt: int,
                     retry_after_s: Optional[float]) -> float:
        """Backoff delay for retry ``attempt``, honoring ``Retry-After``.

        Never shorter than what the server asked for; jitter spreads
        simultaneous retriers so they do not re-stampede in lockstep.
        """
        delay = backoff_delay(attempt, self.backoff_base_s,
                              self.backoff_factor, self.backoff_max_s)
        if retry_after_s is not None:
            delay = max(delay, retry_after_s)
        return delay * (1.0 + self.jitter_fraction * self._rng.random())

    # -- API ---------------------------------------------------------------
    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """POST a job spec; the returned status document includes
        ``deduplicated`` (True when an identical job already existed).

        Retries 429 ``over_capacity`` / 503 ``draining`` rejections up
        to ``self.retries`` times with :meth:`_retry_delay` backoff;
        any other error raises immediately.
        """
        attempt = 0
        while True:
            try:
                status, document = self._json("POST", "/v1/jobs", spec)
            except ServiceError as error:
                if (error.status not in RETRYABLE_STATUSES
                        or attempt >= self.retries):
                    raise
                self._sleep(self._retry_delay(attempt, error.retry_after_s))
                attempt += 1
                continue
            document["_http_status"] = status
            return document

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}")[1]

    def result_bytes(self, job_id: str) -> bytes:
        """The finished job's frozen result document, verbatim.

        Raises :class:`ServiceError` if the job failed (code
        ``job_failed``) or is still running (code ``pending`` — the
        202 envelope); callers normally :meth:`wait` first.
        """
        status, raw, headers = self._request("GET",
                                             f"/v1/jobs/{job_id}/result")
        if status != 200:
            document = json.loads(raw) if raw else {}
            if isinstance(document, dict) and "error" in document:
                envelope = document["error"]
                raise ServiceError(status, envelope.get("code", "unknown"),
                                   envelope.get("message", ""),
                                   envelope.get("detail"),
                                   retry_after_s=_retry_after(headers,
                                                              document))
            raise ServiceError(status, "pending", "job is still running")
        return raw

    def result(self, job_id: str) -> Dict[str, Any]:
        return json.loads(self.result_bytes(job_id))

    def artifact(self, key: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/artifacts/{key}")[1]

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/healthz")[1]

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.1, poll_factor: float = 1.5,
             poll_max_s: float = 2.0) -> Dict[str, Any]:
        """Poll until the job leaves the queue; returns final status.

        Polls on the capped exponential :func:`poll_schedule` starting
        at ``poll_s`` and decaying toward ``poll_max_s``.
        """
        deadline = time.monotonic() + timeout_s
        delays = poll_schedule(poll_s, poll_factor, poll_max_s)
        while True:
            document = self.status(job_id)
            if document["state"] in ("done", "failed"):
                return document
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {document['state']} after "
                    f"{timeout_s}s ({document['cells']})")
            self._sleep(next(delays))

    def run(self, spec: Dict[str, Any],
            timeout_s: float = 300.0) -> Dict[str, Any]:
        """Submit, wait, and return the parsed result document."""
        submitted = self.submit(spec)
        status = self.wait(submitted["id"], timeout_s=timeout_s)
        if status["state"] != "done":
            raise ServiceError(409, "job_failed", "job failed",
                               status.get("error"))
        return self.result(submitted["id"])

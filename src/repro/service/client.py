"""Minimal stdlib client for the simulation service.

Used by ``examples/service_client.py``, the test suite, and the CI
smoke job — anything that talks to ``repro serve`` without pulling in
an HTTP library.  Error envelopes become :class:`ServiceError` (with
the machine-readable ``code``); everything else returns parsed JSON.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple


class ServiceError(RuntimeError):
    """A non-2xx service response, carrying the error envelope."""

    def __init__(self, status: int, code: str, message: str,
                 detail: Optional[str] = None) -> None:
        text = f"HTTP {status} {code}: {message}"
        if detail:
            text += f" ({detail})"
        super().__init__(text)
        self.status = status
        self.code = code
        self.detail = detail


class ServiceClient:
    """One service endpoint (``http://host:port``) as Python calls."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport ---------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> Tuple[int, bytes]:
        data = (json.dumps(body).encode() if body is not None else None)
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def _json(self, method: str, path: str,
              body: Optional[dict] = None) -> Tuple[int, Any]:
        status, raw = self._request(method, path, body)
        document = json.loads(raw) if raw else None
        if isinstance(document, dict) and "error" in document:
            envelope = document["error"]
            raise ServiceError(status, envelope.get("code", "unknown"),
                               envelope.get("message", ""),
                               envelope.get("detail"))
        return status, document

    # -- API ---------------------------------------------------------------
    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """POST a job spec; the returned status document includes
        ``deduplicated`` (True when an identical job already existed)."""
        status, document = self._json("POST", "/v1/jobs", spec)
        document["_http_status"] = status
        return document

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}")[1]

    def result_bytes(self, job_id: str) -> bytes:
        """The finished job's frozen result document, verbatim.

        Raises :class:`ServiceError` if the job failed (code
        ``job_failed``) or is still running (code ``pending`` — the
        202 envelope); callers normally :meth:`wait` first.
        """
        status, raw = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            document = json.loads(raw) if raw else {}
            if isinstance(document, dict) and "error" in document:
                envelope = document["error"]
                raise ServiceError(status, envelope.get("code", "unknown"),
                                   envelope.get("message", ""),
                                   envelope.get("detail"))
            raise ServiceError(status, "pending", "job is still running")
        return raw

    def result(self, job_id: str) -> Dict[str, Any]:
        return json.loads(self.result_bytes(job_id))

    def artifact(self, key: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/artifacts/{key}")[1]

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/healthz")[1]

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.1) -> Dict[str, Any]:
        """Poll until the job leaves the queue; returns final status."""
        deadline = time.monotonic() + timeout_s
        while True:
            document = self.status(job_id)
            if document["state"] in ("done", "failed"):
                return document
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {document['state']} after "
                    f"{timeout_s}s ({document['cells']})")
            time.sleep(poll_s)

    def run(self, spec: Dict[str, Any],
            timeout_s: float = 300.0) -> Dict[str, Any]:
        """Submit, wait, and return the parsed result document."""
        submitted = self.submit(spec)
        status = self.wait(submitted["id"], timeout_s=timeout_s)
        if status["state"] != "done":
            raise ServiceError(409, "job_failed", "job failed",
                               status.get("error"))
        return self.result(submitted["id"])

"""Job model and worker pool behind the simulation service.

A *job* is one validated design x benchmark grid
(:class:`~repro.service.schema.JobSpec`).  The :class:`JobStore` owns
every job the service has seen and a pool of worker threads that shard
each job's cells across the existing execution stack:

* every cell runs through
  :func:`repro.analysis.runner.execute_cells_detailed` against one
  shared content-addressed :class:`~repro.analysis.runner.ResultCache`,
  so concurrent clients never simulate the same cell twice;
* a :class:`~repro.analysis.resilience.RetryPolicy` (from ``repro serve
  --retries/--cell-timeout``) routes cells through the fault-tolerant
  executor — per-cell child processes, timeouts, retries — and a
  per-job checkpoint journal makes an interrupted job resumable;
* identical submissions dedupe **before** any work happens: the job key
  is a digest of the grid's cell result-cache keys (each of which
  already embeds every simulation input plus the code-version stamp),
  so a repeat ``POST`` maps onto the existing job and its frozen result
  bytes.  Submissions that are new to this process but whose cells are
  already in the result cache complete with zero cells simulated — the
  second dedupe layer, which survives server restarts.

The store is also the service's *lifecycle-durability* layer:

* a :class:`~repro.service.journal.JobJournal` (``repro serve
  --journal-dir``) records every submit / cell / finish / evict
  transition, so :meth:`JobStore.recover` on a restarted server
  re-enqueues unfinished jobs under their original deterministic
  ``job-<key16>`` ids and replays finished jobs byte-identically from
  the result cache with zero cells simulated;
* admission control bounds what one store accepts — at most
  ``max_active_jobs`` unfinished jobs and ``max_queued_cells`` queued
  cells; over-capacity submits raise :class:`AdmissionError` (HTTP 429
  with ``Retry-After``), submits during a drain raise
  :class:`DrainingError` (HTTP 503);
* a TTL reaper (``job_ttl_s``) evicts terminal jobs' status documents
  after expiry — result *bytes* stay reachable through the cache-backed
  dedupe path (resubmit the spec: zero cells simulate), while evicted
  ids answer 410 ``gone`` via a tombstone;
* :meth:`JobStore.shutdown` drains gracefully: admission stops, in-
  flight cells finish (or the drain times out), a clean-shutdown marker
  is journaled, and :meth:`JobStore.close` joins the workers —
  idempotently, counting any worker that fails to join in the
  ``service.close.stragglers`` metric.

Progress and health are observable: the store's ``service.*`` counter,
the lifecycle layer's ``service.lifecycle.*`` counter, and a store-wide
:class:`~repro.analysis.resilience.RunnerTelemetry`
(``runner.*``) mount on one :class:`~repro.obs.registry.MetricsRegistry`
alongside the derived lane's ``analysis.derived.*`` counts, and every
finished job embeds a :class:`~repro.obs.manifest.RunManifest` whose
``lifecycle`` field snapshots the durability counters.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import threading
import time as _time
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.derived import DerivedLane, as_lane, derived_key
from repro.analysis.experiments import (
    ExperimentGrid,
    MAIN_DESIGNS,
    TLC_FAMILY,
)
from repro.analysis.runner import (
    CellSpec,
    as_cache,
    cache_key,
    execute_cells_detailed,
    grid_cell_specs,
)
from repro.obs.manifest import build_manifest, manifest_to_dict
from repro.obs.registry import MetricsRegistry
from repro.service.journal import as_job_journal
from repro.service.schema import (
    DEFAULT_MAX_ACTIVE_JOBS,
    DEFAULT_MAX_QUEUED_CELLS,
    DEFAULT_RETRY_AFTER_S,
    SERVICE_SCHEMA_VERSION,
    JobSpec,
)
from repro.sim.stats import Counter

#: Lifecycle of a job.  queued -> running -> done | failed (terminal
#: states are then eligible for TTL eviction — see docs/SERVICE.md).
JOB_STATES = ("queued", "running", "done", "failed")

#: The ``service.*`` counts the store maintains.  ``close.stragglers``
#: counts worker threads that failed to join within the close timeout —
#: abandoned loudly, never silently.
SERVICE_COUNTS = (
    "jobs_submitted", "jobs_deduplicated", "jobs_completed", "jobs_failed",
    "cells_simulated", "cells_from_cache", "cells_failed",
    "requests", "errors", "artifacts_served", "close.stragglers",
)

#: The ``service.lifecycle.*`` counts: every durability-layer state
#: transition, with stable zeros so manifest diffs stay meaningful.
LIFECYCLE_COUNTS = (
    "journal_events", "journal_skipped_lines",
    "recovered_jobs", "resumed_jobs", "replayed_finished_jobs",
    "invalid_recovered_jobs", "evicted_tombstones",
    "admission_rejected", "drain_rejected", "jobs_evicted",
    "drains", "drain_clean", "drain_timeouts",
)


class AdmissionError(RuntimeError):
    """A submit the store refused to admit (HTTP 429 over_capacity).

    Carries ``retry_after_s`` — the server surfaces it as a
    ``Retry-After`` header and :class:`~repro.service.client.ServiceClient`
    honors it in its retry backoff.
    """

    def __init__(self, message: str,
                 retry_after_s: float = DEFAULT_RETRY_AFTER_S) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DrainingError(AdmissionError):
    """A submit rejected because the store is draining (HTTP 503)."""

#: Which design sets satisfy a report section's named grid slice when
#: the slice declares "the whole grid" (designs=None) — the canonical
#: grids ``repro report`` runs.
_CANONICAL_SLICE_DESIGNS = {
    "main": frozenset(MAIN_DESIGNS),
    "family": frozenset(("SNUCA2",) + TLC_FAMILY),
}


def job_key(spec: JobSpec) -> str:
    """Content key of one job: a digest over its cells' result-cache keys.

    Each cell key already embeds every simulation input plus the
    code-version stamp, so two submissions share a job key iff they
    would simulate the identical grid with the identical code —
    the dedupe contract.  Designs/benchmarks are included in request
    order because the result document's tables are ordered.
    """
    cells, benchmarks = grid_cell_specs(
        designs=spec.designs, benchmarks=spec.benchmarks, n_refs=spec.n_refs,
        seed=spec.seed, warmup_fraction=spec.warmup_fraction,
        sanitize=spec.sanitize)
    payload = {
        "schema": SERVICE_SCHEMA_VERSION,
        "designs": list(spec.designs),
        "benchmarks": list(benchmarks),
        "cells": sorted(cache_key(cell) for cell in cells),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class Job:
    """One submitted grid job and its live progress.

    Mutable fields are guarded by the owning store's lock; the result
    document is rendered exactly once (at completion) and frozen as
    canonical JSON bytes, so every subsequent — and every deduplicated —
    read returns the identical bytes.
    """

    def __init__(self, job_id: str, spec: JobSpec,
                 cells: List[CellSpec], key: Optional[str] = None) -> None:
        self.id = job_id
        self.spec = spec
        self.key = key
        self.cells = cells
        self.cell_keys = [cache_key(cell) for cell in cells]
        self.state = "queued"
        self.error: Optional[str] = None
        self.created_s = _time.time()
        self.finished_s: Optional[float] = None
        self._started = _time.perf_counter()
        self.wall_time_s: Optional[float] = None
        # Serializes this job's cells around its (single-handle,
        # append-only) checkpoint journal; unused without checkpointing.
        self._exec_lock = threading.Lock()
        self.cell_status: List[Dict[str, Any]] = [
            {"design": cell.design, "benchmark": cell.benchmark,
             "state": "pending", "from_cache": None, "wall_time_s": None,
             "attempts": 0}
            for cell in cells
        ]
        self.outcomes: List[Optional[Any]] = [None] * len(cells)
        self.result_bytes: Optional[bytes] = None
        self.manifest: Optional[dict] = None

    # -- derived views (call under the store lock) -------------------------
    def progress(self) -> Dict[str, int]:
        counts = {"total": len(self.cells), "pending": 0, "running": 0,
                  "done": 0, "failed": 0, "simulated": 0, "from_cache": 0}
        for status in self.cell_status:
            counts[status["state"]] += 1
            if status["state"] == "done":
                counts["from_cache" if status["from_cache"]
                       else "simulated"] += 1
        return counts

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.as_dict(),
            "created_unix_s": round(self.created_s, 3),
            "cells": self.progress(),
            "cell_status": [dict(status) for status in self.cell_status],
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.wall_time_s is not None:
            doc["wall_time_s"] = round(self.wall_time_s, 4)
        if self.manifest is not None:
            doc["manifest"] = self.manifest
        if self.state == "done":
            doc["result"] = f"/v1/jobs/{self.id}/result"
        return doc


class JobStore:
    """Owns jobs, the worker pool, and the two cache lanes.

    ``workers`` threads drain one shared cell queue, so a large job's
    cells interleave with a small job's (no head-of-line blocking) and
    cells of one job run concurrently.  With a ``policy`` each cell
    attempt runs in its own child process (the resilient executor),
    which also buys real CPU parallelism; without one, cells run
    in-thread on the fast path.
    """

    def __init__(self, cache=None, derived=None, workers: int = 2,
                 policy=None, checkpoint_dir=None,
                 registry: Optional[MetricsRegistry] = None,
                 journal=None,
                 max_active_jobs: Optional[int] = DEFAULT_MAX_ACTIVE_JOBS,
                 max_queued_cells: Optional[int] = DEFAULT_MAX_QUEUED_CELLS,
                 job_ttl_s: Optional[float] = None,
                 reap_interval_s: float = 1.0,
                 retry_after_s: float = DEFAULT_RETRY_AFTER_S) -> None:
        from repro.analysis.resilience import RunnerTelemetry

        self.cache = as_cache(cache)
        self.lane: DerivedLane = as_lane(derived)
        self.policy = policy
        self.checkpoint_dir = checkpoint_dir
        self.workers = max(1, int(workers))
        self.journal = as_job_journal(journal)
        self.max_active_jobs = max_active_jobs or None
        self.max_queued_cells = max_queued_cells or None
        self.job_ttl_s = job_ttl_s
        self.reap_interval_s = reap_interval_s
        self.retry_after_s = retry_after_s
        self.telemetry = RunnerTelemetry()
        self.counter = Counter()
        for name in SERVICE_COUNTS:
            self.counter.add(name, 0)
        self.lifecycle = Counter()
        for name in LIFECYCLE_COUNTS:
            self.lifecycle.add(name, 0)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.registry.register("service", self.counter)
        self.registry.register("service.lifecycle", self.lifecycle)
        self.telemetry.register(self.registry)
        self.lane.register(self.registry)

        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, str] = {}
        self._journals: Dict[str, Any] = {}
        self._evicted: Dict[str, float] = {}
        self._queue: "queue.Queue[Optional[Tuple[Job, int]]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._reaper: Optional[threading.Thread] = None
        self._reap_stop = threading.Event()
        self._started = False
        self._closed = False
        self._draining = False
        self._recovered = False
        self._shutdown_clean: Optional[bool] = None
        #: Stats of the (single) journal replay this store performed —
        #: what ``repro serve`` prints via ``describe_recovery``.
        self.recovery_stats: Dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool and TTL reaper (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            self._closed = False
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"repro-service-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        if self.job_ttl_s is not None and self._reaper is None:
            self._reap_stop.clear()
            self._reaper = threading.Thread(target=self._reaper_loop,
                                            name="repro-service-reaper",
                                            daemon=True)
            self._reaper.start()

    def close(self, timeout_s: float = 30.0) -> int:
        """Stop accepting work and join the workers; returns stragglers.

        Idempotent: the first call stops the pool, every later call is
        a no-op returning 0.  A worker that fails to join within
        ``timeout_s`` (it is mid-cell on something long) is *counted*
        in the ``service.close.stragglers`` metric rather than silently
        abandoned — the daemon thread finishes its cell and exits on
        the sentinel it still holds.
        """
        with self._lock:
            if self._closed:
                return 0
            self._closed = True
            self._started = False
            threads, self._threads = self._threads, []
        self._reap_stop.set()
        for _ in threads:
            self._queue.put(None)
        stragglers = 0
        for thread in threads:
            thread.join(timeout=timeout_s)
            if thread.is_alive():
                stragglers += 1
        if stragglers:
            self.counter.add("close.stragglers", stragglers)
        reaper, self._reaper = self._reaper, None
        if reaper is not None:
            reaper.join(timeout=5.0)
        if self.journal is not None:
            self.journal.close()
        return stragglers

    # -- graceful drain ----------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new jobs (idempotent); reads keep working."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
        self.lifecycle.add("drains")

    def await_drain(self, timeout_s: float = 30.0,
                    poll_s: float = 0.05) -> bool:
        """Block until no job is queued/running; False on timeout."""
        deadline = _time.monotonic() + max(0.0, timeout_s)
        while True:
            with self._lock:
                active = any(job.state in ("queued", "running")
                             for job in self._jobs.values())
            if not active:
                return True
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                return False
            _time.sleep(min(poll_s, remaining))

    def shutdown(self, drain_timeout_s: float = 30.0) -> bool:
        """Graceful drain: stop admission, finish in-flight cells,
        journal a clean-shutdown marker, close the pool.

        Returns True when the drain completed cleanly (no in-flight
        work abandoned).  Idempotent: later calls return the first
        call's verdict.  On timeout the journal still gets a marker
        (``clean=false``) and unfinished jobs resume on the next
        ``recover()`` — partial cell progress is already durable in the
        result cache.
        """
        with self._lock:
            if self._shutdown_clean is not None:
                return self._shutdown_clean
        self.begin_drain()
        clean = self.await_drain(drain_timeout_s)
        with self._lock:
            if self._shutdown_clean is not None:
                return self._shutdown_clean
            self._shutdown_clean = clean
        self.lifecycle.add("drain_clean" if clean else "drain_timeouts")
        if self.journal is not None:
            self.journal.record_shutdown(clean=clean)
        self.close(timeout_s=30.0 if clean else 1.0)
        return clean

    # -- submission --------------------------------------------------------
    def submit(self, spec: JobSpec, _replay: bool = False,
               ) -> Tuple[Job, bool]:
        """Register (or dedupe) one job; returns ``(job, created)``.

        ``created=False`` means an identical grid was already submitted
        to this store — the caller gets the existing job, whatever its
        state, and zero new work is enqueued.  Deduplicated submits
        bypass admission control (they enqueue nothing); new work is
        subject to it and raises :class:`DrainingError` during a drain
        or :class:`AdmissionError` over capacity.  ``_replay=True`` is
        the journal-recovery path: admission is waived (the work was
        admitted in a previous life) and the submit is not re-journaled.
        """
        key = job_key(spec)
        with self._lock:
            existing = self._by_key.get(key)
            if existing is not None:
                self.counter.add("jobs_deduplicated")
                return self._jobs[existing], False
            cells, benchmarks = grid_cell_specs(
                designs=spec.designs, benchmarks=spec.benchmarks,
                n_refs=spec.n_refs, seed=spec.seed,
                warmup_fraction=spec.warmup_fraction, sanitize=spec.sanitize)
            if not _replay:
                self._admit(len(cells))
            spec = JobSpec(designs=spec.designs, benchmarks=benchmarks,
                           n_refs=spec.n_refs, seed=spec.seed,
                           warmup_fraction=spec.warmup_fraction,
                           sanitize=spec.sanitize)
            job = Job(f"job-{key[:16]}", spec, cells, key=key)
            self._jobs[job.id] = job
            self._by_key[key] = job.id
            # A resubmission of an evicted grid starts a fresh
            # lifecycle under the same deterministic id.
            self._evicted.pop(job.id, None)
            self.counter.add("jobs_submitted")
            if self.journal is not None and not _replay:
                self.journal.record_submit(job.id, key, spec.as_dict())
        self.start()
        for index in range(len(cells)):
            self._queue.put((job, index))
        return job, True

    def _admit(self, new_cells: int) -> None:
        """Admission control for one new job (call under the lock)."""
        if self._draining:
            self.lifecycle.add("drain_rejected")
            raise DrainingError(
                "the service is draining for shutdown and accepts no new "
                "jobs; retry against a fresh instance",
                retry_after_s=self.retry_after_s)
        if self.max_active_jobs is not None:
            active = sum(1 for job in self._jobs.values()
                         if job.state in ("queued", "running"))
            if active >= self.max_active_jobs:
                self.lifecycle.add("admission_rejected")
                raise AdmissionError(
                    f"{active} job(s) already active (cap "
                    f"{self.max_active_jobs}); retry after backoff",
                    retry_after_s=self.retry_after_s)
        if self.max_queued_cells is not None:
            queued = self._queue.qsize()
            if queued + new_cells > self.max_queued_cells:
                self.lifecycle.add("admission_rejected")
                raise AdmissionError(
                    f"{queued} cell(s) queued + {new_cells} submitted "
                    f"exceeds the queue cap ({self.max_queued_cells}); "
                    f"retry after backoff",
                    retry_after_s=self.retry_after_s)

    # -- restart recovery --------------------------------------------------
    def recover(self) -> Dict[str, int]:
        """Replay the job journal into this (fresh) store.

        Unfinished jobs re-enqueue their cells under their original
        deterministic ids — completed cells answer from the result
        cache, so only genuinely unfinished work simulates.  Jobs that
        had already finished replay entirely from the cache (zero cells
        simulated, byte-identical result bytes).  Evicted ids become
        tombstones again.  Idempotent per store; a no-op without a
        journal.  Returns the recovery stats
        (:func:`~repro.service.journal.describe_recovery` renders them).
        """
        stats = {"recovered_jobs": 0, "resumed_jobs": 0,
                 "replayed_finished_jobs": 0, "invalid_jobs": 0,
                 "evicted_tombstones": 0, "skipped_lines": 0,
                 "clean_shutdown": 0}
        if self.journal is None:
            return stats
        with self._lock:
            if self._recovered:
                return stats
            self._recovered = True
        from repro.core.config import ConfigError
        from repro.service.schema import validate_job_spec

        state = self.journal.load()
        stats["skipped_lines"] = state.skipped_lines
        stats["clean_shutdown"] = int(state.clean_shutdown)
        self.lifecycle.add("journal_events", state.events)
        self.lifecycle.add("journal_skipped_lines", state.skipped_lines)
        now = _time.time()
        with self._lock:
            for job_id in state.evicted:
                self._evicted[job_id] = now
        stats["evicted_tombstones"] = len(state.evicted)
        self.lifecycle.add("evicted_tombstones", len(state.evicted))
        for record in state.jobs.values():
            try:
                # Re-validate through the front door: a journal from an
                # older code version may name designs or bounds that no
                # longer exist, and recovery must degrade, not crash.
                spec = validate_job_spec(record.spec)
            except ConfigError:
                stats["invalid_jobs"] += 1
                self.lifecycle.add("invalid_recovered_jobs")
                continue
            self.submit(spec, _replay=True)
            stats["recovered_jobs"] += 1
            self.lifecycle.add("recovered_jobs")
            if record.state in ("done", "failed"):
                stats["replayed_finished_jobs"] += 1
                self.lifecycle.add("replayed_finished_jobs")
            else:
                stats["resumed_jobs"] += 1
                self.lifecycle.add("resumed_jobs")
        self.recovery_stats = stats
        return stats

    # -- TTL eviction ------------------------------------------------------
    def _reaper_loop(self) -> None:
        while not self._reap_stop.wait(self.reap_interval_s):
            try:
                self.reap()
            except Exception:  # noqa: BLE001 — the reaper must survive
                pass

    def reap(self, now: Optional[float] = None) -> int:
        """Evict terminal jobs older than ``job_ttl_s``; returns count.

        Eviction frees the job table entry and its frozen result bytes;
        the id answers 410 ``gone`` through a tombstone, and the result
        itself remains reachable by resubmitting the spec (same
        deterministic id, every cell a cache hit).  ``now`` is
        injectable for deterministic tests.
        """
        if self.job_ttl_s is None:
            return 0
        now = _time.time() if now is None else now
        evicted: List[Job] = []
        with self._lock:
            for job in list(self._jobs.values()):
                if (job.state in ("done", "failed")
                        and job.finished_s is not None
                        and now - job.finished_s >= self.job_ttl_s):
                    del self._jobs[job.id]
                    if job.key is not None:
                        self._by_key.pop(job.key, None)
                    journal = self._journals.pop(job.id, None)
                    if journal is not None:
                        journal.close()
                    self._evicted[job.id] = now
                    evicted.append(job)
            for job in evicted:
                self.lifecycle.add("jobs_evicted")
                if self.journal is not None:
                    self.journal.record_evict(job.id)
        return len(evicted)

    def evicted_at(self, job_id: str) -> Optional[float]:
        """When ``job_id`` was TTL-evicted, or ``None`` if it wasn't."""
        with self._lock:
            return self._evicted.get(job_id)

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs_by_state(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            counts["evicted"] = len(self._evicted)
            return counts

    # -- execution ---------------------------------------------------------
    def _checkpoint_for(self, job: Job):
        """The job's checkpoint journal (shared across its cells)."""
        if self.checkpoint_dir is None:
            return None
        from repro.analysis.resilience import CheckpointJournal

        with self._lock:
            journal = self._journals.get(job.id)
            if journal is None:
                os.makedirs(self.checkpoint_dir, exist_ok=True)
                journal = CheckpointJournal(
                    os.path.join(self.checkpoint_dir, f"{job.id}.ckpt"))
                self._journals[job.id] = journal
        return journal

    def _worker_loop(self) -> None:
        while True:
            unit = self._queue.get()
            if unit is None:
                return
            job, index = unit
            try:
                self._run_cell(job, index)
            finally:
                self._queue.task_done()

    def _run_cell(self, job: Job, index: int) -> None:
        cell = job.cells[index]
        with self._lock:
            if job.state == "queued":
                job.state = "running"
            job.cell_status[index]["state"] = "running"
        checkpoint = self._checkpoint_for(job)
        # A shared checkpoint journal is append-only through one file
        # handle; serialize the job's cells around it.  Without
        # checkpointing, cells of one job run fully concurrently.
        guard = job._exec_lock if checkpoint is not None else _NULL_GUARD
        try:
            with guard:
                (outcome,) = execute_cells_detailed(
                    [cell], workers=1, cache=self.cache, policy=self.policy,
                    checkpoint=checkpoint, telemetry=self.telemetry)
        except Exception as error:  # noqa: BLE001 — any failure fails the cell
            with self._lock:
                job.cell_status[index].update(
                    state="failed", attempts=getattr(error, "attempts", 1))
                job.error = (f"cell ({cell.design}, {cell.benchmark}): "
                             f"{error}")
                self.counter.add("cells_failed")
                if self.journal is not None:
                    self.journal.record_cell(job.id, index,
                                             job.cell_keys[index],
                                             "failed", None)
                self._maybe_finish(job)
            return
        with self._lock:
            job.outcomes[index] = outcome
            job.cell_status[index].update(
                state="done", from_cache=outcome.from_cache,
                wall_time_s=round(outcome.wall_time_s, 4),
                attempts=outcome.attempts)
            self.counter.add("cells_from_cache" if outcome.from_cache
                             else "cells_simulated")
            if self.journal is not None:
                self.journal.record_cell(job.id, index, job.cell_keys[index],
                                         "done", outcome.from_cache)
            self._maybe_finish(job)

    def _maybe_finish(self, job: Job) -> None:
        """Finalize ``job`` once no cell is pending (call under lock)."""
        if any(status["state"] in ("pending", "running")
               for status in job.cell_status):
            return
        job.wall_time_s = _time.perf_counter() - job._started
        job.finished_s = _time.time()
        if any(status["state"] == "failed" for status in job.cell_status):
            job.state = "failed"
            self.counter.add("jobs_failed")
        else:
            try:
                job.result_bytes = self._render_result(job)
                job.state = "done"
                self.counter.add("jobs_completed")
            except Exception as error:  # pragma: no cover — render bug guard
                job.state = "failed"
                job.error = f"result rendering failed: {error}"
                self.counter.add("jobs_failed")
        job.manifest = self._job_manifest(job)
        if self.journal is not None:
            self.journal.record_finish(job.id, job.state, job.error)

    # -- result rendering --------------------------------------------------
    def _grid_for(self, job: Job) -> ExperimentGrid:
        results = {}
        cell_meta = {}
        for cell, key, outcome in zip(job.cells, job.cell_keys,
                                      job.outcomes):
            coordinate = (cell.design, cell.benchmark)
            results[coordinate] = outcome.result
            cell_meta[coordinate] = {
                "wall_time_s": outcome.wall_time_s,
                "from_cache": outcome.from_cache,
                "attempts": outcome.attempts,
                "from_checkpoint": outcome.from_checkpoint,
                "l2_hits": outcome.result.l2_hits,
                "l2_misses": outcome.result.l2_misses,
                "cache_key": key,
            }
        return ExperimentGrid(job.spec.designs, job.spec.benchmarks,
                              results, cell_meta=cell_meta)

    def _render_result(self, job: Job) -> bytes:
        """The frozen, deterministic result document for a finished job.

        Everything here is a pure function of the job's cells (floats
        round-trip JSON exactly), so identical grids — whether deduped
        in-process or resubmitted to a restarted server over one result
        cache — produce byte-identical documents.  Execution provenance
        (wall times, cache hits) deliberately lives in the *status*
        document, not here.
        """
        from repro.analysis.tables import normalized_time_artifact

        grid = self._grid_for(job)
        cells: Dict[str, Dict[str, Any]] = {}
        for design in grid.designs:
            for benchmark in grid.benchmarks:
                result = grid.result(design, benchmark)
                cells.setdefault(design, {})[benchmark] = {
                    "cycles": result.cycles,
                    "instructions": result.instructions,
                    "ipc": result.ipc,
                    "l2_requests": result.l2_requests,
                    "l2_hits": result.l2_hits,
                    "l2_misses": result.l2_misses,
                    "l2_miss_ratio": result.miss_ratio,
                    "misses_per_kinstr": result.misses_per_kinstr,
                    "mean_lookup_latency": result.mean_lookup_latency,
                    "predictable_lookup_fraction":
                        result.predictable_lookup_fraction,
                    "banks_accessed_per_request":
                        result.banks_accessed_per_request,
                    "link_utilization": result.link_utilization,
                    "network_power_w": result.network_power_w,
                }
        normalized = normalized_time_artifact(grid, self.lane)
        document = {
            "schema": SERVICE_SCHEMA_VERSION,
            "job_id": job.id,
            "spec": job.spec.as_dict(),
            "designs": list(grid.designs),
            "benchmarks": list(grid.benchmarks),
            "cells": cells,
            "normalized_time": normalized,
            "artifacts": {
                "grid.normalized": derived_key(
                    "grid.normalized", grid.cell_keys(),
                    {"designs": list(grid.designs),
                     "benchmarks": list(grid.benchmarks)}),
            },
            "sections": self._section_availability(grid),
        }
        return json.dumps(document, sort_keys=True,
                          separators=(",", ":")).encode()

    def _section_availability(self, grid: ExperimentGrid) -> Dict[str, Any]:
        """Warm report sections this grid's cells can answer.

        For every :data:`~repro.analysis.report.REPORT_SECTIONS` entry
        whose grid slice the job's designs cover, report the derived
        key — and, when the lane already holds the artifact (typically
        warmed by a ``repro report`` run over the same cache), serve it
        inline.  Sections are never *computed* here: a job result must
        not grow the job's work, only surface what is already paid for.
        """
        from repro.analysis.report import REPORT_SECTIONS

        grids = {"main": grid, "family": grid}
        available: Dict[str, Any] = {}
        job_designs = set(grid.designs)
        for section in REPORT_SECTIONS:
            needed = set()
            for grid_name, designs in section.slices:
                needed |= (set(designs) if designs is not None
                           else _CANONICAL_SLICE_DESIGNS[grid_name])
            if not needed <= job_designs:
                continue
            key = derived_key(f"report.{section.name}",
                              section.cell_keys(grids), None)
            entry: Dict[str, Any] = {"key": key, "warm": False}
            if self.lane.cache is not None:
                artifact = self.lane.cache.get(key)
                if artifact is not None:
                    entry.update(warm=True, artifact=artifact)
            available[section.name] = entry
        return available

    def lifecycle_as_dict(self) -> Dict[str, int]:
        """The ``service.lifecycle.*`` counts, JSON-ready, stable zeros."""
        return {name: self.lifecycle[name] for name in LIFECYCLE_COUNTS}

    def _job_manifest(self, job: Job) -> dict:
        """A RunManifest dict embedded in the finished job's status."""
        manifest = build_manifest(
            kind="service.job",
            config=dict(job.spec.as_dict(), job_id=job.id),
            metrics=self.registry.snapshot(),
            wall_time_s=job.wall_time_s or 0.0,
            seed=job.spec.seed,
            resilience=self.telemetry.as_dict(),
            derived=self.lane.as_dict(),
            lifecycle=self.lifecycle_as_dict(),
        )
        return manifest_to_dict(manifest)

    # -- artifact lookup ---------------------------------------------------
    def lookup_artifact(self, key: str) -> Optional[Dict[str, Any]]:
        """One cached artifact by content key, from either lane.

        The derived lane is checked first (its keys are what job
        results advertise), then the result lane (a cell's result-cache
        key, as listed in ``cell_status`` / ``RunManifest`` documents).
        """
        if self.lane.cache is not None:
            artifact = self.lane.cache.get(key)
            if artifact is not None:
                self.counter.add("artifacts_served")
                return {"key": key, "lane": "derived", "artifact": artifact}
        if self.cache is not None:
            result = self.cache.get(key)
            if result is not None:
                from repro.analysis.storage import result_to_dict

                self.counter.add("artifacts_served")
                return {"key": key, "lane": "result",
                        "result": result_to_dict(result)}
        return None


class _NullGuard:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_GUARD = _NullGuard()

"""Durable job journal: the service's restart-recovery log.

The :class:`~repro.service.jobs.JobStore` is an in-memory job table;
without help, a ``SIGKILL`` mid-job silently loses every in-flight
submission (only *completed cells* survive, via the result cache).
:class:`JobJournal` closes that gap with the same discipline as
:class:`~repro.analysis.resilience.CheckpointJournal`: an append-only
JSONL file, one self-contained event per line, flushed at every write,
loaded tolerantly (a half-written final line — the expected artifact of
a crash — is skipped and counted, never fatal).

Events (``JOB_JOURNAL_FORMAT_VERSION`` lines)::

    {"format": 1, "event": "submit",   "job_id": ..., "key": ..., "spec": {...}}
    {"format": 1, "event": "cell",     "job_id": ..., "index": N,
     "key": <cell cache key>, "state": "done"|"failed", "from_cache": bool}
    {"format": 1, "event": "finish",   "job_id": ..., "state": "done"|"failed",
     "error": ...?}
    {"format": 1, "event": "evict",    "job_id": ...}
    {"format": 1, "event": "shutdown", "clean": bool}

Recovery (:meth:`JobJournal.load` + :meth:`JobStore.recover
<repro.service.jobs.JobStore.recover>`) folds the event stream in
order into the set of known jobs: a ``submit`` (re-)registers a job, an
``evict`` tombstones it, a later ``submit`` of the same id resurrects
it.  The journal deliberately stores no result bytes — a cell's result
lives in the content-addressed result cache under the cell key the
``cell`` event names, so replaying a job simply re-enqueues its cells:
completed cells answer from the cache (zero simulation), unfinished
cells run for the first time, and the re-rendered result document is
byte-identical because rendering is a pure function of the cells.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time as _time
from pathlib import Path
from typing import Any, Dict, Optional, Set, Union

from repro.analysis.resilience import load_jsonl

#: Journal line layout version (bump on incompatible change).
JOB_JOURNAL_FORMAT_VERSION = 1

#: The event vocabulary, in lifecycle order.
JOB_JOURNAL_EVENTS = ("submit", "cell", "finish", "evict", "shutdown")


@dataclasses.dataclass
class JournaledJob:
    """One job's folded journal state (mutable while folding)."""

    job_id: str
    key: str
    spec: Dict[str, Any]
    state: str = "queued"  # last journaled state: queued | done | failed
    error: Optional[str] = None
    cells_done: int = 0


@dataclasses.dataclass
class JournalState:
    """The folded contents of one journal file.

    ``jobs`` holds every non-evicted job in first-submission order
    (newest ``finish`` state wins); ``evicted`` holds tombstoned job
    ids whose status must answer 410 ``gone`` after a restart;
    ``clean_shutdown`` reports whether the last lifecycle event was a
    clean ``shutdown`` marker — a crashed server never wrote one.
    """

    jobs: Dict[str, JournaledJob] = dataclasses.field(default_factory=dict)
    evicted: Set[str] = dataclasses.field(default_factory=set)
    clean_shutdown: bool = False
    events: int = 0
    skipped_lines: int = 0


class JobJournal:
    """Append-only JSONL journal of job lifecycle transitions.

    Writes are serialized by an internal lock (the store appends from
    several worker threads), opened lazily, and flushed per line so a
    ``kill -9`` loses at most the line being written.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path).expanduser()
        self._handle = None
        self._lock = threading.Lock()
        self.recorded = 0

    # -- writing -----------------------------------------------------------
    def _append(self, payload: Dict[str, Any]) -> None:
        line = json.dumps(dict(payload, format=JOB_JOURNAL_FORMAT_VERSION,
                               t=round(_time.time(), 3)),
                          separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            self.recorded += 1

    def record_submit(self, job_id: str, key: str,
                      spec: Dict[str, Any]) -> None:
        self._append({"event": "submit", "job_id": job_id, "key": key,
                      "spec": spec})

    def record_cell(self, job_id: str, index: int, key: str, state: str,
                    from_cache: Optional[bool]) -> None:
        self._append({"event": "cell", "job_id": job_id, "index": index,
                      "key": key, "state": state, "from_cache": from_cache})

    def record_finish(self, job_id: str, state: str,
                      error: Optional[str] = None) -> None:
        payload: Dict[str, Any] = {"event": "finish", "job_id": job_id,
                                   "state": state}
        if error is not None:
            payload["error"] = error
        self._append(payload)

    def record_evict(self, job_id: str) -> None:
        self._append({"event": "evict", "job_id": job_id})

    def record_shutdown(self, clean: bool) -> None:
        self._append({"event": "shutdown", "clean": clean})

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- loading -----------------------------------------------------------
    def load(self) -> JournalState:
        """Fold the journal's event stream into a :class:`JournalState`.

        Tolerant by design: a corrupt or truncated line, an unknown
        event, or an event for a never-submitted job is counted in
        ``skipped_lines`` and ignored — recovery must degrade, never
        refuse.  Events are folded strictly in file order, so an
        ``evict`` followed by a re-``submit`` of the same id (the
        TTL-eviction-then-resubmit path) correctly resurrects the job.
        """
        state = JournalState()
        payloads, bad_lines = load_jsonl(self.path)
        state.skipped_lines = bad_lines
        for payload in payloads:
            if (not isinstance(payload, dict)
                    or payload.get("format") != JOB_JOURNAL_FORMAT_VERSION
                    or payload.get("event") not in JOB_JOURNAL_EVENTS):
                state.skipped_lines += 1
                continue
            state.events += 1
            event = payload["event"]
            if event == "shutdown":
                # Only a *final* clean marker counts: any later event
                # means the process came back and died uncleanly after.
                state.clean_shutdown = bool(payload.get("clean"))
                continue
            state.clean_shutdown = False
            if event == "submit":
                job_id, key, spec = (payload.get("job_id"),
                                     payload.get("key"), payload.get("spec"))
                if (not isinstance(job_id, str) or not isinstance(key, str)
                        or not isinstance(spec, dict)):
                    state.events -= 1
                    state.skipped_lines += 1
                    continue
                state.evicted.discard(job_id)
                # A re-submit after eviction starts a fresh lifecycle.
                state.jobs[job_id] = JournaledJob(job_id=job_id, key=key,
                                                 spec=spec)
                continue
            job_id = payload.get("job_id")
            job = state.jobs.get(job_id)
            if job is None:
                state.events -= 1
                state.skipped_lines += 1
                continue
            if event == "cell":
                if payload.get("state") == "done":
                    job.cells_done += 1
            elif event == "finish":
                if payload.get("state") in ("done", "failed"):
                    job.state = payload["state"]
                    job.error = payload.get("error")
            elif event == "evict":
                state.jobs.pop(job_id, None)
                state.evicted.add(job_id)
        return state


def as_job_journal(journal: Union["JobJournal", str, os.PathLike, None],
                   ) -> Optional[JobJournal]:
    """Coerce a journal argument (path, dir, or journal) to a journal.

    A directory (existing, or a path with no ``.jsonl`` suffix) means
    "the canonical ``journal.jsonl`` inside it" — the ``repro serve
    --journal-dir`` spelling.
    """
    if journal is None or isinstance(journal, JobJournal):
        return journal
    path = Path(journal).expanduser()
    if path.is_dir() or path.suffix != ".jsonl":
        path = path / "journal.jsonl"
    return JobJournal(path)


def describe_recovery(stats: Dict[str, int]) -> str:
    """One human line for the CLI after a journal replay."""
    return (f"journal: recovered {stats.get('recovered_jobs', 0)} job(s) — "
            f"{stats.get('resumed_jobs', 0)} resumed, "
            f"{stats.get('replayed_finished_jobs', 0)} already finished, "
            f"{stats.get('evicted_tombstones', 0)} evicted tombstone(s), "
            f"{stats.get('skipped_lines', 0)} skipped line(s)")


__all__ = [
    "JOB_JOURNAL_EVENTS",
    "JOB_JOURNAL_FORMAT_VERSION",
    "JobJournal",
    "JournalState",
    "JournaledJob",
    "as_job_journal",
    "describe_recovery",
]

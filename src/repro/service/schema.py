"""Schema-first definitions for the simulation service's HTTP API.

Following the schemathesis exemplar (ROADMAP item 1), the API surface
is declared as *data* before any handler exists: :data:`ENDPOINTS`
enumerates every route with its request/response shapes, and
:data:`JOB_SPEC_SCHEMA` is the JSON-Schema document for the one
non-trivial request body — the job spec a ``POST /v1/jobs`` carries.
``docs/SERVICE.md`` renders from the same definitions the validator
enforces and the property tests fuzz, so the three can never drift
apart silently.

Validation is deliberately routed through the design registry:
:func:`validate_job_spec` resolves every design name to its registered
:class:`~repro.core.config.DesignConfig` (the object whose
``__post_init__`` already guarantees a buildable design) and raises the
same typed :class:`~repro.core.config.ConfigError` for anything
invalid, so a bad HTTP payload and a bad CLI override fail through one
error type with one message style.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

from repro.core.config import ConfigError, get_design, resolve_design_name
from repro.workloads.profiles import benchmark_names

#: Bump when a response document's layout changes incompatibly.
SERVICE_SCHEMA_VERSION = 1

#: Service-side guard rails: a long-running shared service must bound
#: the work one request can demand.  Large grids are submitted as
#: several jobs; the result cache makes the split free.
MAX_REFS_PER_CELL = 2_000_000
MAX_CELLS_PER_JOB = 256
MAX_SEED = 2**32 - 1

#: Admission-control defaults (``repro serve --max-active-jobs /
#: --max-queued-cells``; pass 0 for unlimited).  Submits beyond either
#: cap answer 429 ``over_capacity`` with a ``Retry-After`` header; the
#: stdlib client retries with exponential backoff that honors it.
DEFAULT_MAX_ACTIVE_JOBS = 32
DEFAULT_MAX_QUEUED_CELLS = 2048

#: Seconds the ``Retry-After`` header advertises on 429/503 rejects.
DEFAULT_RETRY_AFTER_S = 1.0

#: JSON Schema for the ``POST /v1/jobs`` request body.  This is the
#: document SERVICE.md embeds and the Hypothesis suite fuzzes against
#: :func:`validate_job_spec` — the validator is the executable twin of
#: this declaration.
JOB_SPEC_SCHEMA = {
    "type": "object",
    "required": ["designs"],
    "additionalProperties": False,
    "properties": {
        "designs": {
            "type": "array",
            "minItems": 1,
            "items": {"type": "string"},
            "description": "design names (any case/separator spelling); "
                           "resolved against the Table 2 registry; "
                           "duplicates rejected; first entry is the "
                           "normalization baseline",
        },
        "benchmarks": {
            "type": "array",
            "minItems": 1,
            "items": {"type": "string"},
            "description": "calibrated workload profiles; omitted means "
                           "the full 12-benchmark suite",
        },
        "n_refs": {
            "type": "integer",
            "minimum": 1,
            "maximum": MAX_REFS_PER_CELL,
            "default": 20_000,
            "description": "L2 references simulated per cell",
        },
        "seed": {
            "type": "integer",
            "minimum": 0,
            "maximum": MAX_SEED,
            "default": 7,
            "description": "trace-generation seed (identical across "
                           "designs, like the paper's shared checkpoints)",
        },
        "warmup_fraction": {
            "type": "number",
            "minimum": 0.0,
            "exclusiveMaximum": 1.0,
            "default": 0.3,
            "description": "leading fraction of each trace excluded "
                           "from measurement",
        },
        "sanitize": {
            "type": "boolean",
            "default": False,
            "description": "run every cell under the simulator-core "
                           "sanitizer (part of the cell cache key)",
        },
    },
}

#: Every route the service answers, as (method, path template,
#: one-line summary).  SERVICE.md's endpoint reference and the
#: route-coverage tests iterate this table.
ENDPOINTS = (
    ("POST", "/v1/jobs",
     "submit a design x benchmark grid job (body: JOB_SPEC_SCHEMA)"),
    ("GET", "/v1/jobs/{id}",
     "job status: state, per-cell progress, runner telemetry"),
    ("GET", "/v1/jobs/{id}/result",
     "finished job's grid stats + derived-lane artifacts"),
    ("GET", "/v1/artifacts/{key}",
     "one cached artifact by content key (derived or result lane)"),
    ("GET", "/v1/healthz",
     "liveness + service.* / runner.* / analysis.derived.* metrics"),
)

#: Machine-readable error codes the JSON error envelope uses.
ERROR_CODES = {
    "invalid_json": "request body is not valid JSON",
    "invalid_spec": "job spec failed validation (ConfigError detail)",
    "unknown_job": "no job with that id",
    "job_failed": "the job finished with a permanent cell failure",
    "unknown_artifact": "no cached artifact under that key",
    "invalid_key": "artifact key is not a 64-hex-digit content key",
    "not_found": "no such route",
    "method_not_allowed": "route exists but not for this HTTP method",
    "payload_too_large": "request body exceeds the service limit",
    "bad_request": "malformed HTTP request (bad header, length, or line)",
    "not_implemented": "the server does not support this HTTP method",
    "over_capacity": "admission control rejected the submit; retry after "
                     "the Retry-After delay",
    "draining": "the server is draining for shutdown and accepts no new "
                "jobs; retry after the Retry-After delay",
    "gone": "the job's status was evicted after its TTL; resubmit the "
            "spec to recover the result from the cache",
    "internal": "unexpected server error (the request was not dropped)",
}


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """A validated grid-job specification (one ``POST /v1/jobs`` body).

    Construction goes through :func:`validate_job_spec`; fields are
    normalized (design names resolved to registry spellings, benchmark
    default expanded) so two spellings of one grid dedupe to one job.
    """

    designs: Tuple[str, ...]
    benchmarks: Tuple[str, ...]
    n_refs: int = 20_000
    seed: int = 7
    warmup_fraction: float = 0.3
    sanitize: bool = False

    def as_dict(self) -> dict:
        return {
            "designs": list(self.designs),
            "benchmarks": list(self.benchmarks),
            "n_refs": self.n_refs,
            "seed": self.seed,
            "warmup_fraction": self.warmup_fraction,
            "sanitize": self.sanitize,
        }


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _fail(message: str) -> None:
    raise ConfigError(f"job spec: {message}")


def _validated_names(raw: object, field: str, resolve) -> Tuple[str, ...]:
    """A tuple of resolved, duplicate-free names for one list field."""
    if (not isinstance(raw, (list, tuple)) or not raw
            or not all(isinstance(item, str) for item in raw)):
        _fail(f"{field} must be a non-empty array of strings, got {raw!r}")
    resolved = []
    for item in raw:
        try:
            resolved.append(resolve(item))
        except ValueError as error:
            raise ConfigError(f"job spec: {error}") from error
    duplicates = sorted({name for name in resolved
                         if resolved.count(name) > 1})
    if duplicates:
        _fail(f"{field} contains duplicate entries {duplicates} "
              f"(after name resolution)")
    return tuple(resolved)


def _resolve_benchmark(name: str) -> str:
    if name not in benchmark_names():
        raise ValueError(f"unknown benchmark {name!r}; choose from "
                         f"{sorted(benchmark_names())}")
    return name


def validate_job_spec(payload: object) -> JobSpec:
    """Validate one ``POST /v1/jobs`` body into a :class:`JobSpec`.

    Raises :class:`~repro.core.config.ConfigError` — and only
    ``ConfigError`` — for every way a payload can be invalid; the
    Hypothesis suite in ``tests/test_service.py`` enforces that
    contract over arbitrary JSON.
    """
    if not isinstance(payload, dict):
        _fail(f"body must be a JSON object, got {type(payload).__name__}")
    known = set(JOB_SPEC_SCHEMA["properties"])
    unknown = sorted(set(payload) - known)
    if unknown:
        _fail(f"unknown field(s) {unknown}; known fields: {sorted(known)}")

    designs = _validated_names(payload["designs"], "designs",
                               resolve_design_name) \
        if "designs" in payload else _fail("designs is required")
    for design in designs:
        # The registry lookup is the DesignConfig-backed guarantee: a
        # name that resolves maps to a config whose __post_init__ has
        # already proven the design buildable.
        get_design(design)
    benchmarks = (_validated_names(payload["benchmarks"], "benchmarks",
                                   _resolve_benchmark)
                  if "benchmarks" in payload else tuple(benchmark_names()))

    n_refs = payload.get("n_refs", 20_000)
    if not _is_int(n_refs) or not 1 <= n_refs <= MAX_REFS_PER_CELL:
        _fail(f"n_refs must be an integer in [1, {MAX_REFS_PER_CELL}], "
              f"got {n_refs!r}")
    seed = payload.get("seed", 7)
    if not _is_int(seed) or not 0 <= seed <= MAX_SEED:
        _fail(f"seed must be an integer in [0, {MAX_SEED}], got {seed!r}")
    warmup = payload.get("warmup_fraction", 0.3)
    if (not isinstance(warmup, (int, float)) or isinstance(warmup, bool)
            or not math.isfinite(warmup) or not 0.0 <= warmup < 1.0):
        _fail(f"warmup_fraction must be a finite number in [0, 1), "
              f"got {warmup!r}")
    sanitize = payload.get("sanitize", False)
    if not isinstance(sanitize, bool):
        _fail(f"sanitize must be a boolean, got {sanitize!r}")

    cells = len(designs) * len(benchmarks)
    if cells > MAX_CELLS_PER_JOB:
        _fail(f"grid has {cells} cells; the service caps a job at "
              f"{MAX_CELLS_PER_JOB} (split it into several jobs — the "
              f"shared result cache makes the split free)")
    return JobSpec(designs=designs, benchmarks=benchmarks, n_refs=n_refs,
                   seed=seed, warmup_fraction=float(warmup),
                   sanitize=sanitize)

"""Stdlib HTTP front end over the :class:`~repro.service.jobs.JobStore`.

One :class:`http.server.ThreadingHTTPServer` answers the five routes
:data:`~repro.service.schema.ENDPOINTS` declares.  Handlers are thin:
parse -> :class:`JobStore` call -> JSON.  All failures use one error
envelope::

    {"error": {"code": "<ERROR_CODES key>", "message": "...",
               "detail": "..."?}}

so clients can branch on ``code`` without parsing prose.  Spec
validation errors surface the typed
:class:`~repro.core.config.ConfigError` message as ``detail`` — the
same text a bad CLI invocation prints.

The envelope contract is total: *every* response the server writes —
including the stdlib's own error paths (malformed request line, bad
``Content-Length``, unsupported method) and unexpected handler
exceptions — is a JSON envelope, never an HTML error page, a bare
traceback, or a dropped connection.  The HTTP fuzz suite in
``tests/test_service.py`` enforces this over arbitrary method x path x
body combinations.

Backpressure and lifecycle surface here too: over-capacity submits
answer 429 ``over_capacity`` and drains answer 503 ``draining``, both
with a ``Retry-After`` header; TTL-evicted job ids answer 410 ``gone``.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.config import ConfigError
from repro.service.jobs import AdmissionError, DrainingError, JobStore
from repro.service.schema import (
    ERROR_CODES,
    SERVICE_SCHEMA_VERSION,
    validate_job_spec,
)

#: Largest request body the service will read (a job spec is tiny; this
#: guards the shared server against accidental multi-megabyte POSTs).
MAX_BODY_BYTES = 64 * 1024

#: Artifact keys are SHA-256 content keys — nothing else touches disk.
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")

_JOB_ROUTE = re.compile(r"^/v1/jobs/([A-Za-z0-9_.-]+)$")
_RESULT_ROUTE = re.compile(r"^/v1/jobs/([A-Za-z0-9_.-]+)/result$")
_ARTIFACT_ROUTE = re.compile(r"^/v1/artifacts/([^/]+)$")

#: Envelope codes for the HTTP statuses the *stdlib* error machinery
#: can emit on its own (malformed request line, oversized headers,
#: unsupported method/version) — routed through :meth:`send_error` so
#: even those failures keep the JSON envelope contract.
_STDLIB_ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    414: "bad_request",
    431: "bad_request",
    501: "not_implemented",
    505: "not_implemented",
}


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes one request; the store lives on the server object."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------
    @property
    def store(self) -> JobStore:
        return self.server.store  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "quiet", True):
            return
        super().log_message(format, *args)

    def _send(self, status: int, document: Any,
              raw: Optional[bytes] = None,
              headers: Optional[Dict[str, str]] = None) -> None:
        body = raw if raw is not None else json.dumps(
            document, sort_keys=True, indent=1).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, code: str, message: Optional[str] = None,
               detail: Optional[str] = None,
               retry_after_s: Optional[float] = None) -> None:
        assert code in ERROR_CODES, f"undeclared error code {code!r}"
        self.store.counter.add("errors")
        envelope: dict = {"code": code,
                          "message": message or ERROR_CODES[code]}
        if detail is not None:
            envelope["detail"] = detail
        headers = None
        if retry_after_s is not None:
            envelope["retry_after_s"] = retry_after_s
            # The header is integer seconds (RFC 9110); round up so a
            # compliant client never retries early.
            headers = {"Retry-After": str(max(1, int(-(-retry_after_s // 1))))}
        self._send(status, {"error": envelope}, headers=headers)

    def send_error(self, code: int, message: Optional[str] = None,
                   explain: Optional[str] = None) -> None:
        """Route the stdlib's own error paths through the JSON envelope.

        ``BaseHTTPRequestHandler`` calls this for failures that happen
        before any ``do_*`` method runs — an unparseable request line,
        an unsupported method (501), oversized headers — and would
        normally emit an HTML error page.  The service's contract is
        envelope-or-nothing, so map the status onto a declared code.
        """
        self.close_connection = True
        try:
            self._error(code, _STDLIB_ERROR_CODES.get(code, "bad_request"),
                        message=message, detail=explain)
        except Exception:  # noqa: BLE001 — the socket may already be gone
            pass

    def _read_body(self) -> Optional[bytes]:
        """The request body, or ``None`` after sending a 400/413."""
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            self._error(400, "bad_request",
                        detail=f"malformed Content-Length header "
                               f"{raw_length!r}")
            return None
        if length < 0:
            self._error(400, "bad_request",
                        detail=f"negative Content-Length {length}")
            return None
        if length > MAX_BODY_BYTES:
            self._error(413, "payload_too_large",
                        detail=f"body is {length} bytes; the service "
                               f"accepts at most {MAX_BODY_BYTES}")
            return None
        return self.rfile.read(length)

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self, route: Callable[[], None]) -> None:
        """Run one routed handler under the envelope guarantee.

        An unexpected handler exception must produce a 500 envelope,
        never a traceback over a dropped connection; a client that
        vanished mid-response is the one case there is nobody left to
        answer.
        """
        try:
            route()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as error:  # noqa: BLE001 — envelope everything
            try:
                self._error(500, "internal",
                            detail=f"{type(error).__name__}: {error}")
            except Exception:  # noqa: BLE001 — response already underway
                self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self._dispatch(self._route_post)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch(self._route_get)

    def do_PUT(self) -> None:  # noqa: N802 — http.server API
        self._dispatch(self._route_unsupported)

    def do_DELETE(self) -> None:  # noqa: N802 — http.server API
        self._dispatch(self._route_unsupported)

    def do_PATCH(self) -> None:  # noqa: N802 — http.server API
        self._dispatch(self._route_unsupported)

    def _route_unsupported(self) -> None:
        self.store.counter.add("requests")
        self._error(405, "method_not_allowed",
                    detail=f"{self.command} is not supported on any route")

    def _route_post(self) -> None:
        self.store.counter.add("requests")
        if self.path == "/v1/jobs":
            self._post_job()
        elif (self.path == "/v1/healthz" or _JOB_ROUTE.match(self.path)
              or _RESULT_ROUTE.match(self.path)
              or _ARTIFACT_ROUTE.match(self.path)):
            self._error(405, "method_not_allowed")
        else:
            self._error(404, "not_found")

    def _route_get(self) -> None:
        self.store.counter.add("requests")
        if self.path == "/v1/healthz":
            self._get_healthz()
            return
        match = _RESULT_ROUTE.match(self.path)
        if match:
            self._get_result(match.group(1))
            return
        match = _JOB_ROUTE.match(self.path)
        if match:
            self._get_job(match.group(1))
            return
        match = _ARTIFACT_ROUTE.match(self.path)
        if match:
            self._get_artifact(match.group(1))
            return
        if self.path == "/v1/jobs":
            self._error(405, "method_not_allowed")
        else:
            self._error(404, "not_found")

    # -- handlers ----------------------------------------------------------
    def _post_job(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body or b"null")
        except ValueError as error:
            self._error(400, "invalid_json", detail=str(error))
            return
        try:
            spec = validate_job_spec(payload)
        except ConfigError as error:
            self._error(400, "invalid_spec", detail=str(error))
            return
        try:
            job, created = self.store.submit(spec)
        except DrainingError as error:
            self._error(503, "draining", detail=str(error),
                        retry_after_s=error.retry_after_s)
            return
        except AdmissionError as error:
            self._error(429, "over_capacity", detail=str(error),
                        retry_after_s=error.retry_after_s)
            return
        with self.store._lock:
            document = job.as_dict()
        document["deduplicated"] = not created
        self._send(201 if created else 200, document)

    def _get_job(self, job_id: str) -> None:
        job = self.store.get(job_id)
        if job is None:
            if self.store.evicted_at(job_id) is not None:
                self._error(410, "gone", detail=job_id)
            else:
                self._error(404, "unknown_job", detail=job_id)
            return
        with self.store._lock:
            self._send(200, job.as_dict())

    def _get_result(self, job_id: str) -> None:
        job = self.store.get(job_id)
        if job is None:
            if self.store.evicted_at(job_id) is not None:
                self._error(410, "gone", detail=job_id)
            else:
                self._error(404, "unknown_job", detail=job_id)
            return
        with self.store._lock:
            state = job.state
            result_bytes = job.result_bytes
            document = {"pending": True, "job": job.as_dict()}
            error = job.error
        if state == "done" and result_bytes is not None:
            self._send(200, None, raw=result_bytes)
        elif state == "failed":
            self._error(409, "job_failed", detail=error)
        else:
            self._send(202, document)

    def _get_artifact(self, key: str) -> None:
        if not _KEY_RE.match(key):
            self._error(400, "invalid_key", detail=key)
            return
        found = self.store.lookup_artifact(key)
        if found is None:
            self._error(404, "unknown_artifact", detail=key)
            return
        self._send(200, found)

    def _get_healthz(self) -> None:
        self._send(200, {
            "ok": True,
            "schema": SERVICE_SCHEMA_VERSION,
            "draining": self.store.draining,
            "jobs": self.store.jobs_by_state(),
            "workers": self.store.workers,
            "metrics": self.store.registry.snapshot(),
        })


def make_server(store: JobStore, host: str = "127.0.0.1", port: int = 0,
                quiet: bool = True) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``host:port`` over ``store``.

    ``port=0`` picks a free port (tests); the bound port is
    ``server.server_address[1]``.  The caller owns both lifecycles:
    ``server.shutdown()`` then ``store.close()``.
    """
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.store = store  # type: ignore[attr-defined]
    server.quiet = quiet  # type: ignore[attr-defined]
    server.daemon_threads = True
    # Replay the journal (if any) before workers start: recovered jobs
    # must be registered before the first request can race them.
    store.recover()
    store.start()
    return server


def serve(store: JobStore, host: str = "127.0.0.1", port: int = 8765,
          quiet: bool = False) -> Tuple[str, int]:
    """Run the service until interrupted (the ``repro serve`` loop)."""
    server = make_server(store, host=host, port=port, quiet=quiet)
    bound = server.server_address[:2]
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        store.close()
    return str(bound[0]), int(bound[1])

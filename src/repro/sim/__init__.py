"""Discrete-event simulation kernel, processor, and memory models."""

from repro.sim.engine import Engine
from repro.sim.stats import Counter, Histogram, UtilizationMeter
from repro.sim.memory import MainMemory
from repro.sim.processor import ProcessorConfig, Processor, ExecutionResult
from repro.sim.system import System, SystemResult, run_system
from repro.sim.full_system import FullSystem, FullSystemResult, run_full_system

__all__ = [
    "Engine",
    "Counter",
    "Histogram",
    "UtilizationMeter",
    "MainMemory",
    "ProcessorConfig",
    "Processor",
    "ExecutionResult",
    "System",
    "SystemResult",
    "run_system",
    "FullSystem",
    "FullSystemResult",
    "run_full_system",
]

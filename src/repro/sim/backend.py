"""Pluggable simulation backends for the processor replay loop.

The per-reference loop that replays a trace against an L2 design (the
body of the old ``Processor.run``) is one *backend* behind the small
:class:`SimBackend` protocol.  Two implementations ship:

* :class:`ReferenceBackend` — the scalar per-event loop, moved here
  verbatim.  Supports every feature (tracer, sanitizer) and is the
  semantic definition the differential suite holds other backends to.
* :class:`BatchedBackend` — advances many independent references per
  step with numpy struct-of-arrays state.  The issue-cycle recurrence
  ``cycle += (gap + rem) // width; rem = (gap + rem) % width`` depends
  only on the gap stream, so instruction counts, issue-cycle
  increments, and reorder-buffer floors for a whole chunk are one
  ``cumsum`` each; the remaining loop keeps the L2 design a black box
  (float stats accumulate in exactly the reference order, so grids stay
  byte-identical).  Designs that declare the vectorized batch contract
  (``supports_batch``, e.g. :class:`LatencyProbe`) additionally get a
  fully vectorized fast path: the backend proves from the precomputed
  arrays that no ROB/MSHR/dependence stall can bind anywhere in the
  trace and then computes every completion time without entering Python
  per-reference code at all.

Backends must be *observably identical*: for any (design, trace,
warmup) cell, every backend must produce the same
:class:`~repro.sim.processor.ExecutionResult` and leave the design with
the same statistics — enforced byte-for-byte by
``tests/test_backend_equivalence.py`` via
:func:`~repro.analysis.storage.integrity_digest`.  A backend that
cannot support a feature refuses with the typed
:class:`~repro.core.config.ConfigError` instead of silently degrading:
:class:`BatchedBackend` rejects sanitized runs (the sanitizer's
per-reference retirement hooks are meaningless over a batch) and
requires numpy.

numpy is an *optional* dependency of this module: importing it must
work on a numpy-free interpreter, where ``resolve_backend("batched")``
raises :class:`~repro.core.config.ConfigError` and the reference
backend carries the suite alone.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Iterable, List, NamedTuple, Optional, Sequence, Union

from repro.sim.processor import ExecutionResult
from repro.workloads.trace import Reference

try:  # optional dependency: the reference backend never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None  # type: ignore[assignment]

#: Names `resolve_backend` accepts (also the legal values of
#: ``DesignConfig.backend`` and ``CellSpec.backend``).
BACKEND_NAMES = ("reference", "batched")


def _config_error(message: str):
    # Imported lazily: repro.core.config validates DesignConfig.backend
    # against BACKEND_NAMES at import time, so a top-level import here
    # would be circular.
    from repro.core.config import ConfigError

    return ConfigError(message)


class SimBackend(ABC):
    """Strategy that executes a reference trace against an L2 design.

    ``execute`` receives the :class:`~repro.sim.processor.Processor`
    (for its config, design, tracer, and sanitizer) and must reproduce
    the reference semantics exactly — same
    :class:`~repro.sim.processor.ExecutionResult`, same design-side
    statistics, same tracer event stream.
    """

    #: registry name (``"reference"`` / ``"batched"``).
    name: str = "?"
    #: whether sanitized runs (per-reference invariant hooks) work.
    supports_sanitizer: bool = False

    @abstractmethod
    def execute(self, processor, trace: Iterable[Reference],
                warmup_refs: int = 0) -> ExecutionResult:
        """Replay ``trace``; statistics cover the post-warmup portion."""


class ReferenceBackend(SimBackend):
    """The scalar per-reference loop (the semantic ground truth)."""

    name = "reference"
    supports_sanitizer = True

    def execute(self, processor, trace: Iterable[Reference],
                warmup_refs: int = 0) -> ExecutionResult:
        # The loop below runs once per reference; config fields and bound
        # methods are hoisted into locals to keep it tight.
        cfg = processor.config
        issue_width = cfg.issue_width
        rob_entries = cfg.rob_entries
        mshrs = cfg.mshrs
        l1_latency = cfg.l1_latency
        l2 = processor.l2
        l2_access = l2.access
        cycle = 0
        instr = 0
        gap_remainder = 0
        # In-flight loads as (instruction index, completion time).
        loads: deque = deque()
        stores: deque = deque()  # completion times only
        loads_popleft = loads.popleft
        loads_append = loads.append
        stores_popleft = stores.popleft
        stores_append = stores.append
        last_load_complete = 0
        warmup_cycle = 0
        warmup_instr = 0
        requests = 0

        tracer = processor.tracer
        sanitizer = processor.sanitizer
        for i, ref in enumerate(trace):
            if i == warmup_refs and warmup_refs > 0:
                warmup_cycle, warmup_instr = cycle, instr
                l2.reset_stats()
                if tracer is not None:
                    tracer.emit("run.warmup_end", time=cycle, refs=i,
                                instructions=instr)

            instr += ref.gap
            total_gap = ref.gap + gap_remainder
            cycle += total_gap // issue_width
            gap_remainder = total_gap % issue_width

            # Reorder-buffer limit: older loads must complete before the
            # window can roll this far forward.
            window_floor = instr - rob_entries
            while loads and loads[0][0] <= window_floor:
                _, done = loads_popleft()
                if done > cycle:
                    cycle = done

            # MSHR limit across loads and stores.
            while len(loads) + len(stores) >= mshrs:
                earliest_load = loads[0][1] if loads else None
                earliest_store = stores[0] if stores else None
                if earliest_store is None or (
                        earliest_load is not None and earliest_load <= earliest_store):
                    _, done = loads_popleft()
                else:
                    done = stores_popleft()
                if done > cycle:
                    cycle = done

            if ref.dependent and last_load_complete > cycle:
                cycle = last_load_complete

            outcome = l2_access(ref.addr, cycle + l1_latency,
                                write=ref.write)
            if tracer is not None:
                tracer.emit("l2.access", time=cycle, ref=i, addr=ref.addr,
                            write=ref.write, hit=outcome.hit,
                            latency=outcome.lookup_latency,
                            complete=outcome.complete_time,
                            predictable=outcome.predictable)
            requests += 1
            if ref.write:
                stores_append(outcome.complete_time)
            else:
                loads_append((instr, outcome.complete_time))
                last_load_complete = outcome.complete_time
            if sanitizer is not None:
                sanitizer.on_retire(cycle, instr,
                                    len(loads) + len(stores))

        # Drain: execution ends when the last load's data has returned.
        for _, done in loads:
            if done > cycle:
                cycle = done
        if sanitizer is not None:
            sanitizer.on_quiesce(cycle, len(loads) + len(stores))

        return ExecutionResult(
            cycles=cycle - warmup_cycle,
            instructions=instr - warmup_instr,
            l2_requests=requests - warmup_refs,
            warmup_cycles=warmup_cycle,
        )


class BatchedBackend(SimBackend):
    """numpy struct-of-arrays replay: batch the front end, keep the L2 exact.

    Per chunk of ``chunk`` references, one pass of numpy precomputes the
    instruction counters, issue-cycle increments, and reorder-buffer
    floors (all pure functions of the gap stream); the retained Python
    loop then only services the stall machinery and the L2 access, which
    must stay sequential because design state (bank busy-until times,
    float energy accumulation) is order-sensitive.

    Designs declaring ``supports_batch`` (access outcomes independent of
    call order and time, a pure ``batch_latency`` vector, and a
    ``batch_access`` that updates statistics exactly as repeated
    ``access`` calls would) get the fully vectorized path: the backend
    first *proves* that no reorder-buffer, MSHR, or dependence stall can
    bind anywhere — every completion a pop could wait on is already in
    the past at the pop's issue cycle — and only then skips the Python
    loop entirely.  If the proof fails the generic chunked loop runs
    instead, so the fast path is an optimization, never a semantic fork.
    """

    name = "batched"
    supports_sanitizer = False

    def __init__(self, chunk: int = 8192) -> None:
        if _np is None:
            raise _config_error(
                "the batched backend requires numpy, which is not "
                "installed; use backend='reference'")
        if chunk <= 0:
            raise _config_error("batched backend chunk must be positive")
        self.chunk = chunk

    def execute(self, processor, trace: Iterable[Reference],
                warmup_refs: int = 0) -> ExecutionResult:
        if _np is None:
            raise _config_error(
                "the batched backend requires numpy, which is not "
                "installed; use backend='reference'")
        if processor.sanitizer is not None:
            raise _config_error(
                "the batched backend does not support the sanitizer's "
                "per-reference invariant hooks; run --sanitize with "
                "backend='reference'")
        refs: List[Reference] = (trace if isinstance(trace, list)
                                 else list(trace))
        if (processor.tracer is None
                and getattr(processor.l2, "supports_batch", False)
                and refs):
            result = self._execute_vectorized(processor, refs, warmup_refs)
            if result is not None:
                return result
        return self._execute_chunked(processor, refs, warmup_refs)

    # -- generic chunked path (any design, byte-identical) -----------------

    def _execute_chunked(self, processor, refs: Sequence[Reference],
                         warmup_refs: int) -> ExecutionResult:
        np = _np
        cfg = processor.config
        issue_width = cfg.issue_width
        rob_entries = cfg.rob_entries
        mshrs = cfg.mshrs
        l1_latency = cfg.l1_latency
        l2 = processor.l2
        l2_access = l2.access
        tracer = processor.tracer

        cycle = 0
        gap_remainder = 0
        base_instr = 0
        loads: deque = deque()
        stores: deque = deque()
        loads_popleft = loads.popleft
        loads_append = loads.append
        stores_popleft = stores.popleft
        stores_append = stores.append
        last_load_complete = 0
        warmup_cycle = 0
        warmup_instr = 0
        requests = 0
        instr = 0

        chunk = self.chunk
        for start in range(0, len(refs), chunk):
            batch = refs[start:start + chunk]
            # Struct-of-arrays precompute: a Reference is a NamedTuple of
            # scalars, so one asarray call lifts the whole chunk.
            columns = np.asarray(batch, dtype=np.int64)
            cumulative = np.cumsum(columns[:, 0])
            instr_after = (base_instr + cumulative)
            issue_cycles = (cumulative + gap_remainder) // issue_width
            increments = np.diff(issue_cycles, prepend=0).tolist()
            floors = (instr_after - rob_entries).tolist()
            instr_list = instr_after.tolist()
            gap_remainder = int(
                (gap_remainder + int(cumulative[-1])) % issue_width)
            base_instr = int(instr_after[-1])

            for offset, ref in enumerate(batch):
                i = start + offset
                if i == warmup_refs and warmup_refs > 0:
                    warmup_cycle, warmup_instr = cycle, instr
                    l2.reset_stats()
                    if tracer is not None:
                        tracer.emit("run.warmup_end", time=cycle, refs=i,
                                    instructions=instr)

                instr = instr_list[offset]
                cycle += increments[offset]

                window_floor = floors[offset]
                while loads and loads[0][0] <= window_floor:
                    _, done = loads_popleft()
                    if done > cycle:
                        cycle = done

                while len(loads) + len(stores) >= mshrs:
                    earliest_load = loads[0][1] if loads else None
                    earliest_store = stores[0] if stores else None
                    if earliest_store is None or (
                            earliest_load is not None
                            and earliest_load <= earliest_store):
                        _, done = loads_popleft()
                    else:
                        done = stores_popleft()
                    if done > cycle:
                        cycle = done

                if ref.dependent and last_load_complete > cycle:
                    cycle = last_load_complete

                outcome = l2_access(ref.addr, cycle + l1_latency,
                                    write=ref.write)
                if tracer is not None:
                    tracer.emit("l2.access", time=cycle, ref=i,
                                addr=ref.addr, write=ref.write,
                                hit=outcome.hit,
                                latency=outcome.lookup_latency,
                                complete=outcome.complete_time,
                                predictable=outcome.predictable)
                requests += 1
                if ref.write:
                    stores_append(outcome.complete_time)
                else:
                    loads_append((instr, outcome.complete_time))
                    last_load_complete = outcome.complete_time

        for _, done in loads:
            if done > cycle:
                cycle = done

        return ExecutionResult(
            cycles=cycle - warmup_cycle,
            instructions=instr - warmup_instr,
            l2_requests=requests - warmup_refs,
            warmup_cycles=warmup_cycle,
        )

    # -- vectorized fast path (batch-contract designs) ---------------------

    def _execute_vectorized(self, processor, refs: Sequence[Reference],
                            warmup_refs: int) -> Optional[ExecutionResult]:
        """The no-Python-loop path, or ``None`` when the no-stall proof
        fails (the caller then runs the exact chunked loop instead)."""
        np = _np
        cfg = processor.config
        issue_width = cfg.issue_width
        rob_entries = cfg.rob_entries
        mshrs = cfg.mshrs
        l1_latency = cfg.l1_latency
        l2 = processor.l2
        n = len(refs)

        columns = np.asarray(refs, dtype=np.int64)
        addrs = columns[:, 1]
        writes = columns[:, 2] != 0
        dependents = columns[:, 3] != 0
        instr_after = np.cumsum(columns[:, 0])
        # Issue-only cycle after each reference: exact as long as no
        # stall ever raises the clock (proved below).
        optimistic = instr_after // issue_width
        latencies = l2.batch_latency(addrs, writes)
        completes = optimistic + l1_latency + latencies

        # Proof obligations, each vectorized over the whole trace:
        # 1. completion times never run backwards (keeps the in-flight
        #    queue a contiguous window popped oldest-first);
        if n > 1 and not bool(np.all(np.diff(completes) >= 0)):
            return None
        # 2. MSHR pops: when the window is full at reference i the
        #    popped entry is at most i - mshrs, already complete by i;
        if n > mshrs and not bool(
                np.all(completes[:-mshrs] <= optimistic[mshrs:])):
            return None
        # 3. ROB pops: reference j leaves the window at the first i with
        #    instr_i - rob_entries >= instr_j, by which time it is done;
        targets = np.searchsorted(instr_after, instr_after + rob_entries,
                                  side="left")
        in_range = targets < n
        if not bool(np.all(completes[in_range]
                           <= optimistic[targets[in_range]])):
            return None
        # 4. dependence: a dependent reference issues after the previous
        #    load's data has returned.
        if bool(dependents.any()):
            load_completes = np.maximum.accumulate(
                np.where(writes, 0, completes))
            previous_load = np.concatenate(([0], load_completes[:-1]))
            if not bool(np.all(previous_load[dependents]
                               <= optimistic[dependents])):
                return None

        times = optimistic + l1_latency
        boundary = warmup_refs if 0 < warmup_refs < n else 0
        if boundary:
            l2.batch_access(addrs[:boundary], times[:boundary],
                            writes[:boundary])
            l2.reset_stats()
            l2.batch_access(addrs[boundary:], times[boundary:],
                            writes[boundary:])
            warmup_cycle = int(optimistic[boundary - 1])
            warmup_instr = int(instr_after[boundary - 1])
        else:
            l2.batch_access(addrs, times, writes)
            warmup_cycle = 0
            warmup_instr = 0

        final_cycle = int(optimistic[-1])
        reads = np.flatnonzero(~writes)
        if reads.size:
            # The drain raises the clock to the last outstanding load's
            # completion; earlier loads completed no later (proof 1).
            final_cycle = max(final_cycle, int(completes[reads[-1]]))

        return ExecutionResult(
            cycles=final_cycle - warmup_cycle,
            instructions=int(instr_after[-1]) - warmup_instr,
            l2_requests=n - warmup_refs,
            warmup_cycles=warmup_cycle,
        )


class _ProbeOutcome(NamedTuple):
    """Access outcome of :class:`LatencyProbe` (L2Outcome-shaped)."""

    complete_time: int
    hit: bool
    lookup_latency: int
    predictable: bool
    write: bool


class LatencyProbe:
    """A fixed-latency L2 stand-in declaring the vectorized batch contract.

    Every access hits at a constant ``lookup_latency``, independent of
    time, address, and call order — which is exactly what lets the
    batched backend vectorize a whole trace against it.  The probe is a
    backend-benchmark fixture (``replay.probe.*`` in ``repro perf``) and
    a differential-test design, not a paper design: it isolates the
    replay loop's own cost from any L2 model's.

    Statistics are integer counters only, so batch updates are exactly
    equal to per-access updates (no float accumulation order to
    preserve).
    """

    install_order = "popular_last"
    supports_batch = True

    def __init__(self, lookup_latency: int = 20,
                 name: str = "LatencyProbe") -> None:
        if lookup_latency <= 0:
            raise _config_error("probe lookup_latency must be positive")
        self.name = name
        self.lookup_latency = lookup_latency
        self.stats = {"requests": 0, "reads": 0, "writes": 0, "hits": 0}

    def access(self, addr: int, time: int, write: bool = False) -> _ProbeOutcome:
        stats = self.stats
        stats["requests"] += 1
        stats["hits"] += 1
        if write:
            stats["writes"] += 1
        else:
            stats["reads"] += 1
        latency = self.lookup_latency
        return _ProbeOutcome(complete_time=time + latency, hit=True,
                             lookup_latency=latency, predictable=True,
                             write=write)

    def install(self, addr: int) -> None:
        """Prewarm is a no-op: the probe hits unconditionally."""

    def batch_latency(self, addrs, writes):
        """Lookup latency per access; pure (no statistics side effects)."""
        return _np.full(len(addrs), self.lookup_latency, dtype=_np.int64)

    def batch_access(self, addrs, times, writes) -> None:
        """Account a batch of accesses exactly as repeated ``access``."""
        n = len(addrs)
        written = int(writes.sum())
        stats = self.stats
        stats["requests"] += n
        stats["hits"] += n
        stats["writes"] += written
        stats["reads"] += n - written

    def reset_stats(self) -> None:
        for key in self.stats:
            self.stats[key] = 0


def backend_names() -> tuple:
    """Names :func:`resolve_backend` accepts, in registry order."""
    return BACKEND_NAMES


def numpy_available() -> bool:
    """Whether the optional numpy dependency (the batched backend's
    engine) imported successfully."""
    return _np is not None


def available_backend_names() -> tuple:
    """The subset of :data:`BACKEND_NAMES` runnable on this interpreter."""
    if numpy_available():
        return BACKEND_NAMES
    return ("reference",)


def resolve_backend(backend: Union[str, SimBackend, None]) -> SimBackend:
    """Coerce a backend argument (name, instance, or None) to an instance.

    ``None`` means the reference backend.  Unknown names — and
    ``"batched"`` on an interpreter without numpy — raise the typed
    :class:`~repro.core.config.ConfigError`.
    """
    if backend is None:
        return ReferenceBackend()
    if isinstance(backend, SimBackend):
        return backend
    if backend == "reference":
        return ReferenceBackend()
    if backend == "batched":
        return BatchedBackend()
    raise _config_error(
        f"unknown simulation backend {backend!r}; "
        f"choose from {list(BACKEND_NAMES)}")

"""A minimal discrete-event simulation engine.

The timing models in this library are mostly *resource based*: links,
banks, and switches are modelled as FIFO resources with a busy-until
time, which is exact for the single-requester, arrival-ordered streams a
uniprocessor produces.  The event engine exists for the places where
genuine out-of-order completion matters — memory responses, writeback
drains, and multi-bank stripe joins — and for users building their own
models on top of the substrate.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Tuple


class Engine:
    """A heap-scheduled discrete-event engine with an integer cycle clock.

    ``tracer`` (an :class:`~repro.obs.trace.EventTracer`) opts into
    ``engine.schedule`` / ``engine.dispatch`` events; with the default
    ``None`` every hook is a single predicted-not-taken branch.
    """

    def __init__(self, tracer=None) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, Callable[[], Any]]] = []
        self.tracer = tracer

    @property
    def now(self) -> int:
        """The current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to run at absolute cycle ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        if self.tracer is not None:
            self.tracer.emit("engine.schedule", time=self._now, at=time,
                             pending=len(self._queue))
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def run(self, until: int | None = None) -> int:
        """Run events in time order.

        Stops when the queue is empty, or — if ``until`` is given — when
        the next event would fire after ``until`` (the clock is then
        advanced to ``until``).  Returns the final simulation time.
        """
        while self._queue:
            time, _seq, callback = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            if self.tracer is not None:
                self.tracer.emit("engine.dispatch", time=time,
                                 pending=len(self._queue))
            callback()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Run a single event.  Returns False if the queue was empty."""
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        self._now = time
        if self.tracer is not None:
            self.tracer.emit("engine.dispatch", time=time,
                             pending=len(self._queue))
        callback()
        return True

    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)

    def advance(self, cycles: int) -> None:
        """Advance the clock without running events (used by replay models)."""
        if cycles < 0:
            raise ValueError("cannot advance backwards")
        target = self._now + cycles
        if self._queue and self._queue[0][0] < target:
            raise RuntimeError("advance() would skip over pending events")
        self._now = target

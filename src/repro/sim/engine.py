"""A minimal discrete-event simulation engine.

The timing models in this library are mostly *resource based*: links,
banks, and switches are modelled as FIFO resources with a busy-until
time, which is exact for the single-requester, arrival-ordered streams a
uniprocessor produces.  The event engine exists for the places where
genuine out-of-order completion matters — memory responses, writeback
drains, and multi-bank stripe joins — and for users building their own
models on top of the substrate.
"""

from __future__ import annotations

import heapq
import operator
from collections import deque
from typing import Any, Callable, Deque, List, Tuple


class Engine:
    """A heap-scheduled discrete-event engine with an integer cycle clock.

    ``tracer`` (an :class:`~repro.obs.trace.EventTracer`) opts into
    ``engine.schedule`` / ``engine.dispatch`` events; with the default
    ``None`` every hook is a single predicted-not-taken branch, and
    :meth:`run` takes a fast path that dispatches every event sharing a
    timestamp in one batch and keeps zero-delay callbacks out of the
    heap entirely.  Event ordering — by (time, scheduling sequence) — is
    identical on both paths.  Attach a tracer before calling :meth:`run`;
    attaching one from inside a running callback is not supported.

    ``sanitizer`` (a :class:`~repro.sanitizer.Sanitizer`, usually set
    via its ``attach_engine``) opts into per-dispatch monotonic-time and
    livelock checks on the same per-event loop the tracer uses; the
    detached default costs one branch in :meth:`run`.
    """

    def __init__(self, tracer=None) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, Callable[[], Any]]] = []
        # Zero-delay callbacks scheduled while running bypass the heap:
        # they can only fire at the current time, so a FIFO of
        # (seq, callback) preserves the exact dispatch order without
        # paying heap churn for the common immediate-completion pattern.
        self._immediate: Deque[Tuple[int, Callable[[], Any]]] = deque()
        self._running = False
        self.tracer = tracer
        self.sanitizer: Any = None

    @property
    def now(self) -> int:
        """The current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if not callable(callback):
            raise TypeError(
                f"callback must be callable, got {type(callback).__name__}")
        # index() rejects floats outright — a NaN delay would compare
        # False against every bound and then poison heap ordering.
        delay = operator.index(delay)
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        if delay == 0 and self._running:
            self._immediate.append((self._seq, callback))
            self._seq += 1
            return
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to run at absolute cycle ``time``."""
        if not callable(callback):
            raise TypeError(
                f"callback must be callable, got {type(callback).__name__}")
        time = operator.index(time)
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        if self.tracer is not None:
            self.tracer.emit("engine.schedule", time=self._now, at=time,
                             pending=len(self._queue))
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def run(self, until: int | None = None) -> int:
        """Run events in time order.

        Stops when the queue is empty, or — if ``until`` is given — when
        the next event would fire after ``until`` (the clock is then
        advanced to ``until``).  Returns the final simulation time.
        """
        if self.tracer is not None or self.sanitizer is not None:
            return self._run_watched(until)
        queue = self._queue
        immediate = self._immediate
        pop = heapq.heappop
        self._running = True
        try:
            while queue:
                time = queue[0][0]
                if until is not None and time > until:
                    self._now = until
                    return self._now
                # Batch-dispatch every event sharing this timestamp.
                # Same-time events scheduled by these callbacks carry
                # higher sequence numbers, so draining the heap head
                # repeatedly preserves exact (time, seq) order; a
                # zero-delay callback runs as soon as every same-time
                # event with a lower sequence number has run.
                self._now = time
                while queue and queue[0][0] == time:
                    callback = pop(queue)[2]
                    callback()
                    while immediate and not (
                            queue and queue[0][0] == time
                            and queue[0][1] < immediate[0][0]):
                        immediate.popleft()[1]()
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_watched(self, until: int | None) -> int:
        """The traced/sanitized run loop: per-event hooks, same order."""
        tracer = self.tracer
        sanitizer = self.sanitizer
        while self._queue:
            time, _seq, callback = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            if sanitizer is not None:
                sanitizer.on_engine_dispatch(self._now, time,
                                             len(self._queue))
            self._now = time
            if tracer is not None:
                tracer.emit("engine.dispatch", time=time,
                            pending=len(self._queue))
            callback()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Run a single event.  Returns False if the queue was empty."""
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        self._now = time
        if self.tracer is not None:
            self.tracer.emit("engine.dispatch", time=time,
                             pending=len(self._queue))
        callback()
        return True

    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue) + len(self._immediate)

    def reset(self) -> None:
        """Return the engine to time zero with an empty queue.

        Clears the clock, every pending event, and the scheduling
        sequence counter — which otherwise grows without bound when one
        engine is reused across runs (e.g. benchmark warmup loops).
        Reusing an engine via ``reset()`` is exactly equivalent to
        constructing a fresh one, minus the allocation.  An attached
        sanitizer is told (``on_engine_reset``) so its per-run engine
        progress counters rewind with the clock instead of leaking into
        the next run.
        """
        self._now = 0
        self._seq = 0
        self._queue.clear()
        self._immediate.clear()
        if self.sanitizer is not None:
            self.sanitizer.on_engine_reset()

    def advance(self, cycles: int) -> None:
        """Advance the clock without running events (used by replay models)."""
        if cycles < 0:
            raise ValueError("cannot advance backwards")
        target = self._now + cycles
        if self._queue and self._queue[0][0] < target:
            raise RuntimeError("advance() would skip over pending events")
        self._now = target

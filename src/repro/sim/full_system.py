"""Full-system mode: CPU-level references through a simulated L1.

The main pipeline replays L2-level traces (the L1 filter is folded into
the workload calibration).  ``FullSystem`` instead simulates the
Table 3 memory hierarchy end to end: a 64 KB 2-way L1 data cache in
front of any L2 design, with L1 writebacks forwarded down as L2 writes.

The processor model is the same as :class:`~repro.sim.processor.Processor`
— issue-width front end, ROB window, MSHRs, dependence chains — with
the L1 resolving most references at its 3-cycle latency.

:func:`run_full_system` is the one-call entry point mirroring
:func:`~repro.sim.system.run_system`, including the optional
:class:`~repro.obs.manifest.RunObserver` that yields a
:class:`~repro.obs.manifest.RunManifest` and an event trace.
"""

from __future__ import annotations

import dataclasses
import time as _time
from collections import deque
from typing import Iterable, Optional

from repro.cache.l1 import L1Cache
from repro.core.config import build_design
from repro.sim.memory import MainMemory
from repro.sim.processor import ProcessorConfig
from repro.tech import Technology, TECH_45NM
from repro.workloads.trace import Reference


@dataclasses.dataclass(frozen=True)
class FullSystemResult:
    """Outcome of a full-system run."""

    cycles: int
    instructions: int
    cpu_references: int
    l1_hits: int
    l1_misses: int
    l1_writebacks: int
    l2_requests: int
    l2_misses: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0


class FullSystem:
    """Core + L1D + (any) L2 design + memory.

    Full-system mode threads L1 writebacks and per-reference L1 state
    through the replay loop, which only the scalar reference execution
    model supports: requesting any other backend (via the design
    config's ``backend`` field or ``run_full_system(backend=...)``)
    raises a typed :class:`~repro.core.config.ConfigError` rather than
    silently falling back.
    """

    def __init__(self, design_name: str,
                 processor_config: Optional[ProcessorConfig] = None,
                 tech: Technology = TECH_45NM,
                 l1: Optional[L1Cache] = None,
                 tracer=None,
                 backend: Optional[str] = None,
                 **design_overrides) -> None:
        self.config = processor_config or ProcessorConfig()
        self.memory = MainMemory()
        self.l1 = l1 if l1 is not None else L1Cache(
            latency_cycles=self.config.l1_latency)
        self.l2 = build_design(design_name, memory=self.memory, tech=tech,
                               **design_overrides)
        if backend is None:
            backend = self.l2.config.backend
        if backend != "reference":
            from repro.core.config import ConfigError
            from repro.sim.backend import backend_names

            if backend not in backend_names():
                raise ConfigError(
                    f"backend must be one of {list(backend_names())}, "
                    f"got {backend!r}")
            raise ConfigError(
                f"full-system mode supports only the 'reference' backend "
                f"(its replay loop carries per-reference L1 state); "
                f"got {backend!r}")
        self.backend = backend
        self.tracer = tracer
        #: the L2 design's registry, extended with the L1's metrics so a
        #: full-system snapshot covers the whole hierarchy.
        self.metrics = self.l2.metrics
        self.metrics.register("l1", self.l1.stats)
        self.l1.bank.register_metrics(self.metrics.scope("l1"))

    def prewarm(self, l2_spec) -> int:
        """Install an L2-level spec's resident population into the L2.

        Returns the number of blocks installed.  The L1 is left cold (it
        warms in a few thousand references anyway).
        """
        from repro.sim.system import prewarm_l2
        from repro.workloads.synthetic import resident_block_addresses

        return prewarm_l2(self.l2, resident_block_addresses(l2_spec))

    def run(self, trace: Iterable[Reference]) -> FullSystemResult:
        """Replay a CPU-level trace through L1 and L2."""
        cfg = self.config
        cycle = 0
        instr = 0
        gap_remainder = 0
        loads = deque()   # (instr index, completion time) of L1-miss loads
        stores = deque()  # L2 write acceptance times
        last_load_complete = 0
        l1_hits = l1_misses = writebacks = 0

        for ref in trace:
            instr += ref.gap
            total_gap = ref.gap + gap_remainder
            cycle += total_gap // cfg.issue_width
            gap_remainder = total_gap % cfg.issue_width

            window_floor = instr - cfg.rob_entries
            while loads and loads[0][0] <= window_floor:
                _, done = loads.popleft()
                if done > cycle:
                    cycle = done

            if ref.dependent and last_load_complete > cycle:
                cycle = last_load_complete

            access = self.l1.access(ref.addr, write=ref.write)
            if access.hit:
                l1_hits += 1
                if not ref.write:
                    last_load_complete = cycle + self.l1.latency_cycles
                continue
            l1_misses += 1
            if self.tracer is not None:
                self.tracer.emit("l1.miss", time=cycle, addr=ref.addr,
                                 write=ref.write)

            while len(loads) + len(stores) >= cfg.mshrs:
                earliest_load = loads[0][1] if loads else None
                earliest_store = stores[0] if stores else None
                if earliest_store is None or (
                        earliest_load is not None
                        and earliest_load <= earliest_store):
                    _, done = loads.popleft()
                else:
                    done = stores.popleft()
                if done > cycle:
                    cycle = done

            outcome = self.l2.access(ref.addr, cycle + cfg.l1_latency,
                                     write=ref.write)
            if self.tracer is not None:
                self.tracer.emit("l2.access", time=cycle, addr=ref.addr,
                                 write=ref.write, hit=outcome.hit,
                                 latency=outcome.lookup_latency,
                                 complete=outcome.complete_time,
                                 predictable=outcome.predictable)
            if ref.write:
                stores.append(outcome.complete_time)
            else:
                loads.append((instr, outcome.complete_time))
                last_load_complete = outcome.complete_time

            if access.writeback is not None:
                writebacks += 1
                self.l2.access(access.writeback, cycle + cfg.l1_latency,
                               write=True)
                if self.tracer is not None:
                    self.tracer.emit("l1.writeback", time=cycle,
                                     addr=access.writeback)

        for _, done in loads:
            if done > cycle:
                cycle = done

        return FullSystemResult(
            cycles=cycle,
            instructions=instr,
            cpu_references=l1_hits + l1_misses,
            l1_hits=l1_hits,
            l1_misses=l1_misses,
            l1_writebacks=writebacks,
            l2_requests=self.l2.stats["requests"],
            l2_misses=self.l2.stats["misses"],
        )


def run_full_system(design_name: str, spec, n_refs: int = 50_000,
                    seed: int = 7, prewarm: bool = True,
                    processor_config: Optional[ProcessorConfig] = None,
                    tech: Technology = TECH_45NM,
                    observer=None,
                    backend: Optional[str] = None,
                    **design_overrides) -> FullSystemResult:
    """Generate a CPU-level trace from ``spec`` and run it end to end.

    ``spec`` is a :class:`~repro.workloads.cpu_level.CpuLevelSpec`;
    ``prewarm`` installs its L2-level resident population first (the
    stand-in for the paper's fast-forward phase).  ``observer`` works
    exactly as in :func:`~repro.sim.system.run_system`: it receives a
    ``kind="full_system"`` :class:`~repro.obs.manifest.RunManifest`,
    and its tracer captures ``l1.miss`` / ``l1.writeback`` /
    ``l2.access`` events.

    ``backend`` must name the reference backend (or be ``None``, which
    defers to the design config); full-system mode has no batched
    replay loop, and anything else raises
    :class:`~repro.core.config.ConfigError`.
    """
    from repro.workloads.cpu_level import generate_cpu_trace

    started = _time.perf_counter()
    trace = generate_cpu_trace(spec, n_refs, seed=seed)
    tracer = observer.tracer if observer is not None else None
    system = FullSystem(design_name, processor_config, tech, tracer=tracer,
                        backend=backend, **design_overrides)
    if prewarm:
        system.prewarm(spec.l2_spec)
    result = system.run(trace)
    if observer is not None:
        from repro.obs.manifest import build_manifest

        config = {
            "design": system.l2.name,
            "spec": dataclasses.asdict(spec),
            "n_refs": n_refs,
            "seed": seed,
            "prewarm": prewarm,
            "processor_config": dataclasses.asdict(system.config),
            "backend": system.backend,
            "tech": tech.name,
            "design_overrides": {key: repr(value) for key, value
                                 in sorted(design_overrides.items())},
        }
        observer.manifest = build_manifest(
            kind="full_system",
            design=system.l2.name,
            benchmark=None,
            seed=seed,
            config=config,
            metrics=system.metrics.snapshot(),
            result=dataclasses.asdict(result),
            trace=None if tracer is None else tracer.summary(),
            wall_time_s=_time.perf_counter() - started,
        )
    return result

"""Full-system mode: CPU-level references through a simulated L1.

The main pipeline replays L2-level traces (the L1 filter is folded into
the workload calibration).  ``FullSystem`` instead simulates the
Table 3 memory hierarchy end to end: a 64 KB 2-way L1 data cache in
front of any L2 design, with L1 writebacks forwarded down as L2 writes.

The processor model is the same as :class:`~repro.sim.processor.Processor`
— issue-width front end, ROB window, MSHRs, dependence chains — with
the L1 resolving most references at its 3-cycle latency.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Iterable, Optional

from repro.cache.l1 import L1Cache
from repro.core.config import build_design
from repro.sim.memory import MainMemory
from repro.sim.processor import ProcessorConfig
from repro.tech import Technology, TECH_45NM
from repro.workloads.trace import Reference


@dataclasses.dataclass(frozen=True)
class FullSystemResult:
    """Outcome of a full-system run."""

    cycles: int
    instructions: int
    cpu_references: int
    l1_hits: int
    l1_misses: int
    l1_writebacks: int
    l2_requests: int
    l2_misses: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0


class FullSystem:
    """Core + L1D + (any) L2 design + memory."""

    def __init__(self, design_name: str,
                 processor_config: Optional[ProcessorConfig] = None,
                 tech: Technology = TECH_45NM,
                 l1: Optional[L1Cache] = None,
                 **design_overrides) -> None:
        self.config = processor_config or ProcessorConfig()
        self.memory = MainMemory()
        self.l1 = l1 if l1 is not None else L1Cache(
            latency_cycles=self.config.l1_latency)
        self.l2 = build_design(design_name, memory=self.memory, tech=tech,
                               **design_overrides)

    def prewarm(self, l2_spec) -> int:
        """Install an L2-level spec's resident population into the L2.

        Returns the number of blocks installed.  The L1 is left cold (it
        warms in a few thousand references anyway).
        """
        from repro.sim.system import prewarm_l2
        from repro.workloads.synthetic import resident_block_addresses

        return prewarm_l2(self.l2, resident_block_addresses(l2_spec))

    def run(self, trace: Iterable[Reference]) -> FullSystemResult:
        """Replay a CPU-level trace through L1 and L2."""
        cfg = self.config
        cycle = 0
        instr = 0
        gap_remainder = 0
        loads = deque()   # (instr index, completion time) of L1-miss loads
        stores = deque()  # L2 write acceptance times
        last_load_complete = 0
        l1_hits = l1_misses = writebacks = 0

        for ref in trace:
            instr += ref.gap
            total_gap = ref.gap + gap_remainder
            cycle += total_gap // cfg.issue_width
            gap_remainder = total_gap % cfg.issue_width

            window_floor = instr - cfg.rob_entries
            while loads and loads[0][0] <= window_floor:
                _, done = loads.popleft()
                if done > cycle:
                    cycle = done

            if ref.dependent and last_load_complete > cycle:
                cycle = last_load_complete

            access = self.l1.access(ref.addr, write=ref.write)
            if access.hit:
                l1_hits += 1
                if not ref.write:
                    last_load_complete = cycle + self.l1.latency_cycles
                continue
            l1_misses += 1

            while len(loads) + len(stores) >= cfg.mshrs:
                earliest_load = loads[0][1] if loads else None
                earliest_store = stores[0] if stores else None
                if earliest_store is None or (
                        earliest_load is not None
                        and earliest_load <= earliest_store):
                    _, done = loads.popleft()
                else:
                    done = stores.popleft()
                if done > cycle:
                    cycle = done

            outcome = self.l2.access(ref.addr, cycle + cfg.l1_latency,
                                     write=ref.write)
            if ref.write:
                stores.append(outcome.complete_time)
            else:
                loads.append((instr, outcome.complete_time))
                last_load_complete = outcome.complete_time

            if access.writeback is not None:
                writebacks += 1
                self.l2.access(access.writeback, cycle + cfg.l1_latency,
                               write=True)

        for _, done in loads:
            if done > cycle:
                cycle = done

        return FullSystemResult(
            cycles=cycle,
            instructions=instr,
            cpu_references=l1_hits + l1_misses,
            l1_hits=l1_hits,
            l1_misses=l1_misses,
            l1_writebacks=writebacks,
            l2_requests=self.l2.stats["requests"],
            l2_misses=self.l2.stats["misses"],
        )

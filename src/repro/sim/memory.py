"""Main-memory timing model.

The paper's configuration (Table 3): 4 GB of DRAM at a flat 300-cycle
latency, with the number of outstanding requests bounded at the
processor (8 MSHRs).  A small channel-occupancy term serializes
back-to-back transfers so that miss floods cannot exceed a realistic
pin bandwidth.
"""

from __future__ import annotations

from repro.sim.stats import Counter


class MainMemory:
    """Flat-latency DRAM with a serialized channel."""

    def __init__(self, latency_cycles: int = 300,
                 channel_cycles_per_access: int = 4) -> None:
        if latency_cycles < 0 or channel_cycles_per_access < 0:
            raise ValueError("latencies must be non-negative")
        self.latency_cycles = latency_cycles
        self.channel_cycles_per_access = channel_cycles_per_access
        self._channel_busy_until = 0
        self.stats = Counter()

    def read(self, time: int) -> int:
        """Fetch a block; returns the cycle its critical word arrives."""
        start = max(time, self._channel_busy_until)
        self._channel_busy_until = start + self.channel_cycles_per_access
        self.stats.add("reads")
        return start + self.latency_cycles

    def write(self, time: int) -> int:
        """Write a block back; returns the cycle the buffer accepts it.

        Writebacks are absorbed by a write buffer and drain in idle
        channel slots, so they do not contend with demand reads — and,
        because they are issued at future completion times, letting them
        reserve the shared channel would falsely delay earlier reads
        under the scalar busy-until model.
        """
        self.stats.add("writes")
        return time + self.channel_cycles_per_access

    def reset_stats(self) -> None:
        """Zero the counters in place, preserving channel busy state.

        In-place so a :class:`~repro.obs.registry.MetricsRegistry`
        holding this counter keeps observing the live object.
        """
        self.stats.clear()

    def reset(self) -> None:
        self._channel_busy_until = 0
        self.stats.clear()

"""Simplified dynamically-scheduled processor timing model.

Substitutes for the paper's detailed SPARC V9 out-of-order model
(Table 3: 4-wide fetch/issue, 128-entry reorder buffer, 8 outstanding
memory requests, 3-cycle L1s).  The model replays an L2-level reference
trace and charges:

* **issue time** — ``gap`` instructions advance the clock at the issue
  width (the front end is never the bottleneck, matching the paper's
  focus on the L2);
* **reorder-buffer pressure** — instruction ``n`` cannot issue until
  every load older than ``n - rob_entries`` has completed, bounding how
  much L2 latency the window can hide;
* **MSHR pressure** — at most ``mshrs`` L2 requests may be outstanding;
* **dependence chains** — a reference marked ``dependent`` must wait for
  the previous load's data (pointer chasing serializes on full L2
  latency, which is why mcf feels every cycle of lookup time).

Because only the L2 design differs between experiment arms, execution-
time *ratios* (Figures 5 and 8) are insensitive to the simplifications;
what matters is that exposed L2 latency scales correctly with each
design's latency and contention, which the four mechanisms above carry.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Iterable, Optional

from repro.workloads.trace import Reference


@dataclasses.dataclass(frozen=True)
class ProcessorConfig:
    """Core parameters (defaults = paper Table 3)."""

    issue_width: int = 4
    rob_entries: int = 128
    mshrs: int = 8
    l1_latency: int = 3

    def __post_init__(self) -> None:
        for name in ("issue_width", "rob_entries", "mshrs"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.l1_latency < 0:
            raise ValueError("l1_latency must be non-negative")


@dataclasses.dataclass(frozen=True)
class ExecutionResult:
    """Outcome of replaying a trace against one L2 design."""

    cycles: int
    instructions: int
    l2_requests: int
    warmup_cycles: int

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class Processor:
    """Replays a reference trace against an L2 design.

    ``tracer`` (an :class:`~repro.obs.trace.EventTracer`) opts into
    per-reference ``l2.access`` events and a ``run.warmup_end`` marker;
    the default ``None`` costs one branch per reference and the
    simulation result never depends on it.
    """

    def __init__(self, l2, config: Optional[ProcessorConfig] = None,
                 tracer=None) -> None:
        self.l2 = l2
        self.config = config if config is not None else ProcessorConfig()
        self.tracer = tracer
        #: optional repro.sanitizer.Sanitizer (set by attach_processor);
        #: receives per-reference retirement/MSHR checks and the final
        #: quiesce sweep.  Like the tracer, it never changes the result.
        self.sanitizer = None

    def run(self, trace: Iterable[Reference], warmup_refs: int = 0) -> ExecutionResult:
        """Execute ``trace``; statistics cover the post-warmup portion.

        The first ``warmup_refs`` references run with full timing (so
        resource state is realistic) but the L2's statistics and the
        returned cycle/instruction counts are measured after the warmup
        boundary, mirroring the paper's warm-up methodology (Table 4).
        """
        # The loop below runs once per reference; config fields and bound
        # methods are hoisted into locals to keep it tight.
        cfg = self.config
        issue_width = cfg.issue_width
        rob_entries = cfg.rob_entries
        mshrs = cfg.mshrs
        l1_latency = cfg.l1_latency
        l2_access = self.l2.access
        cycle = 0
        instr = 0
        gap_remainder = 0
        # In-flight loads as (instruction index, completion time).
        loads: deque = deque()
        stores: deque = deque()  # completion times only
        loads_popleft = loads.popleft
        loads_append = loads.append
        stores_popleft = stores.popleft
        stores_append = stores.append
        last_load_complete = 0
        warmup_cycle = 0
        warmup_instr = 0
        requests = 0

        tracer = self.tracer
        sanitizer = self.sanitizer
        for i, ref in enumerate(trace):
            if i == warmup_refs and warmup_refs > 0:
                warmup_cycle, warmup_instr = cycle, instr
                self.l2.reset_stats()
                if tracer is not None:
                    tracer.emit("run.warmup_end", time=cycle, refs=i,
                                instructions=instr)

            instr += ref.gap
            total_gap = ref.gap + gap_remainder
            cycle += total_gap // issue_width
            gap_remainder = total_gap % issue_width

            # Reorder-buffer limit: older loads must complete before the
            # window can roll this far forward.
            window_floor = instr - rob_entries
            while loads and loads[0][0] <= window_floor:
                _, done = loads_popleft()
                if done > cycle:
                    cycle = done

            # MSHR limit across loads and stores.
            while len(loads) + len(stores) >= mshrs:
                earliest_load = loads[0][1] if loads else None
                earliest_store = stores[0] if stores else None
                if earliest_store is None or (
                        earliest_load is not None and earliest_load <= earliest_store):
                    _, done = loads_popleft()
                else:
                    done = stores_popleft()
                if done > cycle:
                    cycle = done

            if ref.dependent and last_load_complete > cycle:
                cycle = last_load_complete

            outcome = l2_access(ref.addr, cycle + l1_latency,
                                write=ref.write)
            if tracer is not None:
                tracer.emit("l2.access", time=cycle, ref=i, addr=ref.addr,
                            write=ref.write, hit=outcome.hit,
                            latency=outcome.lookup_latency,
                            complete=outcome.complete_time,
                            predictable=outcome.predictable)
            requests += 1
            if ref.write:
                stores_append(outcome.complete_time)
            else:
                loads_append((instr, outcome.complete_time))
                last_load_complete = outcome.complete_time
            if sanitizer is not None:
                sanitizer.on_retire(cycle, instr,
                                    len(loads) + len(stores))

        # Drain: execution ends when the last load's data has returned.
        for _, done in loads:
            if done > cycle:
                cycle = done
        if sanitizer is not None:
            sanitizer.on_quiesce(cycle, len(loads) + len(stores))

        return ExecutionResult(
            cycles=cycle - warmup_cycle,
            instructions=instr - warmup_instr,
            l2_requests=requests - warmup_refs,
            warmup_cycles=warmup_cycle,
        )

"""Simplified dynamically-scheduled processor timing model.

Substitutes for the paper's detailed SPARC V9 out-of-order model
(Table 3: 4-wide fetch/issue, 128-entry reorder buffer, 8 outstanding
memory requests, 3-cycle L1s).  The model replays an L2-level reference
trace and charges:

* **issue time** — ``gap`` instructions advance the clock at the issue
  width (the front end is never the bottleneck, matching the paper's
  focus on the L2);
* **reorder-buffer pressure** — instruction ``n`` cannot issue until
  every load older than ``n - rob_entries`` has completed, bounding how
  much L2 latency the window can hide;
* **MSHR pressure** — at most ``mshrs`` L2 requests may be outstanding;
* **dependence chains** — a reference marked ``dependent`` must wait for
  the previous load's data (pointer chasing serializes on full L2
  latency, which is why mcf feels every cycle of lookup time).

Because only the L2 design differs between experiment arms, execution-
time *ratios* (Figures 5 and 8) are insensitive to the simplifications;
what matters is that exposed L2 latency scales correctly with each
design's latency and contention, which the four mechanisms above carry.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

from repro.workloads.trace import Reference


@dataclasses.dataclass(frozen=True)
class ProcessorConfig:
    """Core parameters (defaults = paper Table 3)."""

    issue_width: int = 4
    rob_entries: int = 128
    mshrs: int = 8
    l1_latency: int = 3

    def __post_init__(self) -> None:
        for name in ("issue_width", "rob_entries", "mshrs"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.l1_latency < 0:
            raise ValueError("l1_latency must be non-negative")


@dataclasses.dataclass(frozen=True)
class ExecutionResult:
    """Outcome of replaying a trace against one L2 design."""

    cycles: int
    instructions: int
    l2_requests: int
    warmup_cycles: int

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class Processor:
    """Replays a reference trace against an L2 design.

    ``tracer`` (an :class:`~repro.obs.trace.EventTracer`) opts into
    per-reference ``l2.access`` events and a ``run.warmup_end`` marker;
    the default ``None`` costs one branch per reference and the
    simulation result never depends on it.

    ``backend`` selects the replay engine — a name from
    :data:`~repro.sim.backend.BACKEND_NAMES`, a
    :class:`~repro.sim.backend.SimBackend` instance, or ``None`` for
    the scalar reference loop.  Backends are observably identical (see
    :mod:`repro.sim.backend`); an unknown name raises the typed
    :class:`~repro.core.config.ConfigError`.
    """

    def __init__(self, l2, config: Optional[ProcessorConfig] = None,
                 tracer=None, backend=None) -> None:
        # Imported here, not at module top: the backend module imports
        # ExecutionResult from this one.
        from repro.sim.backend import resolve_backend

        self.l2 = l2
        self.config = config if config is not None else ProcessorConfig()
        self.tracer = tracer
        self.backend = resolve_backend(backend)
        #: optional repro.sanitizer.Sanitizer (set by attach_processor);
        #: receives per-reference retirement/MSHR checks and the final
        #: quiesce sweep.  Like the tracer, it never changes the result.
        self.sanitizer = None

    def run(self, trace: Iterable[Reference], warmup_refs: int = 0) -> ExecutionResult:
        """Execute ``trace``; statistics cover the post-warmup portion.

        The first ``warmup_refs`` references run with full timing (so
        resource state is realistic) but the L2's statistics and the
        returned cycle/instruction counts are measured after the warmup
        boundary, mirroring the paper's warm-up methodology (Table 4).

        Execution is delegated to the selected backend (see
        :mod:`repro.sim.backend`); every backend produces the identical
        result for the identical inputs.
        """
        return self.backend.execute(self, trace, warmup_refs)

"""Statistics primitives shared by all timing models.

Three small classes cover everything the paper reports:

* :class:`Counter` — named event counts (hits, misses, promotions, ...).
* :class:`Histogram` — integer-valued latency distributions, from which
  mean lookup latency (Fig. 6) and predictability (Table 6) are derived.
* :class:`UtilizationMeter` — busy-cycle accounting for links
  (Fig. 7's link utilization).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Tuple


class Counter:
    """A bag of named integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def clear(self) -> None:
        """Zero every count in place (the object identity is preserved,
        so registries holding this counter keep seeing the live values)."""
        self._counts.clear()

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def ratio(self, numerator: str, denominator: str) -> float:
        """``counts[numerator] / counts[denominator]`` (0.0 if empty)."""
        denom = self._counts.get(denominator, 0)
        if denom == 0:
            return 0.0
        return self._counts.get(numerator, 0) / denom


class Histogram:
    """A sparse histogram over integer values (e.g. latencies in cycles)."""

    def __init__(self) -> None:
        self._bins: Dict[int, int] = defaultdict(int)
        self._count = 0
        self._total = 0

    def record(self, value: int, weight: int = 1) -> None:
        self._bins[value] += weight
        self._count += weight
        self._total += value * weight

    def clear(self) -> None:
        """Drop every sample in place (identity-preserving, like
        :meth:`Counter.clear`)."""
        self._bins.clear()
        self._count = 0
        self._total = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        return self._total / self._count

    @property
    def min(self) -> int:
        if not self._bins:
            raise ValueError("empty histogram has no min")
        return min(self._bins)

    @property
    def max(self) -> int:
        if not self._bins:
            raise ValueError("empty histogram has no max")
        return max(self._bins)

    def fraction_at(self, value: int) -> float:
        """Fraction of samples exactly equal to ``value``."""
        if self._count == 0:
            return 0.0
        return self._bins.get(value, 0) / self._count

    def fraction_at_most(self, value: int) -> float:
        """Fraction of samples ``<= value``."""
        if self._count == 0:
            return 0.0
        covered = sum(n for v, n in self._bins.items() if v <= value)
        return covered / self._count

    def percentile(self, p: float) -> int:
        """The smallest value v with at least fraction ``p`` of mass ``<= v``.

        Convention for the boundary: ``percentile(0.0)`` is *defined* as
        the minimum recorded value.  Taken literally, zero mass is
        "<=" any value, so the general rule above would be satisfied by
        arbitrarily small v; we pin p=0 to ``self.min`` (the limit of
        ``percentile(p)`` as p -> 0+), matching the inclusive
        lower-bound convention of numpy's ``percentile(..., 0)``.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError("percentile must be in [0, 1]")
        if self._count == 0:
            raise ValueError("empty histogram has no percentiles")
        if p == 0.0:
            return self.min
        threshold = p * self._count
        running = 0
        for value in sorted(self._bins):
            running += self._bins[value]
            if running >= threshold:
                return value
        return max(self._bins)

    def items(self) -> Iterable[Tuple[int, int]]:
        return sorted(self._bins.items())


class UtilizationMeter:
    """Tracks busy cycles of a set of identical resources (links).

    ``busy(n)`` is called once per transfer with the number of cycles the
    transfer occupied one resource.  Utilization is then
    ``total busy cycles / (elapsed cycles * resource count)`` — exactly
    the paper's "percentage of cycles where the transmission lines
    actually communicate data".

    The quotient can exceed 1.0 when the accounting window does not
    cover every charged transfer — e.g. non-contending fill/writeback
    traffic scheduled past the measured interval, or an
    ``elapsed_cycles`` taken after a warmup reset that preserved busy
    state.  A utilization above 1.0 is physically impossible, so
    :meth:`utilization` clamps to 1.0 and latches :attr:`saturated`
    instead of silently reporting it; :meth:`raw_utilization` returns
    the unclamped quotient for diagnostics.
    """

    def __init__(self, resources: int) -> None:
        if resources <= 0:
            raise ValueError("need at least one resource")
        self.resources = resources
        self.busy_cycles = 0
        #: latched True the first time a clamp was needed (cleared by reset()).
        self.saturated = False

    def busy(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("busy cycles must be non-negative")
        self.busy_cycles += cycles

    def raw_utilization(self, elapsed_cycles: int) -> float:
        """The unclamped busy/capacity quotient (may exceed 1.0)."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.busy_cycles / (elapsed_cycles * self.resources)

    def utilization(self, elapsed_cycles: int) -> float:
        raw = self.raw_utilization(elapsed_cycles)
        if raw > 1.0:
            self.saturated = True
            return 1.0
        return raw

    def reset(self) -> None:
        """Zero the busy accounting in place (identity-preserving)."""
        self.busy_cycles = 0
        self.saturated = False

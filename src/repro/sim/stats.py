"""Statistics primitives shared by all timing models.

Three small classes cover everything the paper reports:

* :class:`Counter` — named event counts (hits, misses, promotions, ...).
* :class:`Histogram` — integer-valued latency distributions, from which
  mean lookup latency (Fig. 6) and predictability (Table 6) are derived.
* :class:`UtilizationMeter` — busy-cycle accounting for links
  (Fig. 7's link utilization).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Tuple


class Counter:
    """A bag of named integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def ratio(self, numerator: str, denominator: str) -> float:
        """``counts[numerator] / counts[denominator]`` (0.0 if empty)."""
        denom = self._counts.get(denominator, 0)
        if denom == 0:
            return 0.0
        return self._counts.get(numerator, 0) / denom


class Histogram:
    """A sparse histogram over integer values (e.g. latencies in cycles)."""

    def __init__(self) -> None:
        self._bins: Dict[int, int] = defaultdict(int)
        self._count = 0
        self._total = 0

    def record(self, value: int, weight: int = 1) -> None:
        self._bins[value] += weight
        self._count += weight
        self._total += value * weight

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        return self._total / self._count

    @property
    def min(self) -> int:
        if not self._bins:
            raise ValueError("empty histogram has no min")
        return min(self._bins)

    @property
    def max(self) -> int:
        if not self._bins:
            raise ValueError("empty histogram has no max")
        return max(self._bins)

    def fraction_at(self, value: int) -> float:
        """Fraction of samples exactly equal to ``value``."""
        if self._count == 0:
            return 0.0
        return self._bins.get(value, 0) / self._count

    def fraction_at_most(self, value: int) -> float:
        """Fraction of samples ``<= value``."""
        if self._count == 0:
            return 0.0
        covered = sum(n for v, n in self._bins.items() if v <= value)
        return covered / self._count

    def percentile(self, p: float) -> int:
        """The smallest value v with at least fraction ``p`` of mass ``<= v``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("percentile must be in [0, 1]")
        if self._count == 0:
            raise ValueError("empty histogram has no percentiles")
        threshold = p * self._count
        running = 0
        for value in sorted(self._bins):
            running += self._bins[value]
            if running >= threshold:
                return value
        return max(self._bins)

    def items(self) -> Iterable[Tuple[int, int]]:
        return sorted(self._bins.items())


class UtilizationMeter:
    """Tracks busy cycles of a set of identical resources (links).

    ``busy(n)`` is called once per transfer with the number of cycles the
    transfer occupied one resource.  Utilization is then
    ``total busy cycles / (elapsed cycles * resource count)`` — exactly
    the paper's "percentage of cycles where the transmission lines
    actually communicate data".
    """

    def __init__(self, resources: int) -> None:
        if resources <= 0:
            raise ValueError("need at least one resource")
        self.resources = resources
        self.busy_cycles = 0

    def busy(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("busy cycles must be non-negative")
        self.busy_cycles += cycles

    def utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return self.busy_cycles / (elapsed_cycles * self.resources)

"""Full-system composition: workload -> processor -> L2 design -> memory.

`run_system` is the one-call experiment entry point used by the
examples, the tests, and every benchmark harness: it builds the named
L2 design, generates (or accepts) a reference trace, replays it through
the processor model, and returns a :class:`SystemResult` carrying every
metric the paper's tables and figures report.

Passing a :class:`~repro.obs.manifest.RunObserver` additionally yields
a :class:`~repro.obs.manifest.RunManifest` (config digest, seed, code
version, wall time, full metrics snapshot) and — if the observer holds
an :class:`~repro.obs.trace.EventTracer` — a per-reference event trace.
Observation never changes the simulation: results with and without an
observer are identical.
"""

from __future__ import annotations

import dataclasses
import time as _time
from typing import List, Optional, Sequence

from repro.core.config import build_design
from repro.sim.memory import MainMemory
from repro.sim.processor import ExecutionResult, Processor, ProcessorConfig
from repro.tech import Technology, TECH_45NM
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import generate_trace, resident_block_addresses
from repro.workloads.trace import Reference


@dataclasses.dataclass(frozen=True)
class SystemResult:
    """Everything measured from one (design, workload) run."""

    design: str
    benchmark: str
    cycles: int
    instructions: int
    l2_requests: int
    l2_hits: int
    l2_misses: int
    mean_lookup_latency: float
    predictable_lookup_fraction: float
    banks_accessed_per_request: float
    link_utilization: float
    network_power_w: float
    stats: dict

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def miss_ratio(self) -> float:
        if self.l2_requests == 0:
            return 0.0
        return self.l2_misses / self.l2_requests

    @property
    def misses_per_kinstr(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.l2_misses / self.instructions


def prewarm_l2(l2, resident: Sequence[int]) -> int:
    """Install a resident block population into ``l2``, returning the count.

    ``resident`` is least-popular-first (the order
    :func:`~repro.workloads.synthetic.resident_block_addresses` yields);
    designs declare via ``install_order`` whether popular blocks should
    be installed last (SNUCA/TLC: most-recent wins placement) or first
    (DNUCA: first installs land in the closest banks).
    """
    ordered = (resident if l2.install_order == "popular_last"
               else reversed(resident))
    install = l2.install
    count = 0
    for addr in ordered:
        install(addr)
        count += 1
    return count


class System:
    """A processor + L2 design + memory, ready to replay traces.

    ``backend`` selects the replay backend (see
    :mod:`repro.sim.backend`); ``None`` defers to the design config's
    ``backend`` field (``"reference"`` for every registry design unless
    overridden), so both ``System("TLC", backend="batched")`` and
    ``System("TLC", backend="batched"...)``-via-override
    ``build_design(..., backend="batched")`` mean the same thing.
    """

    def __init__(self, design_name: str,
                 processor_config: Optional[ProcessorConfig] = None,
                 tech: Technology = TECH_45NM,
                 memory: Optional[MainMemory] = None,
                 tracer=None,
                 backend: Optional[str] = None,
                 **design_overrides) -> None:
        self.memory = memory if memory is not None else MainMemory()
        self.l2 = build_design(design_name, memory=self.memory, tech=tech,
                               **design_overrides)
        if backend is None:
            backend = self.l2.config.backend
        self.processor = Processor(self.l2, processor_config, tracer=tracer,
                                   backend=backend)

    def run(self, trace: Sequence[Reference], benchmark: str = "custom",
            warmup_refs: int = 0) -> SystemResult:
        result: ExecutionResult = self.processor.run(trace, warmup_refs)
        l2 = self.l2
        return SystemResult(
            design=l2.name,
            benchmark=benchmark,
            cycles=result.cycles,
            instructions=result.instructions,
            l2_requests=l2.stats["requests"],
            l2_hits=l2.stats["hits"],
            l2_misses=l2.stats["misses"],
            mean_lookup_latency=l2.mean_lookup_latency,
            predictable_lookup_fraction=l2.predictable_lookup_fraction,
            banks_accessed_per_request=l2.banks_accessed_per_request,
            link_utilization=l2.link_utilization(result.cycles),
            network_power_w=l2.network_power_w(result.cycles),
            stats=l2.stats.as_dict(),
        )


def run_system(design_name: str, benchmark: str, n_refs: int = 50_000,
               warmup_fraction: float = 0.3, seed: int = 7,
               processor_config: Optional[ProcessorConfig] = None,
               tech: Technology = TECH_45NM,
               trace: Optional[List[Reference]] = None,
               prewarm_spec=None,
               memory: Optional[MainMemory] = None,
               observer=None,
               sanitize: bool = False,
               sanitizer=None,
               crash_dir: Optional[str] = None,
               warmup_refs: Optional[int] = None,
               backend: Optional[str] = None,
               **design_overrides) -> SystemResult:
    """Run ``benchmark`` on ``design_name`` and collect all metrics.

    ``trace`` short-circuits generation (so one generated trace can be
    replayed against several designs); otherwise the benchmark profile
    is rendered to ``n_refs`` references with the given seed, of which
    the first ``warmup_fraction`` warm the cache without being measured.

    The cache is pre-warmed with the workload's resident population —
    from the named profile when one exists, or from ``prewarm_spec``
    (the :class:`~repro.workloads.synthetic.TraceSpec` the custom trace
    was generated from).  A custom trace without a spec starts cold.

    ``memory`` substitutes a non-default :class:`MainMemory` (e.g. the
    latency sweeps' slower/faster DRAM).

    ``observer`` (a :class:`~repro.obs.manifest.RunObserver`) receives
    the run's :class:`~repro.obs.manifest.RunManifest` on
    ``observer.manifest``, and its tracer — when set — is attached to
    the processor model.  Observation is strictly read-only: the
    returned :class:`SystemResult` is identical with or without it.

    ``sanitize=True`` attaches a default
    :class:`~repro.sanitizer.Sanitizer` (``sanitizer`` passes a
    preconfigured one, e.g. with a non-default
    :class:`~repro.sanitizer.SanitizerConfig` or an injected
    :class:`~repro.sanitizer.SimFault`); a broken invariant raises
    :class:`~repro.sanitizer.SanitizerViolation`.  Like observation,
    a clean sanitized run returns an identical :class:`SystemResult`.

    ``crash_dir`` enables crash bundles: any exception escaping the
    simulation is first captured to a replayable bundle directory under
    ``crash_dir`` (see :mod:`repro.sanitizer.bundle`), and the bundle
    path is attached to the exception as ``crash_bundle``.

    ``warmup_refs`` overrides the ``warmup_fraction`` computation with
    an exact boundary — used by bundle replay, where the prefix must
    keep the original run's warmup point rather than a fraction of the
    (shortened) trace.

    ``backend`` selects the simulation backend (``"reference"`` /
    ``"batched"``; ``None`` defers to the design config).  Backends are
    observably identical — the returned :class:`SystemResult` is
    byte-for-byte the same — but a backend that cannot honor a
    requested feature refuses with a typed
    :class:`~repro.core.config.ConfigError`: the batched backend has no
    per-reference sanitizer hooks, so ``sanitize=True`` with
    ``backend="batched"`` is rejected at the door.
    """
    started = _time.perf_counter()
    external_trace = trace is not None
    prewarm: Optional[List[int]] = None
    if trace is None:
        profile = get_profile(benchmark)
        trace = generate_trace(profile.spec, n_refs, seed=seed)
        prewarm = resident_block_addresses(profile.spec)
    elif prewarm_spec is not None:
        prewarm = resident_block_addresses(prewarm_spec)
    elif benchmark in {name for name in _known_benchmarks()}:
        prewarm = resident_block_addresses(get_profile(benchmark).spec)
    if warmup_refs is None:
        warmup_refs = int(len(trace) * warmup_fraction)
    san = sanitizer
    if san is None and sanitize:
        from repro.sanitizer import Sanitizer

        san = Sanitizer()
    tracer = observer.tracer if observer is not None else None
    ring = None
    if san is not None and tracer is None and crash_dir is not None:
        # No observer tracer to piggyback on: keep a small ring of
        # recent events so a crash bundle has event context.
        from repro.obs.trace import EventTracer

        ring = EventTracer(capacity=san.config.event_ring)
        tracer = ring
    system: Optional[System] = None
    try:
        system = System(design_name, processor_config, tech, memory=memory,
                        tracer=tracer, backend=backend, **design_overrides)
        if san is not None:
            if not system.processor.backend.supports_sanitizer:
                from repro.core.config import ConfigError

                raise ConfigError(
                    f"the {system.processor.backend.name!r} backend does "
                    f"not support sanitized runs; use "
                    f"backend='reference' with --sanitize")
            san.attach_system(system)
        if prewarm is not None:
            prewarm_l2(system.l2, prewarm)
        result = system.run(trace, benchmark=benchmark,
                            warmup_refs=warmup_refs)
    except Exception as error:
        if crash_dir is not None:
            _capture_crash(crash_dir, error, design_name=design_name,
                           benchmark=benchmark, seed=seed, trace=trace,
                           warmup_refs=warmup_refs, system=system,
                           processor_config=processor_config, tech=tech,
                           memory=memory, design_overrides=design_overrides,
                           sanitizer=san, tracer=tracer,
                           wall_time_s=_time.perf_counter() - started)
        raise
    if observer is not None:
        from repro.obs.manifest import build_manifest

        config = {
            "design": system.l2.name,
            "benchmark": benchmark,
            "n_refs": len(trace),
            "seed": seed,
            "warmup_fraction": warmup_fraction,
            "warmup_refs": warmup_refs,
            "processor_config": dataclasses.asdict(
                system.processor.config),
            "backend": system.processor.backend.name,
            "tech": tech.name,
            "memory_latency_cycles": system.memory.latency_cycles,
            "design_overrides": {key: repr(value) for key, value
                                 in sorted(design_overrides.items())},
            "external_trace": external_trace,
        }
        observer.manifest = build_manifest(
            kind="system",
            design=system.l2.name,
            benchmark=benchmark,
            seed=seed,
            config=config,
            metrics=system.l2.metrics.snapshot(),
            result=dataclasses.asdict(result),
            trace=None if tracer is None else tracer.summary(),
            wall_time_s=_time.perf_counter() - started,
            sanitizer=None if san is None else san.summary(),
        )
    return result


def _capture_crash(crash_dir: str, error: Exception, *, design_name, benchmark,
                   seed, trace, warmup_refs, system, processor_config, tech,
                   memory, design_overrides, sanitizer, tracer,
                   wall_time_s) -> None:
    """Write a crash bundle for a failed run; never masks ``error``."""
    try:
        from repro.core.config import resolve_design_name
        from repro.sanitizer.bundle import write_crash_bundle

        try:
            design = resolve_design_name(design_name)
        except ValueError:
            design = str(design_name)
        config = (processor_config if processor_config is not None
                  else ProcessorConfig())
        bundle_path = write_crash_bundle(
            crash_dir,
            design=design,
            benchmark=benchmark,
            seed=seed,
            warmup_refs=warmup_refs,
            trace=trace,
            error=error,
            processor_config=dataclasses.asdict(config),
            tech=tech.name,
            memory_latency_cycles=(None if memory is None
                                   else memory.latency_cycles),
            design_overrides=design_overrides,
            sanitizer=sanitizer,
            tracer=tracer,
            metrics=(None if system is None
                     else system.l2.metrics.snapshot()),
            wall_time_s=wall_time_s,
        )
    except Exception:
        return  # bundle writing is best-effort; the original error wins
    error.crash_bundle = bundle_path  # type: ignore[attr-defined]


def _known_benchmarks():
    from repro.workloads.profiles import PROFILES

    return PROFILES

"""Technology parameters for the 45 nm / 10 GHz design point.

The paper targets the 45 nm technology generation (ITRS 2002) with an
aggressively clocked 10 GHz core.  Every physical model in the library —
transmission-line extraction, conventional-wire RC delay, bank access
time, and the power/area models — draws its constants from a single
:class:`Technology` object so that experiments stay internally consistent
and alternate design points can be explored by constructing a different
instance.

Values are taken from the paper where it states them (cycle time, memory
latency) and from the ITRS 2002 projections and the BACPAC / "Future of
Wires" models the paper cites for everything else.  All quantities are in
SI units unless the name says otherwise.
"""

from __future__ import annotations

import dataclasses
import math

# Physical constants.
MU_0 = 4.0e-7 * math.pi  # vacuum permeability, H/m
EPS_0 = 8.854e-12  # vacuum permittivity, F/m
C_LIGHT = 2.998e8  # speed of light in vacuum, m/s
COPPER_RESISTIVITY = 2.2e-8  # ohm*m, copper incl. barrier/surface effects


@dataclasses.dataclass(frozen=True)
class Technology:
    """A process/design point.

    The default constructor values describe the paper's target: a 45 nm
    process clocked at 10 GHz with low-k dielectric in the upper
    (transmission-line) metal layers.
    """

    name: str = "45nm-10GHz"
    feature_nm: float = 45.0
    frequency_hz: float = 10e9
    vdd: float = 0.9  # ITRS 2002 projection for high-performance 45 nm
    #: relative permittivity of the inter-metal dielectric surrounding the
    #: transmission lines (low-k per the paper's reference [7]).
    dielectric_er: float = 2.7
    #: loss tangent of the dielectric (used for the shunt conductance G).
    dielectric_loss_tangent: float = 0.003
    resistivity: float = COPPER_RESISTIVITY
    #: capacitance per metre of a conventional repeated global wire
    #: (ITRS-class global interconnect; ~0.2-0.3 pF/mm).
    conventional_wire_cap_per_m: float = 0.25e-9
    #: resistance per metre of a conventional global wire.
    conventional_wire_res_per_m: float = 45e3
    #: energy factor of a NUCA switch traversal, joules per bit.  Derived
    #: from Orion-class router models scaled to 45 nm.
    switch_energy_per_bit: float = 0.18e-12
    #: half-pitch of SRAM used for area models: area of one SRAM cell, m^2.
    sram_cell_area_m2: float = 0.30e-12  # 0.30 um^2 at 45 nm
    #: layout grid unit (lambda) used for transistor gate-width accounting.
    lambda_m: float = 22.5e-9  # half of the 45 nm feature size

    @property
    def cycle_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency_hz

    @property
    def cycle_ps(self) -> float:
        """Clock period in picoseconds."""
        return self.cycle_s * 1e12

    @property
    def wave_velocity(self) -> float:
        """Propagation velocity of an LC line in this dielectric, m/s."""
        return C_LIGHT / math.sqrt(self.dielectric_er)

    def tl_flight_cycles(self, length_m: float) -> float:
        """Time-of-flight of a transmission line of ``length_m``, in cycles."""
        return (length_m / self.wave_velocity) / self.cycle_s

    def conventional_delay_cycles(self, length_m: float) -> float:
        """Delay of an optimally repeated conventional wire, in cycles.

        Repeated wires have delay linear in length.  The per-millimetre
        figure follows Ho/Mai/Horowitz "The Future of Wires": an optimally
        repeated global wire at the 45 nm node covers roughly 0.4-0.8 mm
        per 100 ps cycle; we use the constant implied by the paper's
        SNUCA2/DNUCA hop latencies.
        """
        repeated_wire_velocity = 7.5e6  # m/s effective (≈0.75 mm / cycle)
        return (length_m / repeated_wire_velocity) / self.cycle_s

    def conventional_energy_per_bit(self, length_m: float, alpha: float = 1.0) -> float:
        """Dynamic energy to signal one bit over a repeated RC wire, joules.

        Implements the paper's conventional-signalling equation
        ``P = alpha * C * V^2 * f`` expressed per transition:
        ``E = alpha * C(length) * Vdd^2``.
        """
        cap = self.conventional_wire_cap_per_m * length_m
        return alpha * cap * self.vdd * self.vdd

    def tl_energy_per_bit(self, z0_ohm: float, rd_ohm: float | None = None,
                          alpha: float = 1.0) -> float:
        """Dynamic energy to signal one bit over a transmission line, joules.

        Implements the paper's transmission-line equation
        ``P = alpha * t_b * V^2 / (R_D + Z_0) * f`` per bit time ``t_b``
        (one cycle at the design frequency).  ``rd_ohm`` defaults to a
        matched source (``R_D = Z_0``).
        """
        if rd_ohm is None:
            rd_ohm = z0_ohm
        t_b = self.cycle_s
        return alpha * t_b * self.vdd * self.vdd / (rd_ohm + z0_ohm)


#: The default technology instance used throughout the library.
TECH_45NM = Technology()

"""Transmission-line physics: geometry, RLC extraction, wave propagation.

This package substitutes for the paper's physical-evaluation toolchain:
Linpar (2-D field solver) is replaced by quasi-static closed-form
extraction in :mod:`repro.tline.extraction`, and HSPICE's W-element
simulation by FFT-based frequency-domain pulse propagation in
:mod:`repro.tline.wave`.
"""

from repro.tline.geometry import (
    WireGeometry,
    TABLE1_LINES,
    CONVENTIONAL_GLOBAL_WIRE,
    tl_geometry_for_length,
)
from repro.tline.extraction import LineParameters, extract
from repro.tline.wave import PulseResult, propagate_pulse, trapezoid_pulse
from repro.tline.signaling import SignalingReport, evaluate_link
from repro.tline.noise import (
    CrosstalkReport,
    analyze_crosstalk,
    shielding_improvement,
)
from repro.tline.power import (
    conventional_dynamic_power,
    conventional_energy_per_bit,
    transmission_line_dynamic_power,
    transmission_line_energy_per_bit,
    crossover_length,
)

__all__ = [
    "WireGeometry",
    "TABLE1_LINES",
    "CONVENTIONAL_GLOBAL_WIRE",
    "tl_geometry_for_length",
    "LineParameters",
    "extract",
    "PulseResult",
    "propagate_pulse",
    "trapezoid_pulse",
    "SignalingReport",
    "evaluate_link",
    "CrosstalkReport",
    "analyze_crosstalk",
    "shielding_improvement",
    "conventional_dynamic_power",
    "conventional_energy_per_bit",
    "transmission_line_dynamic_power",
    "transmission_line_energy_per_bit",
    "crossover_length",
]

"""Alternative transmission-line signalling schemes (Section 4's outlook).

The paper picks single-ended voltage-mode signalling but notes that "if
one desires extra reliability, there are other techniques to increase
noise immunity such as using differential signals with a sinusoidal
carrier [8] or current-mode drivers [10]".  This module models those
alternatives far enough to reproduce the trade-off that justified the
paper's choice:

* **single-ended voltage mode** (the TLC baseline) — one line per bit,
  dynamic power only, moderate noise immunity;
* **differential voltage mode** — two lines per bit, ~2x the wire area
  and launch power, but common-mode noise rejection multiplies the
  effective margin;
* **current-mode** — one line per bit and fast, but the terminated
  receiver draws *static* current continuously, which at the low
  utilizations of a cache interconnect (Fig. 7: a few percent)
  dominates total energy — the paper's stated reason for rejecting it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.tech import Technology, TECH_45NM
from repro.tline.power import transmission_line_energy_per_bit

#: common-mode rejection of a differential receiver (margin multiplier).
DIFFERENTIAL_NOISE_REJECTION = 5.0

#: reduced swing a differential pair needs for the same error rate.
DIFFERENTIAL_SWING_FRACTION = 0.5

#: static bias of an LVDS-class differential receiver/driver, amperes —
#: the "low-power, low-voltage drivers [19]" the paper rejects because
#: they "consume too much static power" for low-utilization links.
DIFFERENTIAL_BIAS_A = 0.5e-3

#: static bias current of a terminated current-mode receiver, amperes.
CURRENT_MODE_BIAS_A = 1.0e-3

#: current-mode swing as a fraction of Vdd (low-swing signalling).
CURRENT_MODE_SWING_FRACTION = 0.25


@dataclasses.dataclass(frozen=True)
class SchemeCost:
    """Wire/power/noise costs of one signalling scheme, per bit lane."""

    name: str
    lines_per_bit: int
    dynamic_energy_per_bit_j: float
    static_power_w: float
    #: noise margin multiplier relative to single-ended voltage mode.
    relative_noise_immunity: float

    def average_power_w(self, utilization: float,
                        tech: Technology = TECH_45NM) -> float:
        """Total lane power at a given link utilization."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be a probability")
        toggles_per_s = utilization * tech.frequency_hz
        return self.static_power_w + toggles_per_s * self.dynamic_energy_per_bit_j


def single_ended(z0_ohm: float, tech: Technology = TECH_45NM) -> SchemeCost:
    """The TLC baseline: source-terminated voltage-mode signalling."""
    return SchemeCost(
        name="single-ended voltage",
        lines_per_bit=1,
        dynamic_energy_per_bit_j=transmission_line_energy_per_bit(z0_ohm, tech),
        static_power_w=0.0,
        relative_noise_immunity=1.0,
    )


def differential(z0_ohm: float, tech: Technology = TECH_45NM) -> SchemeCost:
    """LVDS-class differential pair: 2x wires, reduced swing, biased
    receiver (the static cost the paper's Section 6.1 rejects)."""
    swing_energy = (transmission_line_energy_per_bit(z0_ohm, tech)
                    * DIFFERENTIAL_SWING_FRACTION ** 2)
    return SchemeCost(
        name="differential voltage",
        lines_per_bit=2,
        dynamic_energy_per_bit_j=2.0 * swing_energy,
        static_power_w=DIFFERENTIAL_BIAS_A * tech.vdd,
        relative_noise_immunity=DIFFERENTIAL_NOISE_REJECTION,
    )


def current_mode(z0_ohm: float, tech: Technology = TECH_45NM) -> SchemeCost:
    """Current-mode driver with a continuously biased receiver."""
    dynamic = (transmission_line_energy_per_bit(z0_ohm, tech)
               * CURRENT_MODE_SWING_FRACTION ** 2)
    static = CURRENT_MODE_BIAS_A * tech.vdd
    return SchemeCost(
        name="current mode",
        lines_per_bit=1,
        dynamic_energy_per_bit_j=dynamic,
        static_power_w=static,
        relative_noise_immunity=2.0,
    )


def compare_schemes(z0_ohm: float, utilization: float,
                    tech: Technology = TECH_45NM) -> Dict[str, SchemeCost]:
    """All three schemes for a link of impedance ``z0_ohm``."""
    return {scheme.name: scheme
            for scheme in (single_ended(z0_ohm, tech),
                           differential(z0_ohm, tech),
                           current_mode(z0_ohm, tech))}


def cheapest_at(z0_ohm: float, utilization: float,
                tech: Technology = TECH_45NM) -> Tuple[str, float]:
    """(scheme name, watts) of the lowest-power scheme at a utilization.

    At cache-interconnect utilizations (a few percent) this is the
    single-ended voltage scheme — the paper's choice; current mode only
    wins on links that are busy most of the time.
    """
    schemes = compare_schemes(z0_ohm, utilization, tech)
    best = min(schemes.values(),
               key=lambda s: s.average_power_w(utilization, tech))
    return best.name, best.average_power_w(utilization, tech)

"""Quasi-static RLC(f) extraction for shielded on-chip striplines.

Substitutes for the paper's use of Linpar, a 2-D field solver.  The
geometry is the one the paper describes (Section 3): a signal conductor
between two reference planes, with grounded power/ground shield wires on
both sides.  Because the dielectric is homogeneous, the line is TEM and
the inductance follows exactly from the capacitance via
``L * C = mu0 * eps0 * er`` — so only the capacitance needs a model.

Capacitance combines three standard components:

* parallel-plate coupling to the two reference planes (``2 * er*e0 * w/h``),
* sidewall coupling to the two adjacent shield wires (``2 * er*e0 * t/s``),
* a fringing term per conductor edge.

Resistance is frequency dependent (skin effect): current crowds into a
shell of one skin depth around the conductor perimeter, and the nearby
return planes carry an image current with their own loss (modelled as a
fixed fractional increase).  Dielectric loss enters through the loss
tangent as a shunt conductance.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Union

try:  # optional: extract() itself is pure scalar math; only the
    import numpy as np  # frequency-sweep methods need numpy
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from repro.tech import EPS_0, MU_0, Technology, TECH_45NM
from repro.tline.geometry import WireGeometry

#: Fringing capacitance factor per conductor edge, in units of er*e0.
#: Reduced from the free-conductor value (~1.1) because most fringe field
#: lines terminate on the adjacent shield wires, which are accounted for
#: separately by the sidewall term — counting both in full would
#: double-count the field, which a true 2-D solver like Linpar does not.
FRINGE_FACTOR_PER_EDGE = 0.4

#: Sidewall coupling derating: the parallel-plate sidewall estimate is an
#: upper bound because the reference planes above and below capture part
#: of the sidewall field (field sharing).
SIDEWALL_SHARING_FACTOR = 0.7

#: Multiplier on conductor resistance accounting for the resistance of the
#: return path.  Striplines return current through *two* reference planes
#: in parallel plus the shield wires, so the penalty is modest.
RETURN_PATH_FACTOR = 1.15

ArrayLike = Union[float, Any] if np is None else Union[float, np.ndarray]


@dataclasses.dataclass(frozen=True)
class LineParameters:
    """Per-unit-length parameters of an extracted line (SI units)."""

    geometry: WireGeometry
    tech: Technology
    c_per_m: float  # F/m
    l_per_m: float  # H/m
    r_dc_per_m: float  # ohm/m

    @property
    def z0(self) -> float:
        """Lossless characteristic impedance sqrt(L/C), ohms."""
        return math.sqrt(self.l_per_m / self.c_per_m)

    @property
    def velocity(self) -> float:
        """Propagation velocity 1/sqrt(LC), m/s."""
        return 1.0 / math.sqrt(self.l_per_m * self.c_per_m)

    @property
    def flight_time(self) -> float:
        """Time of flight over the routed length, seconds."""
        return self.geometry.length / self.velocity

    def skin_depth(self, freq_hz: ArrayLike) -> ArrayLike:
        """Skin depth at ``freq_hz``, metres."""
        freq = np.maximum(np.asarray(freq_hz, dtype=float), 1.0)
        return np.sqrt(self.tech.resistivity / (math.pi * freq * MU_0))

    def r_per_m(self, freq_hz: ArrayLike) -> ArrayLike:
        """Series resistance per metre at ``freq_hz``, including skin effect.

        Uses the conduction-shell model: current flows in a shell of one
        skin depth around the perimeter; at low frequency the shell fills
        the whole conductor and the value reduces to the DC resistance.
        """
        w, t = self.geometry.width, self.geometry.thickness
        delta = np.minimum(self.skin_depth(freq_hz), min(w, t) / 2.0)
        shell_area = w * t - np.maximum(w - 2 * delta, 0.0) * np.maximum(t - 2 * delta, 0.0)
        r_conductor = self.tech.resistivity / shell_area
        return RETURN_PATH_FACTOR * r_conductor

    def g_per_m(self, freq_hz: ArrayLike) -> ArrayLike:
        """Shunt conductance per metre from dielectric loss, S/m."""
        omega = 2.0 * math.pi * np.asarray(freq_hz, dtype=float)
        return omega * self.c_per_m * self.tech.dielectric_loss_tangent

    def gamma(self, freq_hz: ArrayLike) -> np.ndarray:
        """Complex propagation constant per metre at ``freq_hz``."""
        omega = 2.0 * math.pi * np.asarray(freq_hz, dtype=float)
        series = self.r_per_m(freq_hz) + 1j * omega * self.l_per_m
        shunt = self.g_per_m(freq_hz) + 1j * omega * self.c_per_m
        return np.sqrt(series * shunt)

    def z0_complex(self, freq_hz: ArrayLike) -> np.ndarray:
        """Frequency-dependent characteristic impedance sqrt(Z/Y), ohms."""
        omega = 2.0 * math.pi * np.asarray(freq_hz, dtype=float)
        series = self.r_per_m(freq_hz) + 1j * omega * self.l_per_m
        shunt = self.g_per_m(freq_hz) + 1j * omega * self.c_per_m
        # Guard the DC bin where both vanish.
        shunt = np.where(np.abs(shunt) == 0.0, 1e-30, shunt)
        return np.sqrt(series / shunt)

    def attenuation_np(self, freq_hz: float) -> float:
        """One-way attenuation in nepers over the routed length."""
        return float(np.real(self.gamma(freq_hz))) * self.geometry.length

    def lc_transition_hz(self) -> float:
        """Frequency above which the line is inductance-dominated (R = wL)."""
        # Solve R(f) = 2*pi*f*L iteratively; R grows like sqrt(f) so the
        # fixed point converges quickly.
        freq = 1e9
        for _ in range(60):
            freq_next = float(self.r_per_m(freq)) / (2.0 * math.pi * self.l_per_m)
            if abs(freq_next - freq) < 1e3:
                break
            freq = freq_next
        return freq


def extract(geometry: WireGeometry, tech: Technology = TECH_45NM) -> LineParameters:
    """Extract per-unit-length RLC for ``geometry`` in ``tech``'s dielectric."""
    er_e0 = tech.dielectric_er * EPS_0
    c_planes = 2.0 * er_e0 * geometry.width / geometry.height
    # Shielded lines couple sideways to power/ground shields; unshielded
    # (conventional) wires couple to neighbouring signals the same way.
    c_shields = (SIDEWALL_SHARING_FACTOR * 2.0 * er_e0
                 * geometry.thickness / geometry.spacing)
    c_fringe = 4.0 * FRINGE_FACTOR_PER_EDGE * er_e0
    c_per_m = c_planes + c_shields + c_fringe
    # TEM relation in a homogeneous dielectric: L*C = mu0*eps0*er.
    l_per_m = MU_0 * EPS_0 * tech.dielectric_er / c_per_m
    r_dc = tech.resistivity / geometry.cross_section_area
    return LineParameters(
        geometry=geometry,
        tech=tech,
        c_per_m=c_per_m,
        l_per_m=l_per_m,
        r_dc_per_m=r_dc,
    )

"""Wire cross-section geometries (paper Figure 3 and Table 1).

The paper sizes its transmission lines by length so that longer lines
get wider tracks, keeping resistance and characteristic impedance in the
usable range (Table 1).  Lines are laid out stripline-fashion: a signal
layer sandwiched between reference planes, with alternating power/ground
shield wires between signals.

The conventional comparison wire is an ITRS-class repeated global wire —
an order of magnitude smaller in every dimension (Figure 3's "cross-
sectional comparison").
"""

from __future__ import annotations

import dataclasses
from typing import Tuple


@dataclasses.dataclass(frozen=True)
class WireGeometry:
    """A wire cross-section plus routed length.  Dimensions in metres.

    ``height`` is the dielectric spacing from the signal conductor to
    each reference plane; ``thickness`` is the conductor thickness;
    ``spacing`` the edge-to-edge gap to the neighbouring shield wire.
    """

    name: str
    length: float
    width: float
    spacing: float
    height: float
    thickness: float
    shielded: bool = True

    def __post_init__(self) -> None:
        for field in ("length", "width", "spacing", "height", "thickness"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    @property
    def pitch(self) -> float:
        """Signal-to-signal pitch including one shield wire: 2*(w+s)."""
        return 2.0 * (self.width + self.spacing) if self.shielded else self.width + self.spacing

    @property
    def cross_section_area(self) -> float:
        """Conductor cross-sectional area, m^2."""
        return self.width * self.thickness

    @property
    def aspect_ratio(self) -> float:
        return self.thickness / self.width


def _um(x: float) -> float:
    return x * 1e-6


def _cm(x: float) -> float:
    return x * 1e-2


#: Table 1 of the paper: transmission-line dimensions by routed length.
TABLE1_LINES: Tuple[WireGeometry, ...] = (
    WireGeometry("tl-0.9cm", length=_cm(0.9), width=_um(2.0), spacing=_um(2.0),
                 height=_um(1.75), thickness=_um(3.0)),
    WireGeometry("tl-1.1cm", length=_cm(1.1), width=_um(2.5), spacing=_um(2.5),
                 height=_um(1.75), thickness=_um(3.0)),
    WireGeometry("tl-1.3cm", length=_cm(1.3), width=_um(3.0), spacing=_um(3.0),
                 height=_um(1.75), thickness=_um(3.0)),
)


#: The conventional repeated global wire of the DNUCA network at 45 nm
#: (ITRS 2002 global-tier dimensions; cf. Figure 3's comparison).
CONVENTIONAL_GLOBAL_WIRE = WireGeometry(
    "conventional-global",
    length=_cm(0.1),
    width=_um(0.22),
    spacing=_um(0.22),
    height=_um(0.35),
    thickness=_um(0.45),
    shielded=False,
)


def tl_geometry_for_length(length_m: float) -> WireGeometry:
    """The Table 1 geometry class appropriate for a line of ``length_m``.

    The paper widens longer lines to hold resistance down; routed lengths
    between the table's entries use the next larger class, and lengths
    beyond 1.3 cm raise (the floorplan never needs them).
    """
    if length_m <= 0:
        raise ValueError("length must be positive")
    for geometry in TABLE1_LINES:
        if length_m <= geometry.length + 1e-12:
            return dataclasses.replace(geometry, length=length_m)
    raise ValueError(
        f"no Table 1 geometry covers a {length_m * 100:.2f} cm line "
        "(the TLC floorplan tops out at 1.3 cm)"
    )

"""Crosstalk and noise-margin analysis for the shielded line arrays.

Section 3 argues that alternating power/ground shields between the
transmission lines (plus reference planes above and below) isolate each
line "from most capacitive and inductive cross-coupling noise".  This
module quantifies that claim with standard coupled-line theory:

* mutual capacitance/inductance between a victim and its nearest
  aggressor, with and without the shield wire between them;
* the backward (near-end) and forward (far-end) crosstalk coefficients
  of the weakly-coupled TEM pair;
* a worst-case noise check — both neighbours switching against the
  victim — compared against the receiver's noise margin, which is set
  by the paper's 75 %-of-Vdd amplitude criterion (the margin is what is
  left between the attenuated signal and the decision threshold).
"""

from __future__ import annotations

import dataclasses

from repro.tech import EPS_0, Technology, TECH_45NM
from repro.tline.extraction import LineParameters, extract
from repro.tline.geometry import WireGeometry

#: fraction of neighbour coupling that leaks past a grounded shield wire
#: (fringe paths over and under the shield).  Khatri-style interleaved
#: power/ground fabrics measure ~3-8 % residual coupling.
SHIELD_RESIDUE = 0.06

#: receiver decision threshold as a fraction of Vdd.
DECISION_THRESHOLD = 0.5


@dataclasses.dataclass(frozen=True)
class CrosstalkReport:
    """Coupling and worst-case noise for one victim line."""

    geometry: WireGeometry
    shielded: bool
    #: mutual capacitance to one neighbour, F/m.
    cm_per_m: float
    #: victim's total capacitance, F/m.
    c_per_m: float
    #: backward (near-end) crosstalk coefficient.
    backward_coefficient: float
    #: forward (far-end) crosstalk coefficient magnitude.
    forward_coefficient: float
    #: worst-case peak noise with both neighbours switching, volts.
    worst_case_noise_v: float
    #: noise margin left after attenuation, volts.
    noise_margin_v: float

    @property
    def passes(self) -> bool:
        """True when worst-case noise fits inside the margin."""
        return self.worst_case_noise_v < self.noise_margin_v


def mutual_capacitance(geometry: WireGeometry, tech: Technology = TECH_45NM,
                       shielded: bool = True) -> float:
    """Mutual capacitance per metre between adjacent signal lines.

    Unshielded, the neighbouring signal sits one shield-pitch away
    (``w + 2s`` edge to edge if the shield track were reclaimed for
    spacing); shielded, only the :data:`SHIELD_RESIDUE` fraction of
    that sidewall coupling survives.
    """
    er_e0 = tech.dielectric_er * EPS_0
    # Sidewall parallel-plate estimate to the neighbouring conductor.
    edge_gap = geometry.width + 2 * geometry.spacing  # across the shield slot
    coupling = er_e0 * geometry.thickness / edge_gap
    if shielded:
        coupling *= SHIELD_RESIDUE
    return coupling


def analyze_crosstalk(geometry: WireGeometry, tech: Technology = TECH_45NM,
                      shielded: bool = True,
                      received_amplitude_fraction: float = 0.75) -> CrosstalkReport:
    """Coupled-line crosstalk analysis of one victim line.

    ``received_amplitude_fraction`` is the victim's worst-case received
    amplitude (the paper's acceptance floor by default); the noise
    margin is the distance from that level to the decision threshold.
    """
    line: LineParameters = extract(geometry, tech)
    cm = mutual_capacitance(geometry, tech, shielded)
    c_ratio = cm / line.c_per_m
    # Homogeneous TEM: the inductive coupling ratio equals the
    # capacitive one, so backward coupling adds and forward coupling
    # (their difference) nearly cancels.
    l_ratio = c_ratio
    backward = (c_ratio + l_ratio) / 4.0
    forward = abs(c_ratio - l_ratio) / 2.0
    # Worst case: both neighbours switch the same way against the victim.
    worst = 2.0 * backward * tech.vdd
    margin = (received_amplitude_fraction - DECISION_THRESHOLD) * tech.vdd
    return CrosstalkReport(
        geometry=geometry,
        shielded=shielded,
        cm_per_m=cm,
        c_per_m=line.c_per_m,
        backward_coefficient=backward,
        forward_coefficient=forward,
        worst_case_noise_v=worst,
        noise_margin_v=margin,
    )


def shielding_improvement(geometry: WireGeometry,
                          tech: Technology = TECH_45NM) -> float:
    """How many times the shield reduces worst-case crosstalk."""
    with_shield = analyze_crosstalk(geometry, tech, shielded=True)
    without = analyze_crosstalk(geometry, tech, shielded=False)
    if with_shield.worst_case_noise_v == 0:
        return float("inf")
    return without.worst_case_noise_v / with_shield.worst_case_noise_v

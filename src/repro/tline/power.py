"""Dynamic-power models for the two signalling styles (Section 6.1, Power).

The paper gives both equations explicitly:

* conventional repeated RC signalling charges the wire capacitance::

      P = alpha * C * V^2 * f

* voltage-mode transmission-line signalling supplies the incident wave
  through the source resistance in series with the line impedance::

      P = alpha * t_b * V^2 / (R_D + Z_0) * f

and notes that with a matched source (``R_D = Z_0``) the transmission
line wins whenever ``t_b / (2 * Z_0) < C`` — i.e. for long enough wires.
This module implements both, plus the crossover-length solver used in
the power discussion and the per-event energies the network power
accounting (Table 9) consumes.
"""

from __future__ import annotations

from repro.tech import Technology, TECH_45NM


def conventional_dynamic_power(capacitance_f: float, tech: Technology = TECH_45NM,
                               alpha: float = 1.0) -> float:
    """Dynamic power (watts) of a conventional repeated wire.

    ``capacitance_f`` is the wire's total capacitance in farads; ``alpha``
    the data activity factor.
    """
    if capacitance_f < 0:
        raise ValueError("capacitance must be non-negative")
    return alpha * capacitance_f * tech.vdd ** 2 * tech.frequency_hz


def transmission_line_dynamic_power(z0_ohm: float, tech: Technology = TECH_45NM,
                                    rd_ohm: float | None = None,
                                    alpha: float = 1.0,
                                    bit_time_s: float | None = None) -> float:
    """Dynamic power (watts) of a voltage-mode transmission-line driver."""
    if z0_ohm <= 0:
        raise ValueError("characteristic impedance must be positive")
    if rd_ohm is None:
        rd_ohm = z0_ohm
    if bit_time_s is None:
        bit_time_s = tech.cycle_s
    return alpha * bit_time_s * tech.vdd ** 2 / (rd_ohm + z0_ohm) * tech.frequency_hz


def conventional_energy_per_bit(length_m: float, tech: Technology = TECH_45NM) -> float:
    """Energy (joules) to move one bit one transition over an RC wire."""
    return tech.conventional_wire_cap_per_m * length_m * tech.vdd ** 2


def transmission_line_energy_per_bit(z0_ohm: float, tech: Technology = TECH_45NM,
                                     rd_ohm: float | None = None,
                                     bit_time_s: float | None = None) -> float:
    """Energy (joules) to send one bit-time pulse down a transmission line."""
    if rd_ohm is None:
        rd_ohm = z0_ohm
    if bit_time_s is None:
        bit_time_s = tech.cycle_s
    return bit_time_s * tech.vdd ** 2 / (rd_ohm + z0_ohm)


def crossover_length(z0_ohm: float, tech: Technology = TECH_45NM,
                     bit_time_s: float | None = None) -> float:
    """Wire length (metres) above which a matched transmission line uses
    less dynamic energy than a conventional wire.

    Solves the paper's inequality ``t_b / (2 * Z_0) < C(length)`` for the
    length at equality, using the technology's conventional per-metre
    wire capacitance.  The paper observes this lands "beyond ~1 cm".
    """
    if bit_time_s is None:
        bit_time_s = tech.cycle_s
    equivalent_cap = bit_time_s / (2.0 * z0_ohm)
    return equivalent_cap / tech.conventional_wire_cap_per_m

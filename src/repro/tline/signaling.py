"""Link-level signalling evaluation against the paper's acceptance criteria.

Section 5 ("Physical Evaluation"): a transmission line is usable when a
10 GHz pulse arrives with an amplitude of at least 75 % of Vdd and a
pulse width of at least 40 % of the processor cycle time.  This module
wraps the extraction + wave-propagation pipeline into a one-call check
and converts the measured flight time into the integer cycle counts the
timing models consume.
"""

from __future__ import annotations

import dataclasses
import math

from repro.tech import Technology, TECH_45NM
from repro.tline.extraction import LineParameters, extract
from repro.tline.geometry import WireGeometry, tl_geometry_for_length
from repro.tline.wave import PulseResult, propagate_pulse

#: Paper's acceptance thresholds.
MIN_AMPLITUDE_FRACTION = 0.75
MIN_WIDTH_FRACTION = 0.40


@dataclasses.dataclass(frozen=True)
class SignalingReport:
    """Result of evaluating one point-to-point transmission-line link."""

    geometry: WireGeometry
    line: LineParameters
    pulse: PulseResult
    amplitude_fraction: float
    width_fraction: float
    latency_cycles: int

    @property
    def meets_amplitude(self) -> bool:
        return self.amplitude_fraction >= MIN_AMPLITUDE_FRACTION

    @property
    def meets_width(self) -> bool:
        return self.width_fraction >= MIN_WIDTH_FRACTION

    @property
    def usable(self) -> bool:
        """True when the link passes both of the paper's criteria."""
        return self.meets_amplitude and self.meets_width


def evaluate_link(length_m: float, tech: Technology = TECH_45NM,
                  geometry: WireGeometry | None = None) -> SignalingReport:
    """Extract, simulate, and grade a transmission-line link.

    ``geometry`` defaults to the Table 1 class for the requested length.
    The returned ``latency_cycles`` is the conservative whole-cycle link
    latency used by the cache timing models: the measured 50 %-crossing
    delay rounded up, with the paper's 40 %-of-cycle setup/hold guard
    band folded into the rounding.
    """
    if geometry is None:
        geometry = tl_geometry_for_length(length_m)
    line = extract(geometry, tech)
    pulse = propagate_pulse(line, vdd=tech.vdd, bit_time_s=tech.cycle_s)
    # The paper's 40 %-of-cycle setup/hold requirement is enforced by the
    # pulse-width criterion below; the link latency is the 50 %-crossing
    # delay rounded up to whole cycles.
    latency_cycles = max(1, math.ceil(pulse.delay_s / tech.cycle_s - 1e-9))
    return SignalingReport(
        geometry=geometry,
        line=line,
        pulse=pulse,
        amplitude_fraction=pulse.amplitude_fraction(),
        width_fraction=pulse.width_fraction(tech.cycle_s),
        latency_cycles=latency_cycles,
    )

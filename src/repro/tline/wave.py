"""Frequency-domain pulse propagation (the HSPICE W-element substitute).

The paper simulated 10 GHz pulses through its extracted lines with
HSPICE's W-element — itself a frequency-domain RLGC model — and accepted
a line if the received signal kept an amplitude of at least 75 % of Vdd
and a pulse width of at least 40 % of the cycle time.

We reproduce that flow directly: the driver launches a trapezoidal pulse
through a source resistance ``R_D`` into the line; the receiver is a
high-impedance (capacitive) termination that reflects the full wave, as
the paper describes.  The received voltage in the frequency domain is
the exact two-port solution

    V_rx(f) = V_s(f) * Zin/(Zin + R_D) * (1 + G_l) e^{-gl} / (1 + G_l e^{-2gl})

with ``G_l`` the receiver reflection coefficient and ``Zin`` the input
impedance of the terminated line, so every reflection, the skin-effect
dispersion, and the dielectric loss are all accounted for.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

try:  # optional: pulse propagation is FFT-based and needs numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from repro.tline.extraction import LineParameters


@dataclasses.dataclass(frozen=True)
class PulseResult:
    """Measured properties of a received pulse."""

    time_s: np.ndarray
    driver_v: np.ndarray
    received_v: np.ndarray
    vdd: float
    #: 50 %-of-Vdd crossing delay from driver input to receiver, seconds.
    delay_s: float
    #: peak received voltage, volts.
    amplitude_v: float
    #: received pulse width at 50 % of Vdd, seconds.
    width_s: float

    def amplitude_fraction(self) -> float:
        """Received amplitude as a fraction of Vdd."""
        return self.amplitude_v / self.vdd

    def width_fraction(self, cycle_s: float) -> float:
        """Received pulse width as a fraction of the clock cycle."""
        return self.width_s / cycle_s

    def delay_cycles(self, cycle_s: float) -> float:
        return self.delay_s / cycle_s


def trapezoid_pulse(time_s: np.ndarray, vdd: float, start_s: float,
                    bit_time_s: float, rise_s: float) -> np.ndarray:
    """A single trapezoidal pulse: rise, hold, fall.

    ``bit_time_s`` is the flat-top duration measured at 50 % amplitude,
    matching how a one-cycle pulse is specified.
    """
    t = np.asarray(time_s, dtype=float)
    up = np.clip((t - start_s) / rise_s, 0.0, 1.0)
    down = np.clip((t - start_s - bit_time_s) / rise_s, 0.0, 1.0)
    return vdd * (up - down)


def _threshold_crossings(time_s: np.ndarray, signal: np.ndarray,
                         threshold: float) -> np.ndarray:
    """Interpolated times where ``signal`` crosses ``threshold`` upward or down."""
    above = signal >= threshold
    edges = np.flatnonzero(above[1:] != above[:-1])
    crossings = []
    for i in edges:
        v0, v1 = signal[i], signal[i + 1]
        frac = (threshold - v0) / (v1 - v0)
        crossings.append(time_s[i] + frac * (time_s[i + 1] - time_s[i]))
    return np.asarray(crossings)


def propagate_pulse(line: LineParameters, vdd: float,
                    bit_time_s: float, rise_s: Optional[float] = None,
                    rd_ohm: Optional[float] = None,
                    receiver_cap_f: float = 5e-15,
                    window_s: Optional[float] = None,
                    samples: int = 4096) -> PulseResult:
    """Drive one pulse down ``line`` and measure what the receiver sees.

    Parameters mirror the paper's setup: ``rd_ohm`` defaults to a source
    matched to the lossless characteristic impedance (the paper's
    digitally-tuned source termination), and the receiver is a small
    capacitive load (full-wave reflection).
    """
    if np is None:
        raise ImportError(
            "pulse propagation requires numpy, which is not installed")
    if rd_ohm is None:
        rd_ohm = line.z0
    if rise_s is None:
        rise_s = bit_time_s / 10.0
    if window_s is None:
        # Room for the flight, several reflections, and dispersion tails.
        window_s = 6.0 * bit_time_s + 12.0 * line.flight_time

    time_s = np.linspace(0.0, window_s, samples, endpoint=False)
    dt = time_s[1] - time_s[0]
    start = bit_time_s  # idle lead-in so the FFT window starts quiet
    v_source = trapezoid_pulse(time_s, vdd, start, bit_time_s, rise_s)

    freq = np.fft.rfftfreq(samples, dt)
    spectrum = np.fft.rfft(v_source)

    gamma_l = line.gamma(freq) * line.geometry.length
    z0 = line.z0_complex(freq)
    omega = 2.0 * np.pi * freq
    with np.errstate(divide="ignore", invalid="ignore"):
        z_load = np.where(omega > 0.0, 1.0 / (1j * omega * receiver_cap_f), 1e12)
    refl_load = (z_load - z0) / (z_load + z0)

    exp_neg = np.exp(-gamma_l)
    exp_neg2 = exp_neg * exp_neg
    denom = 1.0 + refl_load * exp_neg2
    z_in = z0 * (1.0 + refl_load * exp_neg2) / (1.0 - refl_load * exp_neg2)
    # Driver-side divider, then propagation to the (reflecting) far end.
    transfer = (z_in / (z_in + rd_ohm)) * (1.0 + refl_load) * exp_neg / denom
    transfer[0] = 1.0  # DC: line is a wire, open receiver sees the source

    v_received = np.fft.irfft(spectrum * transfer, samples)

    threshold = vdd / 2.0
    tx_cross = _threshold_crossings(time_s, v_source, threshold)
    rx_cross = _threshold_crossings(time_s, v_received, threshold)
    if tx_cross.size and rx_cross.size:
        delay = float(rx_cross[0] - tx_cross[0])
    else:
        delay = float("inf")
    if rx_cross.size >= 2:
        width = float(rx_cross[1] - rx_cross[0])
    else:
        width = 0.0
    amplitude = float(np.max(v_received))
    return PulseResult(
        time_s=time_s,
        driver_v=v_source,
        received_v=v_received,
        vdd=vdd,
        delay_s=delay,
        amplitude_v=amplitude,
        width_s=width,
    )

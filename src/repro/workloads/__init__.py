"""Synthetic workloads: the Simics/SPEC/commercial-benchmark substitute.

Each of the paper's twelve benchmarks is represented by a
:class:`~repro.workloads.profiles.BenchmarkProfile` whose parameters are
calibrated to the characteristics Table 6 reports (L2 requests per
kilo-instruction, miss rate, footprint, locality).  The generators in
:mod:`repro.workloads.synthetic` turn a profile into a deterministic
L2-level reference trace.
"""

from repro.workloads.trace import Reference, save_trace, load_trace
from repro.workloads.synthetic import generate_trace, TraceSpec
from repro.workloads.stats import (
    footprint,
    predict_miss_ratio,
    reuse_distance_histogram,
    summarize,
)
from repro.workloads.cpu_level import CpuLevelSpec, generate_cpu_trace
from repro.workloads.profiles import (
    BenchmarkProfile,
    PROFILES,
    benchmark_names,
    get_profile,
)

__all__ = [
    "Reference",
    "save_trace",
    "load_trace",
    "generate_trace",
    "TraceSpec",
    "footprint",
    "predict_miss_ratio",
    "reuse_distance_histogram",
    "summarize",
    "CpuLevelSpec",
    "generate_cpu_trace",
    "BenchmarkProfile",
    "PROFILES",
    "benchmark_names",
    "get_profile",
]

"""Calibration verification: do the profiles hit their Table 6 targets?

The synthetic profiles were tuned so that simulating them reproduces
the workload characteristics the paper reports.  This module closes the
loop programmatically: it renders a profile, replays it on the TLC and
DNUCA designs, and grades the measured characteristics against the
published Table 6 row — producing the evidence EXPERIMENTS.md cites and
letting future re-tuning detect regressions.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

from repro.analysis.tables import PAPER_TABLE6
from repro.sim.system import run_system
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import generate_trace


@dataclasses.dataclass(frozen=True)
class CalibrationGrade:
    """Measured-vs-paper comparison for one benchmark."""

    benchmark: str
    measured_tlc_mpki: float
    paper_tlc_mpki: float
    measured_close_hit: float
    paper_close_hit: float
    measured_request_rate: float
    paper_equivalent_rate: Optional[float]

    #: below this mpki both values mean "the benchmark basically never
    #: misses"; relative error there is statistical noise at feasible
    #: trace lengths.
    TINY_MPKI = 0.1

    @property
    def mpki_log_error(self) -> float:
        """|log10(measured / paper)| — 0.3 means within 2x."""
        if (self.measured_tlc_mpki < self.TINY_MPKI
                and self.paper_tlc_mpki < self.TINY_MPKI):
            return 0.0
        if self.measured_tlc_mpki <= 0 or self.paper_tlc_mpki <= 0:
            return 1.0
        return abs(math.log10(self.measured_tlc_mpki / self.paper_tlc_mpki))

    @property
    def close_hit_error(self) -> float:
        return abs(self.measured_close_hit - self.paper_close_hit)

    def within(self, mpki_decades: float = 0.4,
               close_hit_points: float = 0.30) -> bool:
        """Is this benchmark calibrated within the stated tolerances?"""
        return (self.mpki_log_error <= mpki_decades
                and self.close_hit_error <= close_hit_points)


def grade_benchmark(benchmark: str, n_refs: int = 15_000,
                    seed: int = 7) -> CalibrationGrade:
    """Measure one benchmark's characteristics and grade them."""
    paper = PAPER_TABLE6[benchmark]
    profile = get_profile(benchmark)
    trace = generate_trace(profile.spec, n_refs, seed=seed)
    tlc = run_system("TLC", benchmark, trace=trace)
    dnuca = run_system("DNUCA", benchmark, trace=trace)
    close = dnuca.stats.get("close_hits", 0) / max(1, dnuca.l2_requests)
    return CalibrationGrade(
        benchmark=benchmark,
        measured_tlc_mpki=tlc.misses_per_kinstr,
        paper_tlc_mpki=paper["tlc_mpki"],
        measured_close_hit=close,
        paper_close_hit=paper["close_hit"],
        measured_request_rate=profile.l2_requests_per_kinstr,
        paper_equivalent_rate=None,
    )


def grade_all(n_refs: int = 15_000, seed: int = 7) -> Dict[str, CalibrationGrade]:
    """Grade every profile.  Expensive: runs TLC+DNUCA on each."""
    return {name: grade_benchmark(name, n_refs, seed)
            for name in PAPER_TABLE6}

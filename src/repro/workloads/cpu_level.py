"""CPU-level (pre-L1) reference streams.

The main experiment pipeline replays *L2-level* traces (already filtered
by the L1s), which is what the Table 6 calibration pins down.  For
full-system studies — where the L1s themselves are simulated — this
module generates the unfiltered stream the core would issue.

A CPU-level stream differs from an L2-level one in two ways:

* most references hit a small, intensely reused near set (stack frames,
  hot locals, the top of the heap) that the L1 absorbs;
* the L2-relevant behaviour underneath is still described by a
  :class:`~repro.workloads.synthetic.TraceSpec`, but with *spatial* runs
  (several consecutive words of a block touched in sequence), which the
  64-byte L1 blocks exploit.

``generate_cpu_trace`` composes both: with default parameters roughly
90-97 % of references hit a 64 KB L1, and the L1 miss stream then
resembles the underlying spec — so the same calibration carries over.
"""

from __future__ import annotations

import dataclasses
from typing import List

try:  # optional at import time: only generate_cpu_trace needs numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from repro.workloads.synthetic import TraceSpec, generate_trace
from repro.workloads.trace import Reference

WORD_BYTES = 8
BLOCK_BYTES = 64


@dataclasses.dataclass(frozen=True)
class CpuLevelSpec:
    """Parameters of a CPU-level reference stream."""

    #: the underlying L2-relevant behaviour.
    l2_spec: TraceSpec
    #: fraction of references to the near (L1-resident) set.
    near_fraction: float = 0.75
    #: size of the near set in bytes (must fit the L1 to be absorbed).
    near_bytes: int = 16 * 1024
    #: consecutive same-block words touched per far reference (spatial
    #: locality the L1 block exploits).
    spatial_run: int = 2
    #: mean instructions between CPU references.
    mean_gap: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.near_fraction < 1.0:
            raise ValueError("near_fraction must be in [0, 1)")
        if self.near_bytes <= 0 or self.near_bytes % BLOCK_BYTES:
            raise ValueError("near_bytes must be a positive block multiple")
        if self.spatial_run < 1:
            raise ValueError("spatial_run must be at least 1")
        if self.mean_gap < 1.0:
            raise ValueError("mean_gap must be at least 1")


#: the near set lives far above every synthetic region (block numbers
#: beyond the 40-bit scatter space).
_NEAR_BASE = 1 << 41


def generate_cpu_trace(spec: CpuLevelSpec, n_refs: int,
                       seed: int = 0) -> List[Reference]:
    """Generate ``n_refs`` CPU-level references, deterministically."""
    if n_refs <= 0:
        raise ValueError("n_refs must be positive")
    if np is None:
        raise ImportError(
            "CPU-level trace generation requires numpy, which is not "
            "installed")
    rng = np.random.default_rng(seed ^ 0x5EED)

    # Far references expand each L2-level reference into a spatial run.
    far_quota = int(n_refs * (1.0 - spec.near_fraction))
    far_base_refs = max(1, far_quota // spec.spatial_run + 1)
    base = generate_trace(spec.l2_spec, far_base_refs, seed=seed)

    near_blocks = spec.near_bytes // BLOCK_BYTES
    gaps = rng.geometric(min(1.0, 1.0 / spec.mean_gap), size=n_refs)
    near_draws = rng.random(n_refs)
    near_addrs = (_NEAR_BASE + rng.integers(0, near_blocks, size=n_refs)) \
        * BLOCK_BYTES + rng.integers(0, BLOCK_BYTES // WORD_BYTES,
                                     size=n_refs) * WORD_BYTES
    near_writes = rng.random(n_refs) < 0.35

    out: List[Reference] = []
    base_index = 0
    run_left = 0
    run_ref = base[0]
    run_word = 0
    for i in range(n_refs):
        if near_draws[i] < spec.near_fraction:
            out.append(Reference(int(gaps[i]), int(near_addrs[i]),
                                 bool(near_writes[i]), False))
            continue
        if run_left == 0:
            run_ref = base[base_index % len(base)]
            base_index += 1
            run_left = spec.spatial_run
            run_word = 0
        addr = run_ref.addr + (run_word * WORD_BYTES) % BLOCK_BYTES
        out.append(Reference(int(gaps[i]), addr, run_ref.write,
                             run_ref.dependent and run_word == 0))
        run_word += 1
        run_left -= 1
    return out

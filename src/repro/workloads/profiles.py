"""The twelve benchmark profiles (paper Table 4/5 workloads).

Each profile is a :class:`TraceSpec` calibrated so the synthetic stream
reproduces the corresponding benchmark's Table 6 characteristics:

* ``mean_gap`` sets L2 requests per kilo-instruction,
* the cold/stream fractions set the L2 miss rate,
* hot-set size and skew set the temporal-locality concentration that
  drives DNUCA's close-hit percentage and promotion behaviour,
* ``dependent_fraction`` models pointer chasing (mcf) vs. streaming
  independence (SPECfp), which controls how much L2 latency the
  out-of-order core can hide.

The absolute populations are expressed against the paper's 16 MB L2
(262144 blocks of 64 bytes).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.workloads.synthetic import TraceSpec


@dataclasses.dataclass(frozen=True)
class BenchmarkProfile:
    """One benchmark: its trace spec plus descriptive metadata."""

    name: str
    suite: str  # "SPECint", "SPECfp", or "commercial"
    description: str
    spec: TraceSpec

    @property
    def l2_requests_per_kinstr(self) -> float:
        """Nominal L2 request rate implied by the mean gap."""
        return 1000.0 / self.spec.mean_gap


def _profile(name: str, suite: str, description: str, **spec_kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(name, suite, description, TraceSpec(**spec_kwargs))


PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in (
        # ---------------- SPECint 2000 ----------------
        _profile(
            "bzip", "SPECint",
            "Compression: modest working set, strong reuse.",
            mean_gap=104.0, hot_blocks=20_000, hot_skew=2.5,
            cold_fraction=0.005, write_fraction=0.30, dependent_fraction=0.25,
        ),
        _profile(
            "gcc", "SPECint",
            "Compiler: very high L2 traffic, tight reuse, tiny miss rate.",
            mean_gap=13.2, hot_blocks=30_000, hot_skew=4.0,
            cold_fraction=0.001, write_fraction=0.30, dependent_fraction=0.25,
        ),
        _profile(
            "mcf", "SPECint",
            "Pointer-chasing over a large in-cache footprint.  The graph "
            "lives in a few large contiguous arrays, so block numbers are "
            "not scattered: the even fill keeps conflict misses near zero "
            "(the paper measures only 0.019 misses per kilo-instruction).",
            mean_gap=9.1, hot_blocks=150_000, hot_skew=1.9, scatter=False,
            cold_fraction=0.0002, write_fraction=0.25, dependent_fraction=0.70,
        ),
        _profile(
            "perl", "SPECint",
            "Interpreter: small hot set, very high locality.",
            mean_gap=192.0, hot_blocks=10_000, hot_skew=4.0,
            cold_fraction=0.005, write_fraction=0.30, dependent_fraction=0.25,
        ),
        # ---------------- SPECfp 2000 ----------------
        _profile(
            "equake", "SPECfp",
            "Sparse FEM: a large frequently-reused set mixed with streams "
            "(the LRU-vs-frequency replacement anomaly).",
            mean_gap=80.6, hot_blocks=230_000, hot_skew=1.8,
            stream_fraction=0.42, stream_interleave=4, write_fraction=0.20, dependent_fraction=0.10,
        ),
        _profile(
            "swim", "SPECfp",
            "Shallow-water grid sweeps: almost pure streaming.",
            mean_gap=20.8, hot_blocks=4_000, hot_skew=2.0,
            stream_fraction=0.85, stream_interleave=9, write_fraction=0.35, dependent_fraction=0.02,
        ),
        _profile(
            "applu", "SPECfp",
            "PDE solver: streaming with negligible reuse.",
            mean_gap=55.6, hot_blocks=3_000, hot_skew=2.0,
            stream_fraction=0.90, stream_interleave=5, write_fraction=0.35, dependent_fraction=0.02,
        ),
        _profile(
            "lucas", "SPECfp",
            "FFT-based primality: streaming over a huge footprint.",
            mean_gap=64.0, hot_blocks=2_000, hot_skew=2.0,
            stream_fraction=0.85, stream_interleave=3, write_fraction=0.30, dependent_fraction=0.02,
        ),
        # ---------------- commercial ----------------
        _profile(
            "apache", "commercial",
            "Static web serving (SURGE-driven): skewed document popularity.",
            mean_gap=33.0, hot_blocks=120_000, hot_skew=3.0,
            cold_fraction=0.10, stream_fraction=0.06,
            write_fraction=0.30, dependent_fraction=0.15,
        ),
        _profile(
            "zeus", "commercial",
            "Static web serving, larger active set than apache.",
            mean_gap=36.0, hot_blocks=120_000, hot_skew=3.0,
            cold_fraction=0.15, stream_fraction=0.08,
            write_fraction=0.30, dependent_fraction=0.15,
        ),
        _profile(
            "sjbb", "commercial",
            "SPECjbb-like middleware: warehouse object churn.",
            mean_gap=70.0, hot_blocks=100_000, hot_skew=3.0,
            cold_fraction=0.12, stream_fraction=0.04,
            write_fraction=0.35, dependent_fraction=0.20,
        ),
        _profile(
            "oltp", "commercial",
            "TPC-C-like transaction processing: hot tables plus random rows.",
            mean_gap=76.0, hot_blocks=80_000, hot_skew=4.0,
            cold_fraction=0.06, write_fraction=0.35, dependent_fraction=0.25,
        ),
    )
}


def benchmark_names() -> Tuple[str, ...]:
    return tuple(PROFILES)


def get_profile(name: str) -> BenchmarkProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {sorted(PROFILES)}"
        ) from None

"""Synthetic L2 reference-stream generators.

A :class:`TraceSpec` mixes three canonical access behaviours, which
together span the paper's twelve benchmarks:

* **hot set** — a fixed population of blocks re-referenced with a
  power-law (zipf-like) popularity skew: the temporal locality that
  DNUCA's promotion exploits and that determines close-hit rates.
* **stream** — a sequential walk over a footprint far larger than the
  cache: every reference is a compulsory miss (SPECfp's swim / applu /
  lucas and the streaming half of equake).
* **cold** — uniform references over a huge region, modelling the
  low-locality tail of the commercial workloads.

The mixture probabilities, populations, skew, write fraction,
dependence fraction, and mean instruction gap are the calibration
surface matched against Table 6 (see
:mod:`repro.workloads.profiles`).  Generation is vectorized with numpy
and fully determined by (spec, seed).
"""

from __future__ import annotations

import dataclasses
from typing import List

try:  # optional at import time: specs and resident_block_addresses are
    import numpy as np  # pure Python; only generate_trace needs numpy
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from repro.workloads.trace import Reference

BLOCK_BYTES = 64


@dataclasses.dataclass(frozen=True)
class TraceSpec:
    """Parameters of a synthetic L2 reference stream."""

    #: mean instructions between successive L2 references.
    mean_gap: float
    #: mixture probabilities (must sum to <= 1; remainder goes to hot).
    stream_fraction: float = 0.0
    cold_fraction: float = 0.0
    #: hot-set population in 64-byte blocks.
    hot_blocks: int = 1024
    #: popularity skew: rank = floor(N * u**skew); 1.0 = uniform, larger
    #: values concentrate references on low ranks.
    hot_skew: float = 2.0
    #: streaming footprint in blocks (wraps around).
    stream_blocks: int = 1 << 22
    #: cold region size in blocks.
    cold_blocks: int = 1 << 22
    #: number of interleaved streams (arrays swept together): swim-like
    #: kernels touch many arrays per loop iteration.
    stream_interleave: int = 1
    write_fraction: float = 0.3
    #: fraction of reads whose address depends on the previous load.
    dependent_fraction: float = 0.2
    #: scatter block numbers through a bijective mixer (heap-like layouts:
    #: realistic tag entropy and Poisson set occupancy).  Disable for
    #: workloads whose footprint is a few large contiguous arrays (mcf),
    #: where the even fill keeps conflict misses near zero.
    scatter: bool = True

    def __post_init__(self) -> None:
        if self.mean_gap < 1.0:
            raise ValueError("mean_gap must be at least 1 instruction")
        if not 0.0 <= self.stream_fraction + self.cold_fraction <= 1.0:
            raise ValueError("mixture fractions must sum to at most 1")
        for name in ("hot_blocks", "stream_blocks", "cold_blocks",
                     "stream_interleave"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.stream_interleave > self.stream_blocks:
            raise ValueError("stream_interleave cannot exceed stream_blocks")
        for name in ("write_fraction", "dependent_fraction"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be a probability")

    @property
    def hot_fraction(self) -> float:
        return 1.0 - self.stream_fraction - self.cold_fraction


# Disjoint base addresses for the three regions, far apart so the
# mixtures never alias in the cache.
_HOT_BASE_BLOCK = 0
_STREAM_BASE_BLOCK = 1 << 26
_COLD_BASE_BLOCK = 1 << 27

# Bijective block-number scatter.  Synthetic regions are contiguous, which
# would give whole windows of references identical tag bits (and therefore
# degenerate all-or-nothing partial-tag behaviour); real programs touch
# data scattered across pages.  The mixer below is a permutation of the
# 40-bit block space (odd multiplications mod 2**40 and xor-shift-rights
# are each bijective), so popularity structure and region disjointness
# survive while set indices and tags become realistically uniform.
_SCATTER_BITS = 40  # 2**40 blocks = 64 TB of block address space
_SCATTER_MASK = (1 << _SCATTER_BITS) - 1
_SCATTER_MULT_1 = 0x9E3779B97F4A7C15 & _SCATTER_MASK | 1  # odd
_SCATTER_MULT_2 = 0xBF58476D1CE4E5B9 & _SCATTER_MASK | 1  # odd
_SCATTER_SHIFT = 21


def scatter_block(block: int) -> int:
    """Map a logical block number to its scattered physical block number."""
    x = (block * _SCATTER_MULT_1) & _SCATTER_MASK
    x ^= x >> _SCATTER_SHIFT
    x = (x * _SCATTER_MULT_2) & _SCATTER_MASK
    x ^= x >> _SCATTER_SHIFT
    return x


def _scatter_array(blocks: "np.ndarray") -> "np.ndarray":
    mask = np.uint64(_SCATTER_MASK)
    shift = np.uint64(_SCATTER_SHIFT)
    x = blocks.astype(np.uint64)
    x = (x * np.uint64(_SCATTER_MULT_1)) & mask
    x ^= x >> shift
    x = (x * np.uint64(_SCATTER_MULT_2)) & mask
    x ^= x >> shift
    return x


#: Capacity of the paper's 16 MB L2 in 64-byte blocks — the amount of
#: streaming residue a long-running stream leaves behind in the cache.
L2_CAPACITY_BLOCKS = 262_144


def resident_block_addresses(spec: TraceSpec) -> List[int]:
    """Byte addresses a long warm-up would leave resident, install-ordered.

    Two populations, least-deserving-of-retention first:

    * **streaming residue** — the last cache-capacity's worth of stream
      blocks that preceded the trace's starting position (streams start
      at block 0, so the residue is the tail of the stream region).  A
      real multi-billion-instruction warm-up leaves the cache full of
      this once-touched data.
    * **hot set** — ordered least-popular-first so that installing in
      order leaves the popular blocks most-recently-used.

    DNUCA installs with the order reversed (popular first, nearest the
    controller; residue deepest) — see ``L2Design.install_order``.
    """
    place = scatter_block if spec.scatter else (lambda block: block)
    addresses: List[int] = []
    if spec.stream_fraction > 0.0:
        residue = min(spec.stream_blocks, L2_CAPACITY_BLOCKS)
        lanes = spec.stream_interleave
        lane_size = spec.stream_blocks // lanes
        per_lane = min(lane_size, residue // lanes)
        # Oldest first, interleaved across lanes like the sweep itself.
        for i in range(per_lane * lanes):
            lane = i % lanes
            position = (lane_size - per_lane + i // lanes) % lane_size
            block = _STREAM_BASE_BLOCK + lane * lane_size + position
            addresses.append(place(block) * BLOCK_BYTES)
    addresses.extend(
        place(_HOT_BASE_BLOCK + rank) * BLOCK_BYTES
        for rank in range(spec.hot_blocks - 1, -1, -1)
    )
    return addresses


def generate_trace(spec: TraceSpec, n_refs: int, seed: int = 0) -> List[Reference]:
    """Generate ``n_refs`` references for ``spec``, deterministically."""
    if n_refs <= 0:
        raise ValueError("n_refs must be positive")
    if np is None:
        raise ImportError(
            "trace generation requires numpy, which is not installed; "
            "replay a saved trace (repro.workloads.trace.load_trace) "
            "or install numpy")
    rng = np.random.default_rng(seed)

    source = rng.random(n_refs)
    is_stream = source < spec.stream_fraction
    is_cold = (~is_stream) & (source < spec.stream_fraction + spec.cold_fraction)
    is_hot = ~(is_stream | is_cold)

    blocks = np.empty(n_refs, dtype=np.int64)

    n_hot = int(is_hot.sum())
    if n_hot:
        ranks = np.floor(
            spec.hot_blocks * rng.random(n_hot) ** spec.hot_skew
        ).astype(np.int64)
        blocks[is_hot] = _HOT_BASE_BLOCK + ranks

    n_stream = int(is_stream.sum())
    if n_stream:
        # K interleaved lanes (arrays), each swept sequentially from its
        # start so the pre-warm residue (each lane's tail) is exactly
        # what a long-running sweep left behind.
        blocks[is_stream] = _STREAM_BASE_BLOCK + _stream_walk(spec, n_stream)

    n_cold = int(is_cold.sum())
    if n_cold:
        blocks[is_cold] = _COLD_BASE_BLOCK + rng.integers(
            0, spec.cold_blocks, size=n_cold, dtype=np.int64)

    gaps = rng.geometric(min(1.0, 1.0 / spec.mean_gap), size=n_refs)
    writes = rng.random(n_refs) < spec.write_fraction
    dependents = (~writes) & (rng.random(n_refs) < spec.dependent_fraction)

    if spec.scatter:
        addrs = _scatter_array(blocks) * BLOCK_BYTES
    else:
        addrs = blocks * BLOCK_BYTES
    # .tolist() converts each element to a native int/bool in one C pass,
    # far faster than per-element int()/bool() calls and value-identical.
    return [
        Reference(g, a, w, d)
        for g, a, w, d in zip(gaps.tolist(), addrs.tolist(),
                              writes.tolist(), dependents.tolist())
    ]


def _stream_walk(spec: TraceSpec, n_stream: int) -> "np.ndarray":
    """Logical stream offsets for ``n_stream`` references."""
    lanes = spec.stream_interleave
    lane_size = spec.stream_blocks // lanes
    idx = np.arange(n_stream, dtype=np.int64)
    lane = idx % lanes
    position = (idx // lanes) % lane_size
    return lane * lane_size + position

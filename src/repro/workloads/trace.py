"""L2-level memory-reference traces.

A trace is a sequence of :class:`Reference` records, each describing one
request that reached the L2 (i.e. already filtered by the L1s):

* ``gap`` — instructions executed since the previous L2 reference,
* ``addr`` — byte address (block aligned by the generators),
* ``write`` — True for a store / L1 writeback,
* ``dependent`` — True when the reference's address depends on the
  previous load's data (pointer chasing); the processor model serializes
  such pairs.

Traces are deterministic functions of (profile, seed) so experiments
reproduce bit-for-bit; ``save_trace``/``load_trace`` provide a simple
portable text format for sharing traces between tools.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple


class Reference(NamedTuple):
    """One L2 request."""

    gap: int
    addr: int
    write: bool
    dependent: bool


def save_trace(path: str, trace: Iterable[Reference]) -> int:
    """Write a trace as one ``gap addr w d`` line per reference.

    Returns the number of references written.
    """
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for ref in trace:
            handle.write(
                f"{ref.gap} {ref.addr:x} {int(ref.write)} {int(ref.dependent)}\n"
            )
            count += 1
    return count


def load_trace(path: str) -> List[Reference]:
    """Read a trace written by :func:`save_trace`."""
    trace: List[Reference] = []
    with open(path, "r", encoding="ascii") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"{path}:{line_no}: expected 4 fields, got {len(parts)}")
            gap, addr, write, dependent = parts
            trace.append(Reference(int(gap), int(addr, 16),
                                   bool(int(write)), bool(int(dependent))))
    return trace

"""Shared test configuration: numpy-optional collection.

numpy is an optional dependency of the simulator (it powers trace
*generation* and the batched backend; the reference backend and every
design model are pure Python).  On an interpreter without numpy this
conftest keeps the suite green in the honest way:

* test modules that import numpy at module level are not collected;
* tests that die on the package's own typed "requires numpy"
  ``ImportError`` are converted to skips, whether the import failure
  happens in setup (fixtures) or in the test body.

Everything else — and that is most of the suite's pure-model tests —
still runs and must pass, which is exactly what the no-numpy CI job
enforces.  With numpy installed this file changes nothing.
"""

import pytest

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

collect_ignore = []
if not HAVE_NUMPY:
    collect_ignore = [
        # module-level `import numpy`
        "test_synthetic.py",
        "test_tline_extraction.py",
        "test_tline_wave.py",
        # drive simulations through an HTTP service whose worker-side
        # numpy failures surface as opaque 500s, not ImportErrors
        "test_service.py",
        "test_service_chaos.py",
    ]


def _numpy_import_error(excinfo) -> bool:
    exc_type, exc, _tb = excinfo
    if issubclass(exc_type, ImportError) and "numpy" in str(exc):
        return True
    # The resilient executor wraps worker errors (e.g. CellFailure); the
    # package's typed refusal message survives into the wrapper text.
    return "requires numpy, which is not installed" in str(exc)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_setup(item):
    outcome = yield
    if not HAVE_NUMPY and outcome.excinfo is not None \
            and _numpy_import_error(outcome.excinfo):
        outcome.force_exception(
            pytest.skip.Exception(f"requires numpy: {outcome.excinfo[1]}"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    outcome = yield
    if not HAVE_NUMPY and outcome.excinfo is not None \
            and _numpy_import_error(outcome.excinfo):
        outcome.force_exception(
            pytest.skip.Exception(f"requires numpy: {outcome.excinfo[1]}"))

"""Tests for address decomposition and bank interleaving."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.address import AddressMap, block_address


class TestBlockAddress:
    def test_aligns_down(self):
        assert block_address(0x1234, 64) == 0x1200

    def test_already_aligned(self):
        assert block_address(0x1240, 64) == 0x1240


class TestAddressMap:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            AddressMap(block_bytes=48, num_sets=16)
        with pytest.raises(ValueError):
            AddressMap(block_bytes=64, num_sets=100)
        with pytest.raises(ValueError):
            AddressMap(block_bytes=64, num_sets=16, banks=3)

    def test_bit_widths(self):
        m = AddressMap(block_bytes=64, num_sets=2048, banks=32)
        assert m.offset_bits == 6
        assert m.set_bits == 11
        assert m.bank_bits == 5

    def test_consecutive_blocks_interleave_across_banks(self):
        m = AddressMap(block_bytes=64, num_sets=2048, banks=32)
        banks = [m.bank_index(block * 64) for block in range(64)]
        assert banks[:32] == list(range(32))
        assert banks[32:] == list(range(32))

    def test_same_bank_blocks_differ_in_set(self):
        m = AddressMap(block_bytes=64, num_sets=2048, banks=32)
        a, b = 0, 32 * 64  # 32 blocks apart -> same bank, next set
        assert m.bank_index(a) == m.bank_index(b)
        assert m.set_index(b) == m.set_index(a) + 1

    def test_offset_does_not_change_decomposition(self):
        m = AddressMap(block_bytes=64, num_sets=1024, banks=16)
        base = 0xABCD00
        for offset in (0, 1, 63):
            assert m.set_index(base + offset) == m.set_index(base)
            assert m.tag(base + offset) == m.tag(base)
            assert m.bank_index(base + offset) == m.bank_index(base)

    def test_paper_dnuca_geometry(self):
        # 16 MB / 256 banks of 64 KB, 16 bank sets: 1024 sets per bank.
        m = AddressMap(block_bytes=64, num_sets=1024, banks=16)
        blocks_per_bankset_rotation = 16
        assert m.bank_index(0) != m.bank_index(64)
        assert m.bank_index(0) == m.bank_index(blocks_per_bankset_rotation * 64)

    def test_single_bank_map(self):
        m = AddressMap(block_bytes=64, num_sets=512)
        assert m.bank_bits == 0
        assert m.bank_index(0xFFFF0) == 0


@given(
    st.integers(min_value=0, max_value=2**45 - 1),
    st.sampled_from([16, 64, 128]),
    st.sampled_from([64, 1024, 16384]),
    st.sampled_from([1, 4, 16, 32]),
)
def test_rebuild_roundtrip(addr, block_bytes, num_sets, banks):
    """rebuild(tag, set, bank) must invert the decomposition."""
    m = AddressMap(block_bytes=block_bytes, num_sets=num_sets, banks=banks)
    rebuilt = m.rebuild(m.tag(addr), m.set_index(addr), m.bank_index(addr))
    assert rebuilt == block_address(addr, block_bytes)


@given(st.integers(min_value=0, max_value=2**40))
def test_distinct_blocks_get_distinct_coordinates(block):
    """Two different blocks never share (tag, set, bank)."""
    m = AddressMap(block_bytes=64, num_sets=1024, banks=16)
    a = block * 64
    b = (block + 1) * 64
    coords_a = (m.tag(a), m.set_index(a), m.bank_index(a))
    coords_b = (m.tag(b), m.set_index(b), m.bank_index(b))
    assert coords_a != coords_b

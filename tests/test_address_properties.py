"""Property-based tests for address decomposition (Hypothesis).

The grid's correctness rests on :class:`repro.cache.address.AddressMap`
decomposing every byte address into ``(tag, set, bank)`` and back
without loss, for *any* power-of-two geometry — not just the paper's
64-byte / 32-bank configuration the unit tests pin.  Hypothesis
explores the whole configuration space.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.cache.address import AddressMap, block_address  # noqa: E402

#: Powers of two in a realistic range: blocks 1B-512B, sets 1-64Ki,
#: banks 1-256.
block_sizes = st.integers(0, 9).map(lambda e: 2 ** e)
set_counts = st.integers(0, 16).map(lambda e: 2 ** e)
bank_counts = st.integers(0, 8).map(lambda e: 2 ** e)
addresses = st.integers(0, 2 ** 48 - 1)

maps = st.builds(AddressMap, block_bytes=block_sizes, num_sets=set_counts,
                 banks=bank_counts)


@settings(max_examples=200)
@given(amap=maps, addr=addresses)
def test_split_rebuild_round_trips_to_block_address(amap, addr):
    """rebuild(tag, set, bank) recovers the block-aligned address."""
    rebuilt = amap.rebuild(amap.tag(addr), amap.set_index(addr),
                           amap.bank_index(addr))
    assert rebuilt == block_address(addr, amap.block_bytes)


@settings(max_examples=200)
@given(amap=maps, addr=addresses)
def test_rebuilt_address_decomposes_identically(amap, addr):
    """Decompose → rebuild → decompose is a fixed point."""
    tag, set_index, bank = (amap.tag(addr), amap.set_index(addr),
                            amap.bank_index(addr))
    rebuilt = amap.rebuild(tag, set_index, bank)
    assert amap.tag(rebuilt) == tag
    assert amap.set_index(rebuilt) == set_index
    assert amap.bank_index(rebuilt) == bank


@settings(max_examples=200)
@given(amap=maps, addr=addresses)
def test_components_stay_in_range(amap, addr):
    assert 0 <= amap.set_index(addr) < amap.num_sets
    assert 0 <= amap.bank_index(addr) < amap.banks
    assert amap.tag(addr) >= 0


@settings(max_examples=200)
@given(amap=maps, addr=addresses, offset=st.integers(0, 2 ** 9 - 1))
def test_every_byte_of_a_block_decomposes_identically(amap, addr, offset):
    """Offset bits never leak into tag / set / bank."""
    base = block_address(addr, amap.block_bytes)
    other = base + offset % amap.block_bytes
    assert amap.tag(other) == amap.tag(base)
    assert amap.set_index(other) == amap.set_index(base)
    assert amap.bank_index(other) == amap.bank_index(base)


@settings(max_examples=200)
@given(amap=maps, addr=addresses)
def test_bit_budget_is_exact(amap, addr):
    """tag | set | bank | offset partition the block number exactly."""
    block = amap.block(addr)
    reassembled = ((amap.tag(addr) << (amap.bank_bits + amap.set_bits))
                   | (amap.set_index(addr) << amap.bank_bits)
                   | amap.bank_index(addr))
    assert reassembled == block


@settings(max_examples=100)
@given(addr=addresses, block=block_sizes)
def test_block_address_is_idempotent_and_aligned(addr, block):
    aligned = block_address(addr, block)
    assert aligned % block == 0
    assert block_address(aligned, block) == aligned
    assert 0 <= addr - aligned < block


@given(value=st.integers(-8, 2 ** 20).filter(
    lambda n: n <= 0 or (n & (n - 1)) != 0))
def test_non_power_of_two_geometry_rejected(value):
    with pytest.raises(ValueError, match="power of two"):
        AddressMap(block_bytes=64, num_sets=value if value else 3, banks=1)

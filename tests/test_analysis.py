"""Tests for the experiment grid runner and table utilities."""

import pytest

from repro.analysis.experiments import (
    MAIN_DESIGNS,
    TLC_FAMILY,
    run_benchmark_suite,
    run_design_grid,
)
from repro.analysis.tables import (
    PAPER_TABLE6,
    PAPER_TABLE7,
    PAPER_TABLE9,
    format_table,
)


class TestGridRunner:
    @pytest.fixture(scope="class")
    def grid(self):
        return run_design_grid(designs=("SNUCA2", "TLC"),
                               benchmarks=("perl", "bzip"), n_refs=3_000)

    def test_all_cells_present(self, grid):
        assert set(grid.results) == {
            (d, b) for d in ("SNUCA2", "TLC") for b in ("perl", "bzip")}

    def test_result_accessor(self, grid):
        r = grid.result("TLC", "perl")
        assert r.design == "TLC" and r.benchmark == "perl"

    def test_normalization_baseline_is_one(self, grid):
        assert grid.normalized_execution_time("SNUCA2", "perl") == 1.0

    def test_normalized_time_positive(self, grid):
        assert grid.normalized_execution_time("TLC", "bzip") > 0

    def test_shared_trace_across_designs(self, grid):
        """Both designs must have replayed the identical trace."""
        assert (grid.result("TLC", "perl").l2_requests
                == grid.result("SNUCA2", "perl").l2_requests)

    def test_design_lists(self):
        assert MAIN_DESIGNS == ("SNUCA2", "DNUCA", "TLC")
        assert TLC_FAMILY[0] == "TLC" and len(TLC_FAMILY) == 4

    def test_missing_cell_names_cell_and_choices(self, grid):
        with pytest.raises(KeyError) as excinfo:
            grid.result("DNUCA", "perl")
        message = str(excinfo.value)
        assert "DNUCA" in message and "perl" in message
        assert "SNUCA2" in message and "bzip" in message

    def test_misspelled_benchmark_in_normalization(self, grid):
        with pytest.raises(KeyError, match="prl"):
            grid.normalized_execution_time("TLC", "prl")

    def test_missing_baseline_named(self, grid):
        with pytest.raises(KeyError, match="nope"):
            grid.normalized_execution_time("TLC", "perl", baseline="nope")


class TestBenchmarkSuite:
    def test_runs_named_subset(self):
        results = run_benchmark_suite("TLC", benchmarks=("perl",), n_refs=2_000)
        assert set(results) == {"perl"}
        assert results["perl"].design == "TLC"

    def test_warmup_fraction_threaded_through(self):
        """The suite must accept grid parameters (it used to drop them)."""
        cold = run_benchmark_suite("TLC", benchmarks=("perl",), n_refs=2_000,
                                   warmup_fraction=0.0)
        warm = run_benchmark_suite("TLC", benchmarks=("perl",), n_refs=2_000,
                                   warmup_fraction=0.5)
        assert cold["perl"].l2_requests > warm["perl"].l2_requests

    def test_processor_config_threaded_through(self):
        from repro.sim.processor import ProcessorConfig

        narrow = run_benchmark_suite(
            "TLC", benchmarks=("perl",), n_refs=2_000,
            processor_config=ProcessorConfig(issue_width=1, mshrs=1))
        wide = run_benchmark_suite("TLC", benchmarks=("perl",), n_refs=2_000)
        assert narrow["perl"].cycles > wide["perl"].cycles

    def test_suite_cell_matches_grid_cell(self):
        """Suite runs are comparable cell-for-cell with grid cells."""
        grid = run_design_grid(designs=("TLC",), benchmarks=("perl",),
                               n_refs=2_000, warmup_fraction=0.4)
        suite = run_benchmark_suite("TLC", benchmarks=("perl",), n_refs=2_000,
                                    warmup_fraction=0.4)
        assert suite["perl"] == grid.result("TLC", "perl")


class TestPaperReferenceData:
    def test_table6_covers_all_benchmarks(self):
        assert len(PAPER_TABLE6) == 12

    def test_table7_totals_are_sums(self):
        for row in PAPER_TABLE7.values():
            assert row["total"] == pytest.approx(
                row["storage"] + row["channel"] + row["controller"], rel=0.02)

    def test_table9_tlc_always_cheaper(self):
        for row in PAPER_TABLE9.values():
            assert row["tlc_mw"] < row["dnuca_mw"]

    def test_table9_average_saving_near_61_percent(self):
        """The abstract's headline: 61 % average network power saving."""
        savings = [1 - row["tlc_mw"] / row["dnuca_mw"]
                   for row in PAPER_TABLE9.values()]
        assert sum(savings) / len(savings) == pytest.approx(0.61, abs=0.03)


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        text = format_table(["a", "bb"], [[1, 2.5], [3, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.5" in text

    def test_columns_aligned(self):
        text = format_table(["col"], [[123456]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[1]) == len(lines[2])

"""Tests for the area / access-time / transistor models (Tables 7 and 8)."""

import pytest

from repro.area.cacti import (
    BankModel,
    bank_access_time_cycles,
    bank_area_m2,
    peripheral_overhead_factor,
)
from repro.area.floorplan import dnuca_area, snuca_area, tlc_area
from repro.area.transistors import (
    dnuca_network_transistors,
    tlc_network_transistors,
)
from repro.tech import Technology


class TestBankAccessTime:
    """The model is pinned to the paper's three ECACTI results."""

    @pytest.mark.parametrize("size_kb,cycles", [(64, 3), (512, 8), (1024, 10)])
    def test_calibration_points(self, size_kb, cycles):
        assert bank_access_time_cycles(size_kb * 1024) == cycles

    def test_monotone_in_size(self):
        times = [bank_access_time_cycles(s * 1024) for s in (64, 128, 256, 512, 1024)]
        assert times == sorted(times)

    def test_scales_with_frequency(self):
        half_speed = Technology(name="5GHz", frequency_hz=5e9)
        assert bank_access_time_cycles(512 * 1024, half_speed) <= 4

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            bank_access_time_cycles(0)


class TestBankArea:
    def test_overhead_shrinks_with_size(self):
        assert (peripheral_overhead_factor(64 * 1024)
                > peripheral_overhead_factor(1024 * 1024))

    def test_area_superlinear_at_small_sizes(self):
        """Eight 64 KB banks consume more area than one 512 KB bank."""
        assert 8 * bank_area_m2(64 * 1024) > bank_area_m2(512 * 1024)

    def test_bank_model_bundle(self):
        model = BankModel(512 * 1024)
        assert model.access_cycles == 8
        assert model.width_m == pytest.approx(model.area_m2 ** 0.5)


class TestTable7:
    """Shape: TLC saves ~18 % substrate area; channel shrinks, controller grows."""

    def test_dnuca_breakdown_near_paper(self):
        report = dnuca_area().as_mm2()
        assert report["storage_mm2"] == pytest.approx(92, rel=0.1)
        assert report["channel_mm2"] == pytest.approx(17, rel=0.25)
        assert report["controller_mm2"] == pytest.approx(1.1, rel=0.3)
        assert report["total_mm2"] == pytest.approx(110, rel=0.1)

    def test_tlc_breakdown_near_paper(self):
        report = tlc_area(total_lines=2048).as_mm2()
        assert report["storage_mm2"] == pytest.approx(77, rel=0.1)
        assert report["channel_mm2"] == pytest.approx(3.1, rel=0.3)
        assert report["controller_mm2"] == pytest.approx(10, rel=0.3)
        assert report["total_mm2"] == pytest.approx(91, rel=0.1)

    def test_tlc_saves_about_18_percent(self):
        dnuca = dnuca_area().total_m2
        tlc = tlc_area(total_lines=2048).total_m2
        saving = 1 - tlc / dnuca
        assert 0.12 < saving < 0.24

    def test_tlcopt_controllers_shrink_with_line_count(self):
        areas = [tlc_area(lines).controller_m2 for lines in (2048, 1008, 512, 352)]
        assert areas == sorted(areas, reverse=True)

    def test_snuca_storage_matches_tlc(self):
        assert snuca_area().storage_m2 == pytest.approx(
            tlc_area(2048).storage_m2)

    def test_invalid_lines(self):
        with pytest.raises(ValueError):
            tlc_area(total_lines=0)


class TestTable8:
    def test_dnuca_inventory_near_paper(self):
        report = dnuca_network_transistors()
        assert report.transistors == pytest.approx(1.2e7, rel=0.25)
        assert report.gate_width_mega_lambda == pytest.approx(440, rel=0.25)

    def test_tlc_inventory_near_paper(self):
        report = tlc_network_transistors(2048)
        assert report.transistors == pytest.approx(1.9e5, rel=0.15)
        assert report.gate_width_mega_lambda == pytest.approx(20, rel=0.15)

    def test_fifty_fold_transistor_reduction(self):
        dnuca = dnuca_network_transistors()
        tlc = tlc_network_transistors(2048)
        assert dnuca.transistors / tlc.transistors > 50

    def test_order_of_magnitude_gate_width_reduction(self):
        dnuca = dnuca_network_transistors()
        tlc = tlc_network_transistors(2048)
        assert dnuca.gate_width_lambda / tlc.gate_width_lambda > 10

    def test_breakdown_sums_to_total(self):
        for report in (dnuca_network_transistors(), tlc_network_transistors(2048)):
            assert sum(report.breakdown.values()) == report.transistors

    def test_tlc_scales_with_lines(self):
        assert (tlc_network_transistors(352).transistors
                == pytest.approx(tlc_network_transistors(2048).transistors
                                 * 352 / 2048))

    def test_invalid_lines(self):
        with pytest.raises(ValueError):
            tlc_network_transistors(0)

"""Differential suite: every simulation backend is observably identical.

The batched backend is only shippable because this file proves, via
:func:`repro.analysis.storage.integrity_digest`, that it produces
byte-identical results to the reference loop — over the golden grid,
over every registry design, and over Hypothesis-generated random cells.
A diverging fuzz cell is dumped as a crash bundle so ``repro replay``
can re-execute it outside the test run.
"""

import dataclasses
import os

import pytest

numpy = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.runner import CellSpec, cache_key, run_cell
from repro.analysis.storage import integrity_digest, result_to_dict
from repro.core.config import ConfigError, build_design, design_names
from repro.sim.backend import (
    BACKEND_NAMES,
    BatchedBackend,
    LatencyProbe,
    ReferenceBackend,
    available_backend_names,
    backend_names,
    numpy_available,
    resolve_backend,
)
from repro.sim.processor import Processor, ProcessorConfig
from repro.sim.system import System, run_system
from repro.workloads.synthetic import TraceSpec, generate_trace
from repro.workloads.trace import Reference


def result_digest(result) -> str:
    return integrity_digest(result_to_dict(result))


def assert_results_identical(reference, batched, context: str) -> None:
    """Byte-level equality via the storage digest, field diff on failure."""
    if result_digest(reference) == result_digest(batched):
        return
    diffs = [
        f"{name}: reference={value!r} batched={getattr(batched, name)!r}"
        for name, value in dataclasses.asdict(reference).items()
        if value != getattr(batched, name)
    ]
    pytest.fail(f"backends diverged on {context}:\n  " + "\n  ".join(diffs))


class TestDesignEquivalence:
    """Every registry design, reference vs batched, digest-identical."""

    @pytest.mark.parametrize("design", sorted(design_names()))
    @pytest.mark.parametrize("workload", ["mcf", "swim"])
    def test_design_digest_equal(self, design, workload):
        reference = run_system(design, workload, n_refs=2500, seed=7,
                               backend="reference")
        batched = run_system(design, workload, n_refs=2500, seed=7,
                             backend="batched")
        assert_results_identical(reference, batched,
                                 f"{design} on {workload}")

    def test_small_chunks_cross_boundaries(self):
        """The chunk-boundary carry (gap remainder, base instruction)
        must be exact: a tiny chunk forces many boundaries."""
        trace = generate_trace(TraceSpec(mean_gap=7.0), 1500, seed=11)
        l2_ref = build_design("TLC")
        l2_bat = build_design("TLC")
        reference = Processor(l2_ref, backend="reference").run(trace, 300)
        batched = Processor(l2_bat, backend=BatchedBackend(chunk=13)).run(
            trace, 300)
        assert reference == batched
        assert l2_ref.stats.as_dict() == l2_bat.stats.as_dict()

    def test_tracer_event_streams_identical(self):
        from repro.obs.trace import EventTracer

        trace = generate_trace(TraceSpec(mean_gap=9.0), 600, seed=3)
        tracers = {}
        for backend in ("reference", "batched"):
            tracer = EventTracer()
            Processor(build_design("SNUCA2"), tracer=tracer,
                      backend=backend).run(trace, 100)
            tracers[backend] = tracer.events()
        assert tracers["reference"] == tracers["batched"]


class TestGoldenGridBatched:
    """The batched backend reproduces the pre-backend golden grid
    byte-for-byte (the same file the reference loop is held to in
    test_perf_harness.py)."""

    GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                          "grid_equivalence.json")

    def test_batched_grid_matches_golden_bytes(self, tmp_path):
        from repro.analysis.runner import run_grid
        from repro.analysis.storage import save_grid

        grid = run_grid(designs=("SNUCA2", "DNUCA", "TLC", "TLCopt500"),
                        benchmarks=("perl", "bzip", "mcf", "swim"),
                        n_refs=3000, seed=7, backend="batched")
        out = tmp_path / "grid.json"
        save_grid(str(out), grid)
        with open(self.GOLDEN, "rb") as handle:
            golden_bytes = handle.read()
        assert out.read_bytes() == golden_bytes


def _dump_divergence_bundle(crash_dir, cell: CellSpec, reference, batched):
    """Write a diverging fuzz cell as a replayable crash bundle."""
    from repro.sanitizer.bundle import write_crash_bundle

    error = AssertionError(
        f"backend divergence: reference digest "
        f"{result_digest(reference)[:16]} != batched digest "
        f"{result_digest(batched)[:16]}")
    trace = generate_trace(cell.trace_spec, cell.n_refs, seed=cell.seed)
    config = cell.processor_config or ProcessorConfig()
    return write_crash_bundle(
        str(crash_dir),
        design=cell.design,
        benchmark=cell.benchmark,
        seed=cell.seed,
        warmup_refs=int(cell.n_refs * cell.warmup_fraction),
        trace=trace,
        error=error,
        processor_config=dataclasses.asdict(config),
        tech=cell.tech.name,
        memory_latency_cycles=cell.memory_latency_cycles,
    )


# Small, fast cells spanning the stall machinery: tiny windows and MSHR
# counts make the ROB/MSHR/dependence paths bind, tiny gaps stress the
# issue-cycle remainder carry.
cell_specs = st.builds(
    CellSpec,
    design=st.sampled_from(sorted(design_names())),
    benchmark=st.just("fuzz"),
    n_refs=st.integers(min_value=200, max_value=800),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    warmup_fraction=st.sampled_from([0.0, 0.25, 0.5]),
    processor_config=st.builds(
        ProcessorConfig,
        issue_width=st.sampled_from([1, 2, 4]),
        rob_entries=st.sampled_from([16, 64, 128]),
        mshrs=st.sampled_from([1, 2, 8]),
        l1_latency=st.sampled_from([0, 3]),
    ),
    trace_spec=st.builds(
        TraceSpec,
        mean_gap=st.sampled_from([1.0, 3.0, 12.0, 40.0]),
        stream_fraction=st.sampled_from([0.0, 0.3]),
        cold_fraction=st.sampled_from([0.0, 0.2]),
        hot_blocks=st.sampled_from([64, 512, 2048]),
        write_fraction=st.sampled_from([0.0, 0.3, 0.8]),
        dependent_fraction=st.sampled_from([0.0, 0.5]),
    ),
)


class TestDifferentialFuzz:
    """Hypothesis-generated random cells, reference ≡ batched."""

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(cell=cell_specs)
    def test_random_cells_digest_equal(self, cell, tmp_path_factory):
        reference = run_cell(cell)
        batched = run_cell(dataclasses.replace(cell, backend="batched"))
        if result_digest(reference) != result_digest(batched):
            crash_dir = tmp_path_factory.mktemp("divergence")
            bundle = _dump_divergence_bundle(crash_dir, cell, reference,
                                             batched)
            pytest.fail(f"backends diverged on {cell}; crash bundle "
                        f"written to {bundle} (repro replay {bundle})")

    def test_divergence_dumps_replayable_bundle(self, tmp_path):
        """The dump path itself, proven against a deliberately broken
        backend: the bundle must load and replay."""
        from repro.sanitizer import load_bundle, replay_bundle

        class OffByOneBackend(BatchedBackend):
            def execute(self, processor, trace, warmup_refs=0):
                result = super().execute(processor, trace, warmup_refs)
                return dataclasses.replace(result, cycles=result.cycles + 1)

        cell = CellSpec(design="TLC", benchmark="fuzz", n_refs=400, seed=5,
                        trace_spec=TraceSpec(mean_gap=10.0))
        trace = generate_trace(cell.trace_spec, cell.n_refs, seed=cell.seed)
        reference = System("TLC").run(trace, warmup_refs=100)
        broken = System("TLC", backend=None)
        broken.processor.backend = OffByOneBackend()
        batched = broken.run(trace, warmup_refs=100)
        assert result_digest(reference) != result_digest(batched)

        bundle_path = _dump_divergence_bundle(tmp_path, cell, reference,
                                              batched)
        bundle = load_bundle(bundle_path)
        assert bundle.error["type"] == "AssertionError"
        assert len(bundle.trace) == cell.n_refs
        outcome = replay_bundle(bundle)
        # A healthy simulator replays the cell cleanly — the bundle's
        # value is the preserved diverging trace, not a violation.
        assert outcome.refs == cell.n_refs


class TestBackendSelection:
    """Name registry, config plumbing, and the result-cache key."""

    def test_registry_names(self):
        assert BACKEND_NAMES == ("reference", "batched")
        assert backend_names() == BACKEND_NAMES
        assert numpy_available()
        assert available_backend_names() == BACKEND_NAMES

    def test_resolve_backend(self):
        assert isinstance(resolve_backend(None), ReferenceBackend)
        assert isinstance(resolve_backend("reference"), ReferenceBackend)
        assert isinstance(resolve_backend("batched"), BatchedBackend)
        instance = BatchedBackend(chunk=64)
        assert resolve_backend(instance) is instance
        with pytest.raises(ConfigError):
            resolve_backend("bogus")

    def test_design_config_backend_field(self, monkeypatch):
        import repro.core.config as config_module

        assert build_design("TLC", backend="batched").config.backend == "batched"
        with pytest.raises(ConfigError):
            build_design("TLC", backend="bogus")
        # System defers to the design config when no backend is given,
        # and an explicit argument wins over the config.
        monkeypatch.setitem(
            config_module.DESIGNS, "TLC",
            dataclasses.replace(config_module.DESIGNS["TLC"],
                                backend="batched"))
        assert System("TLC").processor.backend.name == "batched"
        explicit = System("TLC", backend="reference")
        assert explicit.processor.backend.name == "reference"

    def test_backend_part_of_cache_key(self):
        cell = CellSpec(design="TLC", benchmark="mcf", n_refs=1000, seed=7)
        batched = dataclasses.replace(cell, backend="batched")
        assert cell.key_fields()["backend"] == "reference"
        assert batched.key_fields()["backend"] == "batched"
        assert cache_key(cell) != cache_key(batched)

    def test_grid_cell_specs_thread_backend(self):
        from repro.analysis.runner import grid_cell_specs

        cells, _ = grid_cell_specs(("TLC",), ("mcf",), n_refs=500,
                                   backend="batched")
        assert all(cell.backend == "batched" for cell in cells)


class TestConfigErrors:
    """Unsupported combinations refuse with the typed ConfigError."""

    def test_batched_rejects_sanitize(self):
        with pytest.raises(ConfigError, match="sanitize"):
            run_system("TLC", "mcf", n_refs=500, seed=7,
                       backend="batched", sanitize=True)

    def test_batched_rejects_attached_sanitizer_directly(self):
        from repro.sanitizer import Sanitizer

        processor = Processor(build_design("TLC"), backend="batched")
        Sanitizer().attach_processor(processor)
        trace = [Reference(10, 0, False, False)]
        with pytest.raises(ConfigError):
            processor.run(trace)

    def test_batched_requires_numpy(self, monkeypatch):
        import repro.sim.backend as backend_module

        monkeypatch.setattr(backend_module, "_np", None)
        assert not backend_module.numpy_available()
        assert backend_module.available_backend_names() == ("reference",)
        with pytest.raises(ConfigError, match="numpy"):
            backend_module.resolve_backend("batched")

    def test_full_system_rejects_batched(self):
        from repro.sim.full_system import FullSystem

        with pytest.raises(ConfigError, match="full-system"):
            FullSystem("TLC", backend="batched")
        with pytest.raises(ConfigError):
            FullSystem("TLC", backend="bogus")


class TestProbeFastPath:
    """The fully vectorized path against the LatencyProbe fixture."""

    @staticmethod
    def _trace(n=3000):
        from repro.analysis.perf.suite import _probe_trace

        return _probe_trace(n)

    def test_probe_results_and_stats_identical(self):
        trace = self._trace()
        ref_probe, bat_probe = LatencyProbe(), LatencyProbe()
        reference = Processor(ref_probe, backend="reference").run(trace, 500)
        batched = Processor(bat_probe, backend="batched").run(trace, 500)
        assert reference == batched
        assert ref_probe.stats == bat_probe.stats

    def test_vectorized_path_is_taken(self):
        trace = self._trace()
        backend = BatchedBackend()
        processor = Processor(LatencyProbe(), backend=backend)
        assert backend._execute_vectorized(processor, trace, 0) is not None

    def test_stalling_trace_falls_back_and_agrees(self):
        # Back-to-back dependent loads (gap 0) break the no-stall proof;
        # the chunked loop must take over and still match the reference.
        trace = [Reference(0, i * 64, False, True) for i in range(800)]
        backend = BatchedBackend()
        processor = Processor(LatencyProbe(), backend=backend)
        assert backend._execute_vectorized(processor, trace, 0) is None
        reference = Processor(LatencyProbe(), backend="reference").run(trace)
        batched = Processor(LatencyProbe(), backend=backend).run(trace)
        assert reference == batched

    def test_probe_vectorized_with_writes_and_warmup(self):
        trace = [Reference(16, i * 64, i % 4 == 3, False)
                 for i in range(2000)]
        ref_probe, bat_probe = LatencyProbe(), LatencyProbe()
        reference = Processor(ref_probe, backend="reference").run(trace, 400)
        batched = Processor(bat_probe, backend="batched").run(trace, 400)
        assert reference == batched
        assert ref_probe.stats == bat_probe.stats


class TestCLIBackend:
    """`repro run --backend` and `repro grid --backend` plumbing."""

    def test_run_backend_batched(self, capsys):
        from repro.cli import main

        assert main(["run", "TLC", "mcf", "--refs", "800",
                     "--backend", "batched"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_run_backend_unknown_exits_2(self, capsys):
        from repro.cli import main

        assert main(["run", "TLC", "mcf", "--refs", "200",
                     "--backend", "bogus"]) == 2
        assert "backend" in capsys.readouterr().err

    def test_run_backend_batched_sanitize_exits_2(self, capsys):
        from repro.cli import main

        assert main(["run", "TLC", "mcf", "--refs", "200",
                     "--backend", "batched", "--sanitize"]) == 2
        err = capsys.readouterr().err
        assert "sanitize" in err

    def test_grid_backend_matches_reference(self, capsys, tmp_path):
        from repro.cli import main

        out_ref = tmp_path / "ref.json"
        out_bat = tmp_path / "bat.json"
        assert main(["grid", "--designs", "TLC", "--benchmarks", "mcf",
                     "--refs", "1000", "--save", str(out_ref)]) == 0
        assert main(["grid", "--designs", "TLC", "--benchmarks", "mcf",
                     "--refs", "1000", "--backend", "batched",
                     "--save", str(out_bat)]) == 0
        capsys.readouterr()
        assert out_ref.read_bytes() == out_bat.read_bytes()

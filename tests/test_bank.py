"""Tests for the set-associative cache bank."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.bank import CacheBank


class TestLookupAndInsert:
    def test_miss_on_empty_bank(self):
        bank = CacheBank(num_sets=16, ways=2)
        assert not bank.lookup(0, 0xAA).hit

    def test_hit_after_insert(self):
        bank = CacheBank(num_sets=16, ways=2)
        bank.insert(3, 0xAA)
        result = bank.lookup(3, 0xAA)
        assert result.hit
        assert result.way is not None

    def test_same_tag_different_set_misses(self):
        bank = CacheBank(num_sets=16, ways=2)
        bank.insert(3, 0xAA)
        assert not bank.lookup(4, 0xAA).hit

    def test_insert_fills_empty_ways_before_evicting(self):
        bank = CacheBank(num_sets=4, ways=2)
        r1 = bank.insert(0, 1)
        r2 = bank.insert(0, 2)
        assert r1.evicted_tag is None and r2.evicted_tag is None
        assert bank.lookup(0, 1).hit and bank.lookup(0, 2).hit

    def test_eviction_when_set_full(self):
        bank = CacheBank(num_sets=4, ways=2)
        bank.insert(0, 1)
        bank.insert(0, 2)
        result = bank.insert(0, 3)
        assert result.evicted_tag == 1  # LRU victim
        assert not bank.lookup(0, 1).hit

    def test_lru_protects_recently_used(self):
        bank = CacheBank(num_sets=4, ways=2)
        bank.insert(0, 1)
        bank.insert(0, 2)
        bank.lookup(0, 1)  # touch 1 -> 2 becomes LRU
        result = bank.insert(0, 3)
        assert result.evicted_tag == 2

    def test_duplicate_insert_rejected(self):
        bank = CacheBank(num_sets=4, ways=2)
        bank.insert(0, 1)
        with pytest.raises(ValueError):
            bank.insert(0, 1)

    def test_set_index_out_of_range(self):
        bank = CacheBank(num_sets=4, ways=1)
        with pytest.raises(IndexError):
            bank.lookup(4, 1)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheBank(num_sets=0, ways=1)
        with pytest.raises(ValueError):
            CacheBank(num_sets=4, ways=0)


class TestDirtyTracking:
    def test_write_marks_dirty(self):
        bank = CacheBank(num_sets=4, ways=2)
        bank.insert(0, 1)
        bank.lookup(0, 1, write=True)
        assert bank.dirty_at(0, bank.probe(0, 1))

    def test_clean_insert_not_dirty(self):
        bank = CacheBank(num_sets=4, ways=2)
        r = bank.insert(0, 1)
        assert not bank.dirty_at(0, r.way)

    def test_dirty_eviction_reported(self):
        bank = CacheBank(num_sets=4, ways=1)
        bank.insert(0, 1, dirty=True)
        result = bank.insert(0, 2)
        assert result.evicted_tag == 1 and result.evicted_dirty

    def test_clean_eviction_reported(self):
        bank = CacheBank(num_sets=4, ways=1)
        bank.insert(0, 1)
        result = bank.insert(0, 2)
        assert result.evicted_tag == 1 and not result.evicted_dirty


class TestProbeAndInvalidate:
    def test_probe_does_not_touch_lru(self):
        bank = CacheBank(num_sets=4, ways=2)
        bank.insert(0, 1)
        bank.insert(0, 2)
        bank.probe(0, 1)  # not a use
        assert bank.insert(0, 3).evicted_tag == 1

    def test_probe_missing(self):
        bank = CacheBank(num_sets=4, ways=2)
        assert bank.probe(0, 9) is None

    def test_invalidate_present(self):
        bank = CacheBank(num_sets=4, ways=2)
        bank.insert(0, 1, dirty=True)
        present, dirty = bank.invalidate(0, 1)
        assert present and dirty
        assert not bank.lookup(0, 1).hit

    def test_invalidate_absent(self):
        bank = CacheBank(num_sets=4, ways=2)
        assert bank.invalidate(0, 1) == (False, False)

    def test_replace_way_returns_old_contents(self):
        bank = CacheBank(num_sets=4, ways=1)
        bank.insert(0, 5, dirty=True)
        old = bank.replace_way(0, 0, 7)
        assert old == (5, True)
        assert bank.probe(0, 7) == 0


class TestOccupancy:
    def test_capacity(self):
        bank = CacheBank(num_sets=8, ways=4)
        assert bank.capacity_blocks == 32

    def test_occupied_counts_inserts(self):
        bank = CacheBank(num_sets=8, ways=4)
        for tag in range(5):
            bank.insert(tag % 8, 100 + tag)
        assert bank.occupied_blocks == 5

    def test_occupancy_never_exceeds_capacity(self):
        bank = CacheBank(num_sets=2, ways=2)
        for tag in range(20):
            bank.insert(tag % 2, 1000 + tag)
        assert bank.occupied_blocks <= bank.capacity_blocks


@settings(max_examples=50)
@given(st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 20), st.booleans()),
    max_size=200,
))
def test_bank_matches_reference_model(ops):
    """Model check: bank contents always equal an LRU reference model."""
    ways = 2
    bank = CacheBank(num_sets=4, ways=ways)
    reference = {s: [] for s in range(4)}  # set -> [tags], LRU first

    for set_index, tag, write in ops:
        model_set = reference[set_index]
        if bank.lookup(set_index, tag, write=write).hit:
            assert tag in model_set
            model_set.remove(tag)
            model_set.append(tag)
        else:
            assert tag not in model_set
            result = bank.insert(set_index, tag, dirty=write)
            if len(model_set) == ways:
                assert result.evicted_tag == model_set.pop(0)
            else:
                assert result.evicted_tag is None
            model_set.append(tag)

    for set_index, tags in reference.items():
        for tag in tags:
            assert bank.probe(set_index, tag) is not None

"""Tests for the shared L2Design bookkeeping layer."""

import pytest

from repro.core.base import L2Design, L2Outcome
from repro.sim.memory import MainMemory


class MinimalDesign(L2Design):
    """Smallest concrete design: everything hits in 10 cycles."""

    name = "minimal"

    def access(self, addr, time, write=False):
        outcome = L2Outcome(time + 10, True, 10, True, write)
        self._record(outcome, banks_accessed=1)
        return outcome

    def link_utilization(self, elapsed_cycles):
        return 0.0

    def install(self, addr, dirty=False):
        pass


class TestRecording:
    def test_reads_and_writes_partitioned(self):
        design = MinimalDesign()
        design.access(0, 0)
        design.access(64, 10, write=True)
        assert design.stats["reads"] == 1
        assert design.stats["writes"] == 1
        assert design.stats["requests"] == 2

    def test_histogram_only_counts_read_hits(self):
        design = MinimalDesign()
        design.access(0, 0)
        design.access(64, 10, write=True)
        assert design.lookup_latencies.count == 1
        assert design.mean_lookup_latency == 10.0

    def test_predictable_fraction_over_reads(self):
        design = MinimalDesign()
        for i in range(4):
            design.access(i * 64, i * 10)
        design.access(999 * 64, 100, write=True)
        assert design.predictable_lookup_fraction == 1.0

    def test_banks_accessed_average(self):
        design = MinimalDesign()
        design._record(L2Outcome(1, True, 1, True), banks_accessed=3)
        design._record(L2Outcome(2, True, 1, True), banks_accessed=1)
        assert design.banks_accessed_per_request == 2.0

    def test_miss_ratio_empty(self):
        assert MinimalDesign().miss_ratio == 0.0


class TestEnergyAndPower:
    def test_power_zero_without_energy(self):
        assert MinimalDesign().network_power_w(1000) == 0.0

    def test_power_from_accumulated_energy(self):
        design = MinimalDesign()
        design._network_energy_acc = 1e-9  # 1 nJ
        # 1000 cycles at 10 GHz = 100 ns -> 10 mW.
        assert design.network_power_w(1000) == pytest.approx(0.010)

    def test_power_zero_elapsed(self):
        design = MinimalDesign()
        design._network_energy_acc = 1.0
        assert design.network_power_w(0) == 0.0


class TestReset:
    def test_reset_clears_measurements(self):
        design = MinimalDesign()
        design.access(0, 0)
        design._network_energy_acc = 5.0
        design.memory.read(0)
        design.reset_stats()
        assert design.stats["requests"] == 0
        assert design.lookup_latencies.count == 0
        assert design.network_energy_j() == 0.0
        assert design.memory.stats["reads"] == 0

    def test_default_memory_created(self):
        assert isinstance(MinimalDesign().memory, MainMemory)

    def test_shared_memory_respected(self):
        memory = MainMemory(latency_cycles=123)
        assert MinimalDesign(memory=memory).memory is memory

"""Calibration-loop tests: profiles must track their Table 6 rows."""

import pytest

from repro.workloads.calibration import CalibrationGrade, grade_benchmark


class TestGradeMath:
    def _grade(self, measured, paper, close_m=0.5, close_p=0.5):
        return CalibrationGrade("x", measured, paper, close_m, close_p,
                                10.0, None)

    def test_exact_match_zero_error(self):
        assert self._grade(5.0, 5.0).mpki_log_error == 0.0

    def test_factor_of_two_is_point_three_decades(self):
        assert self._grade(10.0, 5.0).mpki_log_error == pytest.approx(0.301, abs=0.01)

    def test_both_tiny_counts_as_match(self):
        assert self._grade(0.0, 0.019).mpki_log_error == 0.0

    def test_one_tiny_counts_as_decade(self):
        assert self._grade(0.0, 5.0).mpki_log_error == 1.0

    def test_within_tolerances(self):
        good = self._grade(5.0, 6.0, close_m=0.5, close_p=0.45)
        assert good.within()
        bad = self._grade(50.0, 5.0)
        assert not bad.within()


@pytest.mark.parametrize("bench_name", [
    "gcc", "equake", "swim", "oltp",
])
def test_representative_benchmarks_calibrated(bench_name):
    """One benchmark from each behaviour class must grade within
    tolerance (full-suite grading runs in the benchmark harness)."""
    grade = grade_benchmark(bench_name, n_refs=8_000)
    assert grade.within(), (
        bench_name, grade.measured_tlc_mpki, grade.paper_tlc_mpki,
        grade.measured_close_hit, grade.paper_close_hit)

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_design_rejected(self, capsys):
        assert main(["run", "NOPE", "gcc"]) == 2
        assert "unknown design" in capsys.readouterr().err

    def test_unknown_benchmark_rejected(self, capsys):
        assert main(["run", "TLC", "linpack"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_design_flag_spelling_normalized(self, capsys):
        assert main(["run", "--design", "tlc_opt_500", "--benchmark", "perl",
                     "--refs", "1500"]) == 0
        assert "TLCopt500 on perl" in capsys.readouterr().out

    def test_run_requires_both_names(self, capsys):
        assert main(["run", "TLC"]) == 2
        assert "required" in capsys.readouterr().err


class TestInformational:
    def test_designs_lists_registry(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in ("TLC", "TLCopt350", "SNUCA2", "DNUCA"):
            assert name in out

    def test_benchmarks_lists_profiles(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("mcf", "equake", "oltp"):
            assert name in out


class TestLine:
    def test_usable_line_exit_zero(self, capsys):
        assert main(["line", "1.1"]) == 0
        assert "USABLE" in capsys.readouterr().out

    def test_too_long_line_is_an_error(self, capsys):
        assert main(["line", "5.0"]) == 1
        assert "error" in capsys.readouterr().err


class TestRunAndCompare:
    def test_run_prints_metrics(self, capsys):
        assert main(["run", "TLC", "perl", "--refs", "1500"]) == 0
        out = capsys.readouterr().out
        assert "mean lookup latency" in out
        assert "network power" in out

    def test_compare_renders_chart(self, capsys):
        assert main(["compare", "perl", "--designs", "SNUCA2", "TLC",
                     "--refs", "1500"]) == 0
        out = capsys.readouterr().out
        assert "normalized" in out
        assert "legend:" in out


class TestGrid:
    def test_grid_run_save_load(self, tmp_path, capsys):
        path = str(tmp_path / "grid.json")
        assert main(["grid", "--designs", "SNUCA2", "TLC",
                     "--benchmarks", "perl", "--refs", "1500",
                     "--save", path]) == 0
        first = capsys.readouterr().out
        assert "Normalized execution time" in first
        assert main(["grid", "--load", path]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[-1] == second.splitlines()[-1]


class TestTrace:
    def test_trace_summary(self, capsys):
        assert main(["trace", "bzip", "--refs", "2000"]) == 0
        out = capsys.readouterr().out
        assert "footprint" in out

    def test_trace_written_to_file(self, tmp_path, capsys):
        path = str(tmp_path / "t.trace")
        assert main(["trace", "bzip", "--refs", "500", "--out", path]) == 0
        from repro.workloads.trace import load_trace
        assert len(load_trace(path)) == 500

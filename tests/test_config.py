"""Tests for the design registry (paper Table 2)."""

import pytest

from repro.analysis.tables import PAPER_TABLE2
from repro.core.config import (
    DESIGNS,
    DNUCA,
    SNUCA2,
    TLC_BASE,
    TLC_OPT_350,
    TLC_OPT_500,
    TLC_OPT_1000,
    build_design,
    design_names,
    get_design,
)


class TestRegistry:
    def test_six_designs(self):
        assert set(design_names()) == {
            "TLC", "TLCopt1000", "TLCopt500", "TLCopt350", "SNUCA2", "DNUCA"}

    def test_get_design(self):
        assert get_design("TLC") is TLC_BASE

    def test_unknown_design(self):
        with pytest.raises(ValueError, match="unknown design"):
            get_design("TLC9000")

    def test_all_designs_are_16mb(self):
        for config in DESIGNS.values():
            capacity = config.banks * config.bank_bytes
            if config.kind == "tlcopt":
                capacity = config.banks * config.bank_bytes
            assert capacity == 16 * 1024 * 1024


class TestTable2Parameters:
    @pytest.mark.parametrize("name", list(PAPER_TABLE2))
    def test_structural_parameters_match_paper(self, name):
        paper = PAPER_TABLE2[name]
        config = get_design(name)
        assert config.banks == paper["banks"]
        assert config.banks_per_block == paper["banks_per_block"]
        assert config.bank_bytes == paper["bank_kb"] * 1024
        assert config.bank_access_cycles == paper["bank_access"]

    @pytest.mark.parametrize("name", ["TLC", "TLCopt1000", "TLCopt500", "TLCopt350"])
    def test_transmission_line_counts(self, name):
        paper = PAPER_TABLE2[name]
        config = get_design(name)
        assert config.lines_per_pair == paper["lines_per_pair"]
        assert config.total_lines == paper["total_lines"]

    @pytest.mark.parametrize("name", ["TLC", "TLCopt1000", "TLCopt500", "TLCopt350"])
    def test_uncontended_latency_ranges(self, name):
        assert (get_design(name).uncontended_latency_range
                == PAPER_TABLE2[name]["uncontended"])

    def test_dnuca_uncontended_range(self):
        assert DNUCA.uncontended_latency_range == (3, 47)

    def test_snuca_uncontended_range(self):
        # Paper reports 9-32; the symmetric mesh model gives 9-33.
        low, high = SNUCA2.uncontended_latency_range
        assert low == 9
        assert 32 <= high <= 33


class TestDerivedLinkWidths:
    def test_base_tlc_links_are_8_bytes(self):
        assert TLC_BASE.request_link_bits == 64
        assert TLC_BASE.response_link_bits == 64

    def test_opt_request_links_are_22_bits(self):
        for config in (TLC_OPT_1000, TLC_OPT_500, TLC_OPT_350):
            assert config.request_link_bits == 22

    def test_opt_response_links_use_remaining_lines(self):
        assert TLC_OPT_1000.response_link_bits == 126 - 22
        assert TLC_OPT_500.response_link_bits == 64 - 22
        assert TLC_OPT_350.response_link_bits == 44 - 22

    def test_nuca_designs_have_no_tl_links(self):
        with pytest.raises(ValueError):
            SNUCA2.request_link_bits
        with pytest.raises(ValueError):
            DNUCA.response_link_bits

    def test_controller_delays_cover_all_pairs(self):
        assert len(TLC_BASE.controller_rt_delays) == TLC_BASE.pairs
        assert len(TLC_OPT_500.controller_rt_delays) == TLC_OPT_500.pairs


class TestBuildDesign:
    @pytest.mark.parametrize("name", list(DESIGNS))
    def test_builds_every_design(self, name):
        design = build_design(name)
        assert design.name == name

    def test_overrides_apply(self):
        design = build_design("TLC", replacement="frequency")
        assert design.config.replacement == "frequency"

    def test_build_unknown_raises(self):
        with pytest.raises(ValueError):
            build_design("nope")

"""Tests for the design registry (paper Table 2)."""

import pytest

from repro.analysis.tables import PAPER_TABLE2
from repro.core.config import (
    DESIGNS,
    DNUCA,
    SNUCA2,
    TLC_BASE,
    TLC_OPT_350,
    TLC_OPT_500,
    TLC_OPT_1000,
    build_design,
    design_names,
    get_design,
)


class TestRegistry:
    def test_six_designs(self):
        assert set(design_names()) == {
            "TLC", "TLCopt1000", "TLCopt500", "TLCopt350", "SNUCA2", "DNUCA"}

    def test_get_design(self):
        assert get_design("TLC") is TLC_BASE

    def test_unknown_design(self):
        with pytest.raises(ValueError, match="unknown design"):
            get_design("TLC9000")

    def test_all_designs_are_16mb(self):
        for config in DESIGNS.values():
            capacity = config.banks * config.bank_bytes
            if config.kind == "tlcopt":
                capacity = config.banks * config.bank_bytes
            assert capacity == 16 * 1024 * 1024


class TestTable2Parameters:
    @pytest.mark.parametrize("name", list(PAPER_TABLE2))
    def test_structural_parameters_match_paper(self, name):
        paper = PAPER_TABLE2[name]
        config = get_design(name)
        assert config.banks == paper["banks"]
        assert config.banks_per_block == paper["banks_per_block"]
        assert config.bank_bytes == paper["bank_kb"] * 1024
        assert config.bank_access_cycles == paper["bank_access"]

    @pytest.mark.parametrize("name", ["TLC", "TLCopt1000", "TLCopt500", "TLCopt350"])
    def test_transmission_line_counts(self, name):
        paper = PAPER_TABLE2[name]
        config = get_design(name)
        assert config.lines_per_pair == paper["lines_per_pair"]
        assert config.total_lines == paper["total_lines"]

    @pytest.mark.parametrize("name", ["TLC", "TLCopt1000", "TLCopt500", "TLCopt350"])
    def test_uncontended_latency_ranges(self, name):
        assert (get_design(name).uncontended_latency_range
                == PAPER_TABLE2[name]["uncontended"])

    def test_dnuca_uncontended_range(self):
        assert DNUCA.uncontended_latency_range == (3, 47)

    def test_snuca_uncontended_range(self):
        # Paper reports 9-32; the symmetric mesh model gives 9-33.
        low, high = SNUCA2.uncontended_latency_range
        assert low == 9
        assert 32 <= high <= 33


class TestDerivedLinkWidths:
    def test_base_tlc_links_are_8_bytes(self):
        assert TLC_BASE.request_link_bits == 64
        assert TLC_BASE.response_link_bits == 64

    def test_opt_request_links_are_22_bits(self):
        for config in (TLC_OPT_1000, TLC_OPT_500, TLC_OPT_350):
            assert config.request_link_bits == 22

    def test_opt_response_links_use_remaining_lines(self):
        assert TLC_OPT_1000.response_link_bits == 126 - 22
        assert TLC_OPT_500.response_link_bits == 64 - 22
        assert TLC_OPT_350.response_link_bits == 44 - 22

    def test_nuca_designs_have_no_tl_links(self):
        with pytest.raises(ValueError):
            SNUCA2.request_link_bits
        with pytest.raises(ValueError):
            DNUCA.response_link_bits

    def test_controller_delays_cover_all_pairs(self):
        assert len(TLC_BASE.controller_rt_delays) == TLC_BASE.pairs
        assert len(TLC_OPT_500.controller_rt_delays) == TLC_OPT_500.pairs


class TestBuildDesign:
    @pytest.mark.parametrize("name", list(DESIGNS))
    def test_builds_every_design(self, name):
        design = build_design(name)
        assert design.name == name

    def test_overrides_apply(self):
        design = build_design("TLC", replacement="frequency")
        assert design.config.replacement == "frequency"

    def test_build_unknown_raises(self):
        with pytest.raises(ValueError):
            build_design("nope")


class TestDesignVariant:
    def test_variant_builds_config_under_its_own_name(self):
        from repro.core.config import DesignVariant

        variant = DesignVariant(name="snuca2-fast", base="snuca2",
                                overrides={"bank_access_cycles": 2})
        config = variant.config()
        assert config.name == "snuca2-fast"
        assert config.bank_access_cycles == 2
        assert variant.base == "SNUCA2"  # resolved registry spelling

    def test_overrides_canonicalize_to_sorted_tuples(self):
        from repro.core.config import DesignVariant

        one = DesignVariant(name="v", base="SNUCA2",
                            overrides={"mesh_hop_latency": 2,
                                       "bank_access_cycles": 3})
        two = DesignVariant(name="v", base="SNUCA2",
                            overrides=(("bank_access_cycles", 3),
                                       ("mesh_hop_latency", 2)))
        assert one == two
        assert one.as_dict()["overrides"] == {"bank_access_cycles": 3,
                                              "mesh_hop_latency": 2}

    def test_reserved_and_unknown_fields_are_refused(self):
        from repro.core.config import ConfigError, DesignVariant

        for overrides in ({"name": "x"}, {"backend": "batched"},
                          {"bogus": 1}):
            with pytest.raises(ConfigError):
                DesignVariant(name="v", base="SNUCA2", overrides=overrides)

    def test_unbuildable_combination_is_a_typed_error(self):
        from repro.core.config import ConfigError, DesignVariant

        with pytest.raises(ConfigError, match="bank_access_cycles"):
            DesignVariant(name="v", base="SNUCA2",
                          overrides={"bank_access_cycles": 0})

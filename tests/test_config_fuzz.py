"""Property-based fuzzing of the design-parameter registry.

The contract under test: :class:`~repro.core.config.DesignConfig`
construction (including ``dataclasses.replace`` variants and
``build_design`` overrides) either yields a buildable configuration or
raises a typed :class:`~repro.core.config.ConfigError` — never a bare
``TypeError`` / ``ZeroDivisionError`` from deep inside a model, and
never a half-built simulator with NaN latencies.
"""

import dataclasses
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import (
    DESIGNS,
    SNUCA2,
    TLC_BASE,
    ConfigError,
    DesignConfig,
    build_design,
)

FIELDS = tuple(field.name for field in dataclasses.fields(DesignConfig))

#: Adversarial values for any field: wrong types, NaN/inf, negatives,
#: bools (which are ints to isinstance), empty strings, None.
garbage = st.one_of(
    st.integers(min_value=-8, max_value=8),
    st.floats(allow_nan=True, allow_infinity=True),
    st.booleans(),
    st.none(),
    st.text(max_size=4),
    st.lists(st.integers(min_value=-2, max_value=6), max_size=4),
)

fuzz = settings(max_examples=80, deadline=None)


@fuzz
@given(field=st.sampled_from(FIELDS), value=garbage,
       base=st.sampled_from((TLC_BASE, SNUCA2)))
def test_single_field_mutation_is_typed(field, value, base):
    """Replacing any one field either validates or raises ConfigError."""
    try:
        config = dataclasses.replace(base, **{field: value})
    except ConfigError:
        return
    # Accepted: the config must be internally consistent enough for the
    # derived quantities every model starts from.
    assert config.total_bytes > 0
    assert config.pairs >= 1
    if config.kind in ("tlc", "tlcopt"):
        assert isinstance(config.controller_rt_delays, tuple)
        assert len(config.controller_rt_delays) == config.pairs


@fuzz
@given(overrides=st.dictionaries(st.sampled_from(FIELDS), garbage,
                                 max_size=4))
def test_multi_field_construction_is_typed(overrides):
    """Arbitrary constructor payloads never escape the typed error."""
    payload = dict(dataclasses.asdict(TLC_BASE), **overrides)
    try:
        DesignConfig(**payload)
    except ConfigError:
        pass


@fuzz
@given(name=st.sampled_from(sorted(DESIGNS)),
       key=st.sampled_from(("bankz", "n_banks", "latency", "mesh",
                            "assoc", "x")),
       value=st.integers(min_value=0, max_value=64))
def test_unknown_override_name_is_typed(name, key, value):
    with pytest.raises(ConfigError, match="bad design override"):
        build_design(name, **{key: value})


@fuzz
@given(length=st.floats(allow_nan=True, allow_infinity=True))
def test_hop_length_rejects_non_finite(length):
    if math.isfinite(length) and length > 0:
        config = dataclasses.replace(SNUCA2, mesh_hop_length_m=length)
        assert config.mesh_hop_length_m == length
    else:
        with pytest.raises(ConfigError, match="mesh_hop_length_m"):
            dataclasses.replace(SNUCA2, mesh_hop_length_m=length)


@st.composite
def tlc_variants(draw):
    """Structurally valid base-TLC configurations."""
    banks = draw(st.sampled_from((2, 4, 8, 16, 32)))
    associativity = draw(st.sampled_from((1, 2, 4, 8)))
    return DesignConfig(
        name="fuzz-tlc",
        kind="tlc",
        banks=banks,
        bank_bytes=64 * associativity * draw(st.sampled_from((4, 16, 64))),
        bank_access_cycles=draw(st.integers(min_value=1, max_value=8)),
        associativity=associativity,
        lines_per_pair=draw(st.sampled_from((2, 24, 128, 256))),
        controller_rt_delays=tuple(draw(st.lists(
            st.integers(min_value=0, max_value=6),
            min_size=banks // 2, max_size=banks // 2))),
    )


@settings(max_examples=25, deadline=None)
@given(config=tlc_variants())
def test_valid_tlc_variants_build_and_serve_accesses(config):
    """Every config the validator accepts yields a working simulator.

    One escape hatch: the floorplan may find the routed line lengths
    physically unroutable (Table 1 tops out at 1.3 cm) — a property of
    the technology, not of the field values, and it raises its own
    descriptive error.
    """
    from repro.core.tlc import TransmissionLineCache

    try:
        design = TransmissionLineCache(config)
    except ValueError as error:
        assert "Table 1 geometry" in str(error)
        return
    outcome = design.access(0x4000, 0)
    assert outcome.complete_time >= 0
    assert math.isfinite(design.mean_lookup_latency)


def test_registry_configs_are_valid():
    """The shipped Table 2 rows all pass their own validation."""
    for name, config in DESIGNS.items():
        assert dataclasses.replace(config) == config, name

"""Tests for the central TLC controller."""

import pytest

from repro.core.config import SNUCA2, TLC_BASE, TLC_OPT_1000, TLC_OPT_350
from repro.core.controller import TLCController
from repro.interconnect.message import BLOCK_BITS, REQUEST_BITS


class TestConstruction:
    def test_one_link_pair_per_bank_pair(self):
        controller = TLCController(TLC_BASE)
        assert len(controller.request_links) == 16
        assert len(controller.response_links) == 16
        assert controller.meter.resources == 32

    def test_link_widths_follow_config(self):
        controller = TLCController(TLC_OPT_350)
        assert controller.request_links[0].width_bits == 22
        assert controller.response_links[0].width_bits == 44 - 22

    def test_rejects_nuca_config(self):
        with pytest.raises(ValueError):
            TLCController(SNUCA2)

    def test_line_lengths_from_floorplan(self):
        controller = TLCController(TLC_BASE)
        assert len(controller._line_lengths) == 16
        assert min(controller._line_lengths) >= 0.008
        assert max(controller._line_lengths) <= 0.0131


class TestWireDelays:
    def test_round_trip_split_sums(self):
        controller = TLCController(TLC_BASE)
        for pair in range(16):
            rt = TLC_BASE.controller_rt_delays[pair]
            assert (controller.request_delay(pair)
                    + controller.response_delay(pair)) == rt

    def test_uncontended_latency_table2(self):
        controller = TLCController(TLC_BASE)
        latencies = {controller.uncontended_latency(p) for p in range(16)}
        assert min(latencies) == 10
        assert max(latencies) == 16

    def test_opt_uncontended(self):
        controller = TLCController(TLC_OPT_1000)
        latencies = {controller.uncontended_latency(p) for p in range(8)}
        assert latencies == {12, 13}


class TestTransfers:
    def test_request_timing_includes_wire_delay(self):
        controller = TLCController(TLC_BASE)
        far_pair = max(range(16),
                       key=lambda p: TLC_BASE.controller_rt_delays[p])
        near_pair = min(range(16),
                        key=lambda p: TLC_BASE.controller_rt_delays[p])
        far, _ = controller.send_request(far_pair, 100, REQUEST_BITS)
        near, _ = controller.send_request(near_pair, 100, REQUEST_BITS)
        assert far.first_arrival >= near.first_arrival

    def test_response_arrival_adds_internal_wire(self):
        controller = TLCController(TLC_BASE)
        pair = max(range(16), key=lambda p: TLC_BASE.controller_rt_delays[p])
        transfer, arrival, _ = controller.send_response(pair, 100, BLOCK_BITS)
        assert arrival == (transfer.first_arrival
                           + controller.response_delay(pair))

    def test_energy_scales_with_bits(self):
        controller = TLCController(TLC_BASE)
        _, e_small = controller.send_request(0, 0, REQUEST_BITS)
        _, e_big = controller.send_request(0, 100, BLOCK_BITS)
        assert e_big == pytest.approx(e_small * BLOCK_BITS / REQUEST_BITS)

    def test_longer_lines_cost_no_more_per_bit(self):
        """TL energy is set by impedance, not length — the paper's
        length-independent launch power."""
        controller = TLCController(TLC_BASE)
        _, e_near = controller.send_request(0, 0, REQUEST_BITS)
        _, e_far = controller.send_request(7, 0, REQUEST_BITS)
        # Longer lines use wider geometry (lower R), similar Z0: energy
        # within ~20 % of each other.
        assert e_far == pytest.approx(e_near, rel=0.2)

    def test_utilization_accumulates(self):
        controller = TLCController(TLC_BASE)
        controller.send_request(0, 0, REQUEST_BITS)
        controller.send_response(0, 10, BLOCK_BITS)
        assert controller.utilization(100) == pytest.approx(
            (1 + 8) / (100 * 32))

"""Cross-validation: independent models must agree with each other.

These tests tie separately implemented components together:

* the scalar busy-until :class:`~repro.interconnect.link.Link` against
  an explicit event-driven FIFO queue built on the
  :class:`~repro.sim.engine.Engine`;
* the analytic stack-distance miss predictor against the actual misses
  the cache designs produce;
* the physical-layer flight time against the cycle counts the timing
  models assume.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.interconnect.link import Link
from repro.sim.engine import Engine
from repro.sim.system import run_system
from repro.tline import TABLE1_LINES, extract
from repro.workloads.stats import predict_miss_ratio
from repro.workloads.synthetic import TraceSpec, generate_trace


class EventDrivenFifoLink:
    """A reference link model: an explicit server process on the engine."""

    def __init__(self, width_bits: int, flight_cycles: int) -> None:
        self.width_bits = width_bits
        self.flight_cycles = flight_cycles
        self.engine = Engine()
        self.free_at = 0
        self.results = []

    def send(self, time: int, message_bits: int) -> None:
        flits = -(-message_bits // self.width_bits)

        def serve(send_time=time, flits=flits):
            start = max(send_time, self.free_at)
            self.free_at = start + flits
            self.results.append(
                (start, start + self.flight_cycles,
                 start + flits - 1 + self.flight_cycles))

        # Arrival-ordered service: schedule at the send time.
        self.engine.schedule_at(time, serve)

    def run(self):
        self.engine.run()
        return self.results


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 500), st.integers(1, 512)),
                min_size=1, max_size=40))
def test_link_matches_event_driven_reference(messages):
    """The O(1) busy-until link and the event-driven FIFO queue must
    produce identical transfer timings for arrival-ordered traffic."""
    messages = sorted(messages)
    fast = Link(width_bits=64, flight_cycles=2)
    reference = EventDrivenFifoLink(width_bits=64, flight_cycles=2)
    fast_results = []
    for time, bits in messages:
        t = fast.send(time, bits)
        fast_results.append((t.start, t.first_arrival, t.last_arrival))
        reference.send(time, bits)
    assert fast_results == reference.run()


class TestMissPredictionAgainstDesigns:
    @pytest.fixture(scope="class")
    def workload(self):
        spec = TraceSpec(mean_gap=25.0, hot_blocks=4_000,
                         stream_fraction=0.25, cold_fraction=0.05)
        return spec, generate_trace(spec, 8_000, seed=13)

    def test_fully_associative_bound_holds(self, workload):
        """Starting cold (like the predictor assumes), set-associative
        designs can only miss *more* than the fully-associative LRU
        stack-distance prediction (small statistical tolerance)."""
        _spec, trace = workload
        predicted = predict_miss_ratio(trace, 16 * 2**20)
        for design in ("TLC", "SNUCA2"):
            measured = run_system(design, "custom", trace=trace,
                                  warmup_fraction=0.0).miss_ratio
            assert measured >= predicted - 0.02, (design, measured, predicted)

    def test_prediction_tracks_measurement(self, workload):
        """And the bound is tight for low-conflict workloads."""
        _spec, trace = workload
        predicted = predict_miss_ratio(trace, 16 * 2**20)
        measured = run_system("TLC", "custom", trace=trace,
                              warmup_fraction=0.0).miss_ratio
        assert measured == pytest.approx(predicted, abs=0.05)


class TestPhysicalTimingConsistency:
    def test_flight_time_supports_one_cycle_links(self):
        """The timing models hard-code 1-cycle transmission lines; the
        extracted physics must actually deliver sub-cycle flight."""
        for geometry in TABLE1_LINES:
            line = extract(geometry)
            assert line.flight_time < 100e-12

    def test_uncontended_latency_decomposition(self):
        """TLC's Table 2 latency = flight + bank + flight + controller
        wire; verify against the design's own accounting."""
        from repro.core.tlc import TransmissionLineCache
        tlc = TransmissionLineCache()
        for pair in range(16):
            expected = (1 + tlc.config.bank_access_cycles + 1
                        + tlc.config.controller_rt_delays[pair])
            assert tlc.controller.uncontended_latency(pair) == expected

"""Tests for the derived-artifact cache lane (repro.analysis.derived).

The lane is optimization-only, so almost every test here is some form
of "warm and cold agree, and the lane did/did not do work": key
determinism and invalidation, corruption quarantine, warm-vs-cold
byte-identical reports, section-granular re-derivation, sweep and CLI
routing, and the ``analysis.derived.*`` observability surface.
"""

import json

import pytest

from repro.analysis.derived import (
    ANALYSIS_VERSION,
    DerivedCache,
    DerivedLane,
    as_lane,
    derived_key,
)
from repro.analysis.experiments import ExperimentGrid, MAIN_DESIGNS, TLC_FAMILY
from repro.analysis.report import REPORT_SECTIONS, build_report
from repro.sim.system import SystemResult

BENCHMARKS = ("gcc", "mcf")


def make_result(design: str, benchmark: str, index: int) -> SystemResult:
    """A fully populated, deterministic synthetic result cell."""
    return SystemResult(
        design=design,
        benchmark=benchmark,
        cycles=100_000 + 7_919 * index,
        instructions=250_000,
        l2_requests=20_000,
        l2_hits=19_000 - 250 * index,
        l2_misses=1_000 + 250 * index,
        mean_lookup_latency=10.0 + 1.25 * index,
        predictable_lookup_fraction=round(0.95 - 0.05 * (index % 4), 2),
        banks_accessed_per_request=1.0 + 0.25 * (index % 3),
        link_utilization=round(0.04 * (index % 5 + 1), 2),
        network_power_w=0.050 + 0.015 * index,
        stats={"close_hits": 5_000 + 100 * index,
               "promotions": 800 + 10 * index,
               "insertions": 400},
    )


def make_grid(designs, mutate=None) -> ExperimentGrid:
    """A hand-built grid (no runner provenance -> content fingerprints).

    ``mutate`` maps ``(design, benchmark)`` to a replacement result, for
    the single-cell invalidation tests.
    """
    results = {}
    index = 0
    for benchmark in BENCHMARKS:
        for design in designs:
            results[(design, benchmark)] = make_result(design, benchmark,
                                                       index)
            index += 1
    if mutate:
        results.update(mutate)
    return ExperimentGrid(tuple(designs), BENCHMARKS, results)


class TestDerivedKey:
    def test_deterministic(self):
        assert (derived_key("fig5", ["a", "b"], {"n": 1})
                == derived_key("fig5", ["a", "b"], {"n": 1}))

    def test_cell_key_order_insensitive(self):
        assert (derived_key("fig5", ["a", "b"])
                == derived_key("fig5", ["b", "a"]))

    def test_components_all_matter(self):
        base = derived_key("fig5", ["a"], {"n": 1})
        assert derived_key("fig6", ["a"], {"n": 1}) != base
        assert derived_key("fig5", ["b"], {"n": 1}) != base
        assert derived_key("fig5", ["a"], {"n": 2}) != base
        assert derived_key("fig5", ["a", "b"], {"n": 1}) != base

    def test_analysis_version_rotates_key(self):
        assert (derived_key("fig5", ["a"], analysis_version=ANALYSIS_VERSION)
                != derived_key("fig5", ["a"],
                               analysis_version=ANALYSIS_VERSION + 1))


class TestDerivedCache:
    def test_roundtrip(self, tmp_path):
        cache = DerivedCache(tmp_path)
        key = derived_key("t", ["k"])
        artifact = {"rows": [["gcc", 1.0], ["mcf", 0.5]], "n": 3}
        cache.put(key, "t", artifact)
        assert cache.get(key) == artifact
        assert cache.hits == 1 and cache.stores == 1

    def test_absent_entry_is_a_miss(self, tmp_path):
        cache = DerivedCache(tmp_path)
        assert cache.get(derived_key("t", [])) is None
        assert cache.misses == 1 and cache.quarantined == 0

    def test_truncated_entry_quarantined(self, tmp_path):
        cache = DerivedCache(tmp_path)
        key = derived_key("t", ["k"])
        cache.put(key, "t", {"rows": []})
        path = cache.path_for(key)
        path.write_text(path.read_text()[:20], encoding="utf-8")
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert not path.exists()
        assert list(cache.quarantine_dir.iterdir())
        # The lane heals: a put after quarantine serves again.
        cache.put(key, "t", {"rows": []})
        assert cache.get(key) == {"rows": []}

    def test_bit_rot_fails_integrity(self, tmp_path):
        cache = DerivedCache(tmp_path)
        key = derived_key("t", ["k"])
        cache.put(key, "t", {"value": 41})
        path = cache.path_for(key)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["artifact"]["value"] = 42  # flip a digit, keep valid JSON
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_wrong_format_version_quarantined(self, tmp_path):
        cache = DerivedCache(tmp_path)
        key = derived_key("t", ["k"])
        cache.put(key, "t", {"value": 1})
        path = cache.path_for(key)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["derived_format"] = 99
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.quarantined == 1


class TestDerivedLane:
    def test_disabled_lane_computes_inline(self):
        lane = as_lane(None)
        assert not lane.enabled
        calls = []
        for _ in range(2):
            out = lane.get_or_compute("t", [], None,
                                      lambda: calls.append(1) or {"v": 1})
            assert out == {"v": 1}
        assert len(calls) == 2
        assert lane.counter.as_dict()["computed"] == 2
        assert "disabled" in lane.summary()

    def test_enabled_lane_hits_second_time(self, tmp_path):
        lane = as_lane(tmp_path)
        assert lane.enabled
        first = lane.get_or_compute("t", ["k"], None, lambda: {"v": 7})

        def explode():
            raise AssertionError("warm lane must not recompute")

        second = lane.get_or_compute("t", ["k"], None, explode)
        assert first == second == {"v": 7}
        counts = lane.counter.as_dict()
        assert counts["hits"] == 1 and counts["misses"] == 1
        assert counts["stores"] == 1

    def test_analysis_version_bump_invalidates(self, tmp_path, monkeypatch):
        lane = as_lane(tmp_path)
        lane.get_or_compute("t", ["k"], None, lambda: {"v": "old"})
        import repro.analysis.derived as derived_module

        monkeypatch.setattr(derived_module, "ANALYSIS_VERSION",
                            ANALYSIS_VERSION + 1)
        fresh = as_lane(tmp_path)
        out = fresh.get_or_compute("t", ["k"], None, lambda: {"v": "new"})
        assert out == {"v": "new"}
        assert fresh.counter.as_dict()["misses"] == 1

    def test_corrupt_entry_recomputed_and_counted(self, tmp_path):
        lane = as_lane(tmp_path)
        lane.get_or_compute("t", ["k"], None, lambda: {"v": 1})
        key = derived_key("t", ["k"])
        lane.cache.path_for(key).write_text("not json", encoding="utf-8")
        out = lane.get_or_compute("t", ["k"], None, lambda: {"v": 1})
        assert out == {"v": 1}
        assert lane.counter.as_dict()["quarantined"] == 1

    def test_registers_analysis_metrics(self, tmp_path):
        from repro.obs import MetricsRegistry

        lane = as_lane(tmp_path)
        lane.get_or_compute("t", [], None, lambda: {"v": 1})
        registry = MetricsRegistry()
        lane.register(registry)
        snapshot = registry.snapshot()
        assert snapshot["analysis.derived.misses"] == 1
        assert snapshot["analysis.derived.stores"] == 1
        assert snapshot["analysis.derived.hits"] == 0

    def test_as_dict_is_manifest_ready(self, tmp_path):
        lane = as_lane(tmp_path)
        doc = lane.as_dict()
        assert doc["enabled"] is True
        assert doc["analysis_version"] == ANALYSIS_VERSION
        assert doc["root"] == str(tmp_path)
        assert {"hits", "misses", "stores", "quarantined"} <= set(doc)

    def test_as_lane_coercions(self, tmp_path):
        lane = DerivedLane(DerivedCache(tmp_path))
        assert as_lane(lane) is lane
        assert as_lane(DerivedCache(tmp_path)).enabled
        assert as_lane(str(tmp_path)).enabled
        assert not as_lane(None).enabled


class TestReportThroughLane:
    def grids(self, mutate=None):
        return (make_grid(MAIN_DESIGNS),
                make_grid(("SNUCA2",) + TLC_FAMILY, mutate=mutate))

    def test_warm_report_byte_identical_and_recomputes_nothing(self,
                                                               tmp_path):
        main_grid, family_grid = self.grids()
        cold_lane = as_lane(tmp_path)
        cold = build_report(main_grid=main_grid, family_grid=family_grid,
                            n_refs=1_234, derived=cold_lane)
        assert cold_lane.counter.as_dict()["stores"] == len(REPORT_SECTIONS)

        warm_lane = as_lane(tmp_path)
        warm = build_report(main_grid=main_grid, family_grid=family_grid,
                            n_refs=1_234, derived=warm_lane)
        assert warm == cold
        counts = warm_lane.counter.as_dict()
        assert counts["hits"] == len(REPORT_SECTIONS)
        assert counts["misses"] == 0 and counts["computed"] == 0

    def test_lane_never_changes_rendering(self, tmp_path):
        main_grid, family_grid = self.grids()
        plain = build_report(main_grid=main_grid, family_grid=family_grid,
                             n_refs=1_234)
        routed = build_report(main_grid=main_grid, family_grid=family_grid,
                              n_refs=1_234, derived=as_lane(tmp_path))
        assert routed == plain

    def test_single_cell_invalidation_is_section_granular(self, tmp_path):
        """Changing one family-grid SNUCA2 cell re-derives only Figure 8.

        Figure 8 is the one section whose slice covers the family
        baseline; Figure 7 reads only the TLC family designs, and every
        main-grid and static section is untouched.
        """
        main_grid, family_grid = self.grids()
        build_report(main_grid=main_grid, family_grid=family_grid,
                     n_refs=1_234, derived=as_lane(tmp_path))

        changed = make_result("SNUCA2", "gcc", index=40)
        _, poked_family = self.grids(mutate={("SNUCA2", "gcc"): changed})
        lane = as_lane(tmp_path)
        build_report(main_grid=main_grid, family_grid=poked_family,
                     n_refs=1_234, derived=lane)
        counts = lane.counter.as_dict()
        assert counts["misses"] == 1
        assert counts["hits"] == len(REPORT_SECTIONS) - 1

    def test_main_grid_cell_change_spares_family_sections(self, tmp_path):
        main_grid, family_grid = self.grids()
        build_report(main_grid=main_grid, family_grid=family_grid,
                     n_refs=1_234, derived=as_lane(tmp_path))

        changed = make_result("TLC", "mcf", index=41)
        results = dict(main_grid.results)
        results[("TLC", "mcf")] = changed
        poked_main = ExperimentGrid(main_grid.designs, main_grid.benchmarks,
                                    results)
        lane = as_lane(tmp_path)
        build_report(main_grid=poked_main, family_grid=family_grid,
                     n_refs=1_234, derived=lane)
        counts = lane.counter.as_dict()
        # fig5, fig6, table6, table9 read the poked TLC cell; the four
        # static sections and the two family figures stay warm.
        assert counts["misses"] == 4
        assert counts["hits"] == len(REPORT_SECTIONS) - 4


class TestSweepsThroughLane:
    def test_memory_sweep_warm_lane_skips_execution(self, tmp_path):
        from repro.analysis.runner import ResultCache
        from repro.analysis.sweeps import memory_latency_sweep

        kwargs = dict(benchmark="gcc", latencies=(150, 600),
                      designs=("TLC",), n_refs=1_500)
        cold = memory_latency_sweep(derived_cache=as_lane(tmp_path), **kwargs)

        probe = ResultCache(tmp_path / "results")
        warm_lane = as_lane(tmp_path)
        warm = memory_latency_sweep(cache=probe, derived_cache=warm_lane,
                                    **kwargs)
        assert warm == cold
        assert warm_lane.counter.as_dict()["hits"] == 1
        # The runner was never consulted: the probe cache saw no traffic.
        assert probe.hits == 0 and probe.misses == 0 and probe.stores == 0

    def test_dependence_sweep_round_trips_types(self, tmp_path):
        from repro.analysis.sweeps import dependence_sweep

        kwargs = dict(fractions=(0.0, 0.8), designs=("TLC",), n_refs=1_500)
        cold = dependence_sweep(derived_cache=as_lane(tmp_path), **kwargs)
        warm = dependence_sweep(derived_cache=as_lane(tmp_path), **kwargs)
        assert warm == cold
        assert [fraction for fraction, _ in warm] == [0.0, 0.8]
        for _, by_design in warm:
            assert isinstance(by_design["TLC"], int)


class TestCliLaneWiring:
    def test_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["report", "--derived-cache-dir", "d"])
        assert args.derived_cache_dir == "d"
        assert not args.no_derived_cache
        args = parser.parse_args(["grid", "--no-derived-cache"])
        assert args.no_derived_cache

    def test_lane_resolution(self, tmp_path):
        import argparse

        from repro.cli import _derived_lane

        explicit = _derived_lane(argparse.Namespace(
            no_derived_cache=False, derived_cache_dir=str(tmp_path),
            cache_dir=None))
        assert explicit.enabled and explicit.cache.root == tmp_path

        implied = _derived_lane(argparse.Namespace(
            no_derived_cache=False, derived_cache_dir=None,
            cache_dir=str(tmp_path)))
        assert implied.enabled
        assert implied.cache.root == tmp_path / "derived"

        off = _derived_lane(argparse.Namespace(
            no_derived_cache=True, derived_cache_dir=str(tmp_path),
            cache_dir=str(tmp_path)))
        assert not off.enabled

        default = _derived_lane(argparse.Namespace(
            no_derived_cache=False, derived_cache_dir=None, cache_dir=None))
        assert not default.enabled


class TestManifestDerivedField:
    def test_round_trip(self, tmp_path):
        from repro.obs.manifest import (
            build_manifest,
            manifest_from_dict,
            manifest_to_dict,
        )

        lane = as_lane(tmp_path)
        lane.get_or_compute("t", [], None, lambda: {"v": 1})
        manifest = build_manifest(kind="report", config={"n_refs": 5},
                                  metrics={}, wall_time_s=0.1,
                                  derived=lane.as_dict())
        loaded = manifest_from_dict(manifest_to_dict(manifest))
        assert loaded.derived["enabled"] is True
        assert loaded.derived["misses"] == 1

    def test_derived_field_defaults_to_none(self):
        from repro.obs.manifest import build_manifest

        manifest = build_manifest(kind="system", config={}, metrics={},
                                  wall_time_s=0.0)
        assert manifest.derived is None


class TestSuiteSanitizeForwarding:
    def test_sanitize_is_part_of_the_suite_cache_key(self, tmp_path):
        """`run_benchmark_suite` must forward ``sanitize`` to the runner
        (it used to drop the flag silently): sanitized and plain suite
        runs are distinct cells, and a sanitized suite run shares its
        entry with a sanitized grid run."""
        from repro.analysis.experiments import (
            run_benchmark_suite,
            run_design_grid,
        )
        from repro.analysis.runner import ResultCache

        cache = ResultCache(tmp_path)
        run_benchmark_suite("TLC", benchmarks=("gcc",), n_refs=1_500,
                            sanitize=True, cache=cache)
        assert cache.stores == 1

        run_benchmark_suite("TLC", benchmarks=("gcc",), n_refs=1_500,
                            sanitize=False, cache=cache)
        assert cache.stores == 2  # distinct cell: the flag reached the key

        warm = ResultCache(tmp_path)
        run_design_grid(designs=("TLC",), benchmarks=("gcc",), n_refs=1_500,
                        sanitize=True, cache=warm)
        assert warm.hits == 1 and warm.stores == 0

"""Tests for the DNUCA baseline: search, promotion, partial tags."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nuca.dnuca import DynamicNUCA
from repro.sim.memory import MainMemory


def make():
    return DynamicNUCA(memory=MainMemory())


def addr_for(design, column, set_index=0, tag=1):
    return design.addr_map.rebuild(tag, set_index, column)


class TestGeometry:
    def test_16_banksets_of_16_banks(self):
        design = make()
        assert design.banksets == 16
        assert design.positions == 16
        assert design.banks[0][0].num_sets == 1024

    def test_total_capacity_16mb(self):
        design = make()
        blocks = sum(b.capacity_blocks for col in design.banks for b in col)
        assert blocks * 64 == 16 * 1024 * 1024

    def test_rejects_wrong_config(self):
        from repro.core.config import SNUCA2
        with pytest.raises(ValueError):
            DynamicNUCA(config=SNUCA2)


class TestInsertAtTail:
    def test_miss_inserts_at_furthest_bank(self):
        design = make()
        addr = addr_for(design, 3, set_index=7, tag=42)
        design.access(addr, time=0)
        column = design.addr_map.bank_index(addr)
        assert design.banks[column][15].probe(7, 42) is not None

    def test_insertion_updates_partial_tags(self):
        design = make()
        addr = addr_for(design, 3, set_index=7, tag=42)
        design.access(addr, time=0)
        assert 15 in design.partial_tags[3].matches(7, 42)

    def test_tail_eviction_writes_back_dirty(self):
        design = make()
        a = addr_for(design, 0, set_index=0, tag=1)
        b = addr_for(design, 0, set_index=0, tag=2)
        design.access(a, time=0, write=True)      # dirty at tail
        design.access(b, time=10_000)             # evicts a
        assert design.stats["writebacks"] == 1


class TestPromotion:
    def test_hit_moves_block_one_closer(self):
        design = make()
        addr = addr_for(design, 5, set_index=3, tag=9)
        design.access(addr, time=0)            # inserted at position 15
        design.access(addr, time=10_000)       # hit -> promote to 14
        column = design.addr_map.bank_index(addr)
        assert design.banks[column][14].probe(3, 9) is not None
        assert design.banks[column][15].probe(3, 9) is None

    def test_repeated_hits_reach_closest_bank(self):
        design = make()
        addr = addr_for(design, 5, set_index=3, tag=9)
        design.access(addr, time=0)
        for i in range(20):
            design.access(addr, time=(i + 1) * 10_000)
        column = design.addr_map.bank_index(addr)
        assert design.banks[column][0].probe(3, 9) is not None

    def test_promotion_swaps_displaced_block(self):
        design = make()
        a = addr_for(design, 2, set_index=1, tag=11)
        b = addr_for(design, 2, set_index=1, tag=12)
        column = design.addr_map.bank_index(a)
        design.install(a)  # head-first: position 0
        design.install(b)  # position 1
        design.access(b, time=0)  # hit at 1 -> swap with a at 0
        assert design.banks[column][0].probe(1, 12) is not None
        assert design.banks[column][1].probe(1, 11) is not None

    def test_promotion_updates_partial_tags(self):
        design = make()
        addr = addr_for(design, 5, set_index=3, tag=9)
        design.access(addr, time=0)
        design.access(addr, time=10_000)
        matches = design.partial_tags[5].matches(3, 9)
        assert 14 in matches and 15 not in matches

    def test_close_hit_does_not_promote(self):
        design = make()
        addr = addr_for(design, 5, set_index=3, tag=9)
        design.install(addr)  # position 0
        design.access(addr, time=0)
        assert design.stats["promotions"] == 0

    def test_promotes_per_insert_metric(self):
        design = make()
        addr = addr_for(design, 5, set_index=3, tag=9)
        design.access(addr, time=0)
        design.access(addr, time=10_000)
        design.access(addr, time=20_000)
        assert design.promotes_per_insert == pytest.approx(2.0)


class TestSearchAndFastMiss:
    def test_fast_miss_at_partial_tag_latency(self):
        design = make()
        outcome = design.access(addr_for(design, 1, tag=5), time=100)
        assert not outcome.hit
        assert outcome.lookup_latency == design.config.partial_tag_latency
        assert outcome.predictable
        assert design.stats["fast_misses"] == 1

    def test_close_hit_is_predictable(self):
        design = make()
        addr = addr_for(design, 8, set_index=2, tag=3)
        design.install(addr)  # position 0
        outcome = design.access(addr, time=0)
        assert outcome.hit and outcome.predictable
        assert design.stats["close_hits"] == 1

    def test_far_hit_found_by_directed_search(self):
        design = make()
        addr = addr_for(design, 4, set_index=6, tag=21)
        design.access(addr, time=0)            # at tail (position 15)
        outcome = design.access(addr, time=10_000)
        assert outcome.hit
        assert not outcome.predictable          # not a close hit
        # closest 2 probed + 1 searched
        assert design.stats["bank_accesses"] == 2 + 2 + 1

    def test_partial_alias_triggers_fruitless_search(self):
        design = make()
        resident = addr_for(design, 4, set_index=6, tag=0x40)
        design.access(resident, time=0)  # tail
        fast_before = design.stats["fast_misses"]
        aliased = addr_for(design, 4, set_index=6, tag=0x80)  # same partial
        outcome = design.access(aliased, time=10_000)
        assert not outcome.hit
        assert design.stats["fast_misses"] == fast_before  # not a fast miss
        # The aliased request had to search the matching bank.
        assert outcome.lookup_latency > design.config.partial_tag_latency

    def test_banks_accessed_at_least_two(self):
        design = make()
        for i in range(6):
            design.access(i * 64, time=i * 1000)
        assert design.banks_accessed_per_request >= 2.0


class TestPartialTagAblation:
    def _make_without_pt(self):
        import dataclasses
        from repro.core.config import DNUCA as CFG
        return DynamicNUCA(
            config=dataclasses.replace(CFG, use_partial_tags=False),
            memory=MainMemory())

    def test_no_fast_misses_without_partial_tags(self):
        design = self._make_without_pt()
        outcome = design.access(addr_for(design, 1, tag=5), time=100)
        assert not outcome.hit
        assert design.stats["fast_misses"] == 0
        assert outcome.lookup_latency > design.config.partial_tag_latency

    def test_miss_searches_every_bank(self):
        design = self._make_without_pt()
        design.access(addr_for(design, 1, tag=5), time=100)
        # 2 closest probes + 14 searched banks.
        assert design.stats["bank_accesses"] == 16

    def test_far_hit_still_found(self):
        design = self._make_without_pt()
        addr = addr_for(design, 4, set_index=6, tag=21)
        design.access(addr, time=0)
        assert design.access(addr, time=50_000).hit


class TestWritePath:
    def test_write_miss_inserts_dirty_at_tail(self):
        design = make()
        addr = addr_for(design, 9, set_index=4, tag=33)
        design.access(addr, time=0, write=True)
        column = design.addr_map.bank_index(addr)
        assert design.banks[column][15].dirty_at(4, 0)
        assert design.memory.stats["reads"] == 0  # full-block writeback

    def test_write_hit_promotes(self):
        design = make()
        addr = addr_for(design, 9, set_index=4, tag=33)
        design.access(addr, time=0)
        design.access(addr, time=10_000, write=True)
        assert design.stats["promotions"] == 1


class TestPolicyVariants:
    def _make(self, **overrides):
        import dataclasses
        from repro.core.config import DNUCA as CFG
        return DynamicNUCA(config=dataclasses.replace(CFG, **overrides),
                           memory=MainMemory())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            self._make(insertion_position="middle")
        with pytest.raises(ValueError):
            self._make(search_mode="psychic")
        with pytest.raises(ValueError):
            self._make(promotion_distance=0)

    def test_head_insertion_places_block_at_position_zero(self):
        design = self._make(insertion_position="head")
        addr = addr_for(design, 3, set_index=7, tag=42)
        design.access(addr, time=0)
        assert design.banks[3][0].probe(7, 42) is not None

    def test_promotion_distance_jumps_multiple_banks(self):
        design = self._make(promotion_distance=4)
        addr = addr_for(design, 5, set_index=3, tag=9)
        design.access(addr, time=0)           # tail: position 15
        design.access(addr, time=10_000)      # hit -> position 11
        assert design.banks[5][11].probe(3, 9) is not None

    def test_promotion_distance_clamps_at_head(self):
        design = self._make(promotion_distance=100)
        addr = addr_for(design, 5, set_index=3, tag=9)
        design.access(addr, time=0)
        design.access(addr, time=10_000)
        assert design.banks[5][0].probe(3, 9) is not None

    def test_incremental_search_finds_far_block(self):
        design = self._make(search_mode="incremental")
        addr = addr_for(design, 4, set_index=6, tag=21)
        design.access(addr, time=0)
        outcome = design.access(addr, time=50_000)
        assert outcome.hit

    def test_incremental_stops_at_first_hit(self):
        """With the holder as the nearest candidate, only one search
        probe is spent (multicast would probe every candidate)."""
        design = self._make(search_mode="incremental")
        # Two partial-aliased blocks; the nearer one is the real target.
        a = addr_for(design, 4, set_index=6, tag=0x40)
        b = addr_for(design, 4, set_index=6, tag=0x80)
        design.install(a)  # position 0... need it beyond the closest two
        design.install(addr_for(design, 4, set_index=6, tag=1))
        design.install(addr_for(design, 4, set_index=6, tag=2))
        design.install(b)  # position 3
        # Search for b: candidates (by partial tag) include a's position
        # only if a sits outside the closest two — position 0 is probed
        # anyway.  Access b and confirm one search probe sufficed.
        before = design.stats["bank_accesses"]
        outcome = design.access(b, time=0)
        assert outcome.hit
        assert design.stats["bank_accesses"] - before == 3  # 2 close + 1


class TestInstall:
    def test_install_fills_head_first(self):
        design = make()
        for tag in range(3):
            design.install(addr_for(design, 0, set_index=0, tag=tag + 1))
        for position, tag in enumerate((1, 2, 3)):
            assert design.banks[0][position].probe(0, tag) is not None

    def test_install_full_set_replaces_tail(self):
        design = make()
        for tag in range(1, 18):
            design.install(addr_for(design, 0, set_index=0, tag=tag))
        assert design.banks[0][15].probe(0, 17) is not None
        assert design._find(0, 0, 16) is None  # displaced


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 7),
                          st.integers(1, 6), st.booleans()),
                max_size=60))
def test_partial_tags_always_consistent_with_banks(ops):
    """Invariant: after any access sequence, the partial-tag array agrees
    exactly with the banks' contents — the paper's synchronization
    requirement."""
    design = make()
    time = 0
    for column, set_index, tag, write in ops:
        design.access(addr_for(design, column, set_index, tag), time, write)
        time += 10_000
    for column in range(design.banksets):
        pta = design.partial_tags[column]
        for set_index in range(8):
            for position in range(design.positions):
                stored = design.banks[column][position].tag_at(set_index, 0)
                entry = pta._entries.get((position, set_index))
                recorded = entry[0] if entry else None
                if stored is None:
                    assert recorded is None
                else:
                    assert recorded == stored & 0x3F

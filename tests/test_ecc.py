"""Tests for the end-to-end SECDED layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.ecc import (
    EccGeometry,
    decode,
    encode,
    secded_check_bits,
)


class TestGeometry:
    @pytest.mark.parametrize("data_bits,check_bits", [
        (8, 5),     # classic (13,8) SECDED
        (64, 8),    # (72,64), the DRAM standard
        (512, 11),  # a full 64-byte block
    ])
    def test_known_code_sizes(self, data_bits, check_bits):
        assert secded_check_bits(data_bits) == check_bits

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            secded_check_bits(0)

    def test_overhead_shrinks_with_width(self):
        assert (EccGeometry(512).overhead_fraction
                < EccGeometry(64).overhead_fraction
                < EccGeometry(8).overhead_fraction)

    def test_block_response_overhead_is_small(self):
        """Protecting a TLC 512-bit response costs ~2 % extra wires."""
        geometry = EccGeometry(512)
        assert geometry.overhead_fraction < 0.025


class TestCodec:
    def test_clean_roundtrip(self):
        code = encode(0xAB, 8)
        data, status = decode(code, 8)
        assert (data, status) == (0xAB, "clean")

    def test_out_of_range_data(self):
        with pytest.raises(ValueError):
            encode(256, 8)

    @pytest.mark.parametrize("bit", range(13))
    def test_every_single_bit_error_corrected(self, bit):
        code = encode(0x5A, 8)
        data, status = decode(code ^ (1 << bit), 8)
        assert status in ("corrected", "clean")
        assert data == 0x5A

    def test_double_bit_error_detected_not_miscorrected(self):
        code = encode(0x5A, 8)
        corrupted = code ^ 0b11  # two adjacent bit flips
        _, status = decode(corrupted, 8)
        assert status == "uncorrectable"

    def test_wide_payload_roundtrip(self):
        payload = int.from_bytes(bytes(range(64)), "little")
        code = encode(payload, 512)
        data, status = decode(code, 512)
        assert (data, status) == (payload, "clean")

    def test_wide_payload_single_error(self):
        payload = (1 << 511) | 0xDEADBEEF
        code = encode(payload, 512)
        data, status = decode(code ^ (1 << 200), 512)
        assert status == "corrected"
        assert data == payload


@settings(max_examples=60, deadline=None)
@given(data=st.integers(min_value=0, max_value=(1 << 32) - 1),
       flip=st.integers(min_value=0, max_value=38))
def test_secded_property_single_faults(data, flip):
    """Any 32-bit payload survives any single-bit line fault."""
    code = encode(data, 32)
    decoded, status = decode(code ^ (1 << flip), 32)
    assert decoded == data
    assert status in ("corrected", "clean")


@settings(max_examples=40, deadline=None)
@given(data=st.integers(min_value=0, max_value=(1 << 16) - 1),
       flips=st.sets(st.integers(min_value=0, max_value=20),
                     min_size=2, max_size=2))
def test_secded_property_double_faults_detected(data, flips):
    """Any two distinct line faults are flagged, never silently wrong."""
    code = encode(data, 16)
    corrupted = code
    for bit in flips:
        corrupted ^= 1 << bit
    decoded, status = decode(corrupted, 16)
    assert status == "uncorrectable" or decoded == data

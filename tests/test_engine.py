"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(30, lambda: order.append("c"))
        engine.schedule(10, lambda: order.append("a"))
        engine.schedule(20, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_fifo_order(self):
        engine = Engine()
        order = []
        for name in "abc":
            engine.schedule(5, lambda n=name: order.append(n))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(42, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42]
        assert engine.now == 42

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        engine = Engine()
        engine.schedule(10, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(5, lambda: None)

    def test_events_can_schedule_events(self):
        engine = Engine()
        log = []

        def chain(n):
            log.append(engine.now)
            if n > 0:
                engine.schedule(10, lambda: chain(n - 1))

        engine.schedule(0, lambda: chain(3))
        engine.run()
        assert log == [0, 10, 20, 30]


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        engine = Engine()
        fired = []
        engine.schedule(10, lambda: fired.append(10))
        engine.schedule(100, lambda: fired.append(100))
        engine.run(until=50)
        assert fired == [10]
        assert engine.now == 50
        assert engine.pending == 1

    def test_run_until_then_resume(self):
        engine = Engine()
        fired = []
        engine.schedule(100, lambda: fired.append(100))
        engine.run(until=50)
        engine.run()
        assert fired == [100]

    def test_run_until_advances_clock_when_idle(self):
        engine = Engine()
        engine.run(until=500)
        assert engine.now == 500


class TestStepAndAdvance:
    def test_step_runs_single_event(self):
        engine = Engine()
        fired = []
        engine.schedule(1, lambda: fired.append(1))
        engine.schedule(2, lambda: fired.append(2))
        assert engine.step()
        assert fired == [1]

    def test_step_on_empty_queue(self):
        assert Engine().step() is False

    def test_advance_moves_clock(self):
        engine = Engine()
        engine.advance(25)
        assert engine.now == 25

    def test_advance_cannot_skip_events(self):
        engine = Engine()
        engine.schedule(10, lambda: None)
        with pytest.raises(RuntimeError):
            engine.advance(20)

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            Engine().advance(-5)

"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(30, lambda: order.append("c"))
        engine.schedule(10, lambda: order.append("a"))
        engine.schedule(20, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_fifo_order(self):
        engine = Engine()
        order = []
        for name in "abc":
            engine.schedule(5, lambda n=name: order.append(n))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(42, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42]
        assert engine.now == 42

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        engine = Engine()
        engine.schedule(10, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(5, lambda: None)

    def test_events_can_schedule_events(self):
        engine = Engine()
        log = []

        def chain(n):
            log.append(engine.now)
            if n > 0:
                engine.schedule(10, lambda: chain(n - 1))

        engine.schedule(0, lambda: chain(3))
        engine.run()
        assert log == [0, 10, 20, 30]


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        engine = Engine()
        fired = []
        engine.schedule(10, lambda: fired.append(10))
        engine.schedule(100, lambda: fired.append(100))
        engine.run(until=50)
        assert fired == [10]
        assert engine.now == 50
        assert engine.pending == 1

    def test_run_until_then_resume(self):
        engine = Engine()
        fired = []
        engine.schedule(100, lambda: fired.append(100))
        engine.run(until=50)
        engine.run()
        assert fired == [100]

    def test_run_until_advances_clock_when_idle(self):
        engine = Engine()
        engine.run(until=500)
        assert engine.now == 500


class TestSameCycleOrdering:
    """The batched fast path must preserve exact (time, seq) order."""

    def test_same_cycle_events_scheduled_during_dispatch_run_after(self):
        engine = Engine()
        order = []

        def first():
            order.append("first")
            engine.schedule_at(engine.now, lambda: order.append("late"))

        engine.schedule(5, first)
        engine.schedule(5, lambda: order.append("second"))
        engine.run()
        assert order == ["first", "second", "late"]

    def test_zero_delay_during_run_interleaves_by_schedule_order(self):
        engine = Engine()
        order = []

        def outer():
            engine.schedule(0, lambda: order.append("imm1"))
            engine.schedule_at(engine.now, lambda: order.append("heap"))
            engine.schedule(0, lambda: order.append("imm2"))

        engine.schedule(3, outer)
        engine.run()
        assert order == ["imm1", "heap", "imm2"]

    def test_zero_delay_chains_run_at_the_same_cycle(self):
        engine = Engine()
        times = []

        def chain(n):
            times.append(engine.now)
            if n > 0:
                engine.schedule(0, lambda: chain(n - 1))

        engine.schedule(7, lambda: chain(3))
        engine.run()
        assert times == [7, 7, 7, 7]
        assert engine.now == 7

    def test_zero_delay_outside_run_behaves_like_schedule_at_now(self):
        engine = Engine()
        order = []
        engine.schedule(0, lambda: order.append("a"))
        engine.schedule(0, lambda: order.append("b"))
        assert engine.pending == 2
        engine.run()
        assert order == ["a", "b"]

    def test_zero_delay_can_schedule_future_events(self):
        engine = Engine()
        log = []

        def now_then_later():
            engine.schedule(0, lambda: engine.schedule(
                10, lambda: log.append(engine.now)))

        engine.schedule(1, now_then_later)
        engine.run()
        assert log == [11]


class TestReset:
    def test_reset_clears_clock_queue_and_sequence(self):
        engine = Engine()
        engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        engine.run(until=15)
        assert engine.now == 15
        assert engine.pending == 1
        engine.reset()
        assert engine.now == 0
        assert engine.pending == 0
        assert engine._seq == 0

    def test_reset_engine_matches_fresh_engine(self):
        def exercise(engine):
            order = []
            engine.schedule(5, lambda: order.append((engine.now, "a")))
            engine.schedule(5, lambda: order.append((engine.now, "b")))
            engine.schedule(1, lambda: order.append((engine.now, "c")))
            engine.run()
            return order, engine.now

        reused = Engine()
        exercise(reused)
        reused.reset()
        assert exercise(reused) == exercise(Engine())

    def test_reset_allows_scheduling_at_early_times_again(self):
        engine = Engine()
        engine.schedule(100, lambda: None)
        engine.run()
        engine.reset()
        fired = []
        engine.schedule_at(5, lambda: fired.append(5))
        engine.run()
        assert fired == [5]


class TestResetWithSanitizer:
    """Engine.reset() must rewind an attached sanitizer's per-run
    progress counters (``on_engine_reset``); before the hook existed, a
    reused sanitized engine accumulated same-cycle counts across runs
    and tripped a false ``engine.livelock``."""

    @staticmethod
    def _sanitized_engine(max_same_cycle):
        from repro.sanitizer import Sanitizer, SanitizerConfig

        engine = Engine()
        sanitizer = Sanitizer(SanitizerConfig(
            max_same_cycle_events=max_same_cycle))
        sanitizer.attach_engine(engine)
        return engine

    @staticmethod
    def _burst(engine, events):
        # Events at time 0 dispatch with event_time == now from the
        # first one on, so every dispatch counts as same-cycle.
        for _ in range(events):
            engine.schedule_at(0, lambda: None)
        engine.run()

    def test_reset_rewinds_same_cycle_counter(self):
        engine = self._sanitized_engine(max_same_cycle=10)
        for _ in range(5):  # 8 same-cycle events per run, reset between
            self._burst(engine, 8)
            engine.reset()

    def test_without_reset_counter_accumulates(self):
        from repro.sanitizer import SanitizerViolation

        engine = self._sanitized_engine(max_same_cycle=10)
        self._burst(engine, 8)
        with pytest.raises(SanitizerViolation, match="livelock"):
            self._burst(engine, 8)

    def test_reset_engine_matches_fresh_engine_when_sanitized(self):
        def exercise(engine):
            order = []
            engine.schedule(5, lambda: order.append((engine.now, "a")))
            engine.schedule(5, lambda: order.append((engine.now, "b")))
            engine.run()
            return order, engine.now

        reused = self._sanitized_engine(max_same_cycle=100)
        exercise(reused)
        reused.reset()
        assert exercise(reused) == exercise(
            self._sanitized_engine(max_same_cycle=100))

    def test_reset_without_sanitizer_is_unaffected(self):
        engine = Engine()
        engine.schedule(10, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0 and engine.pending == 0


class TestEngineIndependentOfReplayBackend:
    """The replay backends (``repro.sim.backend``) never touch the
    event engine: backend selection must leave engine-based simulations
    (full-system mode) byte-identical."""

    def test_backend_module_has_no_engine_coupling(self):
        import repro.sim.backend as backend_module

        assert "Engine" not in vars(backend_module)
        assert "engine" not in vars(backend_module)

    def test_full_system_is_reference_only(self):
        from repro.core.config import ConfigError
        from repro.sim.full_system import FullSystem

        assert FullSystem("TLC").backend == "reference"
        with pytest.raises(ConfigError):
            FullSystem("TLC", backend="batched")


class TestStepAndAdvance:
    def test_step_runs_single_event(self):
        engine = Engine()
        fired = []
        engine.schedule(1, lambda: fired.append(1))
        engine.schedule(2, lambda: fired.append(2))
        assert engine.step()
        assert fired == [1]

    def test_step_on_empty_queue(self):
        assert Engine().step() is False

    def test_advance_moves_clock(self):
        engine = Engine()
        engine.advance(25)
        assert engine.now == 25

    def test_advance_cannot_skip_events(self):
        engine = Engine()
        engine.schedule(10, lambda: None)
        with pytest.raises(RuntimeError):
            engine.advance(20)

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            Engine().advance(-5)


class TestScheduleHardening:
    """schedule/schedule_at validate their arguments before mutating
    any engine state, so a rejected call leaves the engine clean."""

    def test_non_callable_callback_rejected(self):
        engine = Engine()
        with pytest.raises(TypeError, match="callable"):
            engine.schedule(1, "not-a-callback")
        with pytest.raises(TypeError, match="callable"):
            engine.schedule_at(1, None)

    def test_float_delay_rejected(self):
        engine = Engine()
        with pytest.raises(TypeError):
            engine.schedule(1.5, lambda: None)
        with pytest.raises(TypeError):
            engine.schedule_at(1.5, lambda: None)

    def test_nan_delay_rejected(self):
        # NaN compares False against every bound, so without the
        # integer coercion it would slip past range checks and poison
        # the heap ordering.
        engine = Engine()
        with pytest.raises(TypeError):
            engine.schedule(float("nan"), lambda: None)

    def test_bool_delay_is_integral(self):
        # bools are ints; operator.index accepts them (delay=True == 1).
        engine = Engine()
        engine.schedule(True, lambda: None)
        engine.run()
        assert engine.now == 1

    def test_negative_schedule_at_rejected(self):
        engine = Engine()
        engine.advance(10)
        with pytest.raises(ValueError):
            engine.schedule_at(9, lambda: None)

    def test_rejected_schedule_leaves_state_clean(self):
        engine = Engine()
        for bad in (lambda: engine.schedule(-1, lambda: None),
                    lambda: engine.schedule(1, "nope"),
                    lambda: engine.schedule(2.5, lambda: None)):
            with pytest.raises((TypeError, ValueError)):
                bad()
        # A clean engine after rejections behaves exactly like fresh.
        order = []
        engine.schedule(3, lambda: order.append(engine.now))
        engine.run()
        assert order == [3]
        assert engine.pending == 0

"""Tests for the design-space exploration subsystem (repro.explore).

The load-bearing property throughout is the determinism contract: same
space document + driver + seed + budget => byte-identical trajectory
and leaderboard, with a warm result cache answering a repeated search
with zero simulated cells (the CI explore smoke job asserts the same
thing end to end through the CLI).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import ConfigError, DesignConfig, design_names
from repro.explore import (
    DRIVER_NAMES,
    MAX_VARIANTS,
    build_search_manifest,
    expand,
    leaderboard_artifact,
    leaderboard_dataset,
    render_leaderboard,
    run_search,
    validate_space_spec,
)

SPACE_DOC = {
    "name": "t",
    "base": "SNUCA2",
    "axes": [
        {"field": "bank_access_cycles", "values": [2, 3, 4]},
        {"field": "mesh_hop_latency", "values": [1, 2]},
    ],
    "benchmarks": ["gcc"],
    "n_refs": 800,
    "seed": 5,
}


@pytest.fixture(scope="module")
def spec():
    return validate_space_spec(SPACE_DOC)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One result cache shared by every search in this module —
    identical cells are simulated once across the whole file."""
    return str(tmp_path_factory.mktemp("explore-cache"))


class TestSpaceValidation:
    def test_minimal_document_gets_defaults(self):
        spec = validate_space_spec(
            {"name": "x", "base": "snuca2",
             "axes": [{"field": "banks", "values": [32]}]})
        assert spec.base == "SNUCA2"          # resolved spelling
        assert spec.baseline == "SNUCA2"      # defaults to base
        assert spec.references == ("SNUCA2",)
        assert spec.n_refs == 20_000 and spec.seed == 7
        assert spec.backend == "reference" and spec.on_invalid == "raise"
        assert len(spec.benchmarks) == 12     # full suite by default

    def test_round_trips_through_as_dict(self, spec):
        assert validate_space_spec(spec.as_dict()) == spec

    def test_scalar_and_object_axis_spellings_are_equivalent(self):
        scalar = validate_space_spec(
            {"name": "x", "base": "SNUCA2",
             "axes": [{"field": "banks", "values": [16, 32]}]})
        objects = validate_space_spec(
            {"name": "x", "base": "SNUCA2",
             "axes": [{"values": [{"banks": 16}, {"banks": 32}]}]})
        assert scalar.axes == objects.axes

    def test_baseline_always_leads_references(self):
        spec = validate_space_spec(
            {"name": "x", "base": "TLC", "baseline": "SNUCA2",
             "references": ["DNUCA", "TLC"],
             "axes": [{"field": "banks", "values": [32]}]})
        assert spec.references == ("SNUCA2", "DNUCA", "TLC")

    @pytest.mark.parametrize("mutation, match", [
        ({"name": ""}, "name"),
        ({"name": "-leading"}, "name"),
        ({"base": "nope"}, "unknown design"),
        ({"baseline": 7}, "baseline"),
        ({"axes": []}, "axes"),
        ({"axes": [{"field": "bogus", "values": [1]}]}, "unknown"),
        ({"axes": [{"field": "backend", "values": ["batched"]}]},
         "cannot be an axis"),
        ({"axes": [{"field": "name", "values": ["x"]}]}, "cannot be an axis"),
        ({"axes": [{"values": [1, 2]}]}, "need the axis 'field'"),
        ({"axes": [{"field": "banks", "values": [1, 1]}]}, "duplicates"),
        ({"axes": [{"field": "banks", "values": [1]},
                   {"field": "banks", "values": [2]}]}, "more than one axis"),
        ({"benchmarks": ["gcc", "nope"]}, "unknown benchmark"),
        ({"benchmarks": ["gcc", "gcc"]}, "duplicate"),
        ({"n_refs": 0}, "n_refs"),
        ({"n_refs": True}, "n_refs"),
        ({"seed": -1}, "seed"),
        ({"warmup_fraction": 1.0}, "warmup_fraction"),
        ({"backend": "gpu"}, "backend"),
        ({"on_invalid": "ignore"}, "on_invalid"),
        ({"extra": 1}, "unknown field"),
    ])
    def test_bad_documents_raise_config_error(self, mutation, match):
        doc = {**SPACE_DOC, **mutation}
        with pytest.raises(ConfigError, match=match):
            validate_space_spec(doc)

    def test_non_object_payloads_raise_config_error(self):
        for payload in (None, 3, "spec", ["axes"]):
            with pytest.raises(ConfigError):
                validate_space_spec(payload)

    def test_oversized_product_is_rejected(self):
        doc = {"name": "big", "base": "SNUCA2",
               "axes": [{"field": "bank_access_cycles",
                         "values": list(range(1, 33))},
                        {"field": "mesh_hop_latency",
                         "values": list(range(1, 33))}]}
        with pytest.raises(ConfigError, match="cap"):
            validate_space_spec(doc)


class TestExpansion:
    def test_names_follow_product_order(self, spec):
        variants = expand(spec).variants
        assert [v.name for v in variants] == [f"t-{i:04d}" for i in range(6)]
        # Last axis varies fastest, like itertools.product.
        assert dict(variants[0].overrides) == {"bank_access_cycles": 2,
                                               "mesh_hop_latency": 1}
        assert dict(variants[1].overrides) == {"bank_access_cycles": 2,
                                               "mesh_hop_latency": 2}

    def test_every_variant_builds_a_named_config(self, spec):
        for variant in expand(spec).variants:
            config = variant.config()
            assert isinstance(config, DesignConfig)
            assert config.name == variant.name

    def test_on_invalid_skip_keeps_stable_numbering(self):
        doc = {"name": "s", "base": "SNUCA2", "on_invalid": "skip",
               "benchmarks": ["gcc"],
               "axes": [{"field": "bank_access_cycles", "values": [2, 0, 3]}]}
        expansion = expand(validate_space_spec(doc))
        # The invalid middle combination keeps its index; survivors
        # keep theirs.
        assert [v.name for v in expansion.variants] == ["s-0000", "s-0002"]
        assert [name for name, _ in expansion.skipped] == ["s-0001"]

    def test_on_invalid_raise_names_the_combination(self):
        doc = {"name": "r", "base": "SNUCA2", "benchmarks": ["gcc"],
               "axes": [{"field": "bank_access_cycles", "values": [2, 0]}]}
        with pytest.raises(ConfigError, match="combination 1"):
            expand(validate_space_spec(doc))

    def test_all_invalid_space_is_an_error_even_when_skipping(self):
        doc = {"name": "z", "base": "SNUCA2", "on_invalid": "skip",
               "benchmarks": ["gcc"],
               "axes": [{"field": "bank_access_cycles", "values": [0, -1]}]}
        with pytest.raises(ConfigError, match="every combination"):
            expand(validate_space_spec(doc))


_json_scalars = st.none() | st.booleans() | st.integers() | st.floats(
    allow_nan=False) | st.text(max_size=20)
_json_values = st.recursive(
    _json_scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=10)
_axislike = st.fixed_dictionaries(
    {},
    optional={
        "field": st.sampled_from(
            ["banks", "bank_access_cycles", "backend", "name", "bogus"])
        | _json_values,
        "values": st.lists(
            _json_scalars
            | st.dictionaries(st.sampled_from(
                ["banks", "mesh_hop_latency", "bogus"]),
                _json_scalars, max_size=2),
            max_size=3) | _json_values,
        "extra": _json_values,
    })
_spacelike = st.fixed_dictionaries(
    {},
    optional={
        "name": st.sampled_from(["ok", "no spaces", "-bad", ""])
        | _json_values,
        "base": st.sampled_from(["SNUCA2", "tlc", "bogus"]) | _json_values,
        "baseline": st.sampled_from(["SNUCA2", "bogus"]) | _json_values,
        "references": st.lists(st.sampled_from(["SNUCA2", "DNUCA", "bogus"]),
                               max_size=3) | _json_values,
        "axes": st.lists(_axislike, max_size=3) | _json_values,
        "benchmarks": st.lists(st.sampled_from(["gcc", "mcf", "bogus"]),
                               max_size=3) | _json_values,
        "n_refs": st.integers(-5, 10**7) | _json_values,
        "seed": st.integers(-2, 2**33) | _json_values,
        "warmup_fraction": st.floats(allow_nan=True, allow_infinity=True)
        | _json_values,
        "backend": st.sampled_from(["reference", "batched", "gpu"])
        | _json_values,
        "sanitize": st.booleans() | _json_values,
        "on_invalid": st.sampled_from(["raise", "skip", "ignore"])
        | _json_values,
        "extra": _json_values,
    })

#: Pools mixing valid and invalid values per field, for generating
#: structurally valid spaces whose combinations may still be
#: unbuildable — exactly what on_invalid handles.
_AXIS_POOLS = {
    "bank_access_cycles": [1, 2, 3, 0, -2],
    "mesh_hop_latency": [1, 2, 5, 0],
    "promotion_distance": [0, 1, 2, -1],
}


@st.composite
def _structured_spaces(draw):
    fields = draw(st.lists(st.sampled_from(sorted(_AXIS_POOLS)),
                           min_size=1, max_size=3, unique=True))
    axes = [{"field": field,
             "values": draw(st.lists(st.sampled_from(_AXIS_POOLS[field]),
                                     min_size=1, max_size=3, unique=True))}
            for field in fields]
    return {"name": "fz", "base": draw(st.sampled_from(sorted(design_names()))),
            "axes": axes, "benchmarks": ["gcc"], "n_refs": 600,
            "on_invalid": "skip"}


class TestSpaceSpecFuzz:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(payload=_spacelike | _json_values)
    def test_validator_accepts_or_raises_config_error_only(self, payload):
        try:
            spec = validate_space_spec(payload)
        except ConfigError:
            return
        # Whatever survives validation is a well-formed, bounded space.
        assert spec.axes and spec.benchmarks
        assert 1 <= spec.n_refs
        assert 0.0 <= spec.warmup_fraction < 1.0
        assert spec.references[0] == spec.baseline
        assert 1 <= spec.size <= MAX_VARIANTS

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(doc=_structured_spaces())
    def test_every_expanded_variant_passes_design_validation(self, doc):
        spec = validate_space_spec(doc)
        try:
            expansion = expand(spec)
        except ConfigError:
            return  # every combination unbuildable — a typed refusal
        for variant in expansion.variants:
            config = variant.config()  # __post_init__ re-runs here
            assert isinstance(config, DesignConfig)
            assert config.name == variant.name


class TestDrivers:
    def test_grid_clips_to_budget_in_expansion_order(self, spec, cache_dir):
        result = run_search(spec, driver="grid", seed=9, budget=2,
                            cache=cache_dir)
        assert result.rounds[0]["designs"] == ["SNUCA2", "t-0000", "t-0001"]
        assert len(result.ranking) == 2

    def test_random_same_seed_same_trajectory(self, spec, cache_dir):
        first = run_search(spec, driver="random", seed=11, budget=4,
                           cache=cache_dir)
        second = run_search(spec, driver="random", seed=11, budget=4,
                            cache=cache_dir)
        assert first.trajectory() == second.trajectory()
        # The whole point of routing through run_grid: a repeated
        # search is answered entirely by the result cache.
        assert second.cells_simulated == 0
        assert second.cells_from_cache == 5  # (1 reference + 4 variants) x 1 benchmark
        assert first.trajectory() == json.loads(
            json.dumps(first.trajectory()))  # JSON-clean document

    def test_random_different_seeds_pick_different_cohorts(self, spec,
                                                           cache_dir):
        one = run_search(spec, driver="random", seed=0, budget=3,
                         cache=cache_dir)
        two = run_search(spec, driver="random", seed=1, budget=3,
                         cache=cache_dir)
        assert (one.rounds[0]["designs"] != two.rounds[0]["designs"]
                or one.trajectory() == two.trajectory())

    def test_halving_doubles_fidelity_and_halves_survivors(self, spec,
                                                           cache_dir):
        result = run_search(spec, driver="halving", seed=3, budget=4,
                            cache=cache_dir)
        refs = [r["n_refs"] for r in result.rounds]
        assert refs == sorted(refs) and refs[-1] == spec.n_refs
        sizes = [len(r["scores"]) for r in result.rounds]
        assert sizes[0] == 4 and sizes[-1] == 2
        # Every evaluated variant appears exactly once in the ranking,
        # full-fidelity survivors first.
        names = [entry["variant"] for entry in result.ranking]
        assert sorted(names) == sorted(
            result.rounds[0]["designs"][len(spec.references):])
        finals = [entry["final"] for entry in result.ranking]
        assert finals == sorted(finals, reverse=True)
        assert all(entry["n_refs"] == spec.n_refs
                   for entry in result.ranking if entry["final"])

    def test_ranking_is_sorted_best_first(self, spec, cache_dir):
        result = run_search(spec, driver="grid", seed=0, budget=6,
                            cache=cache_dir)
        scores = [entry["score"] for entry in result.ranking]
        assert scores == sorted(scores)
        assert [entry["rank"] for entry in result.ranking] == list(
            range(1, 7))

    def test_typed_errors_for_bad_arguments(self, spec):
        with pytest.raises(ConfigError, match="driver"):
            run_search(spec, driver="anneal")
        with pytest.raises(ConfigError, match="budget"):
            run_search(spec, budget=0)
        with pytest.raises(ConfigError, match="seed"):
            run_search(spec, seed=-1)

    def test_metrics_registry_receives_explore_counters(self, spec,
                                                        cache_dir):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        run_search(spec, driver="grid", seed=0, budget=2, cache=cache_dir,
                   registry=registry)
        snapshot = registry.snapshot()
        assert snapshot["explore.variants_total"] == 6
        assert snapshot["explore.variants_evaluated"] == 2
        assert snapshot["explore.rounds"] == 1
        # 1 reference + 2 variants, on the spec's single benchmark.
        assert (snapshot["explore.cells_simulated"]
                + snapshot["explore.cells_from_cache"]) == 3

    def test_search_manifest_kind_and_config(self, spec, cache_dir):
        result = run_search(spec, driver="random", seed=11, budget=4,
                            cache=cache_dir)
        manifest = build_search_manifest(result, wall_time_s=1.5, top_k=2)
        assert manifest.kind == "explore.search"
        assert manifest.config["driver"] == "random"
        assert manifest.config["spec"] == spec.as_dict()
        assert len(manifest.result["ranking"]) == 2
        assert manifest.result["variants_total"] == 6


class TestLeaderboard:
    @pytest.fixture(scope="class")
    def result(self, spec, cache_dir):
        return run_search(spec, driver="random", seed=11, budget=4,
                          cache=cache_dir)

    def test_dataset_rows_lead_with_references(self, spec, result):
        dataset = leaderboard_dataset(result, top_k=3)
        assert dataset["rows"][0]["design"] == spec.baseline
        assert dataset["rows"][0]["score"] == 1.0  # self-normalized
        roles = [row["role"] for row in dataset["rows"]]
        assert roles == ["reference"] + ["variant"] * 3
        variant_scores = [row["score"] for row in dataset["rows"][1:]]
        assert variant_scores == sorted(variant_scores)

    def test_rendered_leaderboard_is_pure(self, result):
        dataset = leaderboard_dataset(result, top_k=2)
        assert render_leaderboard(dataset) == render_leaderboard(dataset)
        assert "SNUCA2" in render_leaderboard(dataset)

    def test_artifact_round_trips_through_the_lane(self, result, tmp_path):
        from repro.analysis.derived import as_lane

        lane = as_lane(tmp_path / "derived")
        cold = leaderboard_artifact(result, lane, top_k=3)
        warm = leaderboard_artifact(result, lane, top_k=3)
        assert warm == cold
        assert lane.cache.hits == 1 and lane.cache.stores == 1
        # JSON round trip (what the lane persists) is lossless.
        assert json.loads(json.dumps(cold)) == cold


class TestExploreCLI:
    def _write_space(self, tmp_path):
        doc = {**SPACE_DOC, "n_refs": 500}
        path = tmp_path / "space.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_repeated_search_is_byte_identical_with_zero_cells(
            self, tmp_path, capsys):
        from repro.cli import main

        space = self._write_space(tmp_path)
        argv = ["explore", "--space", space, "--driver", "random",
                "--seed", "11", "--budget", "3", "--top-k", "2",
                "--cache-dir", str(tmp_path / "cache")]
        first_out = str(tmp_path / "lb1.txt")
        second_out = str(tmp_path / "lb2.txt")
        assert main(argv + ["--out", first_out,
                            "--trajectory-out",
                            str(tmp_path / "t1.json")]) == 0
        capsys.readouterr()
        assert main(argv + ["--out", second_out,
                            "--trajectory-out",
                            str(tmp_path / "t2.json")]) == 0
        output = capsys.readouterr().out
        assert "explore: 0 cell(s) simulated" in output
        first = (tmp_path / "lb1.txt").read_bytes()
        assert first == (tmp_path / "lb2.txt").read_bytes()
        assert (tmp_path / "t1.json").read_bytes() == (
            tmp_path / "t2.json").read_bytes()

    def test_manifest_is_written_and_typed(self, tmp_path, capsys):
        from repro.cli import main

        space = self._write_space(tmp_path)
        manifest_path = tmp_path / "manifest.json"
        assert main(["explore", "--space", space, "--driver", "grid",
                     "--budget", "2", "--cache-dir",
                     str(tmp_path / "cache"),
                     "--metrics-out", str(manifest_path)]) == 0
        manifest = json.loads(manifest_path.read_text())
        assert manifest["kind"] == "explore.search"
        assert manifest["metrics"]["explore.variants_evaluated"] == 2
        assert manifest["result"]["rounds"] == 1

    def test_invalid_space_file_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "base": "bogus",
                                   "axes": []}), encoding="utf-8")
        assert main(["explore", "--space", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["explore", "--space", str(tmp_path / "nope.json")]) == 2
        not_json = tmp_path / "notjson.json"
        not_json.write_text("{", encoding="utf-8")
        assert main(["explore", "--space", str(not_json)]) == 2


class TestDriverNamesExport:
    def test_cli_choices_match_the_registry(self):
        assert set(DRIVER_NAMES) == {"grid", "random", "halving"}

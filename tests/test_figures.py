"""Tests for the ASCII figure rendering."""

import pytest

from repro.analysis.figures import (
    grouped_bar_chart,
    horizontal_bar,
    latency_histogram_sparkline,
)
from repro.sim.stats import Histogram


class TestHorizontalBar:
    def test_full_scale(self):
        assert horizontal_bar(10, 10, width=8) == "########"

    def test_half_scale(self):
        assert horizontal_bar(5, 10, width=8) == "####"

    def test_clamped_at_width(self):
        assert horizontal_bar(50, 10, width=8) == "########"

    def test_zero_scale(self):
        assert horizontal_bar(5, 0, width=8) == ""

    def test_custom_glyph(self):
        assert horizontal_bar(10, 10, width=3, glyph="*") == "***"


class TestGroupedBarChart:
    def _series(self):
        return {
            "DNUCA": {"gcc": 0.84, "mcf": 0.96},
            "TLC": {"gcc": 0.75, "mcf": 0.66},
        }

    def test_contains_all_labels_and_values(self):
        chart = grouped_bar_chart(self._series(), ["gcc", "mcf"],
                                  title="Fig")
        assert "Fig" in chart
        for token in ("DNUCA", "TLC", "gcc", "mcf", "0.84", "0.66"):
            assert token in chart

    def test_legend_lists_series(self):
        chart = grouped_bar_chart(self._series(), ["gcc"])
        assert "legend:" in chart
        assert "#=DNUCA" in chart and "*=TLC" in chart

    def test_longer_bar_for_larger_value(self):
        chart = grouped_bar_chart(self._series(), ["mcf"], width=30)
        dnuca_line = next(l for l in chart.splitlines() if "DNUCA" in l)
        tlc_line = next(l for l in chart.splitlines() if "TLC" in l)
        assert dnuca_line.count("#") > tlc_line.count("*") * 0.9

    def test_reference_line_marker(self):
        series = {"X": {"a": 0.5}}
        chart = grouped_bar_chart(series, ["a"], width=20, scale=2.0,
                                  reference_line=1.5)
        assert "|" in chart

    def test_missing_category_renders_zero(self):
        chart = grouped_bar_chart({"X": {}}, ["a"])
        assert "0.00" in chart

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="at least one series"):
            grouped_bar_chart({}, ["a"])

    def test_empty_categories_rejected(self):
        """Regression: used to escape as a bare ``max() arg is an empty
        sequence`` from the label-width computation."""
        with pytest.raises(ValueError, match="at least one category"):
            grouped_bar_chart({"TLC": {"gcc": 1.0}}, [])


class TestSparkline:
    def test_empty_histogram(self):
        assert "(empty histogram)" in latency_histogram_sparkline(Histogram())

    def test_shows_range_and_mean(self):
        h = Histogram()
        for v in (10, 10, 10, 16):
            h.record(v)
        text = latency_histogram_sparkline(h, title="TLC")
        assert "TLC" in text
        assert "10" in text and "16" in text
        assert "mean=11.5" in text

    def test_peak_bucket_darkest(self):
        h = Histogram()
        h.record(0, 100)
        h.record(50, 1)
        text = latency_histogram_sparkline(h, width=10)
        strip = text.split("] ")[1].split(" [")[0]
        assert strip[0] == "@"  # peak shade at the concentrated bucket

    def test_unsorted_mapping_matches_histogram(self):
        """Regression: low/high came from the first/last of ``items()``
        unsorted, so an insertion-ordered mapping (a manifest's bins, a
        hand-built dict) crashed on a negative bucket index or rendered
        a garbage range."""
        from types import SimpleNamespace

        h = Histogram()
        for value, count in ((10, 3), (40, 1), (25, 2)):
            h.record(value, count)
        unsorted = SimpleNamespace(
            items=lambda: [(40, 1), (10, 3), (25, 2)], mean=h.mean)
        rendered = latency_histogram_sparkline(unsorted, width=12)
        assert rendered == latency_histogram_sparkline(h, width=12)
        assert "[  10 cycles]" in rendered and "[40 cycles]" in rendered

"""Tests for the full-system (L1 + L2) mode and CPU-level traces."""

import pytest

from repro.sim.full_system import FullSystem
from repro.workloads.cpu_level import CpuLevelSpec, generate_cpu_trace
from repro.workloads.synthetic import TraceSpec
from repro.workloads.trace import Reference


def cpu_spec(**kwargs):
    defaults = dict(
        l2_spec=TraceSpec(mean_gap=10.0, hot_blocks=5_000,
                          stream_fraction=0.2),
        near_fraction=0.75,
    )
    defaults.update(kwargs)
    return CpuLevelSpec(**defaults)


class TestCpuLevelSpec:
    def test_validation(self):
        base = TraceSpec(mean_gap=10.0)
        with pytest.raises(ValueError):
            CpuLevelSpec(base, near_fraction=1.0)
        with pytest.raises(ValueError):
            CpuLevelSpec(base, near_bytes=100)
        with pytest.raises(ValueError):
            CpuLevelSpec(base, spatial_run=0)
        with pytest.raises(ValueError):
            CpuLevelSpec(base, mean_gap=0.5)


class TestCpuTraceGeneration:
    def test_deterministic(self):
        spec = cpu_spec()
        assert (generate_cpu_trace(spec, 500, seed=1)
                == generate_cpu_trace(spec, 500, seed=1))

    def test_length(self):
        assert len(generate_cpu_trace(cpu_spec(), 321, seed=0)) == 321

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            generate_cpu_trace(cpu_spec(), 0)

    def test_near_set_fits_configured_bytes(self):
        spec = cpu_spec(near_fraction=0.9, near_bytes=4 * 1024)
        trace = generate_cpu_trace(spec, 3_000, seed=2)
        near = [r for r in trace if r.addr >= (1 << 41) * 64]
        blocks = {r.addr // 64 for r in near}
        assert len(blocks) <= 4 * 1024 // 64
        assert len(near) / len(trace) == pytest.approx(0.9, abs=0.03)

    def test_spatial_runs_stay_in_one_block(self):
        spec = cpu_spec(near_fraction=0.0, spatial_run=4)
        trace = generate_cpu_trace(spec, 400, seed=3)
        for i in range(0, 400 - 4, 4):
            blocks = {trace[j].addr // 64 for j in range(i, i + 4)}
            assert len(blocks) == 1


class TestFullSystem:
    def test_l1_absorbs_near_set(self):
        spec = cpu_spec(near_fraction=0.85)
        trace = generate_cpu_trace(spec, 8_000, seed=5)
        system = FullSystem("TLC")
        result = system.run(trace)
        assert result.l1_miss_rate < 0.35
        assert result.l1_hits + result.l1_misses == 8_000

    def test_l2_sees_only_l1_misses_plus_writebacks(self):
        spec = cpu_spec()
        trace = generate_cpu_trace(spec, 5_000, seed=6)
        system = FullSystem("TLC")
        result = system.run(trace)
        assert result.l2_requests == result.l1_misses + result.l1_writebacks

    def test_writebacks_reach_l2_as_writes(self):
        spec = cpu_spec(near_fraction=0.0,
                        l2_spec=TraceSpec(mean_gap=5.0, hot_blocks=50_000,
                                          write_fraction=0.6))
        trace = generate_cpu_trace(spec, 10_000, seed=7)
        system = FullSystem("SNUCA2")
        result = system.run(trace)
        assert result.l1_writebacks > 0
        assert system.l2.stats["writes"] >= result.l1_writebacks

    def test_runs_on_every_design(self):
        spec = cpu_spec()
        trace = generate_cpu_trace(spec, 1_500, seed=8)
        for design in ("TLC", "TLCopt500", "SNUCA2", "DNUCA"):
            result = FullSystem(design).run(trace)
            assert result.cycles > 0

    def test_faster_l2_gives_better_ipc(self):
        spec = cpu_spec(near_fraction=0.5,
                        l2_spec=TraceSpec(mean_gap=6.0, hot_blocks=100_000,
                                          dependent_fraction=0.6))
        trace = generate_cpu_trace(spec, 12_000, seed=9)
        tlc = FullSystem("TLC").run(trace)
        snuca = FullSystem("SNUCA2").run(trace)
        assert tlc.ipc > snuca.ipc

    def test_pure_l1_resident_trace_never_touches_l2(self):
        trace = [Reference(4, 0x1000, False, False)] * 100
        system = FullSystem("TLC")
        result = system.run(trace)
        assert result.l1_misses == 1  # the compulsory first touch
        assert result.l2_requests == 1

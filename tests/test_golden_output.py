"""Golden-file regression tests for rendered analysis output.

``analysis/tables.py`` and ``analysis/report.py`` produce the text
humans (and CI artifact diffs) read; an accidental formatting change —
a shifted column, a dropped header, a float rendered differently —
should fail loudly here and be accepted *deliberately* by regenerating
the checked-in expectations:

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_output.py

The grids feeding ``build_report`` are hand-built from synthetic
:class:`SystemResult` cells (no simulation), so these tests pin the
*rendering* only: simulator-number changes never touch them, renderer
changes always do.
"""

import os
from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentGrid, MAIN_DESIGNS, TLC_FAMILY
from repro.analysis.figures import grouped_bar_chart
from repro.analysis.report import build_report
from repro.analysis.tables import format_table
from repro.sim.system import SystemResult

GOLDEN_DIR = Path(__file__).parent / "golden"

BENCHMARKS = ("gcc", "mcf")


def compare_golden(name: str, rendered: str) -> None:
    """Assert ``rendered`` matches the checked-in expectation.

    Set ``REPRO_UPDATE_GOLDEN=1`` to (re)write the expectation instead —
    the paired diff in review is the deliberate sign-off the golden
    files exist for.
    """
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        pytest.skip(f"golden file {name} regenerated")
    expected = path.read_text(encoding="utf-8")
    assert rendered == expected, (
        f"rendered output differs from tests/golden/{name}; if the "
        "formatting change is intentional, regenerate with "
        "REPRO_UPDATE_GOLDEN=1 and commit the diff")


def make_result(design: str, benchmark: str, index: int) -> SystemResult:
    """A fully populated, deterministic synthetic result cell."""
    return SystemResult(
        design=design,
        benchmark=benchmark,
        cycles=100_000 + 7_919 * index,
        instructions=250_000,
        l2_requests=20_000,
        l2_hits=19_000 - 250 * index,
        l2_misses=1_000 + 250 * index,
        mean_lookup_latency=10.0 + 1.25 * index,
        predictable_lookup_fraction=round(0.95 - 0.05 * (index % 4), 2),
        banks_accessed_per_request=1.0 + 0.25 * (index % 3),
        link_utilization=round(0.04 * (index % 5 + 1), 2),
        network_power_w=0.050 + 0.015 * index,
        stats={"close_hits": 5_000 + 100 * index,
               "promotions": 800 + 10 * index,
               "insertions": 400},
    )


def make_grid(designs) -> ExperimentGrid:
    results = {}
    index = 0
    for benchmark in BENCHMARKS:
        for design in designs:
            results[(design, benchmark)] = make_result(design, benchmark,
                                                       index)
            index += 1
    return ExperimentGrid(tuple(designs), BENCHMARKS, results)


class TestFormatTableGolden:
    def test_mixed_type_table(self):
        rendered = format_table(
            ["design", "banks", "miss ratio", "note"],
            [["TLC", 32, 0.051234, "paper Table 2"],
             ["SNUCA2", 32, 0.0498, ""],
             ["DNUCA", 256, 1 / 3, "wide row to exercise padding"]],
            title="Golden: format_table")
        compare_golden("format_table.txt", rendered + "\n")

    def test_untitled_table(self):
        rendered = format_table(["k", "v"], [["x", 1.5], ["longer", 2]])
        compare_golden("format_table_untitled.txt", rendered + "\n")


class TestGroupedBarChartGolden:
    def test_reference_line_chart(self):
        series = {
            "normalized time": {"gcc": 0.82, "mcf": 0.64, "swim": 1.01},
        }
        rendered = grouped_bar_chart(
            series, ["gcc", "mcf", "swim"], width=32, reference_line=1.0,
            title="Golden: execution time (SNUCA2 = 1.0)")
        compare_golden("grouped_bar_chart.txt", rendered + "\n")

    def test_two_series_chart(self):
        series = {
            "DNUCA": {"gcc": 14.2, "mcf": 21.0},
            "TLC": {"gcc": 11.1, "mcf": 12.3},
        }
        rendered = grouped_bar_chart(series, ["gcc", "mcf"], width=24,
                                     value_format="{:.1f}",
                                     title="Golden: mean lookup latency")
        compare_golden("grouped_bar_chart_two_series.txt", rendered + "\n")


class TestReportGolden:
    def test_full_report_rendering(self):
        """The complete markdown report over hand-built grids."""
        main_grid = make_grid(MAIN_DESIGNS)
        family_grid = make_grid(("SNUCA2",) + TLC_FAMILY)
        rendered = build_report(main_grid=main_grid, family_grid=family_grid,
                                n_refs=1_234)
        compare_golden("report.md", rendered)

    def test_report_mentions_every_section(self):
        """Cheap structural guard that survives golden regeneration."""
        main_grid = make_grid(MAIN_DESIGNS)
        family_grid = make_grid(("SNUCA2",) + TLC_FAMILY)
        rendered = build_report(main_grid=main_grid, family_grid=family_grid,
                                n_refs=1_234)
        for heading in ("Signal integrity", "Table 2", "Figure 5",
                        "Figure 6", "Table 6", "Table 7", "Table 8",
                        "Table 9", "Figure 7", "Figure 8"):
            assert heading in rendered

"""Tests for the L1 cache model."""

import pytest

from repro.cache.l1 import L1Cache


class TestGeometry:
    def test_paper_configuration(self):
        l1 = L1Cache()
        assert l1.size_bytes == 64 * 1024
        assert l1.ways == 2
        assert l1.latency_cycles == 3
        assert l1.addr_map.num_sets == 512

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            L1Cache(size_bytes=1000, ways=2, block_bytes=64)


class TestFiltering:
    def test_first_access_misses(self):
        l1 = L1Cache()
        assert not l1.access(0x1000).hit

    def test_second_access_hits(self):
        l1 = L1Cache()
        l1.access(0x1000)
        assert l1.access(0x1000).hit

    def test_same_block_different_word_hits(self):
        l1 = L1Cache()
        l1.access(0x1000)
        assert l1.access(0x1008).hit

    def test_miss_rate(self):
        l1 = L1Cache()
        l1.access(0x0)
        l1.access(0x0)
        l1.access(0x0)
        l1.access(0x40)
        assert l1.miss_rate == pytest.approx(0.5)

    def test_miss_rate_empty(self):
        assert L1Cache().miss_rate == 0.0


class TestWritebacks:
    def _conflicting_addrs(self, l1, n):
        """n addresses mapping to the same L1 set."""
        stride = l1.addr_map.num_sets * l1.block_bytes
        return [0x40 + i * stride for i in range(n)]

    def test_clean_eviction_no_writeback(self):
        l1 = L1Cache()
        addrs = self._conflicting_addrs(l1, 3)
        for addr in addrs:
            result = l1.access(addr, write=False)
            assert result.writeback is None

    def test_dirty_eviction_produces_writeback(self):
        l1 = L1Cache()
        addrs = self._conflicting_addrs(l1, 3)
        l1.access(addrs[0], write=True)
        l1.access(addrs[1])
        result = l1.access(addrs[2])  # evicts dirty addrs[0]
        assert result.writeback == addrs[0]

    def test_writeback_is_block_aligned(self):
        l1 = L1Cache()
        addrs = self._conflicting_addrs(l1, 3)
        l1.access(addrs[0] + 17, write=True)
        l1.access(addrs[1])
        result = l1.access(addrs[2])
        assert result.writeback == addrs[0]

    def test_writeback_counted(self):
        l1 = L1Cache()
        addrs = self._conflicting_addrs(l1, 3)
        l1.access(addrs[0], write=True)
        l1.access(addrs[1])
        l1.access(addrs[2])
        assert l1.stats["writebacks"] == 1

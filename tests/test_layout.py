"""Tests for the TLC floorplan geometry (Figures 2 and 4)."""

import pytest

from repro.area.layout import (
    DEFAULT_DIE_EDGE_M,
    ROUTING_FACTOR,
    build_floorplan,
)
from repro.core.config import SNUCA2, TLC_BASE, TLC_OPT_350, TLC_OPT_500


class TestPlacement:
    @pytest.fixture(scope="class")
    def floorplan(self):
        return build_floorplan(TLC_BASE)

    def test_all_banks_placed(self, floorplan):
        assert len(floorplan.banks) == 32
        assert sorted(b.index for b in floorplan.banks) == list(range(32))

    def test_banks_split_between_edges(self, floorplan):
        centre = floorplan.die_edge_m / 2
        left = [b for b in floorplan.banks if b.x < centre]
        right = [b for b in floorplan.banks if b.x > centre]
        assert len(left) == len(right) == 16

    def test_banks_inside_die(self, floorplan):
        for bank in floorplan.banks:
            assert 0 <= bank.x - bank.width / 2
            assert bank.x + bank.width / 2 <= floorplan.die_edge_m + 1e-12
            assert 0 <= bank.y - bank.height / 2
            assert bank.y + bank.height / 2 <= floorplan.die_edge_m + 1e-12

    def test_banks_do_not_overlap(self, floorplan):
        placements = list(floorplan.banks)
        for i, a in enumerate(placements):
            for b in placements[i + 1:]:
                separated = (abs(a.x - b.x) >= (a.width + b.width) / 2 - 1e-12
                             or abs(a.y - b.y) >= (a.height + b.height) / 2 - 1e-12)
                assert separated, (a.index, b.index)

    def test_pairs_are_adjacent(self, floorplan):
        """The two banks of a pair share a column cell (same row)."""
        for pair in range(16):
            a = floorplan.banks[2 * pair]
            b = floorplan.banks[2 * pair + 1]
            assert abs(a.y - b.y) < 1e-12
            assert abs(a.x - b.x) <= a.width + 1e-12


class TestLineLengths:
    def test_base_design_spans_table1_envelope(self):
        floorplan = build_floorplan(TLC_BASE)
        assert floorplan.min_line_m == pytest.approx(0.009, abs=0.0005)
        assert floorplan.max_line_m == pytest.approx(0.013, abs=0.0005)
        assert floorplan.fits_table1_envelope()

    def test_routing_factor_applied(self):
        floorplan = build_floorplan(TLC_BASE)
        assert ROUTING_FACTOR > 1.0
        # Direct distance from a corner pair cannot exceed the half
        # diagonal; the routed length must exceed the direct one.
        import math
        half_diagonal = math.hypot(DEFAULT_DIE_EDGE_M / 2,
                                   DEFAULT_DIE_EDGE_M / 2)
        assert floorplan.max_line_m < half_diagonal * ROUTING_FACTOR

    def test_opt_designs_fit_envelope_too(self):
        for config in (TLC_OPT_500, TLC_OPT_350):
            assert build_floorplan(config).fits_table1_envelope()

    def test_symmetry_gives_length_quadruples(self):
        floorplan = build_floorplan(TLC_BASE)
        lengths = sorted(round(l, 6) for l in floorplan.pair_line_lengths_m)
        for i in range(0, len(lengths), 4):
            assert len({lengths[i + j] for j in range(4)}) == 1


class TestValidation:
    def test_rejects_nuca_configs(self):
        with pytest.raises(ValueError):
            build_floorplan(SNUCA2)

    def test_rejects_undersized_die(self):
        with pytest.raises(ValueError, match="too small"):
            build_floorplan(TLC_BASE, die_edge_m=2e-3)

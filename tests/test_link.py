"""Tests for point-to-point link timing and contention semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.interconnect.link import Link
from repro.interconnect.message import flits_for_bits, REQUEST_BITS, BLOCK_BITS
from repro.sim.stats import UtilizationMeter


class TestFlits:
    def test_exact_fit(self):
        assert flits_for_bits(64, 64) == 1

    def test_round_up(self):
        assert flits_for_bits(65, 64) == 2

    def test_block_on_8byte_link(self):
        assert flits_for_bits(BLOCK_BITS, 64) == 8

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            flits_for_bits(0, 64)
        with pytest.raises(ValueError):
            flits_for_bits(64, 0)


class TestIdleLink:
    def test_single_flit_timing(self):
        link = Link(width_bits=64, flight_cycles=1)
        t = link.send(time=100, message_bits=REQUEST_BITS)
        assert t.start == 100
        assert t.first_arrival == 101
        assert t.last_arrival == 101
        assert t.queued_cycles == 0

    def test_multi_flit_timing(self):
        link = Link(width_bits=64, flight_cycles=1)
        t = link.send(time=100, message_bits=BLOCK_BITS)
        assert t.flits == 8
        assert t.first_arrival == 101      # critical word
        assert t.last_arrival == 108       # tail flit

    def test_flight_cycles_add_latency(self):
        link = Link(width_bits=64, flight_cycles=3)
        t = link.send(time=0, message_bits=64)
        assert t.first_arrival == 3


class TestContention:
    def test_back_to_back_serializes(self):
        link = Link(width_bits=64, flight_cycles=1)
        first = link.send(0, BLOCK_BITS)   # occupies cycles 0..7
        second = link.send(0, REQUEST_BITS)
        assert second.start == 8
        assert second.queued_cycles == 8

    def test_gap_avoids_queueing(self):
        link = Link(width_bits=64, flight_cycles=1)
        link.send(0, BLOCK_BITS)
        second = link.send(50, REQUEST_BITS)
        assert second.queued_cycles == 0

    def test_non_contending_send_does_not_reserve(self):
        link = Link(width_bits=64, flight_cycles=1)
        link.send(100, BLOCK_BITS, contend=False)
        demand = link.send(100, REQUEST_BITS)
        assert demand.queued_cycles == 0

    def test_non_contending_send_still_metered(self):
        meter = UtilizationMeter(resources=1)
        link = Link(width_bits=64, flight_cycles=1, meter=meter)
        link.send(0, BLOCK_BITS, contend=False)
        assert meter.busy_cycles == 8
        assert link.bits_sent == BLOCK_BITS

    def test_reset(self):
        link = Link(width_bits=64)
        link.send(0, BLOCK_BITS)
        link.reset()
        assert link.busy_until == 0
        assert link.bits_sent == 0
        assert link.transfers == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Link(width_bits=0)
        with pytest.raises(ValueError):
            Link(width_bits=8, flight_cycles=-1)


@given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 512)),
                min_size=1, max_size=60))
def test_fifo_invariants(messages):
    """Transfers never overlap on the link and never start before both
    their send time and the prior transfer's completion."""
    link = Link(width_bits=64, flight_cycles=1)
    messages = sorted(messages)  # arrival-ordered, as the designs guarantee
    prev_busy_end = 0
    for send_time, bits in messages:
        t = link.send(send_time, bits)
        assert t.start >= send_time
        assert t.start >= prev_busy_end
        prev_busy_end = t.start + t.flits
        assert t.last_arrival - t.first_arrival == t.flits - 1

"""Tests for the main-memory model."""

import pytest

from repro.sim.memory import MainMemory


class TestReads:
    def test_flat_latency(self):
        mem = MainMemory(latency_cycles=300)
        assert mem.read(100) == 400

    def test_channel_serializes_reads(self):
        mem = MainMemory(latency_cycles=300, channel_cycles_per_access=4)
        first = mem.read(0)
        second = mem.read(0)
        assert second == first + 4

    def test_idle_channel_no_queueing(self):
        mem = MainMemory()
        mem.read(0)
        assert mem.read(1000) == 1300

    def test_read_counted(self):
        mem = MainMemory()
        mem.read(0)
        mem.read(0)
        assert mem.stats["reads"] == 2


class TestWrites:
    def test_write_buffered_fast(self):
        mem = MainMemory(channel_cycles_per_access=4)
        assert mem.write(50) == 54

    def test_writes_do_not_block_reads(self):
        """Writebacks drain through a write buffer; a future-scheduled
        write must not delay an earlier demand read."""
        mem = MainMemory(latency_cycles=300)
        mem.write(10_000)  # scheduled far in the future (refill eviction)
        assert mem.read(0) == 300

    def test_write_counted(self):
        mem = MainMemory()
        mem.write(0)
        assert mem.stats["writes"] == 1


class TestChannel:
    def test_write_does_not_reserve_channel(self):
        mem = MainMemory(latency_cycles=300, channel_cycles_per_access=4)
        mem.write(0)
        assert mem.read(0) == 300

    def test_back_to_back_reads_queue_fifo(self):
        mem = MainMemory(latency_cycles=300, channel_cycles_per_access=4)
        assert [mem.read(0) for _ in range(4)] == [300, 304, 308, 312]

    def test_zero_channel_cost_never_queues(self):
        mem = MainMemory(latency_cycles=100, channel_cycles_per_access=0)
        assert mem.read(0) == 100
        assert mem.read(0) == 100


class TestLifecycle:
    def test_reset(self):
        mem = MainMemory()
        mem.read(0)
        mem.write(0)
        mem.reset()
        assert mem.stats["reads"] == 0
        assert mem.read(0) == mem.latency_cycles  # channel state cleared

    def test_reset_stats_preserves_channel_state(self):
        """The warmup boundary zeroes counters but must not release the
        channel: timing continuity across the boundary is what makes
        warmup realistic."""
        mem = MainMemory(latency_cycles=300, channel_cycles_per_access=4)
        mem.read(0)
        mem.reset_stats()
        assert mem.stats["reads"] == 0
        assert mem.read(0) == 304  # still queued behind the first read

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            MainMemory(latency_cycles=-1)

    def test_invalid_channel_cost(self):
        with pytest.raises(ValueError):
            MainMemory(channel_cycles_per_access=-1)


class TestMemoryAcrossBackends:
    """A non-default DRAM model behaves identically under every backend
    (memory state is design-side, below the backend boundary)."""

    def test_custom_latency_identical_across_backends(self):
        pytest.importorskip("numpy")
        from repro.sim.system import run_system

        # swim streams, so it actually misses to DRAM at this length.
        results = {
            backend: run_system("TLC", "swim", n_refs=1500, seed=3,
                                memory=MainMemory(latency_cycles=150),
                                backend=backend)
            for backend in ("reference", "batched")
        }
        assert results["reference"].l2_misses > 0
        assert results["reference"] == results["batched"]

    def test_slower_dram_costs_cycles_under_both_backends(self):
        pytest.importorskip("numpy")
        from repro.sim.system import run_system

        for backend in ("reference", "batched"):
            fast = run_system("TLC", "swim", n_refs=1500, seed=3,
                              memory=MainMemory(latency_cycles=100),
                              backend=backend)
            slow = run_system("TLC", "swim", n_refs=1500, seed=3,
                              memory=MainMemory(latency_cycles=600),
                              backend=backend)
            assert slow.cycles > fast.cycles

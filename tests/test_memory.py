"""Tests for the main-memory model."""

import pytest

from repro.sim.memory import MainMemory


class TestReads:
    def test_flat_latency(self):
        mem = MainMemory(latency_cycles=300)
        assert mem.read(100) == 400

    def test_channel_serializes_reads(self):
        mem = MainMemory(latency_cycles=300, channel_cycles_per_access=4)
        first = mem.read(0)
        second = mem.read(0)
        assert second == first + 4

    def test_idle_channel_no_queueing(self):
        mem = MainMemory()
        mem.read(0)
        assert mem.read(1000) == 1300

    def test_read_counted(self):
        mem = MainMemory()
        mem.read(0)
        mem.read(0)
        assert mem.stats["reads"] == 2


class TestWrites:
    def test_write_buffered_fast(self):
        mem = MainMemory(channel_cycles_per_access=4)
        assert mem.write(50) == 54

    def test_writes_do_not_block_reads(self):
        """Writebacks drain through a write buffer; a future-scheduled
        write must not delay an earlier demand read."""
        mem = MainMemory(latency_cycles=300)
        mem.write(10_000)  # scheduled far in the future (refill eviction)
        assert mem.read(0) == 300

    def test_write_counted(self):
        mem = MainMemory()
        mem.write(0)
        assert mem.stats["writes"] == 1


class TestLifecycle:
    def test_reset(self):
        mem = MainMemory()
        mem.read(0)
        mem.write(0)
        mem.reset()
        assert mem.stats["reads"] == 0
        assert mem.read(0) == mem.latency_cycles  # channel state cleared

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            MainMemory(latency_cycles=-1)

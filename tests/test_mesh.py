"""Tests for the 2-D switched mesh (NUCA channel network)."""

import pytest

from repro.interconnect.mesh import MeshNetwork
from repro.interconnect.message import BLOCK_BITS, REQUEST_BITS


def dnuca_mesh():
    return MeshNetwork(columns=16, rows=16, flit_bits=128, hop_latency=1)


def snuca_mesh():
    return MeshNetwork(columns=8, rows=4, flit_bits=128, hop_latency=2)


class TestGeometry:
    def test_horizontal_distance_symmetry(self):
        mesh = dnuca_mesh()
        assert mesh.horizontal_distance(7) == 0
        assert mesh.horizontal_distance(8) == 0
        assert mesh.horizontal_distance(0) == 7
        assert mesh.horizontal_distance(15) == 7

    def test_hops_to_corner(self):
        mesh = dnuca_mesh()
        assert mesh.hops_to(0, 15) == 22
        assert mesh.hops_to(8, 0) == 0

    def test_invalid_coordinates(self):
        mesh = dnuca_mesh()
        with pytest.raises(IndexError):
            mesh.horizontal_distance(16)
        with pytest.raises(IndexError):
            mesh.hops_to(0, 16)

    def test_odd_columns_rejected(self):
        with pytest.raises(ValueError):
            MeshNetwork(columns=15, rows=4, flit_bits=128)


class TestPaperLatencyRanges:
    def test_dnuca_range_3_to_47(self):
        """Table 2: DNUCA uncontended latency spans 3-47 cycles."""
        mesh = dnuca_mesh()
        latencies = [mesh.uncontended_latency(c, p, bank_cycles=3)
                     for c in range(16) for p in range(16)]
        assert min(latencies) == 3
        assert max(latencies) == 47

    def test_snuca_range(self):
        """SNUCA2 spans 8-32 network+bank cycles (paper: 9-32 with its
        one-cycle controller overhead on the minimum)."""
        mesh = snuca_mesh()
        latencies = [mesh.uncontended_latency(c, p, bank_cycles=8)
                     for c in range(8) for p in range(4)]
        assert min(latencies) == 8
        assert max(latencies) == 32


class TestRouting:
    def test_zero_hop_message(self):
        mesh = dnuca_mesh()
        path = mesh.send(8, 0, time=10, message_bits=REQUEST_BITS, outbound=True)
        assert path.hops == 0
        assert path.first_arrival == 10

    def test_head_latency_accumulates_per_hop(self):
        mesh = dnuca_mesh()
        path = mesh.send(8, 3, time=0, message_bits=REQUEST_BITS, outbound=True)
        assert path.hops == 3
        assert path.first_arrival == 3  # 1 cycle per hop

    def test_hop_latency_parameter(self):
        mesh = snuca_mesh()
        path = mesh.send(4, 1, time=0, message_bits=REQUEST_BITS, outbound=True)
        assert path.hops == 1
        assert path.first_arrival == 2

    def test_left_and_right_routes_disjoint(self):
        mesh = dnuca_mesh()
        left = mesh.send(0, 0, 0, REQUEST_BITS, outbound=True)
        right = mesh.send(15, 0, 0, REQUEST_BITS, outbound=True)
        assert not set(left.links) & set(right.links)

    def test_inbound_uses_reverse_direction_links(self):
        mesh = dnuca_mesh()
        out = mesh.send(12, 2, 0, REQUEST_BITS, outbound=True)
        back = mesh.send(12, 2, 0, REQUEST_BITS, outbound=False)
        assert len(out.links) == len(back.links)
        assert not set(out.links) & set(back.links)

    def test_wormhole_tail_follows_head(self):
        mesh = dnuca_mesh()
        path = mesh.send(8, 2, 0, BLOCK_BITS, outbound=True)  # 4 flits
        assert path.last_arrival == path.first_arrival + 3


class TestContention:
    def test_overlapping_paths_queue(self):
        mesh = dnuca_mesh()
        first = mesh.send(15, 0, 0, BLOCK_BITS, outbound=True)
        second = mesh.send(15, 0, 0, REQUEST_BITS, outbound=True)
        assert second.queued_cycles > 0

    def test_disjoint_paths_do_not_interact(self):
        mesh = dnuca_mesh()
        mesh.send(0, 15, 0, BLOCK_BITS, outbound=True)
        other = mesh.send(15, 15, 0, BLOCK_BITS, outbound=True)
        assert other.queued_cycles == 0

    def test_non_contending_transfer(self):
        mesh = dnuca_mesh()
        mesh.send(15, 0, 0, BLOCK_BITS, outbound=True, contend=False)
        demand = mesh.send(15, 0, 0, REQUEST_BITS, outbound=True)
        assert demand.queued_cycles == 0

    def test_transfer_between_adjacent_banks(self):
        mesh = dnuca_mesh()
        path = mesh.transfer_between(5, 8, time=0, message_bits=BLOCK_BITS,
                                     upward=True)
        assert path.hops == 1
        assert path.first_arrival == 1

    def test_transfer_between_validates_position(self):
        mesh = dnuca_mesh()
        with pytest.raises(IndexError):
            mesh.transfer_between(5, 0, 0, BLOCK_BITS, upward=True)


class TestAccounting:
    def test_bit_hops_accumulate(self):
        mesh = dnuca_mesh()
        path = mesh.send(15, 5, 0, BLOCK_BITS, outbound=True)
        assert mesh.bit_hops == BLOCK_BITS * path.hops
        assert mesh.switch_traversals == path.hops

    def test_utilization_counts_all_links(self):
        mesh = dnuca_mesh()
        path = mesh.send(15, 0, 0, BLOCK_BITS, outbound=True)  # 7 hops, 4 flits
        expected_busy = path.hops * 4
        assert mesh.meter.busy_cycles == expected_busy
        assert mesh.utilization(1000) == pytest.approx(
            expected_busy / (1000 * mesh.meter.resources))

    def test_link_count(self):
        mesh = dnuca_mesh()
        # 2*(16-1) horizontal + 2*16*15 vertical directed links.
        assert mesh.meter.resources == 30 + 480

"""Property-based tests for mesh routing invariants."""

from hypothesis import given, settings, strategies as st

from repro.interconnect.mesh import MeshNetwork
from repro.interconnect.message import BLOCK_BITS, REQUEST_BITS

coords = st.tuples(st.integers(0, 15), st.integers(0, 15))


@settings(max_examples=100, deadline=None)
@given(coords)
def test_route_length_equals_hop_count(coord):
    """The routed path has exactly hops_to(column, position) links."""
    mesh = MeshNetwork(columns=16, rows=16, flit_bits=128)
    column, position = coord
    path = mesh.send(column, position, 0, REQUEST_BITS, outbound=True)
    assert path.hops == mesh.hops_to(column, position)


@settings(max_examples=100, deadline=None)
@given(coords)
def test_route_is_connected(coord):
    """Links form a connected chain: horizontal prefix along the edge,
    then a vertical run up the destination column."""
    mesh = MeshNetwork(columns=16, rows=16, flit_bits=128)
    column, position = coord
    path = mesh.send(column, position, 0, REQUEST_BITS, outbound=True)
    vertical = [key for key in path.links if key[0] == "v"]
    horizontal = [key for key in path.links if key[0] == "h"]
    # All vertical links belong to the destination column, rows 0..p-1.
    assert all(key[1] == column for key in vertical)
    assert sorted(key[2] for key in vertical) == list(range(position))
    # Horizontal links precede vertical ones on the outbound route.
    if horizontal and vertical:
        first_vertical = path.links.index(vertical[0])
        assert all(path.links.index(h) < first_vertical for h in horizontal)


@settings(max_examples=60, deadline=None)
@given(coords, coords)
def test_uncontended_latency_triangle(a, b):
    """Farther banks are never faster (monotone in hop count)."""
    mesh = MeshNetwork(columns=16, rows=16, flit_bits=128)
    la = mesh.uncontended_latency(*a, bank_cycles=3)
    lb = mesh.uncontended_latency(*b, bank_cycles=3)
    if mesh.hops_to(*a) <= mesh.hops_to(*b):
        assert la <= lb


@settings(max_examples=60, deadline=None)
@given(coords, st.integers(0, 3))
def test_round_trip_uses_disjoint_directed_links(coord, _seed):
    """Outbound and inbound legs never share a directed link, so a
    response cannot queue behind its own request."""
    mesh = MeshNetwork(columns=16, rows=16, flit_bits=128)
    column, position = coord
    out = mesh.send(column, position, 0, REQUEST_BITS, outbound=True)
    back = mesh.send(column, position, 10, BLOCK_BITS, outbound=False)
    assert not set(out.links) & set(back.links)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15),
                          st.integers(0, 100)), min_size=1, max_size=25))
def test_timing_never_precedes_send(messages):
    """No transfer arrives before it was sent plus its minimum flight."""
    mesh = MeshNetwork(columns=16, rows=16, flit_bits=128)
    messages = sorted(messages, key=lambda m: m[2])
    for column, position, time in messages:
        path = mesh.send(column, position, time, REQUEST_BITS, outbound=True)
        assert path.first_arrival >= time + path.hops * mesh.hop_latency
        assert path.last_arrival >= path.first_arrival

"""Tests for the observability layer (repro.obs) and its wiring."""

import dataclasses
import json

import pytest

from repro.obs import (
    EventTracer,
    MetricsRegistry,
    RunObserver,
    TraceEvent,
    build_manifest,
    code_version_stamp,
    diff_manifests,
    flatten,
    load_manifest,
    manifest_from_dict,
    manifest_to_dict,
    read_jsonl,
    save_manifest,
)
from repro.sim.stats import Counter, Histogram, UtilizationMeter
from repro.sim.system import run_system


class TestRegistryNaming:
    def test_valid_dotted_names_register(self):
        reg = MetricsRegistry()
        reg.counter("l2")
        reg.histogram("l2.lookup_latency")
        reg.meter("link.util", resources=4)
        reg.gauge("l2.bank03.occupancy", lambda: 5)
        assert reg.names() == ("l2", "l2.bank03.occupancy",
                               "l2.lookup_latency", "link.util")

    @pytest.mark.parametrize("bad", [
        "", "L2.hits", "l2..hits", ".l2", "l2.", "l2 hits", "l2-hits",
    ])
    def test_malformed_names_rejected(self, bad):
        with pytest.raises(ValueError, match="invalid"):
            MetricsRegistry().counter(bad)

    def test_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("l2.hits")
        with pytest.raises(ValueError, match="collision"):
            reg.histogram("l2.hits")

    def test_collision_across_scopes_raises(self):
        reg = MetricsRegistry()
        reg.scope("link").counter("pair00.req")
        with pytest.raises(ValueError, match="collision"):
            reg.scope("link.pair00").counter("req")

    def test_gauge_requires_callable(self):
        with pytest.raises(TypeError):
            MetricsRegistry().gauge("l2.occupancy", 42)

    def test_scopes_nest(self):
        reg = MetricsRegistry()
        reg.scope("link").scope("pair00").counter("req")
        assert "link.pair00.req" in reg


class TestRegistrySnapshot:
    def build(self):
        reg = MetricsRegistry()
        counter = reg.counter("l2")
        counter.add("hits", 3)
        counter.add("misses")
        hist = reg.histogram("l2.lookup_latency")
        hist.record(10, weight=2)
        hist.record(12)
        meter = reg.meter("link.util", resources=2)
        meter.busy(7)
        reg.gauge("l2.bank00.occupancy", lambda: 41)
        return reg

    def test_encodings(self):
        snap = self.build().snapshot()
        assert snap["l2.hits"] == 3
        assert snap["l2.misses"] == 1
        assert snap["l2.lookup_latency"] == {
            "count": 3, "mean": pytest.approx(32 / 3),
            "min": 10, "max": 12, "bins": {"10": 2, "12": 1}}
        assert snap["link.util"] == {
            "resources": 2, "busy_cycles": 7, "saturated": False}
        assert snap["l2.bank00.occupancy"] == 41

    def test_snapshot_ordering_is_stable(self):
        # Two registries built with registrations in different orders
        # must produce identical documents (key order included) — the
        # property manifest diffs rely on.
        a = MetricsRegistry()
        a.counter("l2").add("hits")
        a.gauge("mesh.bit_hops", lambda: 9)
        a.gauge("l1.occupancy", lambda: 1)
        b = MetricsRegistry()
        b.gauge("l1.occupancy", lambda: 1)
        b.gauge("mesh.bit_hops", lambda: 9)
        b.counter("l2").add("hits")
        assert json.dumps(a.snapshot()) == json.dumps(b.snapshot())
        assert list(a.snapshot()) == sorted(a.snapshot())

    def test_snapshot_is_json_ready(self):
        json.dumps(self.build().snapshot())

    def test_empty_counter_contributes_nothing(self):
        reg = MetricsRegistry()
        reg.counter("l2")
        assert reg.snapshot() == {}

    def test_reset_preserves_identity(self):
        reg = self.build()
        counter = reg.get("l2")
        hist = reg.get("l2.lookup_latency")
        reg.reset()
        assert reg.get("l2") is counter
        assert reg.get("l2.lookup_latency") is hist
        assert counter["hits"] == 0
        assert hist.count == 0
        # Gauges still read live state.
        assert reg.snapshot()["l2.bank00.occupancy"] == 41


class TestEventTracer:
    def test_full_capture_keeps_everything(self):
        tracer = EventTracer()
        for i in range(100):
            tracer.emit("l2.access", time=i, addr=i * 64)
        assert len(tracer) == 100
        assert tracer.dropped == 0

    def test_ring_buffer_keeps_newest_and_counts_dropped(self):
        tracer = EventTracer(capacity=10)
        for i in range(25):
            tracer.emit("l2.access", time=i)
        assert len(tracer) == 10
        assert tracer.dropped == 15
        assert [e.time for e in tracer.events()] == list(range(15, 25))

    def test_type_filter(self):
        tracer = EventTracer(types={"l2.access"})
        tracer.emit("l2.access", time=1)
        tracer.emit("engine.dispatch", time=2)
        assert len(tracer) == 1
        assert tracer.filtered == 1
        assert tracer.wants("l2.access")
        assert not tracer.wants("engine.dispatch")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_summary(self):
        tracer = EventTracer(capacity=5, types={"a", "b"})
        for i in range(6):
            tracer.emit("a", time=i)
        tracer.emit("b", time=9)
        tracer.emit("c", time=10)
        assert tracer.summary() == {
            "events": 5, "dropped": 2, "filtered": 1, "capacity": 5,
            "types": ["a", "b"], "by_type": {"a": 4, "b": 1}}

    def test_jsonl_round_trip(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("l2.access", time=5, addr=128, hit=True)
        tracer.emit("run.warmup_end", time=9, refs=3)
        path = str(tmp_path / "t.jsonl")
        assert tracer.write_jsonl(path) == 2
        assert read_jsonl(path) == tracer.events()

    def test_read_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1, "type": "x"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_jsonl(str(path))

    def test_event_dict_shape(self):
        event = TraceEvent(time=3, type="l2.access",
                           fields=(("addr", 64), ("hit", False)))
        assert event.as_dict() == {"time": 3, "type": "l2.access",
                                   "addr": 64, "hit": False}


def small_manifest():
    return build_manifest(
        kind="system", design="TLC", benchmark="mcf", seed=7,
        config={"n_refs": 100, "seed": 7},
        metrics={"l2.hits": 4,
                 "l2.lookup_latency": {"count": 1, "mean": 10.0,
                                       "min": 10, "max": 10,
                                       "bins": {"10": 1}}},
        result={"cycles": 123},
        wall_time_s=0.5)


class TestManifest:
    def test_round_trip_equal(self, tmp_path):
        manifest = small_manifest()
        path = str(tmp_path / "m.json")
        save_manifest(path, manifest)
        assert load_manifest(path) == manifest

    def test_dict_round_trip(self):
        manifest = small_manifest()
        assert manifest_from_dict(manifest_to_dict(manifest)) == manifest

    def test_unknown_field_rejected(self):
        payload = manifest_to_dict(small_manifest())
        payload["extra"] = 1
        with pytest.raises(ValueError, match="unknown"):
            manifest_from_dict(payload)

    def test_missing_field_rejected(self):
        payload = manifest_to_dict(small_manifest())
        del payload["config_digest"]
        with pytest.raises(ValueError, match="missing"):
            manifest_from_dict(payload)

    def test_wrong_schema_rejected(self):
        payload = manifest_to_dict(small_manifest())
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            manifest_from_dict(payload)

    def test_code_version_is_the_runner_stamp(self):
        from repro.analysis.runner import code_version_stamp as runner_stamp

        assert small_manifest().code_version == runner_stamp()
        assert runner_stamp() is code_version_stamp()
        assert len(code_version_stamp()) == 64

    def test_config_digest_is_order_insensitive(self):
        a = build_manifest(kind="system", config={"a": 1, "b": 2},
                           metrics={}, wall_time_s=0.0)
        b = build_manifest(kind="system", config={"b": 2, "a": 1},
                           metrics={}, wall_time_s=0.0)
        assert a.config_digest == b.config_digest


class TestDiff:
    def test_identical_runs_diff_empty(self):
        a, b = small_manifest(), small_manifest()
        assert diff_manifests(a, b) == []

    def test_wall_time_never_reported(self):
        a = small_manifest()
        b = dataclasses.replace(a, wall_time_s=a.wall_time_s + 100)
        assert diff_manifests(a, b) == []

    def test_metric_and_provenance_changes_reported(self):
        a = small_manifest()
        b = dataclasses.replace(a, seed=8, metrics=dict(a.metrics, **{
            "l2.hits": 5}))
        names = [name for name, _, _ in diff_manifests(a, b)]
        assert "seed" in names
        assert "metrics.l2.hits" in names

    def test_bins_skipped_by_default(self):
        a = small_manifest()
        hist = dict(a.metrics["l2.lookup_latency"], bins={"10": 999})
        b = dataclasses.replace(a, metrics=dict(a.metrics, **{
            "l2.lookup_latency": hist}))
        assert diff_manifests(a, b) == []
        assert diff_manifests(a, b, skip_bins=False) == [
            ("metrics.l2.lookup_latency.bins.10", 1, 999)]

    def test_flatten(self):
        doc = {"a": {"b": 1, "bins": {"10": 2}}, "c": 3}
        assert flatten(doc) == {"a.b": 1, "c": 3}
        assert flatten(doc, skip_bins=False) == {
            "a.b": 1, "a.bins.10": 2, "c": 3}


class TestObservationIsReadOnly:
    """Acceptance criterion: observing a run never changes its result."""

    N_REFS = 3_000

    def test_run_system_identical_with_observer(self):
        plain = run_system("TLC", "mcf", n_refs=self.N_REFS)
        obs = RunObserver(tracer=EventTracer())
        observed = run_system("TLC", "mcf", n_refs=self.N_REFS, observer=obs)
        assert observed == plain
        assert obs.manifest is not None
        assert len(obs.tracer) > 0

    def test_ring_and_filter_do_not_change_results(self):
        plain = run_system("TLCopt500", "perl", n_refs=self.N_REFS)
        obs = RunObserver(tracer=EventTracer(capacity=50,
                                             types={"run.warmup_end"}))
        observed = run_system("TLCopt500", "perl", n_refs=self.N_REFS,
                              observer=obs)
        assert observed == plain
        assert [e.type for e in obs.tracer.events()] == ["run.warmup_end"]

    def test_full_system_identical_with_observer(self):
        from repro.sim.full_system import run_full_system
        from repro.workloads.cpu_level import CpuLevelSpec
        from repro.workloads.profiles import get_profile

        spec = CpuLevelSpec(l2_spec=get_profile("mcf").spec)
        plain = run_full_system("SNUCA2", spec, n_refs=self.N_REFS)
        obs = RunObserver(tracer=EventTracer())
        observed = run_full_system("SNUCA2", spec, n_refs=self.N_REFS,
                                   observer=obs)
        assert observed == plain
        assert obs.manifest.kind == "full_system"

    def test_manifest_values_match_uninstrumented_metrics(self):
        # The manifest's metric snapshot must agree with the design's
        # own headline figures from a run without any observer.
        obs = RunObserver()
        result = run_system("TLC", "mcf", n_refs=self.N_REFS, observer=obs)
        metrics = obs.manifest.metrics
        assert metrics["l2.hits"] == result.l2_hits
        # Counters that never fired are absent from snapshots.
        assert metrics.get("l2.misses", 0) == result.l2_misses
        latency = metrics["l2.lookup_latency"]
        assert latency["mean"] == pytest.approx(result.mean_lookup_latency)
        assert obs.manifest.result["cycles"] == result.cycles


class TestDesignRegistries:
    """Every design carries a registry covering its components."""

    @pytest.mark.parametrize("design,expected", [
        # "l2" / "memory" are the request/DRAM Counters (their counts
        # flatten into snapshots as l2.hits, memory.reads, ...).
        ("TLC", ("l2", "l2.lookup_latency", "memory", "link.util",
                 "l2.bank00.occupancy", "link.pair00.req.bits_sent")),
        ("TLCopt500", ("link.util", "l2.group00.occupancy")),
        ("SNUCA2", ("mesh.util", "mesh.bit_hops", "l2.bank00.occupancy")),
        ("DNUCA", ("mesh.util", "l2.bankset00.occupancy")),
    ])
    def test_expected_names_registered(self, design, expected):
        from repro.core.config import build_design

        l2 = build_design(design)
        for name in expected:
            assert name in l2.metrics, name

    def test_reset_stats_keeps_registry_live(self):
        from repro.core.config import build_design

        l2 = build_design("TLC")
        l2.access(0, 0)
        assert l2.metrics.snapshot()["l2.requests"] == 1
        l2.reset_stats()
        assert "l2.requests" not in l2.metrics.snapshot()
        l2.access(64, 100)
        assert l2.metrics.snapshot()["l2.requests"] == 1


class TestStatsBugfixes:
    def test_percentile_zero_is_min(self):
        h = Histogram()
        h.record(4)
        h.record(9)
        assert h.percentile(0.0) == 4 == h.min

    def test_utilization_clamps_and_latches(self):
        meter = UtilizationMeter(resources=1)
        meter.busy(150)
        assert meter.raw_utilization(100) == pytest.approx(1.5)
        assert meter.utilization(100) == 1.0
        assert meter.saturated
        meter.reset()
        assert meter.busy_cycles == 0
        assert not meter.saturated

    def test_utilization_in_range_unclamped(self):
        meter = UtilizationMeter(resources=2)
        meter.busy(100)
        assert meter.utilization(100) == pytest.approx(0.5)
        assert not meter.saturated


class TestRunnerProvenance:
    def test_run_grid_populates_cell_meta(self, tmp_path):
        from repro.analysis.runner import run_grid

        cache = str(tmp_path / "cache")
        cold = run_grid(designs=("TLC",), benchmarks=("perl",),
                        n_refs=1_500, cache=cache)
        meta = cold.cell_meta[("TLC", "perl")]
        assert meta["from_cache"] is False
        assert meta["wall_time_s"] > 0
        assert meta["l2_hits"] == cold.result("TLC", "perl").l2_hits

        warm = run_grid(designs=("TLC",), benchmarks=("perl",),
                        n_refs=1_500, cache=cache)
        assert warm.cell_meta[("TLC", "perl")]["from_cache"] is True
        # Provenance differs, measurements don't: grids compare equal.
        assert warm == cold

    def test_execute_cells_matches_detailed(self):
        from repro.analysis.runner import (
            CellSpec,
            execute_cells,
            execute_cells_detailed,
        )

        cells = [CellSpec(design="TLC", benchmark="perl", n_refs=1_500,
                          seed=3)]
        assert execute_cells(cells) == [
            outcome.result for outcome in execute_cells_detailed(cells)]

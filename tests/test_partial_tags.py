"""Tests for the 6-bit partial-tag structures."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.partial_tags import (
    PARTIAL_TAG_BITS,
    PartialTagArray,
    partial_tag,
)


class TestPartialTagFunction:
    def test_keeps_low_six_bits(self):
        assert partial_tag(0b1111111) == 0b111111

    def test_small_tags_unchanged(self):
        assert partial_tag(5) == 5

    def test_aliasing_distance(self):
        # Tags 64 apart alias — the source of false matches.
        assert partial_tag(0x40) == partial_tag(0x80) == 0


class TestPartialTagArray:
    def test_no_matches_when_empty(self):
        pta = PartialTagArray(positions=16, num_sets=8)
        assert pta.matches(0, 0x123) == []

    def test_update_then_match(self):
        pta = PartialTagArray(positions=16, num_sets=8)
        pta.update(5, 3, 0, 0x123)
        assert pta.matches(3, 0x123) == [5]

    def test_aliased_tag_matches(self):
        pta = PartialTagArray(positions=4, num_sets=8)
        pta.update(2, 0, 0, 0x40)
        assert pta.matches(0, 0x80) == [2]  # false positive by design

    def test_different_partial_no_match(self):
        pta = PartialTagArray(positions=4, num_sets=8)
        pta.update(2, 0, 0, 0x01)
        assert pta.matches(0, 0x02) == []

    def test_exclude_skips_positions(self):
        pta = PartialTagArray(positions=4, num_sets=8)
        pta.update(0, 0, 0, 7)
        pta.update(3, 0, 0, 7)
        assert pta.matches(0, 7, exclude=(0, 1)) == [3]

    def test_matches_sorted_nearest_first(self):
        pta = PartialTagArray(positions=8, num_sets=4)
        for position in (6, 2, 4):
            pta.update(position, 1, 0, 9)
        assert pta.matches(1, 9) == [2, 4, 6]

    def test_clear_removes_entry(self):
        pta = PartialTagArray(positions=4, num_sets=8)
        pta.update(1, 0, 0, 7)
        pta.clear(1, 0, 0)
        assert pta.matches(0, 7) == []

    def test_multi_way_slots(self):
        pta = PartialTagArray(positions=2, num_sets=4, ways=2)
        pta.update(0, 0, 0, 1)
        pta.update(0, 0, 1, 2)
        assert pta.matches(0, 1) == [0]
        assert pta.matches(0, 2) == [0]

    def test_overwriting_way_changes_match(self):
        pta = PartialTagArray(positions=2, num_sets=4)
        pta.update(0, 0, 0, 1)
        pta.update(0, 0, 0, 2)
        assert pta.matches(0, 1) == []
        assert pta.matches(0, 2) == [0]

    def test_position_bounds_checked(self):
        pta = PartialTagArray(positions=4, num_sets=4)
        with pytest.raises(IndexError):
            pta.update(4, 0, 0, 1)
        with pytest.raises(IndexError):
            pta.update(0, 4, 0, 1)

    def test_storage_bits_formula(self):
        # DNUCA's structure: 16 banks x 1024 sets x 6 bits per bank set.
        pta = PartialTagArray(positions=16, num_sets=1024)
        assert pta.storage_bits() == 16 * 1024 * PARTIAL_TAG_BITS

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PartialTagArray(positions=0, num_sets=4)


@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 3),
                          st.integers(0, 2**20)), max_size=80))
def test_matches_agree_with_reference(ops):
    """Every stored tag must be findable; matches are exactly the
    positions whose stored partial tag equals the query's."""
    pta = PartialTagArray(positions=8, num_sets=4)
    stored = {}
    for position, set_index, tag in ops:
        pta.update(position, set_index, 0, tag)
        stored[(position, set_index)] = partial_tag(tag)
    for (position, set_index), ptag in stored.items():
        query_tag = ptag  # a tag with this partial
        expected = sorted(
            p for (p, s), v in stored.items() if s == set_index and v == ptag
        )
        assert pta.matches(set_index, query_tag) == expected

"""Tests for the perf harness: BENCH documents, comparison, equivalence.

The last class is the safety net for the hot-path optimization work:
it regenerates the pre-optimization golden grid and requires the saved
JSON to be byte-identical, so "optimizations" that change simulated
behaviour cannot land silently.
"""

import copy
import os

import pytest

from repro.analysis.perf import (
    CALIBRATION_BENCHMARK,
    FORMAT_VERSION,
    BenchResult,
    bench_document,
    benchmark_names,
    compare_benchmarks,
    default_bench_name,
    load_benchmarks,
    mad,
    measure,
    median,
    run_suite,
    save_benchmarks,
    validate_benchmarks,
)
from repro.analysis.perf.harness import main_compare_exit_code
from repro.obs.manifest import code_version_stamp

CODE_VERSION = "f" * 64


def make_document(**overrides):
    results = {
        CALIBRATION_BENCHMARK: BenchResult(median_ns=1_000_000, mad_ns=100, reps=5),
        "engine.run": BenchResult(median_ns=2_000_000, mad_ns=500, reps=5,
                                  meta={"inner_ops": 1000}),
        "l2.lookup.tlc": BenchResult(median_ns=3_000_000, mad_ns=900, reps=5),
    }
    document = bench_document(results, code_version=CODE_VERSION,
                              pinned=False, quick=True)
    document.update(overrides)
    return document


class TestStatistics:
    def test_median_odd(self):
        assert median([5, 1, 3]) == 3

    def test_median_even_rounds_down(self):
        assert median([1, 2, 3, 4]) == 2

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad(self):
        assert mad([1, 1, 1]) == 0
        assert mad([1, 2, 9]) == 1


class TestMeasure:
    def test_warmup_plus_reps_calls(self):
        calls = []
        result = measure(lambda: calls.append(1), reps=3, warmup=2)
        assert len(calls) == 5
        assert result.reps == 3
        assert result.median_ns >= 0
        assert result.mad_ns >= 0

    def test_meta_is_copied(self):
        meta = {"inner_ops": 7}
        result = measure(lambda: None, reps=1, warmup=0, meta=meta)
        meta["inner_ops"] = 99
        assert result.meta == {"inner_ops": 7}

    def test_bad_reps_rejected(self):
        with pytest.raises(ValueError):
            measure(lambda: None, reps=0)
        with pytest.raises(ValueError):
            measure(lambda: None, warmup=-1)


class TestBenchDocument:
    def test_valid_document_passes(self):
        validate_benchmarks(make_document())

    def test_round_trip(self, tmp_path):
        document = make_document()
        path = save_benchmarks(str(tmp_path / "BENCH_x.json"), document)
        assert load_benchmarks(path) == document

    def test_directory_target_uses_default_name(self, tmp_path):
        path = save_benchmarks(str(tmp_path), make_document())
        assert os.path.basename(path) == default_bench_name(CODE_VERSION)
        assert os.path.basename(path) == f"BENCH_{'f' * 12}.json"

    def test_document_carries_no_timestamp(self):
        # Two runs of identical code differ only in the timings; the
        # top-level schema must stay free of wall-clock fields.
        document = make_document()
        assert set(document) == {"format_version", "code_version", "python",
                                 "platform", "pinned", "quick", "benchmarks"}

    @pytest.mark.parametrize("mutate", [
        lambda d: d.update(format_version=FORMAT_VERSION + 1),
        lambda d: d.update(code_version=""),
        lambda d: d.update(benchmarks={}),
        lambda d: d["benchmarks"]["engine.run"].update(median_ns=True),
        lambda d: d["benchmarks"]["engine.run"].update(median_ns=0),
        lambda d: d["benchmarks"]["engine.run"].update(mad_ns=-1),
        lambda d: d["benchmarks"]["engine.run"].update(reps=0),
        lambda d: d["benchmarks"]["engine.run"].update(meta=None),
    ])
    def test_invalid_documents_rejected(self, mutate):
        document = make_document()
        mutate(document)
        with pytest.raises(ValueError):
            validate_benchmarks(document)

    def test_code_version_stamp_deterministic(self):
        stamp = code_version_stamp()
        assert stamp == code_version_stamp()
        assert len(stamp) >= 12
        document = bench_document({"x": BenchResult(1, 0, 1)},
                                  code_version=stamp, pinned=False, quick=False)
        validate_benchmarks(document)


class TestCompare:
    def test_identical_documents_pass(self):
        document = make_document()
        comparisons, missing = compare_benchmarks(document, document)
        assert missing == []
        assert all(not c.regressed for c in comparisons)
        assert main_compare_exit_code(comparisons) == 0

    def test_injected_regression_fails(self):
        baseline = make_document()
        current = copy.deepcopy(baseline)
        current["benchmarks"]["engine.run"]["median_ns"] *= 3
        comparisons, _ = compare_benchmarks(current, baseline,
                                            fail_above_pct=40.0)
        verdicts = {c.name: c.regressed for c in comparisons}
        assert verdicts["engine.run"] is True
        assert verdicts["l2.lookup.tlc"] is False
        assert main_compare_exit_code(comparisons) == 1

    def test_calibration_benchmark_never_regresses(self):
        baseline = make_document()
        current = copy.deepcopy(baseline)
        current["benchmarks"][CALIBRATION_BENCHMARK]["median_ns"] *= 10
        comparisons, _ = compare_benchmarks(current, baseline)
        verdicts = {c.name: c.regressed for c in comparisons}
        assert verdicts[CALIBRATION_BENCHMARK] is False

    def test_normalization_forgives_a_slower_machine(self):
        baseline = make_document()
        current = copy.deepcopy(baseline)
        for entry in current["benchmarks"].values():
            entry["median_ns"] *= 2
        raw, _ = compare_benchmarks(current, baseline, fail_above_pct=40.0)
        assert main_compare_exit_code(raw) == 1
        normalized, _ = compare_benchmarks(current, baseline,
                                           fail_above_pct=40.0, normalize=True)
        assert main_compare_exit_code(normalized) == 0
        assert all(abs(c.ratio - 1.0) < 1e-9 for c in normalized)

    def test_missing_benchmarks_reported(self):
        baseline = make_document()
        current = copy.deepcopy(baseline)
        del current["benchmarks"]["l2.lookup.tlc"]
        _, missing = compare_benchmarks(current, baseline)
        assert missing == ["l2.lookup.tlc"]

    def test_normalize_requires_calibration(self):
        baseline = make_document()
        current = copy.deepcopy(baseline)
        del current["benchmarks"][CALIBRATION_BENCHMARK]
        with pytest.raises(ValueError):
            compare_benchmarks(current, baseline, normalize=True)

    def test_negative_threshold_rejected(self):
        document = make_document()
        with pytest.raises(ValueError):
            compare_benchmarks(document, document, fail_above_pct=-1)


class TestSuite:
    def test_registry_covers_every_layer(self):
        names = benchmark_names()
        assert list(names) == sorted(names)
        assert len(names) >= 6
        for required in (CALIBRATION_BENCHMARK, "engine.run", "l2.lookup.tlc",
                         "l2.lookup.snuca2", "l2.lookup.dnuca", "link.transit",
                         "mesh.transit", "workload.generate",
                         "system.refs_per_sec.tlc"):
            assert required in names

    def test_filtered_quick_run_produces_results(self):
        results, _ = run_suite(quick=True, name_filter="calibration",
                               reps=1, pin=False)
        assert list(results) == [CALIBRATION_BENCHMARK]
        result = results[CALIBRATION_BENCHMARK]
        assert result.median_ns > 0
        assert result.meta["inner_ops"] > 0
        assert result.meta["ops_per_sec"] > 0


class TestFilterZeroMatch:
    """`repro perf --filter` with a pattern matching nothing must fail
    loudly (exit 2) and list the available benchmark names — it used to
    exit 0 after silently running nothing."""

    def test_run_suite_empty_on_no_match(self):
        results, _ = run_suite(quick=True,
                               name_filter="no-such-benchmark",
                               reps=1, pin=False)
        assert results == {}

    def test_perf_cli_exits_2_and_lists_names(self, capsys):
        from repro.cli import main

        assert main(["perf", "--quick", "--reps", "1", "--no-pin",
                     "--filter", "no-such-benchmark"]) == 2
        err = capsys.readouterr().err
        assert "no benchmark matches filter 'no-such-benchmark'" in err
        for name in benchmark_names():
            assert name in err

    def test_perf_list_respects_filter(self, capsys):
        from repro.cli import main

        assert main(["perf", "--list", "--filter", "calibration"]) == 0
        out = capsys.readouterr().out.split()
        assert out == [CALIBRATION_BENCHMARK]

    def test_perf_list_exits_2_on_no_match(self, capsys):
        from repro.cli import main

        assert main(["perf", "--list",
                     "--filter", "no-such-benchmark"]) == 2
        assert "available benchmarks" in capsys.readouterr().err


class TestBackendBenchmarks:
    """The backend-parameterized benchmarks the speedup gate reads."""

    def test_probe_pair_registered(self):
        names = benchmark_names()
        assert "replay.probe.reference" in names
        numpy_installed = True
        try:
            import numpy  # noqa: F401
        except ImportError:
            numpy_installed = False
        assert ("replay.probe.batched" in names) == numpy_installed
        assert ("system.refs_per_sec.tlc.batched" in names) == numpy_installed

    def test_backend_speedup_lines_printed(self, capsys):
        pytest.importorskip("numpy")
        from repro.cli import main

        assert main(["perf", "--quick", "--reps", "1", "--no-pin",
                     "--filter", "replay.probe"]) == 0
        out = capsys.readouterr().out
        assert "backend speedup (batched vs reference):" in out
        assert "replay.probe:" in out


class TestGridEquivalence:
    """The optimized simulator must reproduce the pre-optimization grid
    byte-for-byte (same JSON, same floats, same ordering)."""

    GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                          "grid_equivalence.json")

    def test_grid_output_matches_golden_bytes(self, tmp_path):
        from repro.analysis.runner import run_grid
        from repro.analysis.storage import save_grid

        grid = run_grid(designs=("SNUCA2", "DNUCA", "TLC", "TLCopt500"),
                        benchmarks=("perl", "bzip", "mcf", "swim"),
                        n_refs=3000, seed=7)
        out = tmp_path / "grid.json"
        save_grid(str(out), grid)
        with open(self.GOLDEN, "rb") as handle:
            golden_bytes = handle.read()
        assert out.read_bytes() == golden_bytes

"""Tests for the simplified out-of-order processor model."""

import pytest

from repro.sim.processor import ExecutionResult, Processor, ProcessorConfig
from repro.workloads.trace import Reference


class FixedLatencyL2:
    """An L2 stub with a constant response latency."""

    def __init__(self, latency=10):
        self.latency = latency
        self.accesses = []
        self.resets = 0

    def access(self, addr, time, write=False):
        self.accesses.append((addr, time, write))
        from repro.core.base import L2Outcome
        return L2Outcome(time + self.latency, True, self.latency, True, write)

    def reset_stats(self):
        self.resets += 1


def refs(n, gap=8, write=False, dependent=False):
    return [Reference(gap, i * 64, write, dependent) for i in range(n)]


class TestConfig:
    def test_paper_defaults(self):
        cfg = ProcessorConfig()
        assert cfg.issue_width == 4
        assert cfg.rob_entries == 128
        assert cfg.mshrs == 8
        assert cfg.l1_latency == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(issue_width=0)
        with pytest.raises(ValueError):
            ProcessorConfig(l1_latency=-1)


class TestIssueBandwidth:
    def test_front_end_time_is_gap_over_width(self):
        l2 = FixedLatencyL2(latency=1)
        proc = Processor(l2, ProcessorConfig(issue_width=4))
        result = proc.run(refs(100, gap=8))
        # 800 instructions at 4-wide = 200 cycles minimum.
        assert result.cycles >= 200
        assert result.cycles < 260

    def test_fractional_gaps_accumulate_exactly(self):
        l2 = FixedLatencyL2(latency=1)
        proc = Processor(l2, ProcessorConfig(issue_width=4, mshrs=512,
                                             rob_entries=4096))
        result = proc.run(refs(400, gap=1))
        # 400 instructions at 4-wide = 100 cycles, not 400.
        assert result.cycles <= 110

    def test_instructions_counted(self):
        l2 = FixedLatencyL2()
        result = Processor(l2).run(refs(10, gap=7))
        assert result.instructions == 70


class TestDependenceChains:
    def test_dependent_refs_serialize_on_l2_latency(self):
        slow = FixedLatencyL2(latency=50)
        dep = Processor(slow, ProcessorConfig()).run(
            refs(50, gap=4, dependent=True))
        slow2 = FixedLatencyL2(latency=50)
        indep = Processor(slow2, ProcessorConfig()).run(
            refs(50, gap=4, dependent=False))
        assert dep.cycles > indep.cycles * 2

    def test_dependent_chain_cost_scales_with_latency(self):
        fast = Processor(FixedLatencyL2(10), ProcessorConfig()).run(
            refs(50, gap=4, dependent=True))
        slow = Processor(FixedLatencyL2(40), ProcessorConfig()).run(
            refs(50, gap=4, dependent=True))
        assert slow.cycles > fast.cycles + 50 * 25


class TestWindowLimits:
    def test_rob_bounds_latency_hiding(self):
        """With a tiny ROB, long-latency loads stall the core."""
        big = Processor(FixedLatencyL2(300),
                        ProcessorConfig(rob_entries=4096, mshrs=64)).run(
            refs(40, gap=8))
        small = Processor(FixedLatencyL2(300),
                          ProcessorConfig(rob_entries=16, mshrs=64)).run(
            refs(40, gap=8))
        assert small.cycles > big.cycles

    def test_mshrs_bound_outstanding_requests(self):
        few = Processor(FixedLatencyL2(300),
                        ProcessorConfig(rob_entries=4096, mshrs=1)).run(
            refs(40, gap=8))
        many = Processor(FixedLatencyL2(300),
                         ProcessorConfig(rob_entries=4096, mshrs=8)).run(
            refs(40, gap=8))
        assert few.cycles > many.cycles * 2

    def test_stores_occupy_mshrs(self):
        l2 = FixedLatencyL2(300)
        result = Processor(l2, ProcessorConfig(mshrs=2)).run(
            refs(20, gap=1, write=True))
        # Store completions at +300 throttle issue through the 2 MSHRs.
        assert result.cycles > 9 * 300 / 2

    def test_drain_waits_for_last_load(self):
        l2 = FixedLatencyL2(500)
        result = Processor(l2).run(refs(1, gap=4))
        assert result.cycles >= 500


class TestL1Latency:
    def test_l2_sees_requests_after_l1_latency(self):
        l2 = FixedLatencyL2()
        Processor(l2, ProcessorConfig(l1_latency=3)).run(refs(1, gap=4))
        _, time, _ = l2.accesses[0]
        assert time >= 3


class TestWarmup:
    def test_warmup_resets_l2_stats(self):
        l2 = FixedLatencyL2()
        Processor(l2).run(refs(20), warmup_refs=10)
        assert l2.resets == 1

    def test_warmup_excluded_from_counts(self):
        l2 = FixedLatencyL2()
        result = Processor(l2).run(refs(20, gap=8), warmup_refs=10)
        assert result.instructions == 80
        assert result.l2_requests == 10
        assert result.warmup_cycles > 0

    def test_zero_warmup_no_reset(self):
        l2 = FixedLatencyL2()
        Processor(l2).run(refs(5), warmup_refs=0)
        assert l2.resets == 0


class TestExecutionResult:
    def test_ipc(self):
        r = ExecutionResult(cycles=100, instructions=250, l2_requests=10,
                            warmup_cycles=0)
        assert r.ipc == pytest.approx(2.5)

    def test_ipc_zero_cycles(self):
        r = ExecutionResult(cycles=0, instructions=0, l2_requests=0,
                            warmup_cycles=0)
        assert r.ipc == 0.0

"""Edge-case tests for the processor model's window mechanics."""

import pytest

from repro.core.base import L2Outcome
from repro.sim.processor import Processor, ProcessorConfig
from repro.workloads.trace import Reference


class ScriptedL2:
    """An L2 stub returning scripted latencies per access."""

    def __init__(self, latencies):
        self.latencies = list(latencies)
        self.calls = []

    def access(self, addr, time, write=False):
        latency = self.latencies.pop(0) if self.latencies else 10
        self.calls.append((addr, time, write))
        return L2Outcome(time + latency, True, latency, True, write)

    def reset_stats(self):
        pass


class TestWarmupBoundary:
    def test_cycle_accounting_splits_exactly(self):
        l2 = ScriptedL2([10] * 20)
        trace = [Reference(8, i * 64, False, False) for i in range(20)]
        full = Processor(l2, ProcessorConfig()).run(trace, warmup_refs=0)
        l2b = ScriptedL2([10] * 20)
        split = Processor(l2b, ProcessorConfig()).run(trace, warmup_refs=10)
        assert split.warmup_cycles + split.cycles == full.cycles

    def test_instructions_split_exactly(self):
        l2 = ScriptedL2([10] * 10)
        trace = [Reference(5, i * 64, False, False) for i in range(10)]
        result = Processor(l2, ProcessorConfig()).run(trace, warmup_refs=4)
        assert result.instructions == 6 * 5


class TestOrderingInvariants:
    def test_issue_times_nondecreasing(self):
        """The resource models rely on arrival-ordered requests."""
        l2 = ScriptedL2([300, 5, 300, 5, 300, 5] * 10)
        trace = [Reference(3, i * 64, i % 3 == 0, i % 2 == 0)
                 for i in range(60)]
        Processor(l2, ProcessorConfig()).run(trace)
        times = [t for _, t, _ in l2.calls]
        assert times == sorted(times)

    def test_dependent_never_issues_before_producer_returns(self):
        l2 = ScriptedL2([200, 5])
        trace = [Reference(4, 0, False, False),
                 Reference(4, 64, False, True)]
        Processor(l2, ProcessorConfig()).run(trace)
        (_, t0, _), (_, t1, _) = l2.calls
        # Producer completes at t0 + 200; the dependent access leaves the
        # core no earlier than that (plus its L1 latency).
        assert t1 >= t0 + 200

    def test_independent_refs_pipeline_freely(self):
        l2 = ScriptedL2([200, 200])
        trace = [Reference(4, 0, False, False),
                 Reference(4, 64, False, False)]
        Processor(l2, ProcessorConfig()).run(trace)
        (_, t0, _), (_, t1, _) = l2.calls
        assert t1 - t0 < 10  # overlapped, not serialized


class TestEmptyAndDegenerate:
    def test_empty_trace(self):
        result = Processor(ScriptedL2([])).run([])
        assert result.cycles == 0
        assert result.instructions == 0

    def test_zero_gap_references(self):
        l2 = ScriptedL2([5] * 10)
        trace = [Reference(0, i * 64, False, False) for i in range(10)]
        result = Processor(l2, ProcessorConfig(mshrs=64)).run(trace)
        assert result.instructions == 0
        assert result.cycles >= 5  # still waits for the last load

    def test_single_write_does_not_stall_drain(self):
        l2 = ScriptedL2([500])
        trace = [Reference(4, 0, True, False)]
        result = Processor(l2).run(trace)
        # Stores do not hold retirement at the end of the run.
        assert result.cycles < 500
